#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, sanitizer build + tests, a
# Release bench_index_micro --quick gate (vectorized-scan and heatmap
# speedup floors, plus a 20% drift band against the committed
# bench/baselines/BENCH_index_micro.json invariants), and
# observability smoke checks: bench_knn --quick must emit a parseable
# BENCH_knn.json with latency quantiles, a metrics snapshot, and an EXPLAIN
# profile with nonzero pruning; bench_failure_recovery --quick must show the
# gray-failure health alert firing and resolving in its "health" section;
# bench_partitioning --quick must show the heat observatory catching the
# zipf(1.1) camera skew (true hottest partition, >=3x load stddev vs the
# uniform run, advisor improvement >=25%) and staying silent under uniform.
#
# Usage: ./ci.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1 build =="
cmake -B build -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1 tests =="
ctest --test-dir build -j "$JOBS" --output-on-failure

echo "== metrics doc lint (tools/metrics_doc --check) =="
# Every registered metric must carry a help string and appear in
# docs/METRICS.md (regenerate with ./build/tools/metrics_doc > docs/METRICS.md).
./build/tools/metrics_doc --check docs/METRICS.md

if [ "$SKIP_SANITIZE" -eq 0 ]; then
  echo "== sanitizer build (ASan+UBSan) =="
  cmake -B build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSTCN_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  echo "== sanitizer tests =="
  ctest --test-dir build-asan -j "$JOBS" --output-on-failure
  echo "== sanitizer health-alert chaos rerun =="
  # The chaos health test exercises the ticker, wildcard rules, and the
  # hysteresis state machine under ASan+UBSan explicitly.
  ./build-asan/tests/test_health_alerts \
      --gtest_filter='ChaosHealth.*' >/dev/null
  echo "== sanitizer recovery chaos rerun =="
  # Crash/recovery interleavings (holder death mid-resync, double crash,
  # snapshot install racing the live replica stream) under ASan+UBSan.
  ./build-asan/tests/test_failure_recovery \
      --gtest_filter='RecoveryChaos.*' >/dev/null
  echo "== sanitizer tiered-store differential rerun =="
  # Decode-fused cold-tier scans, snapshot round-trips, and the int8
  # quantized appearance path under ASan+UBSan explicitly.
  ./build-asan/tests/test_tiered_store \
      --gtest_filter='*TieredDifferential.*:QuantizedAppearance.*' >/dev/null
fi

echo "== columnar scan smoke (Release -O3, bench_index_micro --quick) =="
# The zone-map speedup claim is an -O3 claim; the RelWithDebInfo tier-1
# build is not the configuration the numbers are quoted from.
cmake -B build-release -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$JOBS" --target bench_index_micro
COLUMNAR_DIR="$(mktemp -d)"
(cd "$COLUMNAR_DIR" && "$OLDPWD/build-release/bench/bench_index_micro" --quick)
python3 - "$COLUMNAR_DIR/BENCH_index_micro.json" \
    bench/baselines/BENCH_index_micro.json <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["bench"] == "index_micro", report
col = report["columnar"]
assert col["blocks_skipped_ratio"] > 0, col
assert col["blocks_scanned"] > 0, col
assert col["scan_speedup"] > 1.0, col
assert col["matched"] > 0, col
assert report["scalars"]["blocks_skipped_ratio"] == col["blocks_skipped_ratio"]

# Vectorized-section floors: the morsel scan must beat the scalar block
# scan it replaced by >=3x on the zone-selective workload, and the dense
# aggregation must beat the per-row map heatmap by >=5x.
vec = report["vectorized"]
assert vec["matched"] > 0, vec
assert vec["zone_fast_path"] > 0, vec
assert vec["rows_evaluated"] > 0, vec
assert vec["rows_selected"] > 0, vec
assert vec["vectorized_scan_speedup"] >= 3.0, vec
assert vec["heatmap_speedup"] >= 5.0, vec

# Regression gate: the deterministic columnar invariants (matched rows,
# blocks visited/skipped) must stay within 20% of the committed baseline.
# Timings are machine-dependent and are gated by the absolute floors above
# instead.
# Compression-section floors (E10c): the cold tier must compress the mixed
# row (ids, positions, int8 embedding arena) at least 3x against the raw
# hot layout, decode-fused cold scans must stay within 10% of hot-tier
# scans on the selective workload, and the int8 quantized appearance path
# must honor its closed-form error bound exactly (soundness, not luck).
comp = report["compression"]
assert comp["rows"] > 0, comp
assert comp["cold_blocks_scanned"] > 0, comp
assert comp["compression_ratio"] >= 3.0, comp
assert comp["cold_hot_scan_ratio"] <= 1.10, comp
assert comp["quantized_max_err"] <= comp["quantized_bound"], comp
assert comp["quantized_rmse"] <= 5e-3, comp

baseline_report = json.load(open(sys.argv[2]))
baseline = baseline_report["columnar"]
for key in ("matched", "blocks_scanned", "blocks_skipped",
            "blocks_skipped_ratio"):
    expect, got = baseline[key], col[key]
    assert expect > 0, (key, baseline)
    drift = abs(got - expect) / expect
    assert drift <= 0.20, \
        f"columnar {key} drifted {drift:.1%} from baseline: {got} vs {expect}"

# The cold-tier byte counts are deterministic for the fixed seed; a drift
# gate keeps encoder regressions (e.g. lost dictionary or FOR width wins)
# from slipping under the absolute 3x floor.
comp_baseline = baseline_report["compression"]
for key in ("rows", "compression_ratio"):
    expect, got = comp_baseline[key], comp[key]
    assert expect > 0, (key, comp_baseline)
    drift = abs(got - expect) / expect
    assert drift <= 0.20, \
        f"compression {key} drifted {drift:.1%} from baseline: {got} vs {expect}"

print("BENCH_index_micro.json OK:",
      f"scan_speedup={col['scan_speedup']:.1f}x,",
      f"blocks_skipped_ratio={col['blocks_skipped_ratio']:.3f},",
      f"vectorized={vec['vectorized_scan_speedup']:.1f}x,",
      f"heatmap={vec['heatmap_speedup']:.1f}x,",
      f"compression={comp['compression_ratio']:.2f}x,",
      f"cold/hot scan={comp['cold_hot_scan_ratio']:.2f},",
      f"int8 max_err={comp['quantized_max_err']:.1e}")
PY
rm -rf "$COLUMNAR_DIR"

echo "== bench report smoke (bench_knn --quick) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
(cd "$SMOKE_DIR" && "$OLDPWD/build/bench/bench_knn" --quick >/dev/null)
python3 - "$SMOKE_DIR/BENCH_knn.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["bench"] == "knn", report
assert report["quick"] is True, report
hist = report["histograms"]["query_latency_us"]
assert hist["count"] > 0, hist
assert hist["p50"] <= hist["p95"] <= hist["p99"], hist
metrics = report["metrics"]
assert metrics["counters"]["net.messages_sent"] > 0, "missing net counters"
assert any(k.startswith("coordinator.") for k in metrics["counters"])
assert any(k.startswith("worker.") for k in metrics["counters"])

# EXPLAIN section: per-stage estimated-vs-actual with nonzero pruning.
explain = report["explain"]
stages = explain["stages"]
assert stages, "explain profile has no stages"
names = {s["name"] for s in stages}
for required in ("knn.plan", "knn.round", "partition_selection",
                 "worker.scan"):
    assert required in names, f"missing explain stage {required}: {names}"
assert any(s.get("pruned", 0) > 0 for s in stages), "nothing pruned"
assert any("estimated" in s and "actual" in s for s in stages), \
    "no stage recorded both estimate and actual"
scalars = report["scalars"]
assert scalars["knn_plan_q_error_p50"] >= 1.0, scalars
assert scalars["estimate_q_error_p50"] >= 1.0, scalars
print("BENCH_knn.json OK:", len(report["scalars"]), "scalars,",
      f"query p50={hist['p50']:.0f}us p99={hist['p99']:.0f}us,",
      len(stages), "explain stages")
PY

echo "== health + recovery report smoke (bench_failure_recovery --quick) =="
(cd "$SMOKE_DIR" && "$OLDPWD/build/bench/bench_failure_recovery" --quick >/dev/null)
python3 - "$SMOKE_DIR/BENCH_failure_recovery.json" \
    bench/baselines/BENCH_failure_recovery.json <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
scalars = report["scalars"]
assert scalars["health_gray_alert_fired"] == 1.0, scalars
assert scalars["health_gray_victim_suspect"] == 1.0, scalars
assert scalars["health_gray_alert_resolved"] == 1.0, scalars
health = report["health"]
assert health["samples"] > 0, health
events = health["events"]
assert any(e["kind"] == "firing" and e["subject"].startswith("worker.")
           for e in events), events
assert any(e["kind"] == "resolved" for e in events), events
assert health["nodes"], "health rollup has no nodes"

# E9d gate: recovery cost must be monotone in snapshot age — a fresher
# snapshot means strictly less replayed data, and every snapshot age must
# beat the full-resync (no snapshot) column on bytes and replayed rows.
# Recovery time is monotone too, but delta exchanges can tie at this scale,
# so that check is non-strict.
ages = ["age0", "age5", "nosnap"]
for a in ages:
    assert scalars[f"e9d_complete_{a}"] == 1.0, \
        f"recovery at {a} lost data: {scalars}"
replayed = [scalars[f"e9d_replayed_{a}"] for a in ages]
bytes_ = [scalars[f"e9d_bytes_{a}"] for a in ages]
times = [scalars[f"e9d_recovery_ms_{a}"] for a in ages]
assert replayed[0] < replayed[1] < replayed[2], \
    f"replayed rows not strictly monotone in snapshot age: {replayed}"
assert bytes_[0] < bytes_[2] and bytes_[1] < bytes_[2], \
    f"a snapshot age failed to beat full resync on bytes: {bytes_}"
assert times[0] <= times[2] and times[1] <= times[2], \
    f"a snapshot age failed to beat full resync on time: {times}"

# Tiered-storage row: snapshots of demoted partitions carry compressed
# cold blocks, so the vault must shrink materially (>=15%) against the raw
# row at the same snapshot age, while recovery stays complete and replays
# the identical delta (compression must not change what is resynced).
assert scalars["e9d_complete_age0_tiered"] == 1.0, scalars
assert scalars["e9d_snapshot_bytes_age0"] > 0, scalars
tiered, raw = (scalars["e9d_snapshot_bytes_age0_tiered"],
               scalars["e9d_snapshot_bytes_age0"])
assert tiered <= 0.85 * raw, \
    f"compressed snapshot vault saved <15%: {tiered} vs {raw}"
assert scalars["e9d_replayed_age0_tiered"] == scalars["e9d_replayed_age0"], \
    scalars

# Drift gate against the committed baseline: the full-resync replay volume
# is deterministic for the fixed seed; 20% tolerates batch-layout tweaks.
baseline = json.load(open(sys.argv[2]))["scalars"]
for key in ("e9d_replayed_nosnap", "e9d_bytes_nosnap"):
    expect, got = baseline[key], scalars[key]
    assert expect > 0, (key, baseline)
    drift = abs(got - expect) / expect
    assert drift <= 0.20, \
        f"{key} drifted {drift:.1%} from baseline: {got} vs {expect}"

print("BENCH_failure_recovery.json OK:", len(events), "health events,",
      f"{int(scalars['health_samples'])} samples,",
      f"E9d replayed {[int(r) for r in replayed]} (age0/age5/full),",
      f"tiered snapshot {int(tiered)}/{int(raw)} B "
      f"({1.0 - tiered / raw:.0%} saved)")
PY

echo "== heat observatory smoke (bench_partitioning --quick) =="
(cd "$SMOKE_DIR" && "$OLDPWD/build/bench/bench_partitioning" --quick >/dev/null)
python3 - "$SMOKE_DIR/BENCH_partitioning.json" \
    bench/baselines/BENCH_partitioning.json <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
scalars = report["scalars"]

# Zipf(1.1) camera skew: the coordinator heat map must identify the true
# hottest partition, windowed load skew must read >= 3x the uniform run,
# and the read-only placement advisor must find a strong move (>= 25%
# projected per-worker load-stddev improvement).
assert scalars["heat_hottest_match_zipf"] == 1.0, scalars
assert scalars["heat_load_stddev_zipf"] >= \
    3.0 * scalars["heat_load_stddev_uniform"], scalars
assert scalars["heat_load_stddev_zipf"] > 0.5, scalars
assert scalars["heat_hot_cold_ratio_zipf"] > 8.0, scalars
assert scalars["heat_advisor_recs_zipf"] > 0, scalars
assert scalars["heat_advisor_improvement_zipf"] >= 0.25, scalars

# The uniform run is balanced per partition and per worker by
# construction: the advisor must stay silent with zero projected gain.
assert scalars["heat_advisor_recs_uniform"] == 0.0, scalars
assert scalars["heat_advisor_improvement_uniform"] == 0.0, scalars

# Drift gate: the zipf heat scalars are seeded and deterministic; 20%
# tolerates sampling-path tweaks without letting the skew signal rot.
baseline = json.load(open(sys.argv[2]))["scalars"]
for key in ("heat_load_stddev_zipf", "heat_hot_cold_ratio_zipf",
            "heat_advisor_improvement_zipf"):
    expect, got = baseline[key], scalars[key]
    assert expect > 0, (key, baseline)
    drift = abs(got - expect) / expect
    assert drift <= 0.20, \
        f"{key} drifted {drift:.1%} from baseline: {got} vs {expect}"

print("BENCH_partitioning.json OK:",
      f"zipf stddev={scalars['heat_load_stddev_zipf']:.2f}",
      f"(uniform {scalars['heat_load_stddev_uniform']:.2f}),",
      f"hot/cold={scalars['heat_hot_cold_ratio_zipf']:.1f}x,",
      f"advisor {int(scalars['heat_advisor_recs_zipf'])} recs,",
      f"top improvement {scalars['heat_advisor_improvement_zipf']:.0%}")
PY

echo "== cost ledger smoke (bench_gateway --quick) =="
(cd "$SMOKE_DIR" && "$OLDPWD/build/bench/bench_gateway" --quick >/dev/null)
python3 - "$SMOKE_DIR/BENCH_gateway.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
scalars = report["scalars"]
assert scalars["cost_queries"] > 0, scalars

# Conservation invariant: the space-saving sketch folds evicted rows into
# their replacements, so per-tenant rows_evaluated must sum EXACTLY to the
# cluster total the ledger counted.
total = scalars["cost_rows_evaluated_total"]
tenant_sum = scalars["cost_rows_evaluated_tenant_sum"]
assert total > 0, scalars
assert tenant_sum == total, \
    f"cost conservation violated: per-tenant sum {tenant_sum} != total {total}"

cost = report["cost"]
assert cost["queries"] == scalars["cost_queries"], cost
by_tenant = cost["by_tenant"]
assert by_tenant, "no tenant attribution rows"
assert sum(r["cost"]["rows_evaluated"] for r in by_tenant) == total
by_kind = cost["by_kind"]
assert by_kind and by_kind[0]["key"] == "range", by_kind
assert scalars["exemplar_buckets"] > 0, "no latency exemplars pinned"
print("BENCH_gateway.json OK:",
      f"{int(scalars['cost_queries'])} queries attributed,",
      f"{len(by_tenant)} tenants conserve {int(total)} rows_evaluated,",
      f"{int(scalars['exemplar_buckets'])} exemplar buckets")
PY

echo "== flight recorder chaos bundle =="
# The chaos test freezes a postmortem bundle when the injected gray-slow
# worker pages, and dumps it when STCN_BUNDLE_OUT is set. Validate the
# bundle is complete: trigger, burn-rate series, exemplar span trees that
# reach the slow partition, and top-K cost rows.
STCN_BUNDLE_OUT="$SMOKE_DIR/bundle.json" ./build/tests/test_health_alerts \
    --gtest_filter='ChaosHealth.SlowWorkerFreezesPostmortemBundle' >/dev/null
python3 - "$SMOKE_DIR/bundle.json" <<'PY'
import json, sys
bundle = json.load(open(sys.argv[1]))
trigger = bundle["trigger"]
assert trigger["rule"], trigger
assert trigger["kind"] in ("alert", "slo", "recovery_failed"), trigger
slos = bundle["slo"]
assert any(s.get("burn_series") for s in slos), "no burn-rate series"
exemplars = bundle["exemplars"]
assert any(e.get("spans") for e in exemplars), "no exemplar span trees"
cost = bundle["cost"]
assert cost["by_kind"] and cost["by_tenant"], cost
assert bundle["frames"], "no cluster-state frames in the bundle"
print("bundle.json OK:", f"trigger={trigger['kind']}:{trigger['rule']},",
      f"{len(exemplars)} exemplars, {len(bundle['frames'])} frames")
PY

echo "== ci.sh: all green =="
