#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, sanitizer build + tests, and an
# observability smoke check (bench_knn --quick must emit a parseable
# BENCH_knn.json with latency quantiles and a metrics snapshot).
#
# Usage: ./ci.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1 build =="
cmake -B build -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1 tests =="
ctest --test-dir build -j "$JOBS" --output-on-failure

if [ "$SKIP_SANITIZE" -eq 0 ]; then
  echo "== sanitizer build (ASan+UBSan) =="
  cmake -B build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSTCN_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  echo "== sanitizer tests =="
  ctest --test-dir build-asan -j "$JOBS" --output-on-failure
fi

echo "== bench report smoke (bench_knn --quick) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
(cd "$SMOKE_DIR" && "$OLDPWD/build/bench/bench_knn" --quick >/dev/null)
python3 - "$SMOKE_DIR/BENCH_knn.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["bench"] == "knn", report
assert report["quick"] is True, report
hist = report["histograms"]["query_latency_us"]
assert hist["count"] > 0, hist
assert hist["p50"] <= hist["p95"] <= hist["p99"], hist
metrics = report["metrics"]
assert metrics["counters"]["net.messages_sent"] > 0, "missing net counters"
assert any(k.startswith("coordinator.") for k in metrics["counters"])
assert any(k.startswith("worker.") for k in metrics["counters"])
print("BENCH_knn.json OK:", len(report["scalars"]), "scalars,",
      f"query p50={hist['p50']:.0f}us p99={hist['p99']:.0f}us")
PY

echo "== ci.sh: all green =="
