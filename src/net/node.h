// Interface implemented by every process on the simulated network.
#pragma once

#include "net/message.h"

namespace stcn {

class SimNetwork;

/// A node (worker, coordinator, trace source) attached to a SimNetwork.
///
/// The network delivers messages by calling `handle_message`; the node may
/// send further messages during handling (they are queued for future
/// delivery, never delivered re-entrantly).
class NetworkNode {
 public:
  virtual ~NetworkNode() = default;

  [[nodiscard]] virtual NodeId node_id() const = 0;

  /// Called by the network when a message addressed to this node arrives.
  virtual void handle_message(const Message& message, SimNetwork& network) = 0;

  /// Called when a timer set via SimNetwork::set_timer fires.
  virtual void handle_timer(std::uint64_t timer_token, SimNetwork& network) {
    (void)timer_token;
    (void)network;
  }
};

}  // namespace stcn
