#include "net/reliable_channel.h"

#include <algorithm>

namespace stcn {

namespace {

// DATA frame payload: u64 epoch, u64 seq, u32 inner type, u32 inner length,
// raw inner bytes.
std::vector<std::uint8_t> encode_data(std::uint64_t epoch, std::uint64_t seq,
                                      std::uint32_t inner_type,
                                      const std::vector<std::uint8_t>& inner) {
  BinaryWriter w;
  w.write_u64(epoch);
  w.write_u64(seq);
  w.write_u32(inner_type);
  w.write_u32(static_cast<std::uint32_t>(inner.size()));
  w.write_bytes(inner);
  return w.take();
}

// ACK frame payload: u64 epoch (echoed from the DATA frame), u64 seq.
std::vector<std::uint8_t> encode_ack(std::uint64_t epoch, std::uint64_t seq) {
  BinaryWriter w;
  w.write_u64(epoch);
  w.write_u64(seq);
  return w.take();
}

}  // namespace

void ReliableChannel::transmit(const Pending& frame, SimNetwork& network) {
  Message data;
  data.from = self_;
  data.to = frame.to;
  data.type = config_.data_type;
  data.payload =
      encode_data(epoch_, frame.seq, frame.inner_type, frame.payload);
  data.sent_at = network.now();
  data.trace = frame.trace;
  network.send(std::move(data));
}

void ReliableChannel::send(NodeId to, std::uint32_t inner_type,
                           std::vector<std::uint8_t> payload,
                           SimNetwork& network, TraceContext ctx) {
  Pending frame;
  frame.to = to;
  frame.seq = ++next_seq_[to];
  frame.inner_type = inner_type;
  frame.payload = std::move(payload);
  frame.rto = config_.initial_rto;
  frame.attempts = 1;
  frame.trace = ctx;
  transmit(frame, network);
  bump(frames_sent_, "reliable_frames_sent");

  std::uint64_t timer_id = next_timer_id_++;
  std::uint64_t token = config_.timer_token_base + (timer_id & 0xffffffffULL);
  network.set_timer(self_, jittered(frame.rto), token);
  pending_by_dest_[to.value()][frame.seq] = token;
  pending_.emplace(token, std::move(frame));
  update_unacked_gauge();
}

void ReliableChannel::handle_timer(std::uint64_t token, SimNetwork& network) {
  auto it = pending_.find(token);
  if (it == pending_.end()) return;  // acked before the timer fired
  Pending& frame = it->second;
  if (frame.attempts >= config_.max_attempts) {
    bump(retransmit_exhausted_, "retransmit_exhausted");
    if (tracer_ != nullptr && frame.trace.valid()) {
      TraceContext span = tracer_->instant("net.retransmit_exhausted",
                                           frame.trace, self_.value(),
                                           network.now());
      tracer_->tag(span, "to", std::to_string(frame.to.value()));
    }
    pending_by_dest_[frame.to.value()].erase(frame.seq);
    pending_.erase(it);
    update_unacked_gauge();
    return;
  }
  ++frame.attempts;
  bump(retransmits_, "retransmits");
  if (tracer_ != nullptr && frame.trace.valid()) {
    TraceContext span = tracer_->instant("net.retransmit", frame.trace,
                                         self_.value(), network.now());
    tracer_->tag(span, "to", std::to_string(frame.to.value()));
    tracer_->tag(span, "attempt", std::to_string(frame.attempts));
  }
  transmit(frame, network);
  frame.rto = std::min(
      Duration::micros(static_cast<std::int64_t>(
          static_cast<double>(frame.rto.count_micros()) *
          config_.backoff_multiplier)),
      config_.max_rto);
  network.set_timer(self_, jittered(frame.rto), token);
}

std::optional<Message> ReliableChannel::on_data(const Message& frame,
                                                SimNetwork& network) {
  BinaryReader r(frame.payload);
  std::uint64_t epoch = r.read_u64();
  std::uint64_t seq = r.read_u64();
  std::uint32_t inner_type = r.read_u32();
  std::uint32_t inner_len = r.read_u32();
  std::vector<std::uint8_t> inner = r.read_bytes(inner_len);
  if (r.failed()) {
    bump(frames_malformed_, "reliable_frames_malformed");
    return std::nullopt;
  }

  // Always ack — even duplicates: the previous ack may have been lost, and
  // only an ack stops the sender's retransmission ladder.
  network.send({self_, frame.from, config_.ack_type, encode_ack(epoch, seq),
                network.now(), {}});

  RecvStream& stream = recv_[frame.from];
  if (stream.epoch != epoch) {
    // New sender incarnation: dedup state from the previous life no longer
    // applies (the sender restarted its sequence numbers).
    stream = RecvStream{};
    stream.epoch = epoch;
  }
  bool duplicate =
      seq <= stream.contiguous || stream.ahead.contains(seq);
  if (duplicate) {
    bump(dup_suppressed_, "dup_suppressed");
    return std::nullopt;
  }
  stream.ahead.insert(seq);
  while (stream.ahead.erase(stream.contiguous + 1) > 0) {
    ++stream.contiguous;
  }

  Message delivered;
  delivered.from = frame.from;
  delivered.to = self_;
  delivered.type = inner_type;
  delivered.payload = std::move(inner);
  delivered.sent_at = frame.sent_at;
  delivered.trace = frame.trace;
  return delivered;
}

void ReliableChannel::on_ack(const Message& frame) {
  BinaryReader r(frame.payload);
  std::uint64_t epoch = r.read_u64();
  std::uint64_t seq = r.read_u64();
  if (r.failed()) return;
  // An ack for a previous incarnation must not retire a frame of this one.
  if (epoch != epoch_) return;
  auto dest = pending_by_dest_.find(frame.from.value());
  if (dest == pending_by_dest_.end()) return;
  auto entry = dest->second.find(seq);
  if (entry == dest->second.end()) return;  // dup ack after completion
  pending_.erase(entry->second);
  dest->second.erase(entry);
  bump(frames_acked_, "reliable_frames_acked");
  update_unacked_gauge();
}

void ReliableChannel::reset() {
  next_seq_.clear();
  pending_.clear();
  pending_by_dest_.clear();
  recv_.clear();
  epoch_ = rng_.next_u64();
  update_unacked_gauge();
}

}  // namespace stcn
