// Failure injection schedules for resilience experiments (E9).
//
// A FailureSchedule is a deterministic script of crash/restart events that a
// test or benchmark applies to a SimNetwork as virtual time advances.
#pragma once

#include <algorithm>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "net/sim_network.h"

namespace stcn {

struct FailureEvent {
  TimePoint at;
  NodeId node;
  enum class Kind { kCrash, kRestart } kind = Kind::kCrash;
};

class FailureSchedule {
 public:
  void add_crash(TimePoint at, NodeId node) {
    events_.push_back({at, node, FailureEvent::Kind::kCrash});
    sort();
  }
  void add_restart(TimePoint at, NodeId node) {
    events_.push_back({at, node, FailureEvent::Kind::kRestart});
    sort();
  }

  /// Random schedule: `count` crashes over [window.begin, window.end), each
  /// followed by a restart after `downtime`.
  static FailureSchedule random(Rng& rng, std::vector<NodeId> candidates,
                                std::size_t count, TimeInterval window,
                                Duration downtime) {
    FailureSchedule schedule;
    if (candidates.empty()) return schedule;
    rng.shuffle(candidates);
    count = std::min(count, candidates.size());
    // A zero-length (or inverted) window degenerates to "everything fires
    // at window.begin" instead of feeding 0 into uniform_index (UB).
    auto span = window.length() > Duration::zero()
                    ? static_cast<std::uint64_t>(
                          window.length().count_micros())
                    : 0;
    for (std::size_t i = 0; i < count; ++i) {
      Duration offset =
          span == 0 ? Duration::zero()
                    : Duration::micros(static_cast<std::int64_t>(
                          rng.uniform_index(span)));
      TimePoint at = window.begin + offset;
      schedule.add_crash(at, candidates[i]);
      schedule.add_restart(at + downtime, candidates[i]);
    }
    return schedule;
  }

  /// Applies all events scheduled before `until` that have not fired yet.
  /// Returns the nodes whose state changed.
  std::vector<FailureEvent> apply_until(TimePoint until, SimNetwork& network) {
    std::vector<FailureEvent> fired;
    while (next_ < events_.size() && events_[next_].at < until) {
      const FailureEvent& e = events_[next_++];
      if (e.kind == FailureEvent::Kind::kCrash) {
        network.crash(e.node);
      } else {
        network.restart(e.node);
      }
      fired.push_back(e);
    }
    return fired;
  }

  [[nodiscard]] const std::vector<FailureEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool exhausted() const { return next_ >= events_.size(); }

 private:
  void sort() {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FailureEvent& a, const FailureEvent& b) {
                       return a.at < b.at;
                     });
  }

  std::vector<FailureEvent> events_;
  std::size_t next_ = 0;
};

}  // namespace stcn
