// Wire message envelope for the simulated cluster.
//
// A Message is the only thing that crosses a node boundary. The payload is
// opaque bytes (produced by BinaryWriter); `type` is an application-defined
// discriminator so a node can dispatch without deserializing. The envelope
// carries enough metadata for the network simulator to account bytes and
// model transmission delay.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "obs/trace_context.h"

namespace stcn {

struct Message {
  NodeId from;
  NodeId to;
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
  /// Simulation time at which the message was sent (stamped by the network).
  TimePoint sent_at;
  /// Distributed-tracing context (trace id + parent span id). Invalid (all
  /// zero) on untraced traffic; propagated end-to-end so worker-side spans
  /// attach causally to the coordinator's fan-out span.
  TraceContext trace;

  /// Bytes this message occupies on the wire: payload plus a fixed
  /// envelope overhead (addresses, type, length — comparable to a UDP/IP
  /// header plus framing). A valid trace context costs two extra u64s,
  /// mirroring a real tracing header.
  [[nodiscard]] std::size_t wire_size() const {
    constexpr std::size_t kEnvelopeOverhead = 42;
    constexpr std::size_t kTraceOverhead = 16;
    return payload.size() + kEnvelopeOverhead +
           (trace.valid() ? kTraceOverhead : 0);
  }
};

}  // namespace stcn
