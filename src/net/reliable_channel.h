// Reliable delivery on top of the lossy simulated fabric.
//
// The fabric (SimNetwork) may drop, duplicate, delay, or partition traffic.
// For paths where a lost message means lost data or a wedged protocol —
// ingest batches, delta streams, resync transfers, query fragments — nodes
// wrap their traffic in a ReliableChannel:
//
//  * every application message is framed as a DATA frame carrying a
//    per-destination sequence number and the inner message type;
//  * the receiver acks every DATA frame (acks are best-effort; a lost ack
//    just causes a retransmission) and suppresses duplicates by sequence
//    number, so delivery to the application is exactly-once per surviving
//    receiver state;
//  * the sender retransmits unacked frames on a timer with exponential
//    backoff plus jitter, up to `max_attempts`, then gives up and counts
//    `retransmit_exhausted` (a destination that is partitioned away or down
//    for longer than the whole backoff ladder is abandoned; higher layers —
//    replication and resync — own recovery at that point).
//
// The channel is symmetric: one instance per node handles both its outgoing
// streams (sender state per destination) and incoming streams (dedup state
// per source). All state is in-memory; `reset()` models a crash. A restarted
// node restarts sequence numbers from 1 under a fresh *epoch* (incarnation
// number) carried in every frame, so a peer that still holds the previous
// incarnation's dedup watermark does not suppress the new stream: an epoch
// change resets the receive stream, and acks echo the epoch so a stale ack
// can never retire a frame of the new incarnation. A delayed frame from a
// dead incarnation can still slip through as a duplicate delivery in a
// narrow race; application payloads on reliable paths are idempotent
// (detection-id dedup at ingest, merge dedup for query fragments), which
// closes that gap.
//
// Timer tokens: the channel owns the token range [token_base, token_base +
// 2^32); owning nodes route tokens via `owns_timer` before interpreting
// tokens themselves.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/time.h"
#include "net/message.h"
#include "net/sim_network.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "obs/tracer.h"

namespace stcn {

struct ReliableChannelConfig {
  /// First retransmission fires this long after the original send.
  Duration initial_rto = Duration::millis(10);
  /// Backoff ceiling.
  Duration max_rto = Duration::seconds(1);
  /// Each retransmission multiplies the RTO by this factor.
  double backoff_multiplier = 2.0;
  /// Uniform jitter applied to every RTO: rto * (1 ± jitter_fraction).
  double jitter_fraction = 0.2;
  /// Total transmission attempts (first send + retransmissions) before the
  /// frame is abandoned. The default ladder (10ms * 2^k, capped at 1s)
  /// spans roughly 15 virtual seconds — enough to ride out any transient
  /// partition the tests model.
  int max_attempts = 20;
  /// Wire message types used for channel frames. Kept configurable so the
  /// net layer does not depend on the application protocol enum; the core
  /// layer asserts these match its MsgType values.
  std::uint32_t data_type = 12;
  std::uint32_t ack_type = 13;
  /// Timer tokens are allocated from this base upward.
  std::uint64_t timer_token_base = 1ULL << 62;
};

class ReliableChannel {
 public:
  /// `counters` must outlive the channel; retransmit/dedup accounting is
  /// written there (typically the owning node's counter set).
  ReliableChannel(NodeId self, CounterSet& counters,
                  ReliableChannelConfig config = {})
      : self_(self),
        config_(config),
        counters_(&counters),
        rng_(0x5eedC4A77E1ULL ^ self.value()) {
    epoch_ = rng_.next_u64();
  }

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Migrates channel accounting onto pre-registered handles in `registry`
  /// (same counter names). The CounterSet passed at construction stops
  /// receiving eager writes; the owning node is expected to mirror the
  /// registry back into it via MetricsRegistry::sync_counters_into.
  void register_metrics(MetricsRegistry& registry) {
    frames_sent_ = &registry.counter(
        "reliable_frames_sent", "DATA frames sent over the reliable channel");
    retransmits_ = &registry.counter(
        "retransmits", "DATA frames re-sent after an ack timeout");
    retransmit_exhausted_ = &registry.counter(
        "retransmit_exhausted",
        "Frames abandoned after exhausting the retransmit ladder");
    dup_suppressed_ = &registry.counter(
        "dup_suppressed", "Duplicate DATA frames dropped by the receiver");
    frames_acked_ = &registry.counter(
        "reliable_frames_acked", "DATA frames acknowledged end to end");
    frames_malformed_ = &registry.counter(
        "reliable_frames_malformed", "Frames that failed header decoding");
    unacked_gauge_ = &registry.gauge(
        "unacked_frames", "DATA frames in flight awaiting acknowledgement");
  }

  /// Attaches a tracer (may be null). Retransmissions of traced frames are
  /// recorded as instant `net.retransmit` spans under the frame's context.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Sends `payload` (an already-encoded application message of
  /// `inner_type`) reliably to `to`. A valid `ctx` rides in every DATA
  /// frame (including retransmissions) and is restored on the delivered
  /// inner message at the receiver.
  void send(NodeId to, std::uint32_t inner_type,
            std::vector<std::uint8_t> payload, SimNetwork& network,
            TraceContext ctx = {});

  /// True when `token` belongs to this channel's timer range.
  [[nodiscard]] bool owns_timer(std::uint64_t token) const {
    return token >= config_.timer_token_base &&
           token < config_.timer_token_base + (1ULL << 32);
  }

  /// Handles a retransmission timer previously armed by this channel.
  void handle_timer(std::uint64_t token, SimNetwork& network);

  /// Handles an incoming DATA frame: acks it and, if it is not a duplicate,
  /// returns the inner application message for dispatch.
  std::optional<Message> on_data(const Message& frame, SimNetwork& network);

  /// Handles an incoming ACK frame.
  void on_ack(const Message& frame);

  /// Crash semantics: all sender and receiver state is lost.
  void reset();

  /// Frames sent but not yet acked (0 == quiescent).
  [[nodiscard]] std::size_t unacked() const { return pending_.size(); }

 private:
  struct Pending {
    NodeId to;
    std::uint64_t seq = 0;
    std::uint32_t inner_type = 0;
    std::vector<std::uint8_t> payload;
    Duration rto;
    int attempts = 0;
    TraceContext trace;
  };

  /// Per-source receive stream: contiguous watermark + out-of-order set,
  /// scoped to the sender's current epoch.
  struct RecvStream {
    std::uint64_t epoch = 0;
    std::uint64_t contiguous = 0;  // all seqs <= this have been delivered
    std::unordered_set<std::uint64_t> ahead;
  };

  [[nodiscard]] Duration jittered(Duration rto) {
    double f = 1.0 + rng_.uniform(-config_.jitter_fraction,
                                  config_.jitter_fraction);
    auto us = static_cast<std::int64_t>(
        static_cast<double>(rto.count_micros()) * f);
    return Duration::micros(us < 1 ? 1 : us);
  }

  void transmit(const Pending& frame, SimNetwork& network);

  /// Publishes the send-queue depth (health monitor queue-buildup signal).
  void update_unacked_gauge() {
    if (unacked_gauge_ != nullptr) {
      unacked_gauge_->set(static_cast<double>(pending_.size()));
    }
  }

  /// Accounting indirection: registered handle when available, else the
  /// construction-time CounterSet (keeps registry-less users working).
  void bump(Counter* handle, const char* name, std::uint64_t delta = 1) {
    if (handle != nullptr) {
      handle->add(delta);
    } else {
      counters_->add(name, delta);
    }
  }

  NodeId self_;
  ReliableChannelConfig config_;
  CounterSet* counters_;
  Tracer* tracer_ = nullptr;
  Counter* frames_sent_ = nullptr;
  Counter* retransmits_ = nullptr;
  Counter* retransmit_exhausted_ = nullptr;
  Counter* dup_suppressed_ = nullptr;
  Counter* frames_acked_ = nullptr;
  Counter* frames_malformed_ = nullptr;
  Gauge* unacked_gauge_ = nullptr;
  Rng rng_;

  std::uint64_t epoch_ = 0;  // sender incarnation; rotated by reset()
  std::uint64_t next_timer_id_ = 0;
  std::unordered_map<NodeId, std::uint64_t> next_seq_;
  // Retransmission state: timer id → frame, plus (to, seq) → timer id so
  // acks can find their frame.
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint64_t,
                                                       std::uint64_t>>
      pending_by_dest_;  // to.value() → seq → timer id
  std::unordered_map<NodeId, RecvStream> recv_;
};

}  // namespace stcn
