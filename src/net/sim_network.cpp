#include "net/sim_network.h"

#include <algorithm>

namespace stcn {

Duration SimNetwork::delivery_delay(const Message& message) {
  double seconds = static_cast<double>(message.wire_size()) /
                   config_.bandwidth_bytes_per_sec;
  auto transmission = static_cast<std::int64_t>(seconds * 1e6);
  Duration jitter = Duration::zero();
  if (config_.latency_jitter > Duration::zero()) {
    jitter = Duration::micros(static_cast<std::int64_t>(rng_.uniform_index(
        static_cast<std::uint64_t>(config_.latency_jitter.count_micros()))));
  }
  Duration base =
      config_.base_latency + jitter + Duration::micros(transmission);

  double multiplier = 1.0;
  Duration extra = Duration::zero();
  if (const LinkOverride* o = link(message.from, message.to)) {
    multiplier *= o->latency_multiplier;
    extra = extra + o->extra_latency;
  }
  // A slow endpoint (gray failure) stretches everything it sends or
  // receives; with both endpoints slow the worse one dominates.
  double slow = 1.0;
  if (auto it = slow_.find(message.from); it != slow_.end()) {
    slow = std::max(slow, it->second);
  }
  if (auto it = slow_.find(message.to); it != slow_.end()) {
    slow = std::max(slow, it->second);
  }
  multiplier *= slow;

  auto scaled = static_cast<std::int64_t>(
      static_cast<double>(base.count_micros()) * multiplier);
  return Duration::micros(scaled) + extra;
}

void SimNetwork::enqueue_delivery(const Message& message, Duration delay) {
  delivery_delay_us_.observe(
      static_cast<double>(delay.count_micros()));
  Event e;
  e.at = now_ + delay;
  e.sequence = next_sequence_++;
  e.is_timer = false;
  e.message = message;
  events_.push(std::move(e));
}

void SimNetwork::send(Message message) {
  messages_sent_.inc();
  bytes_sent_.add(message.wire_size());
  message.sent_at = now_;

  if (crashed_.contains(message.to) || crashed_.contains(message.from)) {
    dropped_crashed_.inc();
    return;
  }
  if (partitioned(message.from, message.to)) {
    dropped_partition_.inc();
    return;
  }
  double drop = config_.drop_probability;
  if (const LinkOverride* o = link(message.from, message.to);
      o != nullptr && o->drop_probability >= 0.0) {
    drop = o->drop_probability;
  }
  if (drop > 0.0 && rng_.bernoulli(drop)) {
    dropped_fabric_.inc();
    return;
  }

  Duration delay = delivery_delay(message);
  if (config_.duplicate_probability > 0.0 &&
      rng_.bernoulli(config_.duplicate_probability)) {
    messages_duplicated_.inc();
    enqueue_delivery(message, delivery_delay(message));
  }
  enqueue_delivery(message, delay);
}

void SimNetwork::partition(const std::vector<NodeId>& group_a,
                           const std::vector<NodeId>& group_b) {
  std::unordered_set<NodeId> a(group_a.begin(), group_a.end());
  std::unordered_set<NodeId> b(group_b.begin(), group_b.end());
  if (a.empty() || b.empty()) return;
  partitions_.emplace_back(std::move(a), std::move(b));
}

bool SimNetwork::partitioned(NodeId a, NodeId b) const {
  for (const auto& [left, right] : partitions_) {
    if ((left.contains(a) && right.contains(b)) ||
        (left.contains(b) && right.contains(a))) {
      return true;
    }
  }
  return false;
}

void SimNetwork::restart(NodeId id) {
  crashed_.erase(id);
  auto it = parked_timers_.find(id);
  if (it == parked_timers_.end()) return;
  // Re-queue every timer that came due during the outage. Firing "now"
  // (never in the past) preserves the virtual-time monotonicity invariant
  // while letting recurring chains re-arm themselves.
  for (const ParkedTimer& parked : it->second) {
    Event e;
    e.at = parked.due > now_ ? parked.due : now_;
    e.sequence = next_sequence_++;
    e.is_timer = true;
    e.timer_node = id;
    e.timer_token = parked.token;
    events_.push(std::move(e));
    timers_resumed_.inc();
  }
  parked_timers_.erase(it);
}

void SimNetwork::set_timer(NodeId node, Duration delay, std::uint64_t token) {
  Event e;
  e.at = now_ + delay;
  e.sequence = next_sequence_++;
  e.is_timer = true;
  e.timer_node = node;
  e.timer_token = token;
  events_.push(std::move(e));
}

bool SimNetwork::step() {
  if (events_.empty()) return false;
  Event e = events_.top();
  events_.pop();
  // advance_clock_to may have pushed `now_` past queued events; virtual
  // time never runs backwards.
  if (e.at > now_) now_ = e.at;

  if (e.is_timer) {
    if (crashed_.contains(e.timer_node)) {
      // Park instead of discarding: the chain resumes on restart.
      parked_timers_[e.timer_node].push_back({e.at, e.timer_token});
      timers_parked_.inc();
      return true;
    }
    auto it = nodes_.find(e.timer_node);
    if (it != nodes_.end()) it->second->handle_timer(e.timer_token, *this);
    return true;
  }

  // A node crashed after the message was in flight still loses it.
  if (crashed_.contains(e.message.to)) {
    dropped_crashed_.inc();
    return true;
  }
  // Likewise a partition raised mid-flight cuts the message.
  if (partitioned(e.message.from, e.message.to)) {
    dropped_partition_.inc();
    return true;
  }
  auto it = nodes_.find(e.message.to);
  if (it == nodes_.end()) {
    dropped_unknown_.inc();
    return true;
  }
  messages_delivered_.inc();
  it->second->handle_message(e.message, *this);
  return true;
}

std::size_t SimNetwork::run_until_idle(TimePoint deadline) {
  std::size_t processed = 0;
  while (!events_.empty() && events_.top().at < deadline) {
    step();
    ++processed;
  }
  if (deadline != TimePoint::max() && now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace stcn
