#include "net/sim_network.h"

namespace stcn {

void SimNetwork::send(Message message) {
  counters_.add("messages_sent");
  counters_.add("bytes_sent", message.wire_size());
  message.sent_at = now_;

  if (crashed_.contains(message.to) || crashed_.contains(message.from)) {
    counters_.add("messages_dropped_crashed");
    return;
  }
  if (config_.drop_probability > 0.0 &&
      rng_.bernoulli(config_.drop_probability)) {
    counters_.add("messages_dropped_fabric");
    return;
  }

  Event e;
  e.at = now_ + transmission_delay(message.wire_size());
  e.sequence = next_sequence_++;
  e.is_timer = false;
  e.message = std::move(message);
  events_.push(std::move(e));
}

void SimNetwork::set_timer(NodeId node, Duration delay, std::uint64_t token) {
  Event e;
  e.at = now_ + delay;
  e.sequence = next_sequence_++;
  e.is_timer = true;
  e.timer_node = node;
  e.timer_token = token;
  events_.push(std::move(e));
}

bool SimNetwork::step() {
  if (events_.empty()) return false;
  Event e = events_.top();
  events_.pop();
  // advance_clock_to may have pushed `now_` past queued events; virtual
  // time never runs backwards.
  if (e.at > now_) now_ = e.at;

  if (e.is_timer) {
    if (crashed_.contains(e.timer_node)) return true;
    auto it = nodes_.find(e.timer_node);
    if (it != nodes_.end()) it->second->handle_timer(e.timer_token, *this);
    return true;
  }

  // A node crashed after the message was in flight still loses it.
  if (crashed_.contains(e.message.to)) {
    counters_.add("messages_dropped_crashed");
    return true;
  }
  auto it = nodes_.find(e.message.to);
  if (it == nodes_.end()) {
    counters_.add("messages_dropped_unknown_node");
    return true;
  }
  counters_.add("messages_delivered");
  it->second->handle_message(e.message, *this);
  return true;
}

std::size_t SimNetwork::run_until_idle(TimePoint deadline) {
  std::size_t processed = 0;
  while (!events_.empty() && events_.top().at < deadline) {
    step();
    ++processed;
  }
  if (deadline != TimePoint::max() && now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace stcn
