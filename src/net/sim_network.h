// Deterministic discrete-event network simulator.
//
// The "cluster" the framework runs on. Nodes register themselves, send
// messages, and set timers; the simulator delivers everything in virtual-time
// order. Link behaviour is modeled as
//
//     delivery_time = now + (base_latency + jitter + wire_size / bandwidth)
//                           * link_multiplier * slow_multiplier
//                     + link_extra_latency
//
// with optional per-message drop probability and per-node failure state.
// Every byte and message is accounted in a CounterSet so benchmarks can
// report network volume exactly.
//
// Fault model (beyond clean crashes):
//  * fabric loss        — `drop_probability` drops any message uniformly;
//  * duplication        — `duplicate_probability` delivers a second copy of
//                         a message with an independent delay;
//  * partitions         — `partition(groupA, groupB)` drops every message
//                         between the two groups, in both directions, until
//                         `heal()`; partitions are cumulative;
//  * link overrides     — `set_link` gives one directed link its own drop
//                         probability and latency shaping (degraded link);
//  * gray failures      — `set_slow(node, m)` multiplies the delivery
//                         latency of every message to or from the node by
//                         `m` without crashing it. Heartbeats still arrive,
//                         so timeout-based failure detectors do not fire;
//                         only latency-sensitive paths (hedging) notice.
//
// Crashes suppress timers but no longer lose them: a timer that comes due
// while its node is crashed is parked and re-queued when the node restarts,
// so recurring tick chains (heartbeat, monitor tick) survive a restart even
// if nobody re-arms them explicitly.
//
// Determinism: with a fixed seed, identical send sequences produce identical
// delivery schedules. Ties in delivery time are broken by send sequence
// number.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time.h"
#include "net/message.h"
#include "net/node.h"
#include "obs/metrics.h"

namespace stcn {

/// Link-level behaviour knobs for the whole fabric.
struct NetworkConfig {
  Duration base_latency = Duration::micros(200);
  Duration latency_jitter = Duration::micros(50);  // uniform [0, jitter)
  double bandwidth_bytes_per_sec = 1.25e9;          // ~10 Gbit/s
  double drop_probability = 0.0;
  /// Probability that a delivered message is delivered twice (the second
  /// copy gets an independent delay). Models retransmitting middleboxes.
  double duplicate_probability = 0.0;
  std::uint64_t seed = 42;
};

/// Per-directed-link behaviour override (degraded or asymmetric links).
struct LinkOverride {
  /// Negative means "inherit the fabric-wide drop_probability".
  double drop_probability = -1.0;
  Duration extra_latency = Duration::zero();
  double latency_multiplier = 1.0;
};

class SimNetwork {
 public:
  explicit SimNetwork(NetworkConfig config = {})
      : config_(config),
        rng_(config.seed),
        messages_sent_(metrics_.counter(
            "messages_sent", "Messages handed to the fabric for delivery")),
        bytes_sent_(metrics_.counter(
            "bytes_sent", "Payload bytes handed to the fabric")),
        messages_delivered_(metrics_.counter(
            "messages_delivered", "Messages delivered to a live node")),
        messages_duplicated_(metrics_.counter(
            "messages_duplicated",
            "Messages duplicated in flight by fault injection")),
        dropped_crashed_(metrics_.counter(
            "messages_dropped_crashed",
            "Messages dropped because the destination was crashed")),
        dropped_partition_(metrics_.counter(
            "messages_dropped_partition",
            "Messages dropped by an injected network partition")),
        dropped_fabric_(metrics_.counter(
            "messages_dropped_fabric",
            "Messages lost to random fabric drop (loss_probability)")),
        dropped_unknown_(metrics_.counter(
            "messages_dropped_unknown_node",
            "Messages addressed to a node never attached")),
        timers_parked_(metrics_.counter(
            "timers_parked", "Timers held while their owner was crashed")),
        timers_resumed_(metrics_.counter(
            "timers_resumed", "Parked timers released on node restart")),
        delivery_delay_us_(metrics_.histogram(
            "delivery_delay_us", "Per-message fabric delay (sim us)")) {}

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Attaches a node. The node must outlive the network (nodes are owned by
  /// the framework layer; the network only routes to them).
  void attach(NetworkNode& node) {
    STCN_CHECK(nodes_.emplace(node.node_id(), &node).second);
  }

  void detach(NodeId id) { nodes_.erase(id); }

  /// Sends a message; it will be delivered at a future virtual time unless
  /// the destination is crashed/unknown, a partition separates the
  /// endpoints, or the fabric drops it.
  void send(Message message);

  /// Schedules `handle_timer(token)` on `node` at now + delay.
  void set_timer(NodeId node, Duration delay, std::uint64_t token);

  /// Marks a node as crashed: messages to it are dropped (and counted) and
  /// its timers are parked until restart.
  void crash(NodeId id) { crashed_.insert(id); }
  /// Heals a crashed node and re-queues any timers that came due while it
  /// was down (recurring tick chains resume without outside help).
  void restart(NodeId id);
  [[nodiscard]] bool is_crashed(NodeId id) const {
    return crashed_.contains(id);
  }

  // ------------------------------------------------------------ partitions
  /// Partitions the fabric: every message between a node in `group_a` and a
  /// node in `group_b` is dropped, in both directions. Partitions stack; an
  /// endpoint pair is cut if any active partition separates it.
  void partition(const std::vector<NodeId>& group_a,
                 const std::vector<NodeId>& group_b);
  /// Heals all partitions.
  void heal() { partitions_.clear(); }
  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const;
  [[nodiscard]] std::size_t active_partitions() const {
    return partitions_.size();
  }

  // --------------------------------------------------------- link overrides
  /// Overrides behaviour of the directed link `from` → `to`.
  void set_link(NodeId from, NodeId to, LinkOverride link) {
    links_[link_key(from, to)] = link;
  }
  /// Overrides both directions of a link.
  void set_link_symmetric(NodeId a, NodeId b, LinkOverride link) {
    set_link(a, b, link);
    set_link(b, a, link);
  }
  void clear_link(NodeId from, NodeId to) { links_.erase(link_key(from, to)); }
  void clear_links() { links_.clear(); }

  // ----------------------------------------------------------- gray failure
  /// Puts a node in "slow" mode: all its traffic (in and out) takes
  /// `latency_multiplier` times longer to deliver. The node stays up —
  /// heartbeats flow, so failure detectors do not trip. Requires >= 1.
  void set_slow(NodeId id, double latency_multiplier) {
    STCN_CHECK(latency_multiplier >= 1.0);
    slow_[id] = latency_multiplier;
  }
  void clear_slow(NodeId id) { slow_.erase(id); }
  [[nodiscard]] bool is_slow(NodeId id) const { return slow_.contains(id); }

  /// Runs the event loop until no events remain or `deadline` is reached.
  /// Returns the number of events processed.
  std::size_t run_until_idle(TimePoint deadline = TimePoint::max());

  /// Processes exactly one event (message delivery or timer). Returns false
  /// when the queue is empty. Useful for pumping until a condition holds
  /// when recurring timers keep the queue permanently non-empty.
  bool step();

  /// Runs until virtual time reaches `until` (events at exactly `until` are
  /// not processed).
  std::size_t run_until(TimePoint until) { return run_until_idle(until); }

  /// Advances virtual time to at least `t` even with no pending events.
  void advance_clock_to(TimePoint t) {
    if (t > now_) now_ = t;
  }

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] bool idle() const { return events_.empty(); }

  /// Transport accounting: messages_sent, messages_delivered,
  /// messages_dropped_*, messages_duplicated, bytes_sent, timers_parked.
  /// Hot paths write pre-registered metric handles; this view mirrors the
  /// registry into a CounterSet at read time for compatibility.
  [[nodiscard]] const CounterSet& counters() const {
    metrics_.sync_counters_into(counters_);
    return counters_;
  }
  CounterSet& counters() {
    metrics_.sync_counters_into(counters_);
    return counters_;
  }

  /// Registry backing the counters above plus the delivery-delay histogram.
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t sequence = 0;  // tie-break for determinism
    bool is_timer = false;
    Message message;       // when !is_timer
    NodeId timer_node;     // when is_timer
    std::uint64_t timer_token = 0;

    // Min-heap on (at, sequence).
    friend bool operator>(const Event& a, const Event& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  struct ParkedTimer {
    TimePoint due;
    std::uint64_t token = 0;
  };

  static std::uint64_t link_key(NodeId from, NodeId to) {
    // Directed pair packed for hashing; node ids in this codebase are small.
    return from.value() * 0x1'0000'0001ULL ^ (to.value() << 1);
  }

  [[nodiscard]] const LinkOverride* link(NodeId from, NodeId to) const {
    auto it = links_.find(link_key(from, to));
    return it == links_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] Duration delivery_delay(const Message& message);
  void enqueue_delivery(const Message& message, Duration delay);

  NetworkConfig config_;
  Rng rng_;
  TimePoint now_;
  std::uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::unordered_map<NodeId, NetworkNode*> nodes_;
  std::unordered_set<NodeId> crashed_;
  std::unordered_map<NodeId, std::vector<ParkedTimer>> parked_timers_;
  std::vector<std::pair<std::unordered_set<NodeId>,
                        std::unordered_set<NodeId>>>
      partitions_;
  std::unordered_map<std::uint64_t, LinkOverride> links_;
  std::unordered_map<NodeId, double> slow_;

  MetricsRegistry metrics_;
  mutable CounterSet counters_;  // lazily-synced view of metrics_
  Counter& messages_sent_;
  Counter& bytes_sent_;
  Counter& messages_delivered_;
  Counter& messages_duplicated_;
  Counter& dropped_crashed_;
  Counter& dropped_partition_;
  Counter& dropped_fabric_;
  Counter& dropped_unknown_;
  Counter& timers_parked_;
  Counter& timers_resumed_;
  LatencyHistogram& delivery_delay_us_;
};

}  // namespace stcn
