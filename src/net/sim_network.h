// Deterministic discrete-event network simulator.
//
// The "cluster" the framework runs on. Nodes register themselves, send
// messages, and set timers; the simulator delivers everything in virtual-time
// order. Link behaviour is modeled as
//
//     delivery_time = now + base_latency + jitter + wire_size / bandwidth
//
// with optional per-message drop probability and per-node failure state.
// Every byte and message is accounted in a CounterSet so benchmarks can
// report network volume exactly.
//
// Determinism: with a fixed seed, identical send sequences produce identical
// delivery schedules. Ties in delivery time are broken by send sequence
// number.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time.h"
#include "net/message.h"
#include "net/node.h"

namespace stcn {

/// Link-level behaviour knobs for the whole fabric.
struct NetworkConfig {
  Duration base_latency = Duration::micros(200);
  Duration latency_jitter = Duration::micros(50);  // uniform [0, jitter)
  double bandwidth_bytes_per_sec = 1.25e9;          // ~10 Gbit/s
  double drop_probability = 0.0;
  std::uint64_t seed = 42;
};

class SimNetwork {
 public:
  explicit SimNetwork(NetworkConfig config = {})
      : config_(config), rng_(config.seed) {}

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Attaches a node. The node must outlive the network (nodes are owned by
  /// the framework layer; the network only routes to them).
  void attach(NetworkNode& node) {
    STCN_CHECK(nodes_.emplace(node.node_id(), &node).second);
  }

  void detach(NodeId id) { nodes_.erase(id); }

  /// Sends a message; it will be delivered at a future virtual time unless
  /// the destination is crashed/unknown or the fabric drops it.
  void send(Message message);

  /// Schedules `handle_timer(token)` on `node` at now + delay.
  void set_timer(NodeId node, Duration delay, std::uint64_t token);

  /// Marks a node as crashed: messages to it are dropped (and counted).
  void crash(NodeId id) { crashed_.insert(id); }
  /// Heals a crashed node.
  void restart(NodeId id) { crashed_.erase(id); }
  [[nodiscard]] bool is_crashed(NodeId id) const {
    return crashed_.contains(id);
  }

  /// Runs the event loop until no events remain or `deadline` is reached.
  /// Returns the number of events processed.
  std::size_t run_until_idle(TimePoint deadline = TimePoint::max());

  /// Processes exactly one event (message delivery or timer). Returns false
  /// when the queue is empty. Useful for pumping until a condition holds
  /// when recurring timers keep the queue permanently non-empty.
  bool step();

  /// Runs until virtual time reaches `until` (events at exactly `until` are
  /// not processed).
  std::size_t run_until(TimePoint until) { return run_until_idle(until); }

  /// Advances virtual time to at least `t` even with no pending events.
  void advance_clock_to(TimePoint t) {
    if (t > now_) now_ = t;
  }

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] bool idle() const { return events_.empty(); }

  /// Transport accounting: messages_sent, messages_delivered,
  /// messages_dropped, bytes_sent.
  [[nodiscard]] const CounterSet& counters() const { return counters_; }
  CounterSet& counters() { return counters_; }

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t sequence = 0;  // tie-break for determinism
    bool is_timer = false;
    Message message;       // when !is_timer
    NodeId timer_node;     // when is_timer
    std::uint64_t timer_token = 0;

    // Min-heap on (at, sequence).
    friend bool operator>(const Event& a, const Event& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  [[nodiscard]] Duration transmission_delay(std::size_t wire_bytes) {
    double seconds =
        static_cast<double>(wire_bytes) / config_.bandwidth_bytes_per_sec;
    auto micros = static_cast<std::int64_t>(seconds * 1e6);
    Duration jitter = Duration::zero();
    if (config_.latency_jitter > Duration::zero()) {
      jitter = Duration::micros(static_cast<std::int64_t>(rng_.uniform_index(
          static_cast<std::uint64_t>(config_.latency_jitter.count_micros()))));
    }
    return config_.base_latency + jitter + Duration::micros(micros);
  }

  NetworkConfig config_;
  Rng rng_;
  TimePoint now_;
  std::uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::unordered_map<NodeId, NetworkNode*> nodes_;
  std::unordered_set<NodeId> crashed_;
  CounterSet counters_;
};

}  // namespace stcn
