// End-to-end synthetic trace generation.
//
// Ties together road network, mobility, and camera placement into a
// deterministic detection-event stream. This substitutes for real camera
// feeds: the framework consumes detection events, and any production video
// front-end reduces to exactly this schema (DESIGN.md §5).
//
// Detection model, per simulation tick and per (camera, object) pair with
// the object inside the camera's field of view:
//   * emitted with probability (1 - miss_rate), at most once per
//     `redetect_interval` for the same pair (mimicking tracker-side
//     deduplication of per-frame detections);
//   * position = true position + Gaussian noise;
//   * appearance = normalize(object's ground-truth embedding + Gaussian
//     noise), modeling an imperfect re-id feature extractor.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "trace/camera.h"
#include "trace/detection.h"
#include "trace/mobility.h"
#include "trace/road_network.h"

namespace stcn {

struct DetectionModelConfig {
  double miss_rate = 0.05;
  double position_noise_m = 1.5;
  double appearance_noise = 0.15;  // sigma per embedding dimension
  std::size_t feature_dim = 16;
  Duration redetect_interval = Duration::seconds(2);
  /// Fraction of cameras that fail permanently at a random time during
  /// the trace (hardware dies, lens gets painted over, ...). Failed
  /// cameras stop emitting; the record of when each failed is kept in
  /// Trace::camera_failures for evaluation.
  double camera_failure_fraction = 0.0;
};

struct TraceConfig {
  RoadNetworkConfig roads;
  CameraNetworkConfig cameras;
  MobilityConfig mobility;
  DetectionModelConfig detection;
  Duration duration = Duration::minutes(10);
  Duration tick = Duration::millis(500);
  std::uint64_t seed = 7;
};

/// Ground-truth sample: where an object really was at a tick.
struct TruthSample {
  TimePoint time;
  Point position;
};

/// A fully generated scenario: the world, the event stream, and the truth.
struct Trace {
  RoadNetwork roads;
  CameraNetwork cameras;
  std::vector<Detection> detections;  // sorted by (time, id)
  std::unordered_map<ObjectId, std::vector<TruthSample>> ground_truth;
  std::unordered_map<ObjectId, AppearanceFeature> true_appearance;
  /// Cameras that died mid-trace and when (see DetectionModelConfig).
  std::unordered_map<CameraId, TimePoint> camera_failures;
  TraceConfig config;
};

class TraceGenerator {
 public:
  /// Generates a complete trace. Deterministic in `config`.
  static Trace generate(const TraceConfig& config);

  /// Draws a random L2-normalized embedding.
  static AppearanceFeature random_embedding(Rng& rng, std::size_t dim);

  /// Applies detector noise to a ground-truth embedding.
  static AppearanceFeature noisy_embedding(Rng& rng,
                                           const AppearanceFeature& truth,
                                           double sigma);
};

}  // namespace stcn
