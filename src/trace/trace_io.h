// Detection-stream persistence.
//
// Saves and loads detection streams (and the ground truth needed for
// evaluation) in a simple length-prefixed binary container, so expensive
// scenarios can be generated once and replayed across benchmark runs — and
// so real deployments could feed recorded streams into the framework.
//
// File layout (little-endian):
//   magic "STCNTRC1" | u32 detection_count | detections...
//   | u32 truth_object_count | per object: object id, u32 n, samples...
#pragma once

#include <string>

#include "common/status.h"
#include "trace/generator.h"

namespace stcn {

/// The persisted subset of a Trace: the event stream plus ground truth.
struct RecordedTrace {
  std::vector<Detection> detections;
  std::unordered_map<ObjectId, std::vector<TruthSample>> ground_truth;
  std::unordered_map<ObjectId, AppearanceFeature> true_appearance;
};

/// Writes `trace`'s stream and ground truth to `path`.
Status save_trace(const Trace& trace, const std::string& path);
Status save_trace(const RecordedTrace& trace, const std::string& path);

/// Loads a stream previously written by save_trace.
Result<RecordedTrace> load_trace(const std::string& path);

}  // namespace stcn
