// City road network: the substrate objects move on.
//
// A Manhattan-style grid of intersections connected by straight road
// segments, with a fraction of segments randomly removed to create irregular
// blocks and detours (so trajectories are not trivially predictable).
// Provides shortest-path routing used by the mobility model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "common/status.h"

namespace stcn {

using RoadNodeIndex = std::uint32_t;

struct RoadNetworkConfig {
  std::uint32_t grid_cols = 16;
  std::uint32_t grid_rows = 16;
  double block_size_m = 120.0;    // distance between adjacent intersections
  double removal_fraction = 0.1;  // fraction of edges randomly removed
  std::uint64_t seed = 1;
};

class RoadNetwork {
 public:
  /// Builds the grid network; guaranteed connected (removal skips bridges
  /// by simply retrying the removal if it would disconnect the graph).
  static RoadNetwork build(const RoadNetworkConfig& config);

  [[nodiscard]] std::size_t node_count() const { return positions_.size(); }
  [[nodiscard]] Point node_position(RoadNodeIndex n) const {
    return positions_[n];
  }
  [[nodiscard]] const std::vector<RoadNodeIndex>& neighbors(
      RoadNodeIndex n) const {
    return adjacency_[n];
  }

  /// Bounding box of the whole network, with a margin so camera FOVs at
  /// border intersections stay inside the world.
  [[nodiscard]] Rect bounds(double margin = 100.0) const;

  /// Shortest path (Euclidean edge weights, Dijkstra) from `from` to `to`.
  /// Returns the node sequence including both endpoints; empty only if the
  /// nodes are disconnected (cannot happen for built networks).
  [[nodiscard]] std::vector<RoadNodeIndex> shortest_path(
      RoadNodeIndex from, RoadNodeIndex to) const;

  /// The polyline along a node path.
  [[nodiscard]] Polyline path_polyline(
      const std::vector<RoadNodeIndex>& path) const;

  [[nodiscard]] RoadNodeIndex random_node(Rng& rng) const {
    return static_cast<RoadNodeIndex>(rng.uniform_index(positions_.size()));
  }

  /// Total number of (undirected) road segments.
  [[nodiscard]] std::size_t edge_count() const;

 private:
  std::vector<Point> positions_;
  std::vector<std::vector<RoadNodeIndex>> adjacency_;
};

}  // namespace stcn
