#include "trace/trace_io.h"

#include <cstdio>
#include <memory>

namespace stcn {
namespace {

constexpr char kMagic[8] = {'S', 'T', 'C', 'N', 'T', 'R', 'C', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void encode_recorded(BinaryWriter& w, const RecordedTrace& trace) {
  for (char c : kMagic) w.write_u8(static_cast<std::uint8_t>(c));
  w.write_vector(trace.detections,
                 [](BinaryWriter& bw, const Detection& d) { serialize(bw, d); });
  w.write_u32(static_cast<std::uint32_t>(trace.ground_truth.size()));
  for (const auto& [object, samples] : trace.ground_truth) {
    w.write_id(object);
    w.write_u32(static_cast<std::uint32_t>(samples.size()));
    for (const TruthSample& s : samples) {
      w.write_time(s.time);
      w.write_double(s.position.x);
      w.write_double(s.position.y);
    }
  }
  w.write_u32(static_cast<std::uint32_t>(trace.true_appearance.size()));
  for (const auto& [object, feature] : trace.true_appearance) {
    w.write_id(object);
    w.write_u32(static_cast<std::uint32_t>(feature.values.size()));
    for (float v : feature.values) w.write_double(static_cast<double>(v));
  }
}

}  // namespace

Status save_trace(const RecordedTrace& trace, const std::string& path) {
  BinaryWriter w;
  encode_recorded(w, trace);
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) {
    return Status::unavailable("cannot open for write: " + path);
  }
  const auto& bytes = w.bytes();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file.get()) != bytes.size()) {
    return Status::internal("short write: " + path);
  }
  return Status::ok();
}

Status save_trace(const Trace& trace, const std::string& path) {
  RecordedTrace recorded;
  recorded.detections = trace.detections;
  recorded.ground_truth = trace.ground_truth;
  recorded.true_appearance = trace.true_appearance;
  return save_trace(recorded, path);
}

Result<RecordedTrace> load_trace(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    return Status::not_found("cannot open: " + path);
  }
  std::fseek(file.get(), 0, SEEK_END);
  long size = std::ftell(file.get());
  std::fseek(file.get(), 0, SEEK_SET);
  if (size < static_cast<long>(sizeof kMagic)) {
    return Status::invalid_argument("not a trace file (too short): " + path);
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (std::fread(bytes.data(), 1, bytes.size(), file.get()) != bytes.size()) {
    return Status::internal("short read: " + path);
  }

  BinaryReader r(bytes);
  for (char expected : kMagic) {
    if (r.read_u8() != static_cast<std::uint8_t>(expected)) {
      return Status::invalid_argument("bad magic: " + path);
    }
  }
  RecordedTrace trace;
  trace.detections = r.read_vector<Detection>(
      [](BinaryReader& br) { return deserialize_detection(br); });
  std::uint32_t truth_objects = r.read_u32();
  for (std::uint32_t i = 0; i < truth_objects && !r.failed(); ++i) {
    ObjectId object = r.read_id<ObjectIdTag>();
    std::uint32_t n = r.read_u32();
    auto& samples = trace.ground_truth[object];
    samples.reserve(n);
    for (std::uint32_t s = 0; s < n && !r.failed(); ++s) {
      TruthSample sample;
      sample.time = r.read_time();
      sample.position.x = r.read_double();
      sample.position.y = r.read_double();
      samples.push_back(sample);
    }
  }
  std::uint32_t appearance_objects = r.read_u32();
  for (std::uint32_t i = 0; i < appearance_objects && !r.failed(); ++i) {
    ObjectId object = r.read_id<ObjectIdTag>();
    std::uint32_t n = r.read_u32();
    auto& feature = trace.true_appearance[object];
    feature.values.reserve(n);
    for (std::uint32_t v = 0; v < n && !r.failed(); ++v) {
      feature.values.push_back(static_cast<float>(r.read_double()));
    }
  }
  if (r.failed()) {
    return Status::invalid_argument("corrupt trace file: " + path);
  }
  return trace;
}

}  // namespace stcn
