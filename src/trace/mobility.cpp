#include "trace/mobility.h"

#include <limits>

namespace stcn {

MobilityModel::MobilityModel(const RoadNetwork& roads,
                             const MobilityConfig& config)
    : roads_(roads), config_(config), rng_(config.seed) {
  STCN_CHECK(roads_.node_count() > 0);
  hotspots_.reserve(config_.hotspot_count);
  for (std::size_t i = 0; i < config_.hotspot_count; ++i) {
    hotspots_.push_back(roads_.random_node(rng_));
  }
  objects_.resize(config_.object_count);
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    ObjectState& obj = objects_[i];
    obj.rng = rng_.split(i + 1);
    obj.speed = obj.rng.lognormal(config_.speed_lognormal_mu,
                                  config_.speed_lognormal_sigma);
    RoadNodeIndex start = roads_.random_node(obj.rng);
    obj.position = roads_.node_position(start);
    obj.route.points = {obj.position};
    obj.route_length = 0.0;
    obj.arc_position = 0.0;
    // Stagger initial departures so objects do not all re-route in
    // lock-step.
    obj.dwell_until =
        TimePoint(static_cast<std::int64_t>(obj.rng.exponential(
            static_cast<double>(config_.dwell_mean.count_micros()))));
  }
}

RoadNodeIndex MobilityModel::pick_destination(ObjectState& obj,
                                              RoadNodeIndex from) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    RoadNodeIndex dest;
    if (!hotspots_.empty() && obj.rng.bernoulli(config_.hotspot_fraction)) {
      dest = hotspots_[obj.rng.uniform_index(hotspots_.size())];
    } else {
      dest = roads_.random_node(obj.rng);
    }
    if (dest != from) return dest;
  }
  return (from + 1) % static_cast<RoadNodeIndex>(roads_.node_count());
}

RoadNodeIndex MobilityModel::nearest_node(Point p) const {
  RoadNodeIndex best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < roads_.node_count(); ++i) {
    double d = squared_distance(p, roads_.node_position(
                                       static_cast<RoadNodeIndex>(i)));
    if (d < best_d) {
      best_d = d;
      best = static_cast<RoadNodeIndex>(i);
    }
  }
  return best;
}

double MobilityModel::dwell_factor_at(TimePoint t) const {
  if (config_.activity_period <= Duration::zero()) return 1.0;
  std::int64_t period = config_.activity_period.count_micros();
  std::int64_t phase = t.micros_since_origin() % period;
  if (phase < 0) phase += period;
  // First half of the period is "day" (active), second half "night".
  return phase * 2 < period ? 1.0 : config_.quiet_dwell_factor;
}

void MobilityModel::assign_new_trip(ObjectState& obj) {
  RoadNodeIndex from = nearest_node(obj.position);
  RoadNodeIndex dest = pick_destination(obj, from);
  auto path = roads_.shortest_path(from, dest);
  if (path.size() < 2) {
    obj.dwell_until = now_ + config_.dwell_mean;
    return;
  }
  obj.route = roads_.path_polyline(path);
  obj.route_length = obj.route.length();
  obj.arc_position = 0.0;
  obj.position = obj.route.points.front();
}

void MobilityModel::advance_to(TimePoint t) {
  if (t <= now_) return;
  for (auto& obj : objects_) {
    TimePoint cursor = now_;
    // An object may finish several trips within one advance window.
    while (cursor < t) {
      if (obj.dwell_until > cursor) {
        // Parked: skip dwell (possibly past t).
        if (obj.dwell_until >= t) {
          cursor = t;
          break;
        }
        cursor = obj.dwell_until;
        // Quiet phase: most wake-ups go back to sleep instead of starting
        // a trip — and the re-sleep is proportionally longer, so retries
        // do not leak trips into a long quiet phase.
        double factor = dwell_factor_at(cursor);
        if (factor > 1.0 && obj.rng.bernoulli(1.0 - 1.0 / factor)) {
          double resleep_mean =
              static_cast<double>(config_.dwell_mean.count_micros()) *
              std::max(1.0, factor / 4.0);
          obj.dwell_until =
              cursor + Duration::micros(static_cast<std::int64_t>(
                           obj.rng.exponential(resleep_mean)));
          continue;
        }
        assign_new_trip(obj);
        continue;
      }
      double remaining_m = obj.route_length - obj.arc_position;
      double budget_s = (t - cursor).to_seconds();
      double travel_m = obj.speed * budget_s;
      if (travel_m < remaining_m) {
        obj.arc_position += travel_m;
        obj.position = obj.route.at_arc_length(obj.arc_position);
        cursor = t;
      } else {
        // Reach the destination, then dwell.
        double used_s = obj.speed > 0 ? remaining_m / obj.speed : budget_s;
        cursor = cursor + Duration::micros(
                              static_cast<std::int64_t>(used_s * 1e6));
        obj.arc_position = obj.route_length;
        obj.position = obj.route.points.empty() ? obj.position
                                                : obj.route.points.back();
        obj.dwell_until =
            cursor + Duration::micros(static_cast<std::int64_t>(
                         obj.rng.exponential(static_cast<double>(
                             config_.dwell_mean.count_micros()))));
      }
    }
  }
  now_ = t;
}

}  // namespace stcn
