#include "trace/camera.h"

#include <cmath>

namespace stcn {

CameraNetwork CameraNetwork::place(const RoadNetwork& roads,
                                   const CameraNetworkConfig& config) {
  STCN_CHECK(roads.node_count() > 0);
  CameraNetwork net;
  net.cell_size_ = std::max(50.0, config.fov_range_m);
  Rng rng(config.seed);

  // Visit road nodes in a deterministic shuffled order so camera density is
  // spatially uniform at any count.
  std::vector<RoadNodeIndex> order(roads.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<RoadNodeIndex>(i);
  }
  rng.shuffle(order);

  net.cameras_.reserve(config.camera_count);
  for (std::size_t i = 0; i < config.camera_count; ++i) {
    RoadNodeIndex node = order[i % order.size()];
    Camera cam;
    cam.id = CameraId(i + 1);
    cam.mount_node = node;
    cam.fov.apex = roads.node_position(node);
    cam.fov.range = config.fov_range_m;
    cam.fov.half_angle = config.fov_half_angle_rad;
    const auto& nbrs = roads.neighbors(node);
    if (!nbrs.empty()) {
      RoadNodeIndex toward = nbrs[rng.uniform_index(nbrs.size())];
      Point d = roads.node_position(toward) - roads.node_position(node);
      cam.fov.heading = std::atan2(d.y, d.x);
    } else {
      cam.fov.heading = rng.uniform(-std::numbers::pi, std::numbers::pi);
    }
    net.cameras_.push_back(cam);
  }
  net.build_hash();
  return net;
}

void CameraNetwork::build_hash() {
  by_id_.clear();
  hash_.clear();
  world_ = Rect::empty();
  for (std::size_t i = 0; i < cameras_.size(); ++i) {
    const Camera& cam = cameras_[i];
    by_id_[cam.id] = i;
    Rect box = cam.fov.bounding_box();
    world_ = world_.union_with(box);
    CellKey lo = cell_of(box.min);
    CellKey hi = cell_of(box.max);
    for (std::int32_t cy = lo.cy; cy <= hi.cy; ++cy) {
      for (std::int32_t cx = lo.cx; cx <= hi.cx; ++cx) {
        hash_[{cx, cy}].push_back(i);
      }
    }
  }
}

const Camera& CameraNetwork::camera(CameraId id) const {
  auto it = by_id_.find(id);
  STCN_CHECK(it != by_id_.end());
  return cameras_[it->second];
}

std::vector<CameraId> CameraNetwork::cameras_seeing(Point p) const {
  std::vector<CameraId> out;
  auto it = hash_.find(cell_of(p));
  if (it == hash_.end()) return out;
  for (std::size_t idx : it->second) {
    if (cameras_[idx].fov.contains(p)) out.push_back(cameras_[idx].id);
  }
  return out;
}

}  // namespace stcn
