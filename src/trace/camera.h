// Camera network model: placement and visibility.
//
// Cameras sit at road intersections (the realistic placement for traffic /
// surveillance cameras), each watching a wedge-shaped field of view oriented
// along one of the incident road segments. A uniform spatial hash over
// camera bounding boxes answers "which cameras can see point p" without
// scanning the whole network.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "trace/road_network.h"

namespace stcn {

struct Camera {
  CameraId id;
  FieldOfView fov;
  /// Road node this camera is mounted at (for transition-graph learning).
  RoadNodeIndex mount_node = 0;
};

struct CameraNetworkConfig {
  std::size_t camera_count = 64;
  double fov_range_m = 60.0;
  double fov_half_angle_rad = 0.6;  // ~34 degrees half-width
  std::uint64_t seed = 2;
};

class CameraNetwork {
 public:
  /// Places `camera_count` cameras on distinct road nodes when possible
  /// (round-robin over nodes if there are more cameras than intersections),
  /// each oriented toward a random incident road direction.
  static CameraNetwork place(const RoadNetwork& roads,
                             const CameraNetworkConfig& config);

  [[nodiscard]] std::size_t size() const { return cameras_.size(); }
  [[nodiscard]] const std::vector<Camera>& cameras() const { return cameras_; }
  [[nodiscard]] const Camera& camera(CameraId id) const;
  [[nodiscard]] bool has_camera(CameraId id) const {
    return by_id_.contains(id);
  }

  /// All cameras whose field of view contains `p`.
  [[nodiscard]] std::vector<CameraId> cameras_seeing(Point p) const;

  /// World bounding box covering every camera's field of view.
  [[nodiscard]] Rect coverage_bounds() const { return world_; }

 private:
  struct CellKey {
    std::int32_t cx;
    std::int32_t cy;
    friend bool operator==(const CellKey&, const CellKey&) = default;
  };
  struct CellKeyHash {
    std::size_t operator()(const CellKey& k) const {
      return std::hash<std::int64_t>{}(
          (static_cast<std::int64_t>(k.cx) << 32) ^
          static_cast<std::uint32_t>(k.cy));
    }
  };

  [[nodiscard]] CellKey cell_of(Point p) const {
    return {static_cast<std::int32_t>(std::floor(p.x / cell_size_)),
            static_cast<std::int32_t>(std::floor(p.y / cell_size_))};
  }

  void build_hash();

  std::vector<Camera> cameras_;
  std::unordered_map<CameraId, std::size_t> by_id_;
  std::unordered_map<CellKey, std::vector<std::size_t>, CellKeyHash> hash_;
  double cell_size_ = 100.0;
  Rect world_ = Rect::empty();
};

}  // namespace stcn
