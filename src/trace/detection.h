// Detection events — the framework's unit of input.
//
// A detection is what a camera's on-board analytics emits when an object
// passes through its field of view: where, when, which camera, and an
// appearance feature vector describing what the object looked like. The
// ground-truth object id is carried for evaluation only; query code paths
// other than trajectory-by-id treat it as opaque.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/serialize.h"
#include "common/time.h"

namespace stcn {

/// Appearance descriptor: an L2-normalized embedding, as produced by a
/// re-identification feature extractor.
struct AppearanceFeature {
  std::vector<float> values;

  /// Cosine similarity in [-1, 1] (vectors are unit-norm by construction).
  [[nodiscard]] double similarity(const AppearanceFeature& other) const {
    double s = 0.0;
    std::size_t n = std::min(values.size(), other.values.size());
    for (std::size_t i = 0; i < n; ++i) {
      s += static_cast<double>(values[i]) * other.values[i];
    }
    return s;
  }

  void normalize() {
    double n2 = 0.0;
    for (float v : values) n2 += static_cast<double>(v) * v;
    if (n2 <= 0.0) return;
    auto inv = static_cast<float>(1.0 / std::sqrt(n2));
    for (float& v : values) v *= inv;
  }

  friend bool operator==(const AppearanceFeature&,
                         const AppearanceFeature&) = default;
};

struct Detection {
  DetectionId id;
  CameraId camera;
  ObjectId object;  // ground truth; for evaluation and trajectory-by-id
  TimePoint time;
  Point position;
  AppearanceFeature appearance;
  double confidence = 1.0;

  friend bool operator==(const Detection&, const Detection&) = default;
};

/// Exact encoded size of one detection: 3 ids + time (8 bytes each), two
/// position doubles, a u32 embedding length, the embedding as doubles, and
/// the confidence double. Batch encoders sum this to reserve() up front.
[[nodiscard]] inline std::size_t wire_size(const Detection& d) {
  return 8 * 3 + 8 + 8 * 2 + 4 + 8 * d.appearance.values.size() + 8;
}

inline void serialize(BinaryWriter& w, const Detection& d) {
  w.write_id(d.id);
  w.write_id(d.camera);
  w.write_id(d.object);
  w.write_time(d.time);
  w.write_double(d.position.x);
  w.write_double(d.position.y);
  w.write_u32(static_cast<std::uint32_t>(d.appearance.values.size()));
  for (float v : d.appearance.values) {
    w.write_double(static_cast<double>(v));
  }
  w.write_double(d.confidence);
}

inline Detection deserialize_detection(BinaryReader& r) {
  Detection d;
  d.id = r.read_id<DetectionIdTag>();
  d.camera = r.read_id<CameraIdTag>();
  d.object = r.read_id<ObjectIdTag>();
  d.time = r.read_time();
  d.position.x = r.read_double();
  d.position.y = r.read_double();
  std::uint32_t n = r.read_u32();
  d.appearance.values.reserve(n);
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
    d.appearance.values.push_back(static_cast<float>(r.read_double()));
  }
  d.confidence = r.read_double();
  return d;
}

}  // namespace stcn
