#include "trace/road_network.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace stcn {
namespace {

// Union-find used to check connectivity while removing edges.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<RoadNodeIndex>(i);
  }
  RoadNodeIndex find(RoadNodeIndex x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(RoadNodeIndex a, RoadNodeIndex b) { parent_[find(a)] = find(b); }

 private:
  std::vector<RoadNodeIndex> parent_;
};

}  // namespace

RoadNetwork RoadNetwork::build(const RoadNetworkConfig& config) {
  STCN_CHECK(config.grid_cols >= 2 && config.grid_rows >= 2);
  RoadNetwork net;
  const std::uint32_t cols = config.grid_cols;
  const std::uint32_t rows = config.grid_rows;
  net.positions_.reserve(static_cast<std::size_t>(cols) * rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      net.positions_.push_back(
          {c * config.block_size_m, r * config.block_size_m});
    }
  }
  auto index = [cols](std::uint32_t r, std::uint32_t c) {
    return static_cast<RoadNodeIndex>(r * cols + c);
  };

  // Full grid edge list.
  std::vector<std::pair<RoadNodeIndex, RoadNodeIndex>> edges;
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(index(r, c), index(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(index(r, c), index(r + 1, c));
    }
  }

  // Remove a random fraction of edges while preserving connectivity: keep a
  // random spanning structure first (Kruskal over shuffled edges), then keep
  // enough of the remaining edges to meet the removal target.
  Rng rng(config.seed);
  rng.shuffle(edges);
  DisjointSet dsu(net.positions_.size());
  std::vector<std::pair<RoadNodeIndex, RoadNodeIndex>> kept;
  std::vector<std::pair<RoadNodeIndex, RoadNodeIndex>> optional;
  for (auto [a, b] : edges) {
    if (dsu.find(a) != dsu.find(b)) {
      dsu.unite(a, b);
      kept.push_back({a, b});
    } else {
      optional.push_back({a, b});
    }
  }
  auto target_removed =
      static_cast<std::size_t>(config.removal_fraction *
                               static_cast<double>(edges.size()));
  std::size_t removable = std::min(target_removed, optional.size());
  kept.insert(kept.end(), optional.begin(), optional.end() - removable);

  net.adjacency_.assign(net.positions_.size(), {});
  for (auto [a, b] : kept) {
    net.adjacency_[a].push_back(b);
    net.adjacency_[b].push_back(a);
  }
  for (auto& adj : net.adjacency_) std::sort(adj.begin(), adj.end());
  return net;
}

Rect RoadNetwork::bounds(double margin) const {
  if (positions_.empty()) return Rect::empty();
  Rect box{positions_.front(), positions_.front()};
  for (Point p : positions_) {
    box.min.x = std::min(box.min.x, p.x);
    box.min.y = std::min(box.min.y, p.y);
    box.max.x = std::max(box.max.x, p.x);
    box.max.y = std::max(box.max.y, p.y);
  }
  box.min.x -= margin;
  box.min.y -= margin;
  box.max.x += margin;
  box.max.y += margin;
  return box;
}

std::vector<RoadNodeIndex> RoadNetwork::shortest_path(RoadNodeIndex from,
                                                      RoadNodeIndex to) const {
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(positions_.size(), kInf);
  std::vector<RoadNodeIndex> prev(positions_.size(),
                                  std::numeric_limits<RoadNodeIndex>::max());
  using QueueEntry = std::pair<double, RoadNodeIndex>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[from] = 0.0;
  pq.emplace(0.0, from);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    for (RoadNodeIndex v : adjacency_[u]) {
      double nd = d + distance(positions_[u], positions_[v]);
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  if (dist[to] == kInf) return {};
  std::vector<RoadNodeIndex> path;
  for (RoadNodeIndex n = to;;) {
    path.push_back(n);
    if (n == from) break;
    n = prev[n];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Polyline RoadNetwork::path_polyline(
    const std::vector<RoadNodeIndex>& path) const {
  Polyline line;
  line.points.reserve(path.size());
  for (RoadNodeIndex n : path) line.points.push_back(positions_[n]);
  return line;
}

std::size_t RoadNetwork::edge_count() const {
  std::size_t degree_sum = 0;
  for (const auto& adj : adjacency_) degree_sum += adj.size();
  return degree_sum / 2;
}

}  // namespace stcn
