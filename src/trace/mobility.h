// Object mobility over the road network.
//
// Each moving object performs a random-trip walk: pick a random destination
// intersection, follow the shortest path at an object-specific speed, dwell
// briefly, repeat. Speeds are log-normal (a mix of pedestrians and
// vehicles); a configurable fraction of trips target a small set of
// "hotspot" destinations, producing the spatial load skew that makes
// partitioning interesting.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "trace/road_network.h"

namespace stcn {

struct MobilityConfig {
  std::size_t object_count = 100;
  double speed_lognormal_mu = 2.2;     // exp(2.2) ≈ 9 m/s median
  double speed_lognormal_sigma = 0.5;
  Duration dwell_mean = Duration::seconds(5);
  double hotspot_fraction = 0.3;   // fraction of trips to hotspot nodes
  std::size_t hotspot_count = 3;
  /// Diurnal activity cycle: when non-zero, each period's second half is
  /// "quiet" — a parked object only starts a new trip there with
  /// probability 1/quiet_dwell_factor per wake-up, producing the periodic
  /// activity patterns real camera networks see (rush hours, quiet
  /// nights). Trips already underway complete normally.
  Duration activity_period = Duration::zero();
  double quiet_dwell_factor = 8.0;
  std::uint64_t seed = 3;
};

class MobilityModel {
 public:
  MobilityModel(const RoadNetwork& roads, const MobilityConfig& config);

  /// Advances simulation time to `t` (monotonic; re-advancing to the past
  /// is a no-op). Object positions after the call reflect time `t`.
  ///
  /// Invariant: trajectories are independent of call granularity — many
  /// small advances land every object exactly where one big advance would
  /// (each object draws from its own random stream).
  void advance_to(TimePoint t);

  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }
  [[nodiscard]] ObjectId object_id(std::size_t i) const {
    return ObjectId(i + 1);
  }
  [[nodiscard]] Point position(std::size_t i) const {
    return objects_[i].position;
  }
  /// True while object i is parked (dwelling between trips). Cameras use
  /// motion-triggered analytics, so dwelling objects emit no detections.
  [[nodiscard]] bool is_dwelling(std::size_t i) const {
    return objects_[i].dwell_until > now_;
  }
  [[nodiscard]] TimePoint now() const { return now_; }

 private:
  struct ObjectState {
    Polyline route;
    double route_length = 0.0;
    double arc_position = 0.0;  // meters along route
    double speed = 1.0;         // m/s
    TimePoint dwell_until;      // parked until this time
    Point position;
    // Per-object stream: keeps trajectories independent of how callers
    // chunk advance_to (see MobilityModel invariant below).
    Rng rng{0};
  };

  void assign_new_trip(ObjectState& obj);
  [[nodiscard]] RoadNodeIndex pick_destination(ObjectState& obj,
                                               RoadNodeIndex from);
  /// Dwell-time multiplier at time `t` under the diurnal cycle (1.0 when
  /// the cycle is disabled or during the active half).
  [[nodiscard]] double dwell_factor_at(TimePoint t) const;
  [[nodiscard]] RoadNodeIndex nearest_node(Point p) const;

  const RoadNetwork& roads_;
  MobilityConfig config_;
  Rng rng_;
  TimePoint now_;
  std::vector<ObjectState> objects_;
  std::vector<RoadNodeIndex> hotspots_;
};

}  // namespace stcn
