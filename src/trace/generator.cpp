#include "trace/generator.h"

#include <algorithm>

namespace stcn {

AppearanceFeature TraceGenerator::random_embedding(Rng& rng,
                                                   std::size_t dim) {
  AppearanceFeature f;
  f.values.resize(dim);
  for (auto& v : f.values) v = static_cast<float>(rng.normal());
  f.normalize();
  return f;
}

AppearanceFeature TraceGenerator::noisy_embedding(
    Rng& rng, const AppearanceFeature& truth, double sigma) {
  AppearanceFeature f = truth;
  for (auto& v : f.values) v += static_cast<float>(rng.normal(0.0, sigma));
  f.normalize();
  return f;
}

Trace TraceGenerator::generate(const TraceConfig& config) {
  STCN_CHECK(config.tick > Duration::zero());
  Trace trace;
  trace.config = config;
  trace.roads = RoadNetwork::build(config.roads);
  trace.cameras = CameraNetwork::place(trace.roads, config.cameras);

  Rng rng(config.seed);
  Rng appearance_rng = rng.split(1);
  Rng detector_rng = rng.split(2);
  Rng failure_rng = rng.split(3);

  MobilityModel mobility(trace.roads, config.mobility);

  // Schedule permanent camera failures.
  if (config.detection.camera_failure_fraction > 0.0) {
    auto fail_count = static_cast<std::size_t>(
        config.detection.camera_failure_fraction *
        static_cast<double>(trace.cameras.size()));
    std::vector<CameraId> all_cams;
    for (const Camera& cam : trace.cameras.cameras()) {
      all_cams.push_back(cam.id);
    }
    failure_rng.shuffle(all_cams);
    for (std::size_t i = 0; i < fail_count && i < all_cams.size(); ++i) {
      auto at = static_cast<std::int64_t>(failure_rng.uniform_index(
          static_cast<std::uint64_t>(config.duration.count_micros())));
      trace.camera_failures[all_cams[i]] = TimePoint(at);
    }
  }

  for (std::size_t i = 0; i < mobility.object_count(); ++i) {
    ObjectId id = mobility.object_id(i);
    trace.true_appearance[id] =
        random_embedding(appearance_rng, config.detection.feature_dim);
  }

  // Tracker-side dedup state: last emission time per (camera, object),
  // keyed by a packed 64-bit pair (camera in the high bits).
  std::unordered_map<std::uint64_t, TimePoint> last_emit;
  auto pair_key = [](CameraId cam, ObjectId obj) {
    return (cam.value() << 32) ^ obj.value();
  };

  std::uint64_t next_detection_id = 1;
  for (TimePoint t = TimePoint::origin(); t < TimePoint::origin() + config.duration;
       t = t + config.tick) {
    mobility.advance_to(t);
    for (std::size_t i = 0; i < mobility.object_count(); ++i) {
      ObjectId obj = mobility.object_id(i);
      Point pos = mobility.position(i);
      trace.ground_truth[obj].push_back({t, pos});
      // Motion-triggered detection: parked objects emit nothing.
      if (mobility.is_dwelling(i)) continue;
      for (CameraId cam : trace.cameras.cameras_seeing(pos)) {
        if (auto dead = trace.camera_failures.find(cam);
            dead != trace.camera_failures.end() && t >= dead->second) {
          continue;  // this camera died earlier in the trace
        }
        std::uint64_t key = pair_key(cam, obj);
        auto it = last_emit.find(key);
        if (it != last_emit.end() &&
            t - it->second < config.detection.redetect_interval) {
          continue;
        }
        if (detector_rng.bernoulli(config.detection.miss_rate)) continue;
        last_emit[key] = t;

        Detection d;
        d.id = DetectionId(next_detection_id++);
        d.camera = cam;
        d.object = obj;
        d.time = t;
        d.position = {
            pos.x + detector_rng.normal(0.0, config.detection.position_noise_m),
            pos.y + detector_rng.normal(0.0, config.detection.position_noise_m)};
        d.appearance =
            noisy_embedding(detector_rng, trace.true_appearance[obj],
                            config.detection.appearance_noise);
        d.confidence = std::clamp(detector_rng.normal(0.9, 0.05), 0.0, 1.0);
        trace.detections.push_back(std::move(d));
      }
    }
  }

  std::sort(trace.detections.begin(), trace.detections.end(),
            [](const Detection& a, const Detection& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.id < b.id;
            });
  return trace;
}

}  // namespace stcn
