#include "obs/cost.h"

#include <algorithm>

namespace stcn {

void CostVector::append_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.key("rows_scanned");
  w.value(rows_scanned);
  w.key("rows_evaluated");
  w.value(rows_evaluated);
  w.key("rows_returned");
  w.value(rows_returned);
  w.key("blocks_scanned");
  w.value(blocks_scanned);
  w.key("blocks_skipped");
  w.value(blocks_skipped);
  w.key("bytes_out");
  w.value(bytes_out);
  w.key("bytes_in");
  w.value(bytes_in);
  w.key("scan_wall_us");
  w.value(scan_wall_us);
  w.key("sim_latency_us");
  w.value(sim_latency_us);
  w.key("morsels");
  w.value(morsels);
  w.key("fragments");
  w.value(fragments);
  w.key("hedges");
  w.value(hedges);
  w.key("retransmits");
  w.value(retransmits);
  w.end_object();
}

std::vector<TopKSketch::Row> TopKSketch::top() const {
  std::vector<Row> out = rows_;
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

ResourceLedger::ResourceLedger(ResourceLedgerConfig config)
    : config_(config),
      by_kind_(config.top_k),
      by_tenant_(config.top_k),
      by_camera_(config.top_k),
      c_queries_(metrics_.counter(
          "queries", "Queries the cost ledger has attributed")),
      c_rows_scanned_(metrics_.counter(
          "rows_scanned", "Index rows yielded across all attributed queries")),
      c_rows_evaluated_(metrics_.counter(
          "rows_evaluated",
          "Rows run through vectorized filter kernels, all queries")),
      c_rows_returned_(metrics_.counter(
          "rows_returned", "Rows in merged answers, all queries")),
      c_blocks_scanned_(metrics_.counter(
          "blocks_scanned", "Zone-map blocks examined, all queries")),
      c_blocks_skipped_(metrics_.counter(
          "blocks_skipped", "Zone-map blocks skipped wholesale, all queries")),
      c_bytes_out_(metrics_.counter(
          "bytes_out", "Query request wire bytes, coordinator to workers")),
      c_bytes_in_(metrics_.counter(
          "bytes_in", "Query response wire bytes, workers to coordinator")),
      c_scan_wall_us_(metrics_.counter(
          "scan_wall_us", "Worker kernel+scan wall microseconds, all queries")),
      c_morsels_(metrics_.counter(
          "morsels", "4096-row vectorized morsels, all queries")),
      c_fragments_(metrics_.counter(
          "fragments", "Query fragments sent (primary, hedge, and retry)")),
      c_hedges_(metrics_.counter(
          "hedges", "Speculative hedge fragments issued, all queries")),
      c_retransmits_(metrics_.counter(
          "retransmits",
          "Reliable-channel retransmits observed in query traces")) {}

void ResourceLedger::record(const CostRecord& rec) {
  ++queries_;
  totals_.add(rec.cost);
  by_kind_.update(rec.kind, rec.cost);
  by_tenant_.update("tenant:" + std::to_string(rec.tenant), rec.cost);
  if (rec.hottest_camera != CostRecord::kNoCamera) {
    by_camera_.update("camera:" + std::to_string(rec.hottest_camera),
                      rec.cost);
  }

  if (config_.recent_rows > 0) {
    if (recent_.size() < config_.recent_rows) {
      recent_.push_back(rec);
    } else {
      recent_[recent_head_] = rec;
      recent_head_ = (recent_head_ + 1) % config_.recent_rows;
    }
  }

  c_queries_.inc();
  c_rows_scanned_.add(rec.cost.rows_scanned);
  c_rows_evaluated_.add(rec.cost.rows_evaluated);
  c_rows_returned_.add(rec.cost.rows_returned);
  c_blocks_scanned_.add(rec.cost.blocks_scanned);
  c_blocks_skipped_.add(rec.cost.blocks_skipped);
  c_bytes_out_.add(rec.cost.bytes_out);
  c_bytes_in_.add(rec.cost.bytes_in);
  c_scan_wall_us_.add(rec.cost.scan_wall_us);
  c_morsels_.add(rec.cost.morsels);
  c_fragments_.add(rec.cost.fragments);
  c_hedges_.add(rec.cost.hedges);
  c_retransmits_.add(rec.cost.retransmits);
}

namespace {

void append_sketch(obs::JsonWriter& w, const TopKSketch& sketch) {
  w.begin_array();
  for (const TopKSketch::Row& r : sketch.top()) {
    w.begin_object();
    w.key("key");
    w.value(r.key);
    w.key("count");
    w.value(r.count);
    w.key("error");
    w.value(r.error);
    w.key("cost");
    r.cost.append_json(w);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

void ResourceLedger::append_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.key("queries");
  w.value(queries_);
  w.key("totals");
  totals_.append_json(w);
  w.key("by_kind");
  append_sketch(w, by_kind_);
  w.key("by_tenant");
  append_sketch(w, by_tenant_);
  w.key("by_camera");
  append_sketch(w, by_camera_);
  w.key("recent");
  w.begin_array();
  // Oldest-first walk of the ring.
  for (std::size_t i = 0; i < recent_.size(); ++i) {
    const CostRecord& rec =
        recent_[(recent_head_ + i) % recent_.size()];
    w.begin_object();
    w.key("request_id");
    w.value(rec.request_id);
    w.key("trace_id");
    w.value(rec.trace_id);
    w.key("kind");
    w.value(rec.kind);
    w.key("tenant");
    w.value(static_cast<std::uint64_t>(rec.tenant));
    if (rec.hottest_camera != CostRecord::kNoCamera) {
      w.key("hottest_camera");
      w.value(rec.hottest_camera);
    }
    w.key("partial");
    w.value(rec.partial);
    w.key("cost");
    rec.cost.append_json(w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string ResourceLedger::to_json() const {
  obs::JsonWriter w;
  append_json(w);
  return w.take();
}

}  // namespace stcn
