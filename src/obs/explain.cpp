#include "obs/explain.h"

#include <cstdio>

namespace stcn {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

const ExplainStage* QueryProfile::stage(const std::string& name) const {
  for (const ExplainStage& s : stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const ExplainStage*> QueryProfile::stages_named(
    const std::string& name) const {
  std::vector<const ExplainStage*> out;
  for (const ExplainStage& s : stages) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

double QueryProfile::worst_q_error() const {
  double worst = 0.0;
  for (const ExplainStage& s : stages) {
    double q = s.stage_q_error();
    if (q > worst) worst = q;
  }
  return worst;
}

std::uint64_t QueryProfile::total_pruned() const {
  std::uint64_t total = 0;
  for (const ExplainStage& s : stages) total += s.pruned;
  return total;
}

std::string QueryProfile::render() const {
  std::string out = "EXPLAIN " + description;
  out += "  latency=" + std::to_string(latency.count_micros()) + "us";
  out += "  request=" + std::to_string(request_id);
  if (trace_id != 0) out += "  trace=" + std::to_string(trace_id);
  out += '\n';
  for (const ExplainStage& s : stages) {
    out.append(2 + static_cast<std::size_t>(s.depth) * 2, ' ');
    out += "-> " + s.name;
    if (s.has_estimate()) {
      out += "  est=";
      append_double(out, s.estimated);
    }
    if (s.has_actual()) out += "  act=" + std::to_string(s.actual);
    if (s.has_estimate() && s.has_actual()) {
      out += "  qerr=";
      append_double(out, s.stage_q_error());
    }
    if (s.considered != 0) {
      out += "  considered=" + std::to_string(s.considered);
    }
    if (s.pruned != 0) out += "  pruned=" + std::to_string(s.pruned);
    if (s.sim_time != Duration::zero()) {
      out += "  sim=" + std::to_string(s.sim_time.count_micros()) + "us";
    }
    if (s.wall_us >= 0) out += "  wall=" + std::to_string(s.wall_us) + "us";
    if (!s.notes.empty()) {
      out += "  {";
      bool first = true;
      for (const auto& [k, v] : s.notes) {
        if (!first) out += ", ";
        first = false;
        out += k + "=" + v;
      }
      out += '}';
    }
    out += '\n';
  }
  if (stages_dropped != 0) {
    out += "  (+" + std::to_string(stages_dropped) + " stages dropped)\n";
  }
  return out;
}

void QueryProfile::append_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.key("description");
  w.value(description);
  w.key("request_id");
  w.value(request_id);
  w.key("trace_id");
  w.value(trace_id);
  w.key("started_us");
  w.value(started.micros_since_origin());
  w.key("latency_us");
  w.value(latency.count_micros());
  w.key("worst_q_error");
  w.value(worst_q_error());
  w.key("total_pruned");
  w.value(total_pruned());
  w.key("stages_dropped");
  w.value(stages_dropped);
  w.key("stages");
  w.begin_array();
  for (const ExplainStage& s : stages) {
    w.begin_object();
    w.key("name");
    w.value(s.name);
    w.key("depth");
    w.value(s.depth);
    if (s.has_estimate()) {
      w.key("estimated");
      w.value(s.estimated);
    }
    if (s.has_actual()) {
      w.key("actual");
      w.value(s.actual);
    }
    if (s.has_estimate() && s.has_actual()) {
      w.key("q_error");
      w.value(s.stage_q_error());
    }
    w.key("considered");
    w.value(s.considered);
    w.key("pruned");
    w.value(s.pruned);
    w.key("start_us");
    w.value(s.start.micros_since_origin());
    w.key("sim_us");
    w.value(s.sim_time.count_micros());
    if (s.wall_us >= 0) {
      w.key("wall_us");
      w.value(s.wall_us);
    }
    if (!s.notes.empty()) {
      w.key("notes");
      w.begin_object();
      for (const auto& [k, v] : s.notes) {
        w.key(k);
        w.value(v);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string QueryProfile::to_json() const {
  obs::JsonWriter w;
  append_json(w);
  return w.take();
}

void QueryProfiler::begin(std::string description, TimePoint now) {
  profile_ = QueryProfile{};
  profile_.description = std::move(description);
  profile_.started = now;
  last_time_ = now;
  depth_ = 0;
  active_ = true;
}

std::size_t QueryProfiler::open_stage(std::string name, TimePoint now) {
  if (!active_) return kNoStage;
  last_time_ = now;
  if (profile_.stages.size() >= kMaxStages) {
    ++profile_.stages_dropped;
    scratch_ = ExplainStage{};
    return kNoStage;
  }
  ExplainStage s;
  s.name = std::move(name);
  s.depth = depth_;
  s.start = now;
  profile_.stages.push_back(std::move(s));
  return profile_.stages.size() - 1;
}

void QueryProfiler::close_stage(std::size_t handle, TimePoint now) {
  last_time_ = now;
  if (handle == kNoStage || handle >= profile_.stages.size()) return;
  ExplainStage& s = profile_.stages[handle];
  s.sim_time = now - s.start;
}

QueryProfile QueryProfiler::finish(TimePoint now) {
  profile_.latency = now - profile_.started;
  active_ = false;
  depth_ = 0;
  return std::move(profile_);
}

}  // namespace stcn
