// Slow-query log: full span trees for queries that exceeded a threshold.
//
// The coordinator feeds it on query completion; the log snapshots the span
// tree from the shared tracer (so the trace survives even after the
// tracer's FIFO retention evicts it). Bounded: keeps the most recent
// `max_entries` slow queries.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/explain.h"
#include "obs/json.h"
#include "obs/tracer.h"

namespace stcn {

class SlowQueryLog {
 public:
  struct Entry {
    std::uint64_t trace_id = 0;
    std::uint64_t request_id = 0;
    std::string description;  // query kind + salient tags
    Duration latency;
    std::vector<SpanRecord> spans;
    /// EXPLAIN profile, when the query ran under Cluster::explain (the
    /// profile completes after the log entry, so it is attached post-hoc).
    std::optional<QueryProfile> profile;
    /// Compact resource-cost summary from the coordinator's ledger
    /// ("rows_eval=... bytes=..."), so a slow query names what it burned.
    std::string cost;
  };

  explicit SlowQueryLog(Duration threshold = Duration::millis(25),
                        std::size_t max_entries = 64)
      : threshold_(threshold), max_entries_(max_entries) {}

  [[nodiscard]] Duration threshold() const { return threshold_; }
  void set_threshold(Duration t) { threshold_ = t; }

  /// Records the query if it was slower than the threshold. Returns true
  /// when an entry was added.
  bool maybe_record(const Tracer& tracer, std::uint64_t trace_id,
                    std::uint64_t request_id, std::string description,
                    Duration latency, std::string cost = "") {
    if (latency < threshold_) return false;
    while (entries_.size() >= max_entries_) entries_.pop_front();
    Entry e;
    e.trace_id = trace_id;
    e.request_id = request_id;
    e.description = std::move(description);
    e.latency = latency;
    e.spans = tracer.trace(trace_id);
    e.cost = std::move(cost);
    entries_.push_back(std::move(e));
    return true;
  }

  /// Attaches an EXPLAIN profile to the entry recorded for its request id
  /// (searched newest-first). Returns false when no entry matches — the
  /// query was faster than the threshold.
  bool attach_profile(const QueryProfile& profile) {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->request_id == profile.request_id) {
        it->profile = profile;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] const std::deque<Entry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Human-readable dump: one span tree per slow query.
  [[nodiscard]] std::string render() const {
    std::string out;
    for (const Entry& e : entries_) {
      out += "slow query request=" + std::to_string(e.request_id) + " " +
             e.description + " latency=" +
             std::to_string(e.latency.count_micros()) + "us\n";
      if (!e.cost.empty()) out += "  cost: " + e.cost + "\n";
      out += SpanTree(e.spans).render();
      if (e.profile.has_value()) out += e.profile->render();
    }
    return out;
  }

  /// Machine-readable dump (array of {request, latency_us, spans}).
  [[nodiscard]] std::string to_json() const {
    obs::JsonWriter w;
    w.begin_array();
    for (const Entry& e : entries_) {
      w.begin_object();
      w.key("trace_id");
      w.value(e.trace_id);
      w.key("request_id");
      w.value(e.request_id);
      w.key("description");
      w.value(e.description);
      w.key("latency_us");
      w.value(e.latency.count_micros());
      if (!e.cost.empty()) {
        w.key("cost");
        w.value(e.cost);
      }
      w.key("spans");
      w.begin_array();
      for (const SpanRecord& span : e.spans) {
        w.begin_object();
        w.key("span_id");
        w.value(span.span_id);
        w.key("parent_id");
        w.value(span.parent_id);
        w.key("name");
        w.value(span.name);
        w.key("node");
        w.value(span.node);
        w.key("start_us");
        w.value(span.start.micros_since_origin());
        w.key("duration_us");
        w.value(span.duration().count_micros());
        for (const auto& [k, v] : span.tags) {
          w.key(k);
          w.value(v);
        }
        w.end_object();
      }
      w.end_array();
      if (e.profile.has_value()) {
        w.key("profile");
        e.profile->append_json(w);
      }
      w.end_object();
    }
    w.end_array();
    return w.take();
  }

 private:
  Duration threshold_;
  std::size_t max_entries_;
  std::deque<Entry> entries_;
};

}  // namespace stcn
