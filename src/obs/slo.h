// SLO engine: declarative service-level objectives evaluated as
// multi-window burn rates on the sim clock.
//
// An SloSpec names an objective — availability ("99% of queries complete
// non-partial") or a latency-threshold fraction ("95% of queries finish
// under 25ms") — over counters/histograms in one live MetricsRegistry
// source. Each sample pushes cumulative (good, total) into TimeSeries ring
// buffers (the HealthMonitor's ring type), then derives the error-budget
// burn rate over a short and a long window:
//
//   burn(W) = error_rate(W) / (1 - objective)
//
// where error_rate(W) is the fraction of bad events among those that
// happened inside the window. burn == 1 means the budget is being spent
// exactly at the rate that exhausts it by the end of the SLO period; the
// classic multi-window alert fires only when BOTH windows burn hot (the
// short window proves it is happening *now*, the long window proves it is
// not a blip), so the engine evaluates min(short_burn, long_burn) through
// the HealthMonitor's firing/resolved hysteresis — SLO alerts ride the
// same event log, rollup, and chaos assertions as every other rule.
#pragma once

#include <string>
#include <vector>

#include "common/time.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace stcn {

struct SloSpec {
  enum class Kind {
    kAvailability,  // good = total_metric - bad_metric (counters)
    kLatency,       // good = histogram mass at or below latency_threshold_us
  };

  std::string name;
  Kind kind = Kind::kAvailability;
  /// Registry source the metrics live in ("coordinator", "worker.3", ...).
  std::string source = "coordinator";
  /// kAvailability: total / bad counter names.
  std::string total_metric;
  std::string bad_metric;
  /// kLatency: histogram name + threshold defining "good".
  std::string latency_metric;
  double latency_threshold_us = 25'000.0;
  /// Target fraction of good events (0.99 ⇒ 1% error budget).
  double objective = 0.99;
  /// Multi-window burn evaluation (sim clock).
  Duration short_window = Duration::minutes(5);
  Duration long_window = Duration::hours(1);
  /// Fire when min(short_burn, long_burn) exceeds this.
  double burn_threshold = 1.0;
  int for_samples = 2;
  int resolve_samples = 2;
  AlertSeverity severity = AlertSeverity::kDegraded;

  /// Alert-rule name the engine registers with the monitor ("slo:<name>").
  [[nodiscard]] std::string rule_name() const { return "slo:" + name; }
};

/// The default objectives the framework ships: query availability (partial
/// answers spend the budget) and a query-latency fraction.
[[nodiscard]] std::vector<SloSpec> default_slos(
    double latency_threshold_us = 25'000.0,
    double availability_objective = 0.99,
    double latency_objective = 0.90);

class SloEngine {
 public:
  struct Status {
    std::string name;
    double objective = 0.0;
    double short_burn = 0.0;
    double long_burn = 0.0;
    /// min(short, long) — the value evaluated against burn_threshold.
    double burn = 0.0;
    double burn_threshold = 0.0;
    std::uint64_t good = 0;
    std::uint64_t total = 0;
    bool firing = false;
  };

  /// `monitor` hosts the hysteresis/event machinery and must outlive the
  /// engine; `ring_capacity` bounds each SLO's sample rings.
  explicit SloEngine(HealthMonitor& monitor, std::size_t ring_capacity = 128);

  /// Registers a registry the specs can reference by source name.
  void add_source(std::string name, const MetricsRegistry* registry);
  void add_slo(SloSpec spec);

  /// Samples every SLO at `now` (call alongside HealthMonitor::sample).
  void sample(TimePoint now);

  [[nodiscard]] std::size_t slo_count() const { return slos_.size(); }
  [[nodiscard]] std::vector<Status> status() const;

  /// Burn-rate ring for one SLO (short or long window), or nullptr.
  [[nodiscard]] const TimeSeries* burn_series(const std::string& name,
                                              bool short_window) const;

  /// [{"name", "objective", "burn_short", "burn_long", "firing",
  ///   "burn_series": [[t_us, short, long], ...]}, ...]
  void append_json(obs::JsonWriter& w) const;
  [[nodiscard]] std::string to_json() const;

 private:
  struct SloState {
    SloSpec spec;
    TimeSeries good;        // cumulative good count per sample
    TimeSeries total;       // cumulative total count per sample
    TimeSeries burn_short;  // derived burn rate per sample
    TimeSeries burn_long;
    double last_good = 0.0;
    double last_total = 0.0;

    explicit SloState(SloSpec s, std::size_t capacity)
        : spec(std::move(s)), good(capacity), total(capacity),
          burn_short(capacity), burn_long(capacity) {}
  };

  /// Cumulative (good, total) for `spec` right now; false when the source
  /// or metric is missing.
  bool read(const SloSpec& spec, double* good, double* total) const;

  /// Burn rate over `window`: deltas against the newest ring sample at
  /// least `window` old (or the oldest retained one).
  static double burn_over(const SloState& s, TimePoint now, Duration window,
                          double good_now, double total_now);

  HealthMonitor& monitor_;
  std::size_t ring_capacity_;
  std::vector<std::pair<std::string, const MetricsRegistry*>> sources_;
  std::vector<SloState> slos_;
};

}  // namespace stcn
