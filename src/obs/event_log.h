// Structured health-event log: bounded record of alert state transitions.
//
// The HealthMonitor appends one event per firing/resolved transition; the
// log keeps the most recent `capacity` events (plus a total counter, so
// tests can assert "exactly one transition happened" even after eviction).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/time.h"
#include "obs/json.h"

namespace stcn {

struct HealthEvent {
  TimePoint at;
  std::string kind;      // "firing" | "resolved"
  std::string rule;
  std::string source;    // registry the sample came from
  std::string subject;   // node the alert attributes to
  std::string severity;  // "degraded" | "suspect"
  double value = 0.0;    // observed value at the transition
  double threshold = 0.0;
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 256) : capacity_(capacity) {}

  void append(HealthEvent e) {
    ++total_;
    while (entries_.size() >= capacity_ && !entries_.empty()) {
      entries_.pop_front();
    }
    if (capacity_ > 0) entries_.push_back(std::move(e));
  }

  [[nodiscard]] const std::deque<HealthEvent>& events() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  /// Events ever appended (>= size() once eviction kicks in).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  void clear() { entries_.clear(); }

  /// Events matching kind and/or rule ("" matches anything).
  [[nodiscard]] std::size_t count(const std::string& kind,
                                  const std::string& rule = "") const {
    std::size_t n = 0;
    for (const HealthEvent& e : entries_) {
      if (!kind.empty() && e.kind != kind) continue;
      if (!rule.empty() && e.rule != rule) continue;
      ++n;
    }
    return n;
  }

  [[nodiscard]] std::string render() const {
    std::string out;
    for (const HealthEvent& e : entries_) {
      out += "[" + std::to_string(e.at.micros_since_origin()) + "us] " +
             e.kind + " " + e.rule + " subject=" + e.subject + " (" +
             e.severity + ") value=" + std::to_string(e.value) +
             " threshold=" + std::to_string(e.threshold) + "\n";
    }
    return out;
  }

  void append_json(obs::JsonWriter& w) const {
    w.begin_array();
    for (const HealthEvent& e : entries_) {
      w.begin_object();
      w.key("at_us");
      w.value(e.at.micros_since_origin());
      w.key("kind");
      w.value(e.kind);
      w.key("rule");
      w.value(e.rule);
      w.key("source");
      w.value(e.source);
      w.key("subject");
      w.value(e.subject);
      w.key("severity");
      w.value(e.severity);
      w.key("value");
      w.value(e.value);
      w.key("threshold");
      w.value(e.threshold);
      w.end_object();
    }
    w.end_array();
  }

 private:
  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::deque<HealthEvent> entries_;
};

}  // namespace stcn
