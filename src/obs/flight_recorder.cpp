#include "obs/flight_recorder.h"

#include <cmath>

namespace stcn {
namespace {

// Re-serializes a parsed JsonValue. Numbers that are exactly integral (the
// overwhelming majority in bundles: counts, ids, microsecond timestamps)
// are written through the integer paths so a parse → serialize pass is
// byte-stable for them; genuine fractions go through the shortest-double
// writer, which is itself idempotent.
void write_value(obs::JsonWriter& w, const obs::JsonValue& v) {
  switch (v.kind()) {
    case obs::JsonValue::Kind::kNull:
      w.raw_value("null");
      break;
    case obs::JsonValue::Kind::kBool:
      w.value(v.boolean());
      break;
    case obs::JsonValue::Kind::kNumber: {
      double d = v.number();
      if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 9.0e15) {
        if (d >= 0.0) {
          w.value(static_cast<std::uint64_t>(d));
        } else {
          w.value(static_cast<std::int64_t>(d));
        }
      } else {
        w.value(d);
      }
      break;
    }
    case obs::JsonValue::Kind::kString:
      w.value(v.string());
      break;
    case obs::JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [k, child] : v.object()) {
        w.key(k);
        write_value(w, child);
      }
      w.end_object();
      break;
    case obs::JsonValue::Kind::kArray:
      w.begin_array();
      for (const obs::JsonValue& child : v.array()) {
        write_value(w, child);
      }
      w.end_array();
      break;
  }
}

std::string reserialize(const obs::JsonValue& v) {
  obs::JsonWriter w;
  write_value(w, v);
  return w.take();
}

// Canonicalizes a raw JSON fragment into the parse-order-normalized form
// reserialize() produces (object keys sorted). Sections are normalized at
// freeze time so to_json → parse_bundle → to_json is byte-stable; an
// unparseable fragment is kept verbatim rather than dropped.
std::string normalize(std::string raw) {
  if (raw.empty()) return raw;
  obs::JsonValue v;
  if (!obs::JsonValue::parse(raw, v)) return raw;
  return reserialize(v);
}

void append_section(obs::JsonWriter& w, const char* key,
                    const std::string& raw) {
  if (raw.empty()) return;
  w.key(key);
  w.raw_value(raw);
}

}  // namespace

void PostmortemBundle::append_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.key("frozen_at_us");
  w.value(frozen_at.micros_since_origin());
  w.key("sequence");
  w.value(sequence);
  w.key("trigger");
  w.begin_object();
  w.key("kind");
  w.value(trigger.kind);
  w.key("rule");
  w.value(trigger.rule);
  w.key("subject");
  w.value(trigger.subject);
  w.key("severity");
  w.value(trigger.severity);
  w.key("value");
  w.value(trigger.value);
  w.key("threshold");
  w.value(trigger.threshold);
  w.end_object();
  append_section(w, "slo", slo_json);
  append_section(w, "cost", cost_json);
  append_section(w, "exemplars", exemplars_json);
  append_section(w, "events", events_json);
  append_section(w, "slow_queries", slow_queries_json);
  append_section(w, "config", config_json);
  append_section(w, "heat", heat_json);
  append_section(w, "frames", frames_json);
  w.end_object();
}

std::string PostmortemBundle::to_json() const {
  obs::JsonWriter w;
  append_json(w);
  return w.take();
}

bool parse_bundle(const std::string& json, PostmortemBundle& out) {
  obs::JsonValue root;
  if (!obs::JsonValue::parse(json, root) || !root.is_object()) return false;
  if (!root.has("frozen_at_us") || !root.has("trigger")) return false;
  const obs::JsonValue& trig = root.at("trigger");
  if (!trig.is_object()) return false;

  PostmortemBundle b;
  b.frozen_at =
      TimePoint(static_cast<std::int64_t>(root.at("frozen_at_us").number()));
  b.sequence = static_cast<std::uint64_t>(root.at("sequence").number());
  b.trigger.kind = trig.at("kind").string();
  b.trigger.rule = trig.at("rule").string();
  b.trigger.subject = trig.at("subject").string();
  b.trigger.severity = trig.at("severity").string();
  b.trigger.value = trig.at("value").number();
  b.trigger.threshold = trig.at("threshold").number();
  if (root.has("slo")) b.slo_json = reserialize(root.at("slo"));
  if (root.has("cost")) b.cost_json = reserialize(root.at("cost"));
  if (root.has("exemplars")) {
    b.exemplars_json = reserialize(root.at("exemplars"));
  }
  if (root.has("events")) b.events_json = reserialize(root.at("events"));
  if (root.has("slow_queries")) {
    b.slow_queries_json = reserialize(root.at("slow_queries"));
  }
  if (root.has("config")) b.config_json = reserialize(root.at("config"));
  if (root.has("heat")) b.heat_json = reserialize(root.at("heat"));
  if (root.has("frames")) b.frames_json = reserialize(root.at("frames"));
  out = std::move(b);
  return true;
}

const PostmortemBundle& FlightRecorder::freeze(TimePoint now,
                                               const FlightTrigger& trigger,
                                               Sections sections) {
  PostmortemBundle b;
  b.frozen_at = now;
  b.sequence = ++total_frozen_;
  b.trigger = trigger;
  b.slo_json = normalize(std::move(sections.slo_json));
  b.cost_json = normalize(std::move(sections.cost_json));
  b.exemplars_json = normalize(std::move(sections.exemplars_json));
  b.events_json = normalize(std::move(sections.events_json));
  b.slow_queries_json = normalize(std::move(sections.slow_queries_json));
  b.config_json = normalize(std::move(sections.config_json));
  b.heat_json = normalize(std::move(sections.heat_json));

  obs::JsonWriter w;
  w.begin_array();
  for (const Frame& f : frames_) {
    w.begin_object();
    w.key("at_us");
    w.value(f.at.micros_since_origin());
    if (!f.data_json.empty()) {
      w.key("data");
      w.raw_value(f.data_json);
    }
    w.end_object();
  }
  w.end_array();
  b.frames_json = normalize(w.take());

  while (bundles_.size() >= config_.max_bundles && !bundles_.empty()) {
    bundles_.pop_front();
  }
  bundles_.push_back(std::move(b));
  return bundles_.back();
}

std::string FlightRecorder::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("frames_retained");
  w.value(static_cast<std::uint64_t>(frames_.size()));
  w.key("bundles_frozen");
  w.value(total_frozen_);
  w.key("bundles");
  w.begin_array();
  for (const PostmortemBundle& b : bundles_) {
    b.append_json(w);
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace stcn
