// Trace-context propagation token.
//
// A TraceContext names one span of one distributed trace. It is the only
// piece of the observability layer that crosses a node boundary: every
// Message carries one (16 bytes on the wire when set), so a worker-side
// span can attach causally to the coordinator-side span that caused the
// message. Kept dependency-free so the net layer can embed it without
// pulling in the tracer itself.
#pragma once

#include <cstdint>

namespace stcn {

struct TraceContext {
  /// Identifies the whole trace (one end-to-end request). 0 = untraced.
  std::uint64_t trace_id = 0;
  /// Identifies the span that is "current" where this context was captured;
  /// spans started from this context become its children.
  std::uint64_t span_id = 0;

  [[nodiscard]] constexpr bool valid() const { return trace_id != 0; }

  friend constexpr bool operator==(const TraceContext&,
                                   const TraceContext&) = default;
};

}  // namespace stcn
