#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace stcn {

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[static_cast<std::size_t>(i)] == 0) continue;
    double before = static_cast<double>(seen);
    seen += buckets_[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) < target) continue;
    double lower = i == 0 ? 0.0 : bucket_upper_bound(i - 1);
    double upper = bucket_upper_bound(i);
    double in_bucket =
        static_cast<double>(buckets_[static_cast<std::size_t>(i)]);
    double frac = in_bucket > 0.0 ? (target - before) / in_bucket : 0.0;
    double v = lower + frac * (upper - lower);
    return std::clamp(v, min_, max_);
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0 && other.exemplars_.empty()) return;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  // Exemplars: the merged-in histogram is the fresher view (snapshots merge
  // live registries into a blank destination), so its exemplars win.
  if (!other.exemplars_.empty()) {
    if (exemplars_.empty()) exemplars_.resize(kBuckets);
    for (int i = 0; i < kBuckets; ++i) {
      const Exemplar& e = other.exemplars_[static_cast<std::size_t>(i)];
      if (e.set) exemplars_[static_cast<std::size_t>(i)] = e;
    }
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::sync_counters_into(CounterSet& sink) const {
  for (const auto& [name, c] : counters_) sink.set(name, c->value());
}

void MetricsRegistry::merge_into(MetricsRegistry& dst,
                                 const std::string& prefix) const {
  for (const auto& [name, c] : counters_) {
    dst.counter(prefix + name).add(c->value());
  }
  for (const auto& [name, g] : gauges_) {
    dst.gauge(prefix + name).add(g->value());
  }
  for (const auto& [name, h] : histograms_) {
    dst.histogram(prefix + name).merge(*h);
  }
  for (const auto& [name, help] : help_) dst.set_help(prefix + name, help);
  for (const auto& [name, labels] : labels_) {
    dst.set_labels(prefix + name, labels);
  }
}

void MetricsRegistry::import_counter_set(const CounterSet& counters,
                                         const std::string& prefix,
                                         const MetricsRegistry* handle_owner) {
  for (const auto& [name, value] : counters.all()) {
    if (handle_owner != nullptr) {
      if (handle_owner->counters_.contains(name)) continue;
      counter(prefix + name).add(value);
      // Eager counters carry no handle, but the owner registry may still
      // hold a help string for the name (set_help without registration).
      const std::string& h = handle_owner->help(name);
      if (!h.empty()) set_help(prefix + name, h);
      continue;
    }
    std::string full = prefix + name;
    if (counters_.contains(full)) continue;
    counter(full).add(value);
  }
}

namespace {

std::string prometheus_name(const std::string& prefix,
                            const std::string& name) {
  std::string out = prefix;
  out.reserve(prefix.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

// Label *names* share the metric-name charset ([a-zA-Z0-9_], no leading
// digit) but are NOT run through prometheus_name by the caller, so they get
// their own mangling — `partition-id` → `partition_id`, `0rank` → `_0rank`.
std::string prometheus_label_key(const std::string& key) {
  std::string out;
  out.reserve(key.size() + 1);
  if (!key.empty() && key.front() >= '0' && key.front() <= '9') out += '_';
  for (char c : key) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

// Label values per the text exposition format: backslash, double-quote, and
// line-feed must be escaped; everything else passes through.
void append_label_value(std::string& out, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

}  // namespace

std::string MetricsRegistry::to_prometheus(
    const std::string& metric_prefix) const {
  std::string out;
  auto append_help = [&](const std::string& name, const std::string& m) {
    const std::string& h = help(name);
    if (!h.empty()) out += "# HELP " + m + " " + h + "\n";
  };
  // `inner_labels(name)` renders the attached labels as `k="v",...` (no
  // braces) so histogram bucket lines can splice them next to `le`;
  // `label_block(name)` wraps them in braces for plain sample lines.
  auto inner_labels = [&](const std::string& name) {
    std::string b;
    for (const auto& [k, v] : labels(name)) {
      if (!b.empty()) b += ",";
      b += prometheus_label_key(k);
      b += "=\"";
      append_label_value(b, v);
      b += "\"";
    }
    return b;
  };
  auto label_block = [&](const std::string& name) {
    std::string inner = inner_labels(name);
    return inner.empty() ? inner : "{" + inner + "}";
  };
  for (const auto& [name, c] : counters_) {
    std::string m = prometheus_name(metric_prefix, name);
    append_help(name, m);
    out += "# TYPE " + m + " counter\n";
    out += m + label_block(name) + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    std::string m = prometheus_name(metric_prefix, name);
    append_help(name, m);
    out += "# TYPE " + m + " gauge\n";
    out += m + label_block(name) + " ";
    append_number(out, g->value());
    out += "\n";
  }
  for (const auto& [name, h] : histograms_) {
    std::string m = prometheus_name(metric_prefix, name);
    append_help(name, m);
    out += "# TYPE " + m + " histogram\n";
    std::string inner = inner_labels(name);
    std::string bucket_prefix =
        inner.empty() ? m + "_bucket{le=\"" : m + "_bucket{" + inner +
                                                  ",le=\"";
    std::uint64_t cumulative = 0;
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      if (h->bucket(i) == 0) continue;  // sparse: skip empty buckets
      cumulative += h->bucket(i);
      out += bucket_prefix;
      append_number(out, LatencyHistogram::bucket_upper_bound(i));
      out += "\"} " + std::to_string(cumulative);
      // OpenMetrics-style exemplar: the bucket's pinned trace.
      if (const Exemplar* e = h->exemplar(i)) {
        out += " # {trace_id=\"" + std::to_string(e->trace_id) + "\"} ";
        append_number(out, e->value);
      }
      out += "\n";
    }
    out += bucket_prefix + "+Inf\"} " + std::to_string(h->count()) + "\n";
    out += m + "_sum" + label_block(name) + " ";
    append_number(out, h->sum());
    out += "\n" + m + "_count" + label_block(name) + " " +
           std::to_string(h->count()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name);
    w.value(c->value());
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name);
    w.value(g->value());
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(h->count());
    w.key("sum");
    w.value(h->sum());
    w.key("min");
    w.value(h->min());
    w.key("max");
    w.value(h->max());
    w.key("p50");
    w.value(h->p50());
    w.key("p95");
    w.value(h->p95());
    w.key("p99");
    w.value(h->p99());
    w.key("buckets");
    w.begin_array();
    // Sparse [index, count] pairs keep the dump small.
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      if (h->bucket(i) == 0) continue;
      w.begin_array();
      w.value(i);
      w.value(h->bucket(i));
      w.end_array();
    }
    w.end_array();
    if (h->exemplar_count() > 0) {
      w.key("exemplars");
      w.begin_array();
      // Sparse [bucket, trace_id, value, summary] rows.
      for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
        const Exemplar* e = h->exemplar(i);
        if (e == nullptr) continue;
        w.begin_array();
        w.value(i);
        w.value(e->trace_id);
        w.value(e->value);
        w.value(e->summary);
        w.end_array();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();
  // Emitted only when any metric carries labels, so label-free registries
  // keep their historical byte-exact JSON form.
  if (!labels_.empty()) {
    w.key("labels");
    w.begin_object();
    for (const auto& [name, labels] : labels_) {
      w.key(name);
      w.begin_object();
      for (const auto& [k, v] : labels) {
        w.key(k);
        w.value(v);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();
  return w.take();
}

bool metrics_registry_from_json(const std::string& json,
                                MetricsRegistry& out) {
  obs::JsonValue root;
  if (!obs::JsonValue::parse(json, root) || !root.is_object()) return false;
  for (const auto& [name, v] : root.at("counters").object()) {
    if (!v.is_number()) return false;
    out.counter(name).add(static_cast<std::uint64_t>(v.number()));
  }
  for (const auto& [name, v] : root.at("gauges").object()) {
    if (!v.is_number()) return false;
    out.gauge(name).set(v.number());
  }
  for (const auto& [name, v] : root.at("histograms").object()) {
    if (!v.is_object()) return false;
    LatencyHistogram& h = out.histogram(name);
    for (const auto& pair : v.at("buckets").array()) {
      if (!pair.is_array() || pair.array().size() != 2) return false;
      int idx = static_cast<int>(pair.array()[0].number());
      if (idx < 0 || idx >= LatencyHistogram::kBuckets) return false;
      h.restore_bucket(idx,
                       static_cast<std::uint64_t>(pair.array()[1].number()));
    }
    if (h.count() > 0) {
      h.restore_summary(v.at("sum").number(), v.at("min").number(),
                        v.at("max").number());
    }
    if (v.has("exemplars")) {
      for (const auto& row : v.at("exemplars").array()) {
        if (!row.is_array() || row.array().size() != 4) return false;
        h.set_exemplar(row.array()[2].number(),
                       static_cast<std::uint64_t>(row.array()[1].number()),
                       row.array()[3].string());
      }
    }
  }
  if (root.has("labels")) {
    for (const auto& [name, ls] : root.at("labels").object()) {
      if (!ls.is_object()) return false;
      std::map<std::string, std::string> parsed;
      for (const auto& [k, v] : ls.object()) {
        if (!v.is_string()) return false;
        parsed[k] = v.string();
      }
      out.set_labels(name, std::move(parsed));
    }
  }
  return true;
}

}  // namespace stcn
