#include "obs/heat.h"

#include <algorithm>
#include <cstdio>

namespace stcn {

std::map<WorkerId, double> HeatMapSnapshot::worker_loads(
    TimePoint now) const {
  std::map<WorkerId, double> loads;
  for (const auto& [p, e] : entries_) {
    loads[e.owner] += e.load.delta_over(now, config_.window);
  }
  return loads;
}

HeatMapSnapshot::Skew HeatMapSnapshot::skew(TimePoint now,
                                            const PartitionMap* map) const {
  Skew s;
  if (entries_.empty()) return s;

  std::vector<double> loads;
  loads.reserve(entries_.size());
  bool first = true;
  for (const auto& [p, e] : entries_) {
    double load = e.load.delta_over(now, config_.window);
    loads.push_back(load);
    if (first || load > s.hottest_load) {
      s.hottest = p;
      s.hottest_load = load;
    }
    if (first || load < s.coldest_load) {
      s.coldest = p;
      s.coldest_load = load;
    }
    first = false;
  }
  // The alertable rollups only exist above the activity floor: trickle
  // traffic (a few rows in the window) produces wild-looking ratios that
  // mean nothing operationally.
  if (s.hottest_load >= config_.min_alert_load) {
    s.load_relative_stddev = relative_stddev(loads);
    // Floor the denominator at one row of work so an idle partition reads
    // as "ratio = hottest load" rather than dividing by zero.
    s.hot_cold_ratio = s.hottest_load / std::max(s.coldest_load, 1.0);
  }

  std::map<WorkerId, double> per_worker;
  for (const auto& [p, e] : entries_) {
    per_worker[e.owner] +=
        e.load.delta_over(now, config_.window);
  }
  std::vector<double> worker_loads;
  worker_loads.reserve(per_worker.size());
  for (const auto& [w, load] : per_worker) worker_loads.push_back(load);
  s.scan_gini = gini(std::move(worker_loads));

  if (map != nullptr && map->partition_count() > 0) {
    double replicas = 0.0;
    for (const auto& [p, e] : entries_) {
      if (p.value() >= map->partition_count()) continue;
      replicas += map->has_distinct_backup(p) ? 2.0 : 1.0;
    }
    s.replicate_factor = replicas / static_cast<double>(entries_.size());
  }
  return s;
}

std::string HeatMapSnapshot::render(TimePoint now) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-6s %-7s %12s %12s %12s %10s %12s\n",
                "part", "owner", "load(win)", "rate/s", "ingested",
                "frags", "mem_bytes");
  out += line;
  for (const auto& [p, e] : entries_) {
    std::snprintf(line, sizeof(line),
                  "p%-5llu w%-6llu %12.0f %12.1f %12llu %10llu %12llu\n",
                  static_cast<unsigned long long>(p.value()),
                  static_cast<unsigned long long>(e.owner.value()),
                  e.load.delta_over(now, config_.window),
                  e.heat.ewma_load_per_s,
                  static_cast<unsigned long long>(e.heat.ingested_rows),
                  static_cast<unsigned long long>(e.heat.fragments_served),
                  static_cast<unsigned long long>(e.heat.store_memory_bytes));
    out += line;
  }
  return out;
}

void HeatMapSnapshot::append_json(obs::JsonWriter& w, TimePoint now) const {
  Skew s = skew(now);
  w.begin_object();
  w.key("as_of_us");
  w.value(now.micros_since_origin());
  w.key("window_us");
  w.value(config_.window.count_micros());
  w.key("load_relative_stddev");
  w.value(s.load_relative_stddev);
  w.key("hot_cold_ratio");
  w.value(s.hot_cold_ratio);
  w.key("scan_gini");
  w.value(s.scan_gini);
  w.key("partitions");
  w.begin_array();
  for (const auto& [p, e] : entries_) {
    w.begin_object();
    w.key("partition");
    w.value(p.value());
    w.key("owner");
    w.value(e.owner.value());
    w.key("windowed_load");
    w.value(e.load.delta_over(now, config_.window));
    w.key("ewma_load_per_s");
    w.value(e.heat.ewma_load_per_s);
    w.key("ingested_rows");
    w.value(e.heat.ingested_rows);
    w.key("rows_evaluated");
    w.value(e.heat.rows_evaluated);
    w.key("rows_selected");
    w.value(e.heat.rows_selected);
    w.key("blocks_scanned");
    w.value(e.heat.blocks_scanned);
    w.key("blocks_skipped");
    w.value(e.heat.blocks_skipped);
    w.key("fragments_served");
    w.value(e.heat.fragments_served);
    w.key("wire_bytes_out");
    w.value(e.heat.wire_bytes_out);
    w.key("store_memory_bytes");
    w.value(e.heat.store_memory_bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string HeatMapSnapshot::to_json(TimePoint now) const {
  obs::JsonWriter w;
  append_json(w, now);
  return w.take();
}

// ------------------------------------------------------ placement advisor

const char* placement_kind_name(PlacementRecommendation::Kind k) {
  switch (k) {
    case PlacementRecommendation::Kind::kMigrate:
      return "migrate";
    case PlacementRecommendation::Kind::kSplit:
      return "split";
    case PlacementRecommendation::Kind::kMerge:
      return "merge";
  }
  return "unknown";
}

namespace {

double stddev_of(const std::map<WorkerId, double>& loads) {
  std::vector<double> xs;
  xs.reserve(loads.size());
  double mean = 0.0;
  for (const auto& [w, load] : loads) {
    xs.push_back(load);
    mean += load;
  }
  if (xs.empty()) return 0.0;
  mean /= static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

WorkerId least_loaded_except(const std::map<WorkerId, double>& loads,
                             WorkerId except) {
  WorkerId best;
  bool found = false;
  for (const auto& [w, load] : loads) {
    if (w == except) continue;
    if (!found || load < loads.at(best)) {
      best = w;
      found = true;
    }
  }
  return found ? best : except;
}

}  // namespace

std::vector<PlacementRecommendation> PlacementAdvisor::advise(
    const HeatMapSnapshot& snapshot, const PartitionMap& map, TimePoint now,
    PlacementAdvisorConfig config) {
  std::vector<PlacementRecommendation> recs;
  if (snapshot.empty()) return recs;

  // Working copies: per-partition windowed load + simulated owner, and the
  // per-worker load vector every projection is evaluated on. Every worker
  // in the map participates (an idle worker is headroom the advisor should
  // use), plus any reporter the map does not know about.
  std::map<PartitionId, double> part_load;
  std::map<PartitionId, WorkerId> owner;
  std::map<WorkerId, double> worker_load;
  for (std::size_t p = 0; p < map.partition_count(); ++p) {
    worker_load[map.primary(PartitionId(p))] += 0.0;
    worker_load[map.backup(PartitionId(p))] += 0.0;
  }
  double mean_part_load = 0.0;
  for (const auto& [p, e] : snapshot.entries()) {
    double load = snapshot.windowed_load(p, now);
    // Trust the map's primary for placement when it knows the partition
    // (the reporter may be a backup replica); fall back to the reporter.
    WorkerId placed = p.value() < map.partition_count()
                          ? map.primary(p)
                          : e.owner;
    part_load[p] = load;
    owner[p] = placed;
    worker_load[placed] += load;
    mean_part_load += load;
  }
  mean_part_load /= static_cast<double>(part_load.size());

  while (recs.size() < config.max_recommendations) {
    double before = stddev_of(worker_load);
    if (before <= 0.0) break;

    PlacementRecommendation best;
    bool found = false;
    auto consider = [&](PlacementRecommendation cand,
                        const std::map<WorkerId, double>& projected) {
      cand.stddev_before = before;
      cand.stddev_after = stddev_of(projected);
      if (cand.improvement() < config.min_improvement) return;
      if (!found || cand.improvement() > best.improvement()) {
        best = cand;
        found = true;
      }
    };

    for (const auto& [p, load] : part_load) {
      if (load <= 0.0) continue;
      WorkerId from = owner.at(p);
      WorkerId to = least_loaded_except(worker_load, from);
      if (to == from) continue;

      // Migrate: the whole partition moves to the least-loaded worker.
      {
        std::map<WorkerId, double> projected = worker_load;
        projected[from] -= load;
        projected[to] += load;
        PlacementRecommendation cand;
        cand.kind = PlacementRecommendation::Kind::kMigrate;
        cand.partition = p;
        cand.from = from;
        cand.to = to;
        cand.load = load;
        consider(cand, projected);
      }
      // Split: a partition much hotter than the mean halves in place, one
      // half landing on the least-loaded worker. Finer-grained than a
      // migrate when one partition dominates its whole worker.
      if (load > config.split_threshold * mean_part_load) {
        std::map<WorkerId, double> projected = worker_load;
        projected[from] -= load / 2.0;
        projected[to] += load / 2.0;
        PlacementRecommendation cand;
        cand.kind = PlacementRecommendation::Kind::kSplit;
        cand.partition = p;
        cand.from = from;
        cand.to = to;
        cand.load = load / 2.0;
        consider(cand, projected);
      }
    }

    // Merge: co-locate two near-idle partitions (the colder one moves to
    // the other's worker). Mostly about shrinking placement metadata; it
    // only surfaces when it also clears the improvement bar.
    {
      PartitionId cold_a, cold_b;
      double load_a = 0.0, load_b = 0.0;
      bool have_a = false, have_b = false;
      for (const auto& [p, load] : part_load) {
        if (load >= config.merge_threshold * mean_part_load) continue;
        if (!have_a || load < load_a) {
          cold_b = cold_a;
          load_b = load_a;
          have_b = have_a;
          cold_a = p;
          load_a = load;
          have_a = true;
        } else if (!have_b || load < load_b) {
          cold_b = p;
          load_b = load;
          have_b = true;
        }
      }
      if (have_a && have_b && owner.at(cold_a) != owner.at(cold_b)) {
        std::map<WorkerId, double> projected = worker_load;
        projected[owner.at(cold_a)] -= load_a;
        projected[owner.at(cold_b)] += load_a;
        PlacementRecommendation cand;
        cand.kind = PlacementRecommendation::Kind::kMerge;
        cand.partition = cold_a;
        cand.other = cold_b;
        cand.from = owner.at(cold_a);
        cand.to = owner.at(cold_b);
        cand.load = load_a;
        consider(cand, projected);
      }
    }

    if (!found) break;

    // Apply the winner to the working copies so the next round compounds.
    switch (best.kind) {
      case PlacementRecommendation::Kind::kMigrate:
      case PlacementRecommendation::Kind::kMerge:
        worker_load[best.from] -= best.load;
        worker_load[best.to] += best.load;
        owner[best.partition] = best.to;
        break;
      case PlacementRecommendation::Kind::kSplit:
        worker_load[best.from] -= best.load;
        worker_load[best.to] += best.load;
        part_load[best.partition] -= best.load;
        break;
    }
    recs.push_back(best);
  }
  return recs;
}

std::string PlacementAdvisor::render(
    const std::vector<PlacementRecommendation>& recs) {
  if (recs.empty()) return "placement advisor: no beneficial moves\n";
  std::string out;
  char line[192];
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const PlacementRecommendation& r = recs[i];
    if (r.kind == PlacementRecommendation::Kind::kMerge) {
      std::snprintf(line, sizeof(line),
                    "#%zu merge   p%llu+p%llu  w%llu->w%llu  load %.0f  "
                    "stddev %.1f->%.1f (-%.1f%%)\n",
                    i + 1,
                    static_cast<unsigned long long>(r.partition.value()),
                    static_cast<unsigned long long>(r.other.value()),
                    static_cast<unsigned long long>(r.from.value()),
                    static_cast<unsigned long long>(r.to.value()), r.load,
                    r.stddev_before, r.stddev_after,
                    r.improvement() * 100.0);
    } else {
      std::snprintf(line, sizeof(line),
                    "#%zu %-7s p%llu  w%llu->w%llu  load %.0f  "
                    "stddev %.1f->%.1f (-%.1f%%)\n",
                    i + 1, placement_kind_name(r.kind),
                    static_cast<unsigned long long>(r.partition.value()),
                    static_cast<unsigned long long>(r.from.value()),
                    static_cast<unsigned long long>(r.to.value()), r.load,
                    r.stddev_before, r.stddev_after,
                    r.improvement() * 100.0);
    }
    out += line;
  }
  return out;
}

void PlacementAdvisor::append_json(
    obs::JsonWriter& w, const std::vector<PlacementRecommendation>& recs) {
  w.begin_array();
  for (const PlacementRecommendation& r : recs) {
    w.begin_object();
    w.key("kind");
    w.value(placement_kind_name(r.kind));
    w.key("partition");
    w.value(r.partition.value());
    if (r.kind == PlacementRecommendation::Kind::kMerge) {
      w.key("merge_with");
      w.value(r.other.value());
    }
    w.key("from");
    w.value(r.from.value());
    w.key("to");
    w.value(r.to.value());
    w.key("load");
    w.value(r.load);
    w.key("stddev_before");
    w.value(r.stddev_before);
    w.key("stddev_after");
    w.value(r.stddev_after);
    w.key("improvement");
    w.value(r.improvement());
    w.end_object();
  }
  w.end_array();
}

std::string PlacementAdvisor::to_json(
    const std::vector<PlacementRecommendation>& recs) {
  obs::JsonWriter w;
  append_json(w, recs);
  return w.take();
}

}  // namespace stcn
