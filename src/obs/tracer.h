// Per-query distributed tracer over the simulation clock.
//
// One Tracer instance is shared by every node of a simulated cluster (the
// sim is single-threaded, so no locking). Spans form a tree per trace:
//
//   gateway.execute                        (client-facing entry)
//   └─ coordinator.fanout                  (scatter-gather)
//      ├─ fragment {worker=3}              (send → response, per worker)
//      │  ├─ net.retransmit {attempt=2}    (reliable-channel retry)
//      │  └─ worker.query                  (worker-side, via Message header)
//      │     ├─ worker.scan {partition=7}
//      │     └─ worker.serialize
//      └─ fragment {worker=5, hedge=true}  (speculative re-issue)
//
// Span timestamps are virtual (sim-clock) time, so a span's duration is the
// latency the distributed system actually modeled (network, retries,
// timeouts). Worker-side compute is instantaneous in virtual time; spans
// carry a `wall_us` tag for real compute cost where it matters.
//
// Retention is bounded: the tracer keeps the most recent `max_traces`
// traces (FIFO eviction), so long benches cannot grow memory without bound.
// Export: Chrome trace-event JSON (load in chrome://tracing or Perfetto).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/trace_context.h"

namespace stcn {

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;
  std::uint64_t node = 0;  // NodeId value of the emitting node
  TimePoint start;
  TimePoint end;
  bool finished = false;
  std::vector<std::pair<std::string, std::string>> tags;

  [[nodiscard]] Duration duration() const { return end - start; }
  [[nodiscard]] bool has_tag(const std::string& key,
                             const std::string& value) const {
    for (const auto& [k, v] : tags) {
      if (k == key && v == value) return true;
    }
    return false;
  }
};

struct TracerConfig {
  /// Traces retained; the oldest is evicted when a new trace would exceed
  /// this. 0 disables tracing entirely (every call becomes a no-op).
  std::size_t max_traces = 512;
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {}) : config_(config) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const { return config_.max_traces > 0; }

  /// Starts a new trace with a root span.
  TraceContext start_trace(std::string name, std::uint64_t node,
                           TimePoint now);

  /// Starts a child span of `parent`. An invalid parent starts a fresh
  /// trace (so call sites need no special casing).
  TraceContext start_span(std::string name, TraceContext parent,
                          std::uint64_t node, TimePoint now);

  /// Attaches a key/value tag to an open or finished span.
  void tag(TraceContext ctx, std::string key, std::string value);

  void end_span(TraceContext ctx, TimePoint now);

  /// Zero-duration annotation span (retransmits, drops): start == end.
  /// Returns the span's context so callers can tag it.
  TraceContext instant(std::string name, TraceContext parent,
                       std::uint64_t node, TimePoint now) {
    TraceContext ctx = start_span(std::move(name), parent, node, now);
    end_span(ctx, now);
    return ctx;
  }

  /// All spans of a trace, in creation order (includes still-open spans).
  [[nodiscard]] std::vector<SpanRecord> trace(std::uint64_t trace_id) const;

  [[nodiscard]] bool has_trace(std::uint64_t trace_id) const {
    return traces_.contains(trace_id);
  }
  [[nodiscard]] std::size_t trace_count() const { return traces_.size(); }
  [[nodiscard]] std::uint64_t spans_started() const { return spans_started_; }

  /// Chrome trace-event JSON ({"traceEvents": [...]}) for one trace.
  [[nodiscard]] std::string to_chrome_json(std::uint64_t trace_id) const;

  void clear();

 private:
  struct TraceBuffer {
    std::vector<SpanRecord> spans;
    std::unordered_map<std::uint64_t, std::size_t> by_span_id;
  };

  SpanRecord* find_span(TraceContext ctx);

  TracerConfig config_;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t spans_started_ = 0;
  std::unordered_map<std::uint64_t, TraceBuffer> traces_;
  std::deque<std::uint64_t> eviction_order_;
};

/// Children-by-parent view over one trace's spans, for tree asserts and the
/// slow-query log printout.
class SpanTree {
 public:
  explicit SpanTree(std::vector<SpanRecord> spans);

  [[nodiscard]] const std::vector<SpanRecord>& spans() const {
    return spans_;
  }
  /// Root spans (parent_id == 0 or parent not present in this trace).
  [[nodiscard]] const std::vector<std::size_t>& roots() const {
    return roots_;
  }
  [[nodiscard]] const std::vector<std::size_t>& children_of(
      std::uint64_t span_id) const;

  /// Spans with the given name.
  [[nodiscard]] std::vector<const SpanRecord*> named(
      const std::string& name) const;

  /// Indented text rendering (slow-query log, debugging).
  [[nodiscard]] std::string render() const;

 private:
  void render_span(std::string& out, std::size_t index, int depth) const;

  std::vector<SpanRecord> spans_;
  std::vector<std::size_t> roots_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children_;
};

}  // namespace stcn
