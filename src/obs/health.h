// Continuous cluster health monitoring with rule-based alerting.
//
// A HealthMonitor samples a set of live MetricsRegistry sources ("net",
// "coordinator", "worker.<id>") on the sim clock. Each sample derives a
// per-metric value — counter *rate* (delta / dt), gauge *level*, or
// histogram windowed mean / cumulative p99 — into a fixed-size ring-buffer
// time series, then evaluates declarative AlertRules against it.
//
// Rules are hysteretic: a rule must breach for `for_samples` consecutive
// samples to fire, and clear for `resolve_samples` consecutive samples to
// resolve; each transition appends a structured HealthEvent. A one-`*`
// wildcard in the metric name fans a rule out across matching metrics
// (e.g. the coordinator's per-peer `peer.*.fragment_latency_us`), with the
// captured segment naming the alert's subject node — that is how a
// coordinator-side observation ("worker 3's fragments got slow") indicts
// the worker rather than the coordinator.
//
// ClusterHealth reduces firing alerts to a per-node status
// (healthy/degraded/suspect) that chaos tests assert against: gray-failure
// injection must drive the victim to `suspect` within a bounded number of
// samples, and healing must return it to `healthy`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace stcn {

enum class HealthStatus { kHealthy = 0, kDegraded = 1, kSuspect = 2 };

[[nodiscard]] inline const char* health_status_name(HealthStatus s) {
  switch (s) {
    case HealthStatus::kHealthy: return "healthy";
    case HealthStatus::kDegraded: return "degraded";
    case HealthStatus::kSuspect: return "suspect";
  }
  return "unknown";
}

enum class AlertSeverity { kDegraded, kSuspect };

[[nodiscard]] inline const char* alert_severity_name(AlertSeverity s) {
  return s == AlertSeverity::kSuspect ? "suspect" : "degraded";
}

/// How a sampled metric becomes the rule's evaluated value.
enum class MetricKind {
  kCounterRate,     // (raw - prev) / dt, per second
  kGaugeLevel,      // instantaneous gauge value
  kHistogramMean,   // windowed mean: delta(sum) / delta(count)
  kHistogramP99,    // cumulative p99 level
};

enum class AlertComparison { kAbove, kBelow };

struct AlertRule {
  std::string name;
  /// Metric to watch. At most one '*' wildcard, matching one name segment
  /// or more ("peer.*.hedge_wins"); the capture becomes the subject.
  std::string metric;
  MetricKind kind = MetricKind::kCounterRate;
  AlertComparison compare = AlertComparison::kAbove;
  double threshold = 0.0;
  /// Consecutive breaching samples before the alert fires.
  int for_samples = 2;
  /// Consecutive clear samples before a firing alert resolves.
  int resolve_samples = 2;
  AlertSeverity severity = AlertSeverity::kDegraded;
  /// Restrict to sources with this exact name, or prefix when it ends with
  /// '*' ("worker.*"). Empty = every source.
  std::string source_filter;
  /// Subject = subject_prefix + wildcard capture (or the source name when
  /// the metric has no wildcard).
  std::string subject_prefix;
};

/// Tuning knobs for the default rule set.
struct HealthThresholds {
  double retransmit_rate_per_s = 50.0;
  double hedge_win_rate_per_s = 0.5;
  double queue_depth_frames = 64.0;
  double ingest_stall_rate_per_s = 1.0;
  double fragment_latency_mean_us = 5'000.0;
  double partitions_recovering_level = 0.5;
  double resync_retry_rate_per_s = 2.0;
  /// Relative stddev (stddev/mean) of per-partition load above which the
  /// cluster counts as imbalanced.
  double partition_load_relative_stddev = 1.0;
  /// Hottest/coldest partition load ratio above which one partition is
  /// flagged hot (coldest load floored at 1 so the ratio is defined).
  double hot_partition_ratio = 8.0;
};

/// The rule set the ISSUE/DESIGN describe: retransmit storm, hedge-win
/// spike, worker queue buildup, ingest stall, per-node latency burn.
[[nodiscard]] std::vector<AlertRule> default_health_rules(
    const HealthThresholds& t = {});

/// Per-(rule, source, metric) alert state machine.
struct AlertState {
  std::string rule;
  std::string source;
  std::string metric;   // concrete (wildcard-expanded) name
  std::string subject;
  AlertSeverity severity = AlertSeverity::kDegraded;
  bool firing = false;
  int breach_streak = 0;
  int clear_streak = 0;
  double last_value = 0.0;
  std::uint64_t times_fired = 0;
  TimePoint last_transition;
};

/// Per-node health rollup derived from firing alerts.
struct ClusterHealth {
  TimePoint as_of;
  std::map<std::string, HealthStatus> nodes;

  [[nodiscard]] HealthStatus status(const std::string& node) const {
    auto it = nodes.find(node);
    return it == nodes.end() ? HealthStatus::kHealthy : it->second;
  }
  [[nodiscard]] HealthStatus overall() const {
    HealthStatus worst = HealthStatus::kHealthy;
    for (const auto& [node, s] : nodes) {
      if (static_cast<int>(s) > static_cast<int>(worst)) worst = s;
    }
    return worst;
  }
  [[nodiscard]] std::string render() const {
    std::string out;
    for (const auto& [node, s] : nodes) {
      out += node + ": " + health_status_name(s) + "\n";
    }
    return out;
  }
};

/// Fixed-capacity ring buffer of (time, value) samples. at(0) is the oldest
/// retained sample, at(size()-1) the newest.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity)
      : values_(capacity), times_(capacity) {}

  void push(TimePoint t, double v) {
    if (values_.empty()) return;
    std::size_t slot = (head_ + count_) % values_.size();
    if (count_ == values_.size()) {
      head_ = (head_ + 1) % values_.size();
      slot = (head_ + count_ - 1) % values_.size();
    } else {
      ++count_;
    }
    values_[slot] = v;
    times_[slot] = t;
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return values_.size(); }
  [[nodiscard]] double at(std::size_t i) const {
    return values_[(head_ + i) % values_.size()];
  }
  [[nodiscard]] TimePoint time_at(std::size_t i) const {
    return times_[(head_ + i) % values_.size()];
  }
  [[nodiscard]] double back() const { return at(count_ - 1); }

  /// Index of the newest sample at least as old as `cutoff` — the baseline
  /// for a windowed delta. When the ring has wrapped and no longer reaches
  /// back to `cutoff`, the oldest retained sample (index 0) is the best
  /// available baseline. Requires size() > 0.
  [[nodiscard]] std::size_t baseline_index(TimePoint cutoff) const {
    for (std::size_t i = count_; i-- > 0;) {
      if (time_at(i) <= cutoff || i == 0) return i;
    }
    return 0;
  }

  /// Windowed per-second rate of a cumulative series: value delta from the
  /// newest sample at least `window` old to the newest sample, divided by
  /// the span those samples actually cover. Dividing by the *actual* span
  /// rather than the nominal window is the wraparound seam fix: right
  /// after the ring wraps, the oldest retained sample is newer than
  /// `now - window`, and a nominal divisor undercounts the first window
  /// past the seam. Clamped at zero so counter resets (a restarted
  /// subject) never yield negative rates. Zero when fewer than 2 samples.
  [[nodiscard]] double rate_over(TimePoint now, Duration window) const {
    if (count_ < 2) return 0.0;
    std::size_t base = baseline_index(now - window);
    Duration span = time_at(count_ - 1) - time_at(base);
    if (span <= Duration::zero()) return 0.0;
    double rate = (back() - at(base)) / span.to_seconds();
    return rate > 0.0 ? rate : 0.0;
  }

  /// Windowed value delta (same baseline rule as rate_over), clamped >= 0.
  [[nodiscard]] double delta_over(TimePoint now, Duration window) const {
    if (count_ == 0) return 0.0;
    double delta = back() - at(baseline_index(now - window));
    return delta > 0.0 ? delta : 0.0;
  }

 private:
  std::vector<double> values_;
  std::vector<TimePoint> times_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

struct HealthMonitorConfig {
  /// Ring-buffer capacity per sampled series.
  std::size_t ring_capacity = 128;
  std::size_t event_capacity = 256;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthMonitorConfig config = {})
      : config_(config), events_(config.event_capacity) {}

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Registers a live registry to sample. `registry` must outlive the
  /// monitor. Source names double as node names in ClusterHealth.
  void add_source(std::string name, const MetricsRegistry* registry) {
    sources_.push_back({std::move(name), registry});
  }
  void add_rule(AlertRule rule) { rules_.push_back(std::move(rule)); }
  void add_default_rules(const HealthThresholds& t = {}) {
    for (AlertRule& r : default_health_rules(t)) add_rule(std::move(r));
  }

  /// Takes one sample of every source: derives series values, evaluates
  /// every rule, records firing/resolved transitions.
  void sample(TimePoint now);

  /// Runs an externally-derived value (e.g. an SLO burn rate) through the
  /// same hysteresis state machine and event log as sampled rules. The rule
  /// supplies name/threshold/streak lengths/severity; `source` and `metric`
  /// key the alert state; the alert's subject is the source.
  void evaluate_external(const AlertRule& rule, const std::string& source,
                         const std::string& metric, double value,
                         TimePoint now) {
    evaluate(rule, source, metric, /*capture=*/"", value, now);
  }

  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }
  [[nodiscard]] const EventLog& events() const { return events_; }
  [[nodiscard]] const std::vector<AlertRule>& rules() const { return rules_; }

  /// All alert states ever instantiated (firing or not).
  [[nodiscard]] std::vector<const AlertState*> alerts() const;
  [[nodiscard]] std::vector<const AlertState*> firing() const;
  /// True when any instance of `rule` is firing (optionally restricted to
  /// one subject).
  [[nodiscard]] bool is_firing(const std::string& rule,
                               const std::string& subject = "") const;

  /// Per-node status rollup: every source starts healthy; firing alerts
  /// bump their subject to the rule severity.
  [[nodiscard]] ClusterHealth health() const;

  /// Sampled series for (source, metric, kind), or nullptr.
  [[nodiscard]] const TimeSeries* series(const std::string& source,
                                         const std::string& metric,
                                         MetricKind kind) const;

  /// {"samples", "nodes", "alerts", "events"} snapshot for bench reports.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Source {
    std::string name;
    const MetricsRegistry* registry;
  };
  struct SeriesState {
    TimeSeries series;
    double prev_a = 0.0;  // counter raw / histogram count
    double prev_b = 0.0;  // histogram sum
    bool has_prev = false;
    /// kBelow rules only arm after the raw value has been nonzero once, so
    /// an idle cluster does not page for a stream that never started.
    bool armed = false;

    explicit SeriesState(std::size_t capacity) : series(capacity) {}
  };

  /// Matches `pattern` (at most one '*') against `name`; on success stores
  /// the wildcard capture (empty when the pattern is literal).
  static bool wildcard_match(const std::string& pattern,
                             const std::string& name, std::string* capture);
  static bool source_matches(const std::string& filter,
                             const std::string& source);

  void evaluate(const AlertRule& rule, const std::string& source,
                const std::string& metric, const std::string& capture,
                double value, TimePoint now);
  void sample_rule(const AlertRule& rule, const Source& src, TimePoint now,
                   double dt_seconds);

  SeriesState& series_state(const std::string& key) {
    auto it = series_.find(key);
    if (it == series_.end()) {
      it = series_.emplace(key, SeriesState(config_.ring_capacity)).first;
    }
    return it->second;
  }

  HealthMonitorConfig config_;
  std::vector<Source> sources_;
  std::vector<AlertRule> rules_;
  std::map<std::string, SeriesState> series_;  // source \x1f metric \x1f kind
  std::map<std::string, AlertState> alerts_;   // rule \x1f source \x1f metric
  EventLog events_;
  TimePoint last_sample_;
  std::uint64_t samples_ = 0;
};

}  // namespace stcn
