// Metrics registry: pre-registered counters, gauges, and log-scale latency
// histograms with machine-readable export.
//
// The legacy CounterSet costs a string hash + map lookup on every add —
// fine for cold paths, measurable on per-message and per-detection paths.
// The registry hands out *stable handles* at registration time:
//
//   Counter& ingested = registry.counter("ingested");
//   ... hot loop: ingested.inc();              // one pointer write
//
// Histograms use fixed power-of-two buckets over microseconds, so p50/p95/
// p99 are available without storing samples (O(1) memory, O(buckets)
// quantile). Exporters: Prometheus text format and JSON; the JSON form
// round-trips through metrics_registry_from_json so downstream tooling can
// diff snapshots across runs.
//
// Compatibility: sync_counters_into() mirrors every registered counter into
// a CounterSet, so existing stats plumbing and tests keep working while hot
// paths migrate to handles.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"

namespace stcn {

/// Monotonic counter. Handle semantics: references returned by the registry
/// stay valid for the registry's lifetime.
class Counter {
 public:
  void inc() { ++value_; }
  void add(std::uint64_t delta) { value_ += delta; }
  /// Restart semantics: a crashed subject comes back with zeroed counters.
  /// Rate consumers (HealthMonitor kCounterRate) clamp the apparent
  /// negative delta at zero rather than reporting a negative rate.
  void reset() { value_ = 0; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (queue depths, map sizes).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket log2 histogram over non-negative values (canonically
/// microseconds). Bucket 0 covers [0, 1); bucket i covers [2^(i-1), 2^i).
/// Quantiles are interpolated within the owning bucket and clamped to the
/// observed [min, max], so p50/p95/p99 are available without retaining
/// samples.
/// Exemplar: a concrete trace pinned to a histogram bucket, so a quantile
/// ("the p99 is 40ms") links to an actual span tree and the cost summary of
/// the query that landed there. One per bucket, most recent wins.
struct Exemplar {
  std::uint64_t trace_id = 0;
  double value = 0.0;
  std::string summary;  // compact cost summary ("rows=812 bytes_in=9k ...")
  bool set = false;
};

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 42;  // 2^41 us ≈ 25 days: plenty of range

  void observe(double v) {
    ++buckets_[bucket_index(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }

  /// Inclusive upper bound of bucket i.
  [[nodiscard]] static double bucket_upper_bound(int i) {
    return std::ldexp(1.0, i);  // 2^i
  }

  static int bucket_index(double v) {
    if (!(v >= 1.0)) return 0;  // also catches NaN / negatives
    int exp = static_cast<int>(std::floor(std::log2(v))) + 1;
    return exp >= kBuckets ? kBuckets - 1 : exp;
  }

  /// Observations with value <= v, linearly interpolated within v's owning
  /// bucket (the inverse of quantile()). Feeds latency-fraction SLOs:
  /// "what share of queries finished under the threshold".
  [[nodiscard]] double count_at_or_below(double v) const {
    int b = bucket_index(v);
    std::uint64_t below = 0;
    for (int i = 0; i < b; ++i) below += buckets_[static_cast<std::size_t>(i)];
    double lower = b == 0 ? 0.0 : bucket_upper_bound(b - 1);
    double upper = bucket_upper_bound(b);
    double frac = upper > lower ? (v - lower) / (upper - lower) : 1.0;
    frac = std::clamp(frac, 0.0, 1.0);
    return static_cast<double>(below) +
           frac * static_cast<double>(buckets_[static_cast<std::size_t>(b)]);
  }

  /// Quantile q in [0, 1], interpolated within the owning bucket.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  void merge(const LatencyHistogram& other);

  /// Pins an exemplar to the bucket owning `v` (most recent wins). The
  /// exemplar array is allocated on first use, so histograms that never see
  /// exemplars pay nothing; the hot observe() path is untouched.
  void set_exemplar(double v, std::uint64_t trace_id, std::string summary) {
    if (exemplars_.empty()) exemplars_.resize(kBuckets);
    Exemplar& e = exemplars_[static_cast<std::size_t>(bucket_index(v))];
    e.trace_id = trace_id;
    e.value = v;
    e.summary = std::move(summary);
    e.set = true;
  }
  /// Exemplar pinned to bucket i, or nullptr.
  [[nodiscard]] const Exemplar* exemplar(int i) const {
    if (exemplars_.empty()) return nullptr;
    const Exemplar& e = exemplars_[static_cast<std::size_t>(i)];
    return e.set ? &e : nullptr;
  }
  /// Number of buckets currently holding an exemplar.
  [[nodiscard]] std::size_t exemplar_count() const {
    std::size_t n = 0;
    for (const Exemplar& e : exemplars_) n += e.set ? 1 : 0;
    return n;
  }

  /// State restoration for the JSON importer: adds `n` observations to
  /// bucket `i` without touching sum/min/max.
  void restore_bucket(int i, std::uint64_t n) {
    buckets_[static_cast<std::size_t>(i)] += n;
    count_ += n;
  }
  /// Overwrites the summary moments (JSON importer; exact round-trip).
  void restore_summary(double sum, double min, double max) {
    sum_ = sum;
    min_ = min;
    max_ = max;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  // Empty until the first set_exemplar; kBuckets entries afterwards.
  std::vector<Exemplar> exemplars_;
};

/// Named metrics, one instance per node (plus merged cluster snapshots).
/// Names are dot-separated ("query_latency_us", "net.bytes_sent"); the
/// Prometheus exporter mangles dots to underscores.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  // Movable so snapshots can be returned by value. Handles into the
  // moved-from registry keep working (the unique_ptr targets move with it).
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  /// Registers (or finds) a metric; the returned reference is stable.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Registration with a help string (rendered as Prometheus `# HELP` and
  /// collected into docs/METRICS.md). A non-empty help overwrites any
  /// previously recorded one for the name.
  Counter& counter(const std::string& name, const std::string& help) {
    set_help(name, help);
    return counter(name);
  }
  Gauge& gauge(const std::string& name, const std::string& help) {
    set_help(name, help);
    return gauge(name);
  }
  LatencyHistogram& histogram(const std::string& name,
                              const std::string& help) {
    set_help(name, help);
    return histogram(name);
  }

  void set_help(const std::string& name, const std::string& help) {
    if (!help.empty()) help_[name] = help;
  }
  /// Help string for `name` ("" when none was registered).
  [[nodiscard]] const std::string& help(const std::string& name) const {
    static const std::string kEmpty;
    auto it = help_.find(name);
    return it == help_.end() ? kEmpty : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::string>& helps() const {
    return help_;
  }

  /// Attaches constant labels to a metric name — exemplar-style metadata
  /// such as `partition.hottest_load{partition="p12"}`. Rendered on the
  /// Prometheus exposition line (label keys mangled to the legal charset,
  /// values backslash-escaped) and round-tripped through JSON. Replaces any
  /// previous label set for the name; an empty map clears it.
  void set_labels(const std::string& name,
                  std::map<std::string, std::string> labels) {
    if (labels.empty()) {
      labels_.erase(name);
    } else {
      labels_[name] = std::move(labels);
    }
  }
  /// Labels attached to `name` (empty map when none).
  [[nodiscard]] const std::map<std::string, std::string>& labels(
      const std::string& name) const {
    static const std::map<std::string, std::string> kEmpty;
    auto it = labels_.find(name);
    return it == labels_.end() ? kEmpty : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::map<std::string,
                                                     std::string>>&
  all_labels() const {
    return labels_;
  }

  [[nodiscard]] const std::map<std::string, std::unique_ptr<Counter>>&
  counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Gauge>>& gauges()
      const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string,
                               std::unique_ptr<LatencyHistogram>>&
  histograms() const {
    return histograms_;
  }

  /// Mirrors every registered counter into `sink` (set semantics), bridging
  /// handle-based hot paths into legacy CounterSet consumers.
  void sync_counters_into(CounterSet& sink) const;

  /// Adds this registry's metrics into `dst` under `prefix` (counters and
  /// histograms accumulate; gauges accumulate too, which makes merged
  /// worker gauges totals).
  void merge_into(MetricsRegistry& dst, const std::string& prefix) const;

  /// Imports CounterSet entries as counters under `prefix`.
  ///
  /// With `handle_owner` given (the registry of the node the CounterSet
  /// belongs to), only names that registry owns are skipped: those are
  /// handle-backed counters already merged via merge_into, and the
  /// CounterSet mirrors them (sync_counters_into), so importing them again
  /// would double-count. Eager-only names always accumulate — importing a
  /// second node's CounterSet under the same prefix sums, it does not drop.
  ///
  /// Without `handle_owner` the legacy behavior applies: any name already
  /// present in *this* registry under `prefix` is skipped. That guard also
  /// swallows the second node's eager counters, so multi-node snapshot
  /// assembly must pass the owner registry.
  void import_counter_set(const CounterSet& counters,
                          const std::string& prefix,
                          const MetricsRegistry* handle_owner = nullptr);

  /// Prometheus text exposition format.
  [[nodiscard]] std::string to_prometheus(
      const std::string& metric_prefix = "stcn_") const;

  /// JSON dump; round-trips through metrics_registry_from_json.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::map<std::string, std::string> help_;
  std::map<std::string, std::map<std::string, std::string>> labels_;
};

/// Rebuilds a registry from MetricsRegistry::to_json output. Returns false
/// on malformed input.
bool metrics_registry_from_json(const std::string& json,
                                MetricsRegistry& out);

}  // namespace stcn
