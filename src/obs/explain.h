// EXPLAIN/ANALYZE: per-query plan profiles.
//
// A QueryProfile is the planner-and-execution counterpart of a trace: where
// spans record *when* things happened, explain stages record *why* — what
// each planning step estimated, what actually came back, and how many
// candidates it pruned. Stages are recorded by the coordinator (partition
// selection, per-worker scans), the framework (selectivity estimates, k-NN
// planning rounds), and the re-id layer (transition-cone pruning, path
// hops); nesting depth mirrors the call structure, so a path-reconstruction
// profile shows each hop's inner camera-window queries indented under it.
//
// The profiler is deliberately single-query: the simulation executes one
// explain'd query at a time (Cluster::execute is synchronous over the
// virtual clock), so one active profile plus a depth counter suffices.
// Recording sites hold a QueryProfiler* and no-op when it is null or
// inactive, so the instrumented paths cost one branch when not explaining.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/json.h"

namespace stcn {

/// Upper bound on reported q-error. An estimator that guesses thousands of
/// rows against an actual of 0 is "maximally wrong" — the histogram needs a
/// finite bucket for that, not an unbounded (or, with hostile inputs,
/// infinite/NaN) ratio that poisons every aggregate downstream.
inline constexpr double kMaxQError = 1e6;

/// Planner calibration metric: how far off an estimate was, as a ratio
/// >= 1 (1 == perfect). +1 smoothing keeps zero counts finite; negative
/// inputs (the -1 "not recorded" sentinel) are treated as 0 rather than
/// driving a denominator to 0; the result is clamped to kMaxQError.
[[nodiscard]] inline double q_error(double estimated, double actual) {
  double e = std::max(estimated, 0.0) + 1.0;
  double a = std::max(actual, 0.0) + 1.0;
  double r = e > a ? e / a : a / e;
  if (!std::isfinite(r) || r > kMaxQError) return kMaxQError;
  return r;
}

/// One planning or execution step of a profiled query. Estimated/actual use
/// -1 as "not recorded" so a stage can carry either, both, or neither.
struct ExplainStage {
  std::string name;
  int depth = 0;
  /// Planner's cardinality estimate for this step (rows), or -1.
  double estimated = -1.0;
  /// Rows actually produced/returned by this step, or -1.
  std::int64_t actual = -1;
  /// Candidates this step looked at before filtering (rows scanned,
  /// cameras considered, ...). 0 when not meaningful.
  std::uint64_t considered = 0;
  /// Candidates this step ruled out without scanning them.
  std::uint64_t pruned = 0;
  TimePoint start;
  /// Virtual-clock time the step covered (0 for instantaneous planning).
  Duration sim_time = Duration::zero();
  /// Real (host) microseconds, where measured (worker scans), or -1.
  std::int64_t wall_us = -1;
  /// Free-form key/value annotations (radius guesses, worker ids, ...).
  std::vector<std::pair<std::string, std::string>> notes;

  [[nodiscard]] bool has_estimate() const { return estimated >= 0.0; }
  [[nodiscard]] bool has_actual() const { return actual >= 0; }
  /// q-error when both sides were recorded, else 0.
  [[nodiscard]] double stage_q_error() const {
    if (!has_estimate() || !has_actual()) return 0.0;
    return q_error(estimated, static_cast<double>(actual));
  }
  void note(std::string key, std::string value) {
    notes.emplace_back(std::move(key), std::move(value));
  }
};

/// A completed EXPLAIN/ANALYZE run: stages in recording order plus query
/// identity, renderable as an indented text tree or JSON.
struct QueryProfile {
  std::uint64_t request_id = 0;  // last coordinator request id involved
  std::uint64_t trace_id = 0;    // companion trace, when tracing is on
  std::string description;
  TimePoint started;
  Duration latency = Duration::zero();
  std::vector<ExplainStage> stages;
  /// Stages dropped once the bounded buffer filled (deep path searches).
  std::uint64_t stages_dropped = 0;

  /// First stage with this name, or nullptr.
  [[nodiscard]] const ExplainStage* stage(const std::string& name) const;
  [[nodiscard]] std::vector<const ExplainStage*> stages_named(
      const std::string& name) const;
  /// Worst q-error across stages that recorded both sides (0 if none did).
  [[nodiscard]] double worst_q_error() const;
  [[nodiscard]] std::uint64_t total_pruned() const;

  /// Indented text tree (the `EXPLAIN` output).
  [[nodiscard]] std::string render() const;
  /// JSON object; embeds under bench reports and the slow-query log.
  [[nodiscard]] std::string to_json() const;
  void append_json(obs::JsonWriter& w) const;
};

/// Assembles one QueryProfile at a time. Recording sites open a stage, fill
/// its fields through the returned index, and close it; push/pop_depth
/// indents everything recorded by nested work (k-NN rounds, re-id hops).
///
/// Stage handles are indices, not references: the stage vector reallocates
/// as nested work records more stages.
class QueryProfiler {
 public:
  /// More stages than this and further open_stage calls are counted but
  /// not stored (beam searches fan out; profiles stay bounded).
  static constexpr std::size_t kMaxStages = 384;
  static constexpr std::size_t kNoStage = static_cast<std::size_t>(-1);

  [[nodiscard]] bool active() const { return active_; }

  void begin(std::string description, TimePoint now);

  /// Opens a stage at the current depth; returns its handle (kNoStage once
  /// the profile is full — all accessors tolerate it).
  std::size_t open_stage(std::string name, TimePoint now);
  /// Opens a stage stamped with the last time the profiler saw (recording
  /// sites without clock access, e.g. the re-id engine).
  std::size_t open_stage(std::string name) {
    return open_stage(std::move(name), last_time_);
  }

  /// Mutable access to an open (or closed) stage. The reference is only
  /// valid until the next open_stage call.
  [[nodiscard]] ExplainStage& stage(std::size_t handle) {
    if (handle == kNoStage || handle >= profile_.stages.size()) {
      return scratch_;
    }
    return profile_.stages[handle];
  }

  void close_stage(std::size_t handle, TimePoint now);
  void close_stage(std::size_t handle) { close_stage(handle, last_time_); }

  /// Nested work recorded after push_depth indents one level deeper.
  void push_depth() { ++depth_; }
  void pop_depth() {
    if (depth_ > 0) --depth_;
  }

  /// Latest virtual time observed (refreshed by any timestamped call).
  void set_time(TimePoint now) { last_time_ = now; }

  void set_request(std::uint64_t request_id) {
    profile_.request_id = request_id;
  }
  void set_trace(std::uint64_t trace_id) { profile_.trace_id = trace_id; }

  /// Ends the profile and hands it over; the profiler goes inactive.
  QueryProfile finish(TimePoint now);

 private:
  bool active_ = false;
  int depth_ = 0;
  TimePoint last_time_;
  QueryProfile profile_;
  ExplainStage scratch_;  // sink for writes once the profile is full
};

}  // namespace stcn
