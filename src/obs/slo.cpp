#include "obs/slo.h"

#include <algorithm>

namespace stcn {

std::vector<SloSpec> default_slos(double latency_threshold_us,
                                  double availability_objective,
                                  double latency_objective) {
  std::vector<SloSpec> slos;

  // Availability: a partial answer (failover retries exhausted, no replica
  // to take over) spends the error budget.
  SloSpec avail;
  avail.name = "query_availability";
  avail.kind = SloSpec::Kind::kAvailability;
  avail.source = "coordinator";
  avail.total_metric = "queries_submitted";
  avail.bad_metric = "queries_partial";
  avail.objective = availability_objective;
  avail.severity = AlertSeverity::kSuspect;
  slos.push_back(std::move(avail));

  // Latency: the fraction of queries completing under the threshold. A
  // gray-slow worker burns this budget long before anything goes partial.
  SloSpec lat;
  lat.name = "query_latency";
  lat.kind = SloSpec::Kind::kLatency;
  lat.source = "coordinator";
  lat.latency_metric = "query_latency_us";
  lat.latency_threshold_us = latency_threshold_us;
  lat.objective = latency_objective;
  lat.severity = AlertSeverity::kDegraded;
  slos.push_back(std::move(lat));

  return slos;
}

SloEngine::SloEngine(HealthMonitor& monitor, std::size_t ring_capacity)
    : monitor_(monitor), ring_capacity_(ring_capacity) {}

void SloEngine::add_source(std::string name, const MetricsRegistry* registry) {
  sources_.emplace_back(std::move(name), registry);
}

void SloEngine::add_slo(SloSpec spec) {
  slos_.emplace_back(std::move(spec), ring_capacity_);
}

bool SloEngine::read(const SloSpec& spec, double* good,
                     double* total) const {
  const MetricsRegistry* registry = nullptr;
  for (const auto& [name, reg] : sources_) {
    if (name == spec.source) {
      registry = reg;
      break;
    }
  }
  if (registry == nullptr) return false;
  switch (spec.kind) {
    case SloSpec::Kind::kAvailability: {
      auto t = registry->counters().find(spec.total_metric);
      if (t == registry->counters().end()) return false;
      auto b = registry->counters().find(spec.bad_metric);
      double bad = b == registry->counters().end()
                       ? 0.0
                       : static_cast<double>(b->second->value());
      *total = static_cast<double>(t->second->value());
      *good = std::max(0.0, *total - bad);
      return true;
    }
    case SloSpec::Kind::kLatency: {
      auto h = registry->histograms().find(spec.latency_metric);
      if (h == registry->histograms().end()) return false;
      *total = static_cast<double>(h->second->count());
      *good = h->second->count_at_or_below(spec.latency_threshold_us);
      return true;
    }
  }
  return false;
}

double SloEngine::burn_over(const SloState& s, TimePoint now,
                            Duration window, double good_now,
                            double total_now) {
  // Baseline: the newest retained sample at least `window` old; when the
  // ring does not reach back that far, the oldest one (partial window —
  // correct while the series warms up); when the ring is empty, zero
  // (the window covers everything since start).
  double good_then = 0.0;
  double total_then = 0.0;
  if (s.total.size() > 0) {
    std::size_t i = s.total.baseline_index(now - window);
    good_then = s.good.at(i);
    total_then = s.total.at(i);
  }
  double dt_total = total_now - total_then;
  if (dt_total <= 0.0) return 0.0;  // no traffic in window → no burn
  double dt_bad = std::max(0.0, dt_total - (good_now - good_then));
  double error_rate = dt_bad / dt_total;
  double budget = 1.0 - s.spec.objective;
  if (budget <= 0.0) return error_rate > 0.0 ? 1e9 : 0.0;
  return error_rate / budget;
}

void SloEngine::sample(TimePoint now) {
  for (SloState& s : slos_) {
    double good = 0.0;
    double total = 0.0;
    if (!read(s.spec, &good, &total)) continue;

    double short_burn = burn_over(s, now, s.spec.short_window, good, total);
    double long_burn = burn_over(s, now, s.spec.long_window, good, total);

    s.good.push(now, good);
    s.total.push(now, total);
    s.burn_short.push(now, short_burn);
    s.burn_long.push(now, long_burn);
    s.last_good = good;
    s.last_total = total;

    // Multi-window AND: evaluate the weaker burn so the alert fires only
    // when both windows are hot, via the monitor's shared hysteresis.
    AlertRule rule;
    rule.name = s.spec.rule_name();
    rule.metric = "slo." + s.spec.name;
    rule.threshold = s.spec.burn_threshold;
    rule.for_samples = s.spec.for_samples;
    rule.resolve_samples = s.spec.resolve_samples;
    rule.severity = s.spec.severity;
    monitor_.evaluate_external(rule, s.spec.source, rule.metric,
                               std::min(short_burn, long_burn), now);
  }
}

std::vector<SloEngine::Status> SloEngine::status() const {
  std::vector<Status> out;
  out.reserve(slos_.size());
  for (const SloState& s : slos_) {
    Status st;
    st.name = s.spec.name;
    st.objective = s.spec.objective;
    st.short_burn = s.burn_short.size() ? s.burn_short.back() : 0.0;
    st.long_burn = s.burn_long.size() ? s.burn_long.back() : 0.0;
    st.burn = std::min(st.short_burn, st.long_burn);
    st.burn_threshold = s.spec.burn_threshold;
    st.good = static_cast<std::uint64_t>(s.last_good);
    st.total = static_cast<std::uint64_t>(s.last_total);
    st.firing = monitor_.is_firing(s.spec.rule_name());
    out.push_back(std::move(st));
  }
  return out;
}

const TimeSeries* SloEngine::burn_series(const std::string& name,
                                         bool short_window) const {
  for (const SloState& s : slos_) {
    if (s.spec.name == name) {
      return short_window ? &s.burn_short : &s.burn_long;
    }
  }
  return nullptr;
}

void SloEngine::append_json(obs::JsonWriter& w) const {
  w.begin_array();
  for (const Status& st : status()) {
    const SloState* state = nullptr;
    for (const SloState& s : slos_) {
      if (s.spec.name == st.name) {
        state = &s;
        break;
      }
    }
    w.begin_object();
    w.key("name");
    w.value(st.name);
    w.key("objective");
    w.value(st.objective);
    w.key("burn_short");
    w.value(st.short_burn);
    w.key("burn_long");
    w.value(st.long_burn);
    w.key("burn_threshold");
    w.value(st.burn_threshold);
    w.key("good");
    w.value(st.good);
    w.key("total");
    w.value(st.total);
    w.key("firing");
    w.value(st.firing);
    if (state != nullptr) {
      w.key("burn_series");
      w.begin_array();
      for (std::size_t i = 0; i < state->burn_short.size(); ++i) {
        w.begin_array();
        w.value(state->burn_short.time_at(i).micros_since_origin());
        w.value(state->burn_short.at(i));
        w.value(i < state->burn_long.size() ? state->burn_long.at(i) : 0.0);
        w.end_array();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
}

std::string SloEngine::to_json() const {
  obs::JsonWriter w;
  append_json(w);
  return w.take();
}

}  // namespace stcn
