// Resource ledger: per-query cost vectors with dimensional attribution.
//
// The coordinator assembles one CostVector per query from the scan stats
// riding every QueryResponse fragment (rows evaluated, zone-map blocks
// scanned/skipped, wire bytes both ways, kernel wall time, morsels, hedges,
// retransmits). On completion the finished row is attributed to three
// dimensions — query kind, originating gateway/"tenant" id, and the
// hottest camera in the answer — each tracked by a space-saving top-K
// heavy-hitter sketch, so "which tenant/camera/query-class is burning the
// cluster" is answerable in O(K) memory per dimension regardless of
// cardinality.
//
// Conservation invariant: eviction in the sketch folds the evicted row's
// cost into the replacing key (the classic space-saving over-count, carried
// per-axis), so the per-dimension rows always sum to the ledger totals.
// ci.sh asserts this on bench_gateway output: sum of per-tenant
// rows_evaluated == cluster total.
//
// Exported three ways: totals as registry counters (Prometheus via the
// cluster snapshot), rows as JSON (bench reports, flight-recorder
// bundles), and a compact per-query summary string attached to slow-query
// log entries, EXPLAIN stages, and histogram exemplars.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace stcn {

/// Additive per-query resource usage. Every axis is a sum over the query's
/// fragments (including hedged and retried ones — speculation is real cost).
struct CostVector {
  std::uint64_t rows_scanned = 0;    // index rows yielded before merging
  std::uint64_t rows_evaluated = 0;  // rows through vectorized filter kernels
  std::uint64_t rows_returned = 0;   // rows in the merged answer
  std::uint64_t blocks_scanned = 0;  // zone-map blocks examined
  std::uint64_t blocks_skipped = 0;  // zone-map blocks skipped wholesale
  std::uint64_t bytes_out = 0;       // request wire bytes coordinator → workers
  std::uint64_t bytes_in = 0;        // response wire bytes workers → coordinator
  std::uint64_t scan_wall_us = 0;    // kernel+scan wall microseconds (workers)
  std::uint64_t sim_latency_us = 0;  // end-to-end sim-clock latency
  std::uint64_t morsels = 0;         // 4096-row vectorized morsels
  std::uint64_t fragments = 0;       // fragment sends (primary+hedge+retry)
  std::uint64_t hedges = 0;          // speculative re-issues
  std::uint64_t retransmits = 0;     // reliable-channel retransmits in-trace

  void add(const CostVector& o) {
    rows_scanned += o.rows_scanned;
    rows_evaluated += o.rows_evaluated;
    rows_returned += o.rows_returned;
    blocks_scanned += o.blocks_scanned;
    blocks_skipped += o.blocks_skipped;
    bytes_out += o.bytes_out;
    bytes_in += o.bytes_in;
    scan_wall_us += o.scan_wall_us;
    sim_latency_us += o.sim_latency_us;
    morsels += o.morsels;
    fragments += o.fragments;
    hedges += o.hedges;
    retransmits += o.retransmits;
  }

  /// Compact one-line summary ("rows_eval=812 bytes_in=9211 ..."), used for
  /// histogram exemplars, slow-query entries, and EXPLAIN notes.
  [[nodiscard]] std::string summary() const {
    std::string s;
    s += "rows_eval=" + std::to_string(rows_evaluated);
    s += " rows_ret=" + std::to_string(rows_returned);
    s += " blocks=" + std::to_string(blocks_scanned) + "/" +
         std::to_string(blocks_scanned + blocks_skipped);
    s += " bytes=" + std::to_string(bytes_out) + "/" +
         std::to_string(bytes_in);
    s += " scan_us=" + std::to_string(scan_wall_us);
    s += " frags=" + std::to_string(fragments);
    if (hedges > 0) s += " hedges=" + std::to_string(hedges);
    if (retransmits > 0) s += " rtx=" + std::to_string(retransmits);
    return s;
  }

  void append_json(obs::JsonWriter& w) const;
};

/// One finished query, ready for attribution.
struct CostRecord {
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  std::string kind;    // query kind name ("range", "knn", ...)
  std::uint32_t tenant = 0;  // originating gateway/tenant id (0 = local)
  /// Camera contributing the most detections to the answer;
  /// kNoCamera when the answer carries no camera signal (counts only).
  std::uint64_t hottest_camera = kNoCamera;
  bool partial = false;
  CostVector cost;

  static constexpr std::uint64_t kNoCamera = ~std::uint64_t{0};
};

/// Space-saving heavy-hitter sketch over string keys, carrying a CostVector
/// per entry. At most `capacity` keys are tracked; inserting a new key into
/// a full sketch replaces the entry with the minimum count, *inheriting*
/// its count and cost (recorded as `error`). That over-count is what makes
/// the sketch conservative (a true heavy hitter is never under-counted) and
/// what preserves the conservation invariant: the sum of per-row costs
/// always equals everything ever fed in.
class TopKSketch {
 public:
  struct Row {
    std::string key;
    std::uint64_t count = 0;  // queries attributed (including inherited)
    std::uint64_t error = 0;  // upper bound on inherited (over-counted) part
    CostVector cost;
  };

  explicit TopKSketch(std::size_t capacity = 8) : capacity_(capacity) {}

  void update(const std::string& key, const CostVector& cost) {
    for (Row& r : rows_) {
      if (r.key == key) {
        ++r.count;
        r.cost.add(cost);
        return;
      }
    }
    if (rows_.size() < capacity_) {
      Row fresh;
      fresh.key = key;
      fresh.count = 1;
      fresh.cost = cost;
      rows_.push_back(std::move(fresh));
      return;
    }
    // Replace the minimum-count entry; the newcomer inherits its tally so
    // totals stay conserved and the newcomer cannot be unfairly evicted.
    Row* victim = &rows_[0];
    for (Row& r : rows_) {
      if (r.count < victim->count) victim = &r;
    }
    victim->error = victim->count;
    victim->key = key;
    ++victim->count;
    victim->cost.add(cost);
  }

  /// Rows sorted by descending count (then key, for determinism).
  [[nodiscard]] std::vector<Row> top() const;
  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<Row> rows_;  // unsorted; K is small, linear scans are fine
};

struct ResourceLedgerConfig {
  /// Heavy-hitter capacity per dimension (kind/tenant/camera).
  std::size_t top_k = 8;
  /// Most recent finished rows retained for flight-recorder bundles.
  std::size_t recent_rows = 32;
};

/// The cluster-wide cost ledger: totals + per-dimension heavy hitters +
/// a short ring of recent rows. Owned by the coordinator; fed once per
/// finished query from maybe_finish.
class ResourceLedger {
 public:
  explicit ResourceLedger(ResourceLedgerConfig config = {});

  void record(const CostRecord& rec);

  [[nodiscard]] std::uint64_t queries() const { return queries_; }
  [[nodiscard]] const CostVector& totals() const { return totals_; }
  [[nodiscard]] const TopKSketch& by_kind() const { return by_kind_; }
  [[nodiscard]] const TopKSketch& by_tenant() const { return by_tenant_; }
  [[nodiscard]] const TopKSketch& by_camera() const { return by_camera_; }
  [[nodiscard]] const std::vector<CostRecord>& recent() const {
    return recent_;
  }

  /// Registry carrying the ledger totals as counters (merged into the
  /// cluster snapshot under "cost." for the Prometheus exporter).
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// {"queries", "totals", "by_kind", "by_tenant", "by_camera", "recent"}.
  [[nodiscard]] std::string to_json() const;
  void append_json(obs::JsonWriter& w) const;

 private:
  ResourceLedgerConfig config_;
  std::uint64_t queries_ = 0;
  CostVector totals_;
  TopKSketch by_kind_;
  TopKSketch by_tenant_;
  TopKSketch by_camera_;
  std::vector<CostRecord> recent_;  // ring, oldest first
  std::size_t recent_head_ = 0;

  MetricsRegistry metrics_;
  Counter& c_queries_;
  Counter& c_rows_scanned_;
  Counter& c_rows_evaluated_;
  Counter& c_rows_returned_;
  Counter& c_blocks_scanned_;
  Counter& c_blocks_skipped_;
  Counter& c_bytes_out_;
  Counter& c_bytes_in_;
  Counter& c_scan_wall_us_;
  Counter& c_morsels_;
  Counter& c_fragments_;
  Counter& c_hedges_;
  Counter& c_retransmits_;
};

}  // namespace stcn
