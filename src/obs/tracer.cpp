#include "obs/tracer.h"

#include <algorithm>

#include "obs/json.h"

namespace stcn {

TraceContext Tracer::start_trace(std::string name, std::uint64_t node,
                                 TimePoint now) {
  if (!enabled()) return {};
  std::uint64_t trace_id = next_trace_id_++;
  while (traces_.size() >= config_.max_traces && !eviction_order_.empty()) {
    traces_.erase(eviction_order_.front());
    eviction_order_.pop_front();
  }
  traces_.emplace(trace_id, TraceBuffer{});
  eviction_order_.push_back(trace_id);
  return start_span(std::move(name), TraceContext{trace_id, 0}, node, now);
}

TraceContext Tracer::start_span(std::string name, TraceContext parent,
                                std::uint64_t node, TimePoint now) {
  if (!enabled()) return {};
  if (!parent.valid()) {
    return start_trace(std::move(name), node, now);
  }
  auto it = traces_.find(parent.trace_id);
  if (it == traces_.end()) return {};  // trace already evicted
  SpanRecord span;
  span.trace_id = parent.trace_id;
  span.span_id = next_span_id_++;
  span.parent_id = parent.span_id;
  span.name = std::move(name);
  span.node = node;
  span.start = now;
  span.end = now;
  ++spans_started_;
  it->second.by_span_id.emplace(span.span_id, it->second.spans.size());
  it->second.spans.push_back(std::move(span));
  return {parent.trace_id, it->second.spans.back().span_id};
}

SpanRecord* Tracer::find_span(TraceContext ctx) {
  if (!ctx.valid() || ctx.span_id == 0) return nullptr;
  auto it = traces_.find(ctx.trace_id);
  if (it == traces_.end()) return nullptr;
  auto span_it = it->second.by_span_id.find(ctx.span_id);
  if (span_it == it->second.by_span_id.end()) return nullptr;
  return &it->second.spans[span_it->second];
}

void Tracer::tag(TraceContext ctx, std::string key, std::string value) {
  if (SpanRecord* span = find_span(ctx)) {
    span->tags.emplace_back(std::move(key), std::move(value));
  }
}

void Tracer::end_span(TraceContext ctx, TimePoint now) {
  if (SpanRecord* span = find_span(ctx)) {
    span->end = now;
    span->finished = true;
  }
}

std::vector<SpanRecord> Tracer::trace(std::uint64_t trace_id) const {
  auto it = traces_.find(trace_id);
  return it == traces_.end() ? std::vector<SpanRecord>{} : it->second.spans;
}

std::string Tracer::to_chrome_json(std::uint64_t trace_id) const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  for (const SpanRecord& span : trace(trace_id)) {
    w.begin_object();
    w.key("name");
    w.value(span.name);
    w.key("cat");
    w.value("stcn");
    w.key("ph");
    w.value("X");  // complete event: ts + dur
    w.key("ts");
    w.value(span.start.micros_since_origin());
    w.key("dur");
    w.value(span.duration().count_micros());
    w.key("pid");
    w.value(span.trace_id);
    w.key("tid");
    w.value(span.node);
    w.key("args");
    w.begin_object();
    w.key("span_id");
    w.value(span.span_id);
    w.key("parent_id");
    w.value(span.parent_id);
    for (const auto& [k, v] : span.tags) {
      w.key(k);
      w.value(v);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void Tracer::clear() {
  traces_.clear();
  eviction_order_.clear();
}

// -------------------------------------------------------------- span tree

SpanTree::SpanTree(std::vector<SpanRecord> spans) : spans_(std::move(spans)) {
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    by_id.emplace(spans_[i].span_id, i);
  }
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent_id == 0 || !by_id.contains(spans_[i].parent_id)) {
      roots_.push_back(i);
    } else {
      children_[spans_[i].parent_id].push_back(i);
    }
  }
}

const std::vector<std::size_t>& SpanTree::children_of(
    std::uint64_t span_id) const {
  static const std::vector<std::size_t> kNone;
  auto it = children_.find(span_id);
  return it == children_.end() ? kNone : it->second;
}

std::vector<const SpanRecord*> SpanTree::named(
    const std::string& name) const {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& span : spans_) {
    if (span.name == name) out.push_back(&span);
  }
  return out;
}

void SpanTree::render_span(std::string& out, std::size_t index,
                           int depth) const {
  const SpanRecord& span = spans_[index];
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += span.name;
  out += " [" + std::to_string(span.duration().count_micros()) + "us";
  if (!span.finished) out += ", open";
  out += "]";
  for (const auto& [k, v] : span.tags) {
    out += " " + k + "=" + v;
  }
  out += "\n";
  for (std::size_t child : children_of(span.span_id)) {
    render_span(out, child, depth + 1);
  }
}

std::string SpanTree::render() const {
  std::string out;
  for (std::size_t root : roots_) render_span(out, root, 0);
  return out;
}

}  // namespace stcn
