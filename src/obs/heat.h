// Partition heat observatory: per-partition load telemetry, cluster-wide
// skew analytics, and a read-only placement advisor.
//
// Three layers, mirroring the data path:
//  * HeatTracker — worker-side. Accumulates per-partition monotonic totals
//    (ingested rows, scan work, fragments served, wire bytes out) plus the
//    exact store memory level, samples them on the sim clock into TimeSeries
//    rings, and maintains a windowed-EWMA load rate per partition. The
//    snapshot() output rides to the coordinator piggybacked on heartbeats.
//  * HeatMapSnapshot — coordinator-side. Folds every worker's shipped
//    entries into one cluster-wide view, keeps its own per-partition load
//    rings (so windowed rates survive worker restarts: a totals reset reads
//    as a rate clamped at zero, never negative), and computes the skew
//    rollups exported as gauges: partition.load_relative_stddev,
//    partition.hot_cold_ratio, partition.replicate_factor,
//    partition.scan_gini.
//  * PlacementAdvisor — strictly read-only. Greedily ranks migrate / split /
//    merge moves by *projected* per-worker load-stddev improvement, computed
//    offline on copied load vectors; it never mutates the PartitionMap.
//    Output feeds the live dashboard and postmortem bundles, and is the
//    decision input for future elastic shard management (ROADMAP #1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/health.h"
#include "obs/json.h"
#include "partition/load_stats.h"
#include "partition/partition_map.h"

namespace stcn {

struct HeatTrackerConfig {
  /// Per-partition load-ring capacity (samples retained).
  std::size_t ring_capacity = 128;
  /// Window for the rate behind the EWMA (actual covered span is used, so
  /// rates stay exact across the ring's wraparound seam).
  Duration rate_window = Duration::seconds(10);
  /// EWMA smoothing factor for the shipped load rate.
  double ewma_alpha = 0.3;
};

/// Worker-side per-partition heat accumulator. Totals are per-incarnation:
/// lose_state() clears the tracker along with the partitions it described.
class HeatTracker {
 public:
  explicit HeatTracker(HeatTrackerConfig config = {}) : config_(config) {}

  void on_ingest(PartitionId p, std::uint64_t rows) {
    entry(p).heat.ingested_rows += rows;
  }
  void on_scan(PartitionId p, std::uint64_t rows_evaluated,
               std::uint64_t rows_selected, std::uint64_t blocks_scanned,
               std::uint64_t blocks_skipped) {
    PartitionHeat& h = entry(p).heat;
    h.rows_evaluated += rows_evaluated;
    h.rows_selected += rows_selected;
    h.blocks_scanned += blocks_scanned;
    h.blocks_skipped += blocks_skipped;
  }
  /// One query fragment served for `p`, shipping `wire_bytes` back.
  void on_fragment(PartitionId p, std::uint64_t wire_bytes) {
    PartitionHeat& h = entry(p).heat;
    h.fragments_served += 1;
    h.wire_bytes_out += wire_bytes;
  }
  void set_memory(PartitionId p, std::uint64_t bytes) {
    entry(p).heat.store_memory_bytes = bytes;
  }

  /// Samples every partition's load total into its ring and advances the
  /// EWMA rate. Call on the worker's monitor tick.
  void sample(TimePoint now) {
    for (auto& [p, e] : entries_) {
      e.load.push(now, partition_heat_load(e.heat));
      double rate = e.load.rate_over(now, config_.rate_window);
      if (e.has_rate) {
        e.heat.ewma_load_per_s = config_.ewma_alpha * rate +
                                 (1.0 - config_.ewma_alpha) *
                                     e.heat.ewma_load_per_s;
      } else {
        e.heat.ewma_load_per_s = rate;
        e.has_rate = true;
      }
    }
  }

  /// Wire-ready entries, ordered by partition id.
  [[nodiscard]] std::vector<PartitionHeat> snapshot() const {
    std::vector<PartitionHeat> out;
    out.reserve(entries_.size());
    for (const auto& [p, e] : entries_) out.push_back(e.heat);
    return out;
  }

  [[nodiscard]] const TimeSeries* series(PartitionId p) const {
    auto it = entries_.find(p);
    return it == entries_.end() ? nullptr : &it->second.load;
  }
  [[nodiscard]] std::size_t partition_count() const {
    return entries_.size();
  }

  /// Crash semantics: heat is in-memory state and dies with the store.
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    PartitionHeat heat;
    TimeSeries load;
    bool has_rate = false;
    explicit Entry(std::size_t cap) : load(cap) {}
  };
  Entry& entry(PartitionId p) {
    auto it = entries_.find(p);
    if (it == entries_.end()) {
      it = entries_.emplace(p, Entry(config_.ring_capacity)).first;
      it->second.heat.partition = p;
    }
    return it->second;
  }

  HeatTrackerConfig config_;
  std::map<PartitionId, Entry> entries_;
};

struct HeatSnapshotConfig {
  std::size_t ring_capacity = 128;
  /// Window for the skew rollups: load is the work done inside this window,
  /// so a partition that cools down stops reading hot (alerts can resolve).
  Duration window = Duration::seconds(10);
  /// Activity floor for the alertable rollups: when the hottest partition's
  /// windowed load is below this, load_relative_stddev and hot_cold_ratio
  /// read zero — a handful of rows trickling through a quiet cluster is
  /// noise, not imbalance, and must not page anyone.
  double min_alert_load = 512.0;
};

/// Coordinator-owned cluster-wide heat view, fed from heartbeat entries.
class HeatMapSnapshot {
 public:
  struct Entry {
    PartitionHeat heat;  // latest totals shipped by the owner
    WorkerId owner;
    TimePoint as_of;
    /// Cumulative load over time, sampled per received entry. Windowed
    /// deltas/rates over this ring clamp at zero, so a worker restart
    /// (totals reset) reads as a cold partition, never a negative rate.
    TimeSeries load;
    explicit Entry(std::size_t cap) : load(cap) {}
  };

  /// Skew rollups over windowed per-partition load (the NuCut metric set).
  struct Skew {
    double load_relative_stddev = 0.0;  // stddev/mean across partitions
    double hot_cold_ratio = 0.0;        // hottest / coldest (floored at 1)
    double replicate_factor = 0.0;      // mean replicas per partition
    double scan_gini = 0.0;             // Gini of per-worker load
    PartitionId hottest;
    PartitionId coldest;
    double hottest_load = 0.0;
    double coldest_load = 0.0;
  };

  explicit HeatMapSnapshot(HeatSnapshotConfig config = {})
      : config_(config) {}

  /// Folds one shipped entry in. `owner` is whoever reported it — under
  /// replication both holders report; the most recent report wins.
  void ingest(WorkerId owner, const PartitionHeat& h, TimePoint now) {
    auto it = entries_.find(h.partition);
    if (it == entries_.end()) {
      it = entries_.emplace(h.partition, Entry(config_.ring_capacity)).first;
    }
    Entry& e = it->second;
    e.heat = h;
    e.owner = owner;
    e.as_of = now;
    e.load.push(now, partition_heat_load(h));
  }

  [[nodiscard]] const std::map<PartitionId, Entry>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Load attributable to `p` inside the rollup window ending at `now`
  /// (absolute work, not per-second; clamped at zero across restarts).
  [[nodiscard]] double windowed_load(PartitionId p, TimePoint now) const {
    auto it = entries_.find(p);
    if (it == entries_.end()) return 0.0;
    return it->second.load.delta_over(now, config_.window);
  }

  /// Windowed load summed per reporting worker.
  [[nodiscard]] std::map<WorkerId, double> worker_loads(TimePoint now) const;

  /// The partition with the highest windowed load (entries_.end() when the
  /// map is empty or everything is cold).
  [[nodiscard]] Skew skew(TimePoint now,
                          const PartitionMap* map = nullptr) const;

  /// Plain-text heat table (live dashboard panel).
  [[nodiscard]] std::string render(TimePoint now) const;

  void append_json(obs::JsonWriter& w, TimePoint now) const;
  [[nodiscard]] std::string to_json(TimePoint now) const;

  [[nodiscard]] const HeatSnapshotConfig& config() const { return config_; }

 private:
  HeatSnapshotConfig config_;
  std::map<PartitionId, Entry> entries_;
};

/// One ranked placement move with its projected effect. `stddev_before` /
/// `stddev_after` are per-worker load stddevs around *this* move in the
/// greedy sequence (moves compound: rec N's before is rec N-1's after).
struct PlacementRecommendation {
  enum class Kind { kMigrate, kSplit, kMerge };
  Kind kind = Kind::kMigrate;
  PartitionId partition;
  PartitionId other;  // merge partner (kMerge only)
  WorkerId from;
  WorkerId to;
  double load = 0.0;  // windowed load the move shifts
  double stddev_before = 0.0;
  double stddev_after = 0.0;
  [[nodiscard]] double improvement() const {
    return stddev_before > 0.0
               ? (stddev_before - stddev_after) / stddev_before
               : 0.0;
  }
};

[[nodiscard]] const char* placement_kind_name(PlacementRecommendation::Kind k);

struct PlacementAdvisorConfig {
  std::size_t max_recommendations = 3;
  /// Moves projected to improve per-worker load stddev by less than this
  /// fraction are not worth recommending (uniform clusters get no advice).
  double min_improvement = 0.05;
  /// Split candidates: partitions hotter than this multiple of the mean.
  double split_threshold = 2.0;
  /// Merge candidates: partitions colder than this fraction of the mean.
  double merge_threshold = 0.1;
};

/// Read-only advisor: ranks moves, never applies them.
class PlacementAdvisor {
 public:
  [[nodiscard]] static std::vector<PlacementRecommendation> advise(
      const HeatMapSnapshot& snapshot, const PartitionMap& map,
      TimePoint now, PlacementAdvisorConfig config = {});

  [[nodiscard]] static std::string render(
      const std::vector<PlacementRecommendation>& recs);
  static void append_json(obs::JsonWriter& w,
                          const std::vector<PlacementRecommendation>& recs);
  [[nodiscard]] static std::string to_json(
      const std::vector<PlacementRecommendation>& recs);
};

}  // namespace stcn
