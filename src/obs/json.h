// Minimal JSON support for the observability exporters.
//
// Two halves:
//  * JsonWriter — a streaming writer with automatic comma/nesting handling
//    and string escaping; every machine-readable export (metrics registry,
//    Chrome trace events, slow-query log, BENCH_*.json) goes through it.
//  * JsonValue  — a small recursive-descent parser over the same dialect
//    (objects, arrays, strings, doubles, bools, null). Exists so exports
//    can be round-trip tested and so tooling (ci smoke checks) can validate
//    bench output without external dependencies.
//
// This is deliberately not a general-purpose JSON library: no comments,
// numbers are always doubles, \u escapes decode to UTF-8 (BMP only; no
// surrogate-pair combining).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace stcn::obs {

class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Writes an object key; the next value/open call is its value.
  void key(const std::string& k) {
    comma();
    write_string(k);
    out_ += ':';
    pending_value_ = true;
  }

  void value(const std::string& v) {
    comma();
    write_string(v);
  }
  void value(const char* v) { value(std::string(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }

  /// Embeds an already-serialized JSON fragment verbatim (e.g. a registry
  /// dump produced by another writer). The caller vouches for validity.
  void raw_value(const std::string& json) {
    comma();
    out_ += json;
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void open(char c) {
    comma();
    out_ += c;
    needs_comma_.push_back(false);
  }
  void close(char c) {
    out_ += c;
    if (!needs_comma_.empty()) needs_comma_.pop_back();
  }
  /// Emits a separating comma unless this is the first element at this
  /// nesting level or the value completing a key.
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!needs_comma_.empty()) {
      if (needs_comma_.back()) out_ += ',';
      needs_comma_.back() = true;
    }
  }
  void write_string(const std::string& s);

  std::string out_;
  std::vector<bool> needs_comma_;
  bool pending_value_ = false;
};

/// Parsed JSON value. Numbers are stored as doubles (sufficient for the
/// counters and latencies the exporters emit; counter values stay exact up
/// to 2^53).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  using Object = std::map<std::string, JsonValue>;
  using Array = std::vector<JsonValue>;

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }

  [[nodiscard]] double number() const { return number_; }
  [[nodiscard]] bool boolean() const { return bool_; }
  [[nodiscard]] const std::string& string() const { return string_; }
  [[nodiscard]] const Object& object() const { return object_; }
  [[nodiscard]] const Array& array() const { return array_; }

  [[nodiscard]] bool has(const std::string& k) const {
    return object_.contains(k);
  }
  /// Member lookup; returns a null value when absent.
  [[nodiscard]] const JsonValue& at(const std::string& k) const;

  /// Parses `text`; returns false (and sets *error when given) on malformed
  /// input.
  static bool parse(const std::string& text, JsonValue& out,
                    std::string* error = nullptr);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Object object_;
  Array array_;
};

}  // namespace stcn::obs
