// Flight recorder: a bounded ring of recent cluster state frames, frozen
// into a postmortem bundle when an alert fires.
//
// During normal operation the Cluster appends one compact frame per health
// sample (node statuses, firing alerts, ledger scalars). The ring is cheap
// and always on — the point is that when something finally breaks, the
// moments *before* the trigger are already captured. On a trigger (an alert
// rule firing, an SLO burning hot, or a worker's recovery_failed counter
// moving) the Cluster freezes a PostmortemBundle: the firing rule, SLO
// burn-rate series, exemplar traces for the slowest buckets, top-K cost
// rows from the ResourceLedger, slow-query entries, recent health events,
// cluster config, and the frame ring itself — one JSON document a human (or
// ci.sh chaos run) can read to answer "what happened and who did it".
//
// The bundle round-trips: parse_bundle(bundle.to_json()) reconstructs an
// equivalent bundle whose to_json() is byte-identical after one
// normalization pass — chaos tests assert this so bundles written to disk
// stay machine-readable.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/time.h"
#include "obs/json.h"

namespace stcn {

/// What tripped the recorder.
struct FlightTrigger {
  std::string kind;     // "alert" | "slo" | "recovery_failed"
  std::string rule;     // firing rule name ("slo:query_latency", ...)
  std::string subject;  // node the alert indicts ("" when cluster-wide)
  std::string severity;
  double value = 0.0;
  double threshold = 0.0;
};

/// A frozen postmortem. Sections are raw JSON fragments supplied by the
/// Cluster at freeze time (each a complete value; empty string = omitted).
struct PostmortemBundle {
  TimePoint frozen_at;
  std::uint64_t sequence = 0;  // 0-based freeze index
  FlightTrigger trigger;
  std::string slo_json;           // SLO status + burn series
  std::string cost_json;          // ledger totals + top-K heavy hitters
  std::string exemplars_json;     // exemplar rows with attached span trees
  std::string events_json;        // recent health events
  std::string slow_queries_json;  // slow-query log entries
  std::string config_json;        // cluster config scalars
  std::string heat_json;          // heat table + top-K placement advice
  std::string frames_json;        // the ring of pre-trigger frames

  [[nodiscard]] std::string to_json() const;
  void append_json(obs::JsonWriter& w) const;
};

/// Rebuilds a bundle from PostmortemBundle::to_json output. Section
/// fragments are re-serialized from the parsed form (integral numbers stay
/// integral), so a second to_json round-trips byte-identically. Returns
/// false on malformed input.
bool parse_bundle(const std::string& json, PostmortemBundle& out);

struct FlightRecorderConfig {
  /// Pre-trigger frames retained in the ring.
  std::size_t frame_capacity = 32;
  /// Frozen bundles retained (oldest evicted first).
  std::size_t max_bundles = 4;
};

class FlightRecorder {
 public:
  struct Frame {
    TimePoint at;
    std::string data_json;  // compact cluster-state object
  };

  explicit FlightRecorder(FlightRecorderConfig config = {})
      : config_(config) {}

  /// Appends one frame to the ring (oldest evicted at capacity).
  void record_frame(TimePoint at, std::string data_json) {
    while (frames_.size() >= config_.frame_capacity && !frames_.empty()) {
      frames_.pop_front();
    }
    if (config_.frame_capacity > 0) {
      frames_.push_back(Frame{at, std::move(data_json)});
    }
  }

  /// Sections the Cluster assembles at freeze time.
  struct Sections {
    std::string slo_json;
    std::string cost_json;
    std::string exemplars_json;
    std::string events_json;
    std::string slow_queries_json;
    std::string config_json;
    std::string heat_json;
  };

  /// Freezes the current ring plus `sections` into a bundle.
  const PostmortemBundle& freeze(TimePoint now, const FlightTrigger& trigger,
                                 Sections sections);

  [[nodiscard]] const std::deque<Frame>& frames() const { return frames_; }
  [[nodiscard]] const std::deque<PostmortemBundle>& bundles() const {
    return bundles_;
  }
  /// Bundles ever frozen (>= bundles().size() once eviction kicks in).
  [[nodiscard]] std::uint64_t total_frozen() const { return total_frozen_; }
  [[nodiscard]] const PostmortemBundle* latest() const {
    return bundles_.empty() ? nullptr : &bundles_.back();
  }

  /// {"frames": N, "bundles": [...]} overview.
  [[nodiscard]] std::string to_json() const;

 private:
  FlightRecorderConfig config_;
  std::deque<Frame> frames_;
  std::deque<PostmortemBundle> bundles_;
  std::uint64_t total_frozen_ = 0;
};

}  // namespace stcn
