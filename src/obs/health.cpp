#include "obs/health.h"

namespace stcn {

namespace {
constexpr char kSep = '\x1f';
}  // namespace

std::vector<AlertRule> default_health_rules(const HealthThresholds& t) {
  std::vector<AlertRule> rules;

  // Retransmit storm: the reliable channel is fighting loss or a partition.
  // Every node has a channel, so no source filter — the subject is the
  // node whose channel is storming.
  AlertRule retransmit;
  retransmit.name = "retransmit_storm";
  retransmit.metric = "retransmits";
  retransmit.kind = MetricKind::kCounterRate;
  retransmit.threshold = t.retransmit_rate_per_s;
  retransmit.severity = AlertSeverity::kDegraded;
  rules.push_back(std::move(retransmit));

  // Hedge-win spike: backups keep beating one primary — the classic gray
  // failure signature. Coordinator-side per-peer counter; the wildcard
  // capture (the peer's node id) indicts the slow worker.
  AlertRule hedge;
  hedge.name = "hedge_win_spike";
  hedge.metric = "peer.*.hedge_wins";
  hedge.kind = MetricKind::kCounterRate;
  hedge.threshold = t.hedge_win_rate_per_s;
  hedge.severity = AlertSeverity::kSuspect;
  hedge.source_filter = "coordinator";
  hedge.subject_prefix = "worker.";
  rules.push_back(std::move(hedge));

  // Per-node latency burn: windowed mean of one peer's fragment round-trip
  // (delta sum / delta count between samples), so it both fires under slow
  // responses and resolves on fresh fast evidence after healing.
  AlertRule burn;
  burn.name = "latency_burn";
  burn.metric = "peer.*.fragment_latency_us";
  burn.kind = MetricKind::kHistogramMean;
  burn.threshold = t.fragment_latency_mean_us;
  burn.severity = AlertSeverity::kSuspect;
  burn.source_filter = "coordinator";
  burn.subject_prefix = "worker.";
  rules.push_back(std::move(burn));

  // Queue buildup: unacked reliable frames piling up at a node.
  AlertRule queue;
  queue.name = "queue_buildup";
  queue.metric = "unacked_frames";
  queue.kind = MetricKind::kGaugeLevel;
  queue.threshold = t.queue_depth_frames;
  queue.severity = AlertSeverity::kDegraded;
  rules.push_back(std::move(queue));

  // Ingest stall: the coordinator's ingest rate fell below the floor.
  // kBelow rules only arm once the counter has moved, so an idle cluster
  // (or one that never ingested) stays healthy.
  AlertRule stall;
  stall.name = "ingest_stall";
  stall.metric = "ingested";
  stall.kind = MetricKind::kCounterRate;
  stall.compare = AlertComparison::kBelow;
  stall.threshold = t.ingest_stall_rate_per_s;
  stall.for_samples = 3;
  stall.severity = AlertSeverity::kDegraded;
  stall.source_filter = "coordinator";
  rules.push_back(std::move(stall));

  // Recovery stalled: the coordinator still has partitions parked in the
  // RECOVERING state after several samples — a rejoining worker is not
  // catching up (holder down, lossy link, or exchange ladder burning).
  AlertRule stalled;
  stalled.name = "recovery_stalled";
  stalled.metric = "partitions_recovering";
  stalled.kind = MetricKind::kGaugeLevel;
  stalled.threshold = t.partitions_recovering_level;
  stalled.for_samples = 6;
  stalled.severity = AlertSeverity::kDegraded;
  stalled.source_filter = "coordinator";
  rules.push_back(std::move(stalled));

  // Resync retry storm: a recovering worker's sync exchanges keep timing
  // out and walking their backoff ladder — the delta/full resync path is
  // fighting loss or a dead holder.
  AlertRule resync;
  resync.name = "resync_retry_storm";
  resync.metric = "resync_exchange_retries";
  resync.kind = MetricKind::kCounterRate;
  resync.threshold = t.resync_retry_rate_per_s;
  resync.for_samples = 3;
  resync.severity = AlertSeverity::kDegraded;
  resync.source_filter = "worker.*";
  rules.push_back(std::move(resync));

  // Partition imbalance: the heat observatory's relative stddev of
  // per-partition load (stddev/mean over the coordinator's HeatMapSnapshot)
  // stays high — ingest or scan load is concentrating instead of spreading.
  AlertRule imbalance;
  imbalance.name = "partition_imbalance";
  imbalance.metric = "partition.load_relative_stddev";
  imbalance.kind = MetricKind::kGaugeLevel;
  imbalance.threshold = t.partition_load_relative_stddev;
  imbalance.for_samples = 3;
  imbalance.resolve_samples = 3;
  imbalance.severity = AlertSeverity::kDegraded;
  imbalance.source_filter = "coordinator";
  rules.push_back(std::move(imbalance));

  // Hot partition: one partition's load dwarfs the coldest — the signal
  // the PlacementAdvisor turns into a split/migrate recommendation.
  AlertRule hot;
  hot.name = "hot_partition";
  hot.metric = "partition.hot_cold_ratio";
  hot.kind = MetricKind::kGaugeLevel;
  hot.threshold = t.hot_partition_ratio;
  hot.for_samples = 3;
  hot.resolve_samples = 3;
  hot.severity = AlertSeverity::kDegraded;
  hot.source_filter = "coordinator";
  rules.push_back(std::move(hot));

  return rules;
}

bool HealthMonitor::wildcard_match(const std::string& pattern,
                                   const std::string& name,
                                   std::string* capture) {
  std::size_t star = pattern.find('*');
  if (star == std::string::npos) {
    if (pattern != name) return false;
    capture->clear();
    return true;
  }
  std::string prefix = pattern.substr(0, star);
  std::string suffix = pattern.substr(star + 1);
  if (name.size() < prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
      0) {
    return false;
  }
  *capture =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  return true;
}

bool HealthMonitor::source_matches(const std::string& filter,
                                   const std::string& source) {
  if (filter.empty()) return true;
  if (!filter.empty() && filter.back() == '*') {
    std::string prefix = filter.substr(0, filter.size() - 1);
    return source.compare(0, prefix.size(), prefix) == 0;
  }
  return filter == source;
}

void HealthMonitor::sample(TimePoint now) {
  double dt =
      samples_ == 0 ? 0.0 : (now - last_sample_).to_seconds();
  for (const AlertRule& rule : rules_) {
    for (const Source& src : sources_) {
      if (!source_matches(rule.source_filter, src.name)) continue;
      sample_rule(rule, src, now, dt);
    }
  }
  last_sample_ = now;
  ++samples_;
}

void HealthMonitor::sample_rule(const AlertRule& rule, const Source& src,
                                TimePoint now, double dt_seconds) {
  // Expand the rule's metric pattern against the right metric family.
  std::string capture;
  auto visit = [&](const std::string& metric_name, auto&& read_value) {
    if (!wildcard_match(rule.metric, metric_name, &capture)) return;
    // Series state is per (source, metric, kind, rule): two rules over the
    // same metric must not consume each other's deltas.
    std::string key = src.name;
    key += kSep;
    key += metric_name;
    key += kSep;
    key += std::to_string(static_cast<int>(rule.kind));
    key += kSep;
    key += rule.name;
    SeriesState& state = series_state(key);

    double value = 0.0;
    bool ready = false;  // false freezes the alert streaks (no evidence)
    read_value(state, value, ready);
    state.series.push(now, value);
    if (!ready) return;
    if (rule.compare == AlertComparison::kBelow && !state.armed) return;
    evaluate(rule, src.name, metric_name, capture, value, now);
  };

  switch (rule.kind) {
    case MetricKind::kCounterRate: {
      for (const auto& [name, c] : src.registry->counters()) {
        double raw = static_cast<double>(c->value());
        visit(name, [&](SeriesState& st, double& value, bool& ready) {
          if (raw > 0.0) st.armed = true;
          if (st.has_prev && dt_seconds > 0.0) {
            // Clamped at zero: a subject restarting mid-window resets its
            // counters, and a negative "rate" would both evade kAbove rules
            // and spuriously breach kBelow floors during recovery.
            value = raw >= st.prev_a ? (raw - st.prev_a) / dt_seconds : 0.0;
            ready = true;
          }
          st.prev_a = raw;
          st.has_prev = true;
        });
      }
      break;
    }
    case MetricKind::kGaugeLevel: {
      for (const auto& [name, g] : src.registry->gauges()) {
        double raw = g->value();
        visit(name, [&](SeriesState& st, double& value, bool& ready) {
          if (raw != 0.0) st.armed = true;
          value = raw;
          ready = true;
        });
      }
      break;
    }
    case MetricKind::kHistogramMean: {
      for (const auto& [name, h] : src.registry->histograms()) {
        double count = static_cast<double>(h->count());
        double sum = h->sum();
        visit(name, [&](SeriesState& st, double& value, bool& ready) {
          if (count > 0.0) st.armed = true;
          if (st.has_prev && count > st.prev_a) {
            // Windowed mean over only the observations since last sample.
            value = (sum - st.prev_b) / (count - st.prev_a);
            ready = true;
          }
          st.prev_a = count;
          st.prev_b = sum;
          st.has_prev = true;
        });
      }
      break;
    }
    case MetricKind::kHistogramP99: {
      for (const auto& [name, h] : src.registry->histograms()) {
        double p99 = h->p99();
        bool lit = h->count() > 0;
        visit(name, [&](SeriesState& st, double& value, bool& ready) {
          if (lit) st.armed = true;
          value = p99;
          ready = lit;
        });
      }
      break;
    }
  }
}

void HealthMonitor::evaluate(const AlertRule& rule,
                             const std::string& source,
                             const std::string& metric,
                             const std::string& capture, double value,
                             TimePoint now) {
  std::string key = rule.name;
  key += kSep;
  key += source;
  key += kSep;
  key += metric;
  auto it = alerts_.find(key);
  if (it == alerts_.end()) {
    AlertState fresh;
    fresh.rule = rule.name;
    fresh.source = source;
    fresh.metric = metric;
    fresh.subject =
        capture.empty() ? source : rule.subject_prefix + capture;
    fresh.severity = rule.severity;
    it = alerts_.emplace(std::move(key), std::move(fresh)).first;
  }
  AlertState& state = it->second;
  state.last_value = value;

  bool breach = rule.compare == AlertComparison::kAbove
                    ? value > rule.threshold
                    : value < rule.threshold;
  if (breach) {
    ++state.breach_streak;
    state.clear_streak = 0;
    if (!state.firing && state.breach_streak >= rule.for_samples) {
      state.firing = true;
      ++state.times_fired;
      state.last_transition = now;
      events_.append({now, "firing", rule.name, source, state.subject,
                      alert_severity_name(rule.severity), value,
                      rule.threshold});
    }
  } else {
    ++state.clear_streak;
    state.breach_streak = 0;
    if (state.firing && state.clear_streak >= rule.resolve_samples) {
      state.firing = false;
      state.last_transition = now;
      events_.append({now, "resolved", rule.name, source, state.subject,
                      alert_severity_name(rule.severity), value,
                      rule.threshold});
    }
  }
}

std::vector<const AlertState*> HealthMonitor::alerts() const {
  std::vector<const AlertState*> out;
  out.reserve(alerts_.size());
  for (const auto& [key, state] : alerts_) out.push_back(&state);
  return out;
}

std::vector<const AlertState*> HealthMonitor::firing() const {
  std::vector<const AlertState*> out;
  for (const auto& [key, state] : alerts_) {
    if (state.firing) out.push_back(&state);
  }
  return out;
}

bool HealthMonitor::is_firing(const std::string& rule,
                              const std::string& subject) const {
  for (const auto& [key, state] : alerts_) {
    if (!state.firing || state.rule != rule) continue;
    if (!subject.empty() && state.subject != subject) continue;
    return true;
  }
  return false;
}

ClusterHealth HealthMonitor::health() const {
  ClusterHealth h;
  h.as_of = last_sample_;
  for (const Source& src : sources_) {
    h.nodes.emplace(src.name, HealthStatus::kHealthy);
  }
  for (const auto& [key, state] : alerts_) {
    if (!state.firing) continue;
    HealthStatus status = state.severity == AlertSeverity::kSuspect
                              ? HealthStatus::kSuspect
                              : HealthStatus::kDegraded;
    HealthStatus& current = h.nodes[state.subject];
    if (static_cast<int>(status) > static_cast<int>(current)) {
      current = status;
    }
  }
  return h;
}

const TimeSeries* HealthMonitor::series(const std::string& source,
                                        const std::string& metric,
                                        MetricKind kind) const {
  std::string prefix = source;
  prefix += kSep;
  prefix += metric;
  prefix += kSep;
  prefix += std::to_string(static_cast<int>(kind));
  prefix += kSep;
  auto it = series_.lower_bound(prefix);
  if (it == series_.end() ||
      it->first.compare(0, prefix.size(), prefix) != 0) {
    return nullptr;
  }
  return &it->second.series;
}

std::string HealthMonitor::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("samples");
  w.value(samples_);
  w.key("as_of_us");
  w.value(last_sample_.micros_since_origin());
  ClusterHealth h = health();
  w.key("nodes");
  w.begin_object();
  for (const auto& [node, status] : h.nodes) {
    w.key(node);
    w.value(health_status_name(status));
  }
  w.end_object();
  w.key("alerts");
  w.begin_array();
  for (const auto& [key, state] : alerts_) {
    w.begin_object();
    w.key("rule");
    w.value(state.rule);
    w.key("source");
    w.value(state.source);
    w.key("metric");
    w.value(state.metric);
    w.key("subject");
    w.value(state.subject);
    w.key("severity");
    w.value(alert_severity_name(state.severity));
    w.key("firing");
    w.value(state.firing);
    w.key("times_fired");
    w.value(state.times_fired);
    w.key("last_value");
    w.value(state.last_value);
    w.end_object();
  }
  w.end_array();
  w.key("events");
  events_.append_json(w);
  w.end_object();
  return w.take();
}

}  // namespace stcn
