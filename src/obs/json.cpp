#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace stcn::obs {

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; exporters emit null and importers treat it as 0.
    out_ += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips any double; trim to the shortest form that still
  // parses back exactly for readability.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double reparsed = std::strtod(buf, nullptr);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == reparsed) {
      out_ += shorter;
      return;
    }
  }
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::value(std::int64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::write_string(const std::string& s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      case '\b': out_ += "\\b"; break;
      case '\f': out_ += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          // Non-ASCII bytes (UTF-8 sequences) pass through verbatim.
          out_ += c;
        }
    }
  }
  out_ += '"';
}

const JsonValue& JsonValue::at(const std::string& k) const {
  static const JsonValue kNullValue;
  auto it = object_.find(k);
  return it == object_.end() ? kNullValue : it->second;
}

// ----------------------------------------------------------------- parser

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool run(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* what) {
    if (error_ != nullptr) {
      *error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.string_);
      }
      case 't':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return consume_literal("true");
      case 'f':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return consume_literal("false");
      case 'n':
        out.kind_ = JsonValue::Kind::kNull;
        return consume_literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind_ = JsonValue::Kind::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue member;
      if (!parse_value(member)) return false;
      out.object_.emplace(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind_ = JsonValue::Kind::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array_.push_back(std::move(element));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Decode the BMP code point to UTF-8 (surrogate pairs are not
          // paired up — exporters never emit them; a lone surrogate decodes
          // as its raw code point).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    out.kind_ = JsonValue::Kind::kNumber;
    out.number_ = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

bool JsonValue::parse(const std::string& text, JsonValue& out,
                      std::string* error) {
  out = JsonValue();
  return JsonParser(text, error).run(out);
}

}  // namespace stcn::obs
