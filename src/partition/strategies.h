// Concrete partitioning strategies.
//
// * SpatialGridStrategy — world cut into a grid of tiles; strong query
//   pruning, but hotspot tiles overload their workers.
// * HashStrategy — partition by camera-id hash; perfect balance, zero
//   spatial pruning (every region query fans out everywhere).
// * TemporalStrategy — round-robin by time epoch; balances over time,
//   prunes only temporally-narrow queries.
// * HybridStrategy — spatial tiles, with tiles hotter than a load threshold
//   split across several hash sub-partitions. Keeps spatial pruning while
//   capping per-partition load; the framework default.
#pragma once

#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "partition/partition_map.h"
#include "trace/camera.h"

namespace stcn {

class SpatialGridStrategy final : public PartitionStrategy {
 public:
  /// Cuts `world` into tiles_x × tiles_y partitions. `cameras` provides
  /// camera positions for camera-footprint routing.
  SpatialGridStrategy(Rect world, std::size_t tiles_x, std::size_t tiles_y,
                      const CameraNetwork& cameras);

  [[nodiscard]] std::string name() const override { return "spatial"; }
  [[nodiscard]] std::size_t partition_count() const override {
    return tiles_x_ * tiles_y_;
  }
  [[nodiscard]] PartitionId partition_of(CameraId camera, Point position,
                                         TimePoint time) const override;
  [[nodiscard]] std::vector<PartitionId> partitions_for_region(
      const Rect& region, const TimeInterval& interval) const override;
  [[nodiscard]] std::vector<PartitionId> partitions_for_camera(
      CameraId camera, const TimeInterval& interval) const override;

  /// Tile rectangle of a partition (for tests and diagnostics).
  [[nodiscard]] Rect tile_bounds(PartitionId p) const;

 private:
  [[nodiscard]] std::size_t tile_x(double x) const;
  [[nodiscard]] std::size_t tile_y(double y) const;

  Rect world_;
  std::size_t tiles_x_;
  std::size_t tiles_y_;
  std::unordered_map<CameraId, Point> camera_positions_;
};

class HashStrategy final : public PartitionStrategy {
 public:
  explicit HashStrategy(std::size_t partition_count)
      : partition_count_(partition_count) {
    STCN_CHECK(partition_count_ > 0);
  }

  [[nodiscard]] std::string name() const override { return "hash"; }
  [[nodiscard]] std::size_t partition_count() const override {
    return partition_count_;
  }
  [[nodiscard]] PartitionId partition_of(CameraId camera, Point,
                                         TimePoint) const override {
    return PartitionId(mix(camera.value()) % partition_count_);
  }
  [[nodiscard]] std::vector<PartitionId> partitions_for_region(
      const Rect&, const TimeInterval&) const override {
    return all_partitions();  // no spatial knowledge — must broadcast
  }
  [[nodiscard]] std::vector<PartitionId> partitions_for_camera(
      CameraId camera, const TimeInterval&) const override {
    return {PartitionId(mix(camera.value()) % partition_count_)};
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    return SplitMix64(x).next();
  }
  std::size_t partition_count_;
};

class TemporalStrategy final : public PartitionStrategy {
 public:
  TemporalStrategy(std::size_t partition_count, Duration epoch)
      : partition_count_(partition_count), epoch_(epoch) {
    STCN_CHECK(partition_count_ > 0);
    STCN_CHECK(epoch_ > Duration::zero());
  }

  [[nodiscard]] std::string name() const override { return "temporal"; }
  [[nodiscard]] std::size_t partition_count() const override {
    return partition_count_;
  }
  [[nodiscard]] PartitionId partition_of(CameraId, Point,
                                         TimePoint time) const override {
    return PartitionId(epoch_index(time) % partition_count_);
  }
  [[nodiscard]] std::vector<PartitionId> partitions_for_region(
      const Rect&, const TimeInterval& interval) const override {
    return epochs_in(interval);
  }
  [[nodiscard]] std::vector<PartitionId> partitions_for_camera(
      CameraId, const TimeInterval& interval) const override {
    return epochs_in(interval);
  }

 private:
  [[nodiscard]] std::uint64_t epoch_index(TimePoint t) const {
    std::int64_t m = t.micros_since_origin();
    if (m < 0) m = 0;
    return static_cast<std::uint64_t>(m / epoch_.count_micros());
  }
  [[nodiscard]] std::vector<PartitionId> epochs_in(
      const TimeInterval& interval) const;

  std::size_t partition_count_;
  Duration epoch_;
};

class HybridStrategy final : public PartitionStrategy {
 public:
  struct Config {
    std::size_t tiles_x = 4;
    std::size_t tiles_y = 4;
    /// A tile with more than `hot_camera_threshold` cameras is split.
    std::size_t hot_camera_threshold = 8;
    /// Hash fan-out for hot tiles.
    std::size_t hot_split_factor = 4;
  };

  HybridStrategy(Rect world, const CameraNetwork& cameras,
                 const Config& config);

  [[nodiscard]] std::string name() const override { return "hybrid"; }
  [[nodiscard]] std::size_t partition_count() const override {
    return total_partitions_;
  }
  [[nodiscard]] PartitionId partition_of(CameraId camera, Point position,
                                         TimePoint time) const override;
  [[nodiscard]] std::vector<PartitionId> partitions_for_region(
      const Rect& region, const TimeInterval& interval) const override;
  [[nodiscard]] std::vector<PartitionId> partitions_for_camera(
      CameraId camera, const TimeInterval& interval) const override;

  [[nodiscard]] std::size_t hot_tile_count() const { return hot_tiles_; }

 private:
  [[nodiscard]] std::size_t tile_of(Point p) const;
  /// Partitions backing one tile: [first_partition[tile],
  /// first_partition[tile] + width[tile]).
  void tile_partitions(std::size_t tile, std::vector<PartitionId>& out) const;

  Rect world_;
  Config config_;
  std::unordered_map<CameraId, Point> camera_positions_;
  std::vector<std::size_t> first_partition_;  // per tile
  std::vector<std::size_t> width_;            // per tile (1 or split factor)
  std::size_t total_partitions_ = 0;
  std::size_t hot_tiles_ = 0;
};

}  // namespace stcn
