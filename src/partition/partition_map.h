// Partition map: how the detection space is divided across workers.
//
// A partition is the unit of placement, routing, and replication. A
// PartitionStrategy decides (a) which partition an incoming detection
// belongs to and (b) which partitions a query footprint can possibly touch —
// the second is what lets the coordinator prune worker fan-out. The
// PartitionMap assigns each partition a primary and a backup worker.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"

namespace stcn {

/// Strategy interface: pure routing logic, no ownership of data.
class PartitionStrategy {
 public:
  virtual ~PartitionStrategy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Total number of partitions this strategy produces.
  [[nodiscard]] virtual std::size_t partition_count() const = 0;

  /// Partition owning a detection from `camera` at `position` / `time`.
  [[nodiscard]] virtual PartitionId partition_of(CameraId camera,
                                                 Point position,
                                                 TimePoint time) const = 0;

  /// Partitions that can hold detections with position ∈ region and time ∈
  /// interval. Must be a superset of the truth (soundness); smaller is
  /// better (pruning).
  [[nodiscard]] virtual std::vector<PartitionId> partitions_for_region(
      const Rect& region, const TimeInterval& interval) const = 0;

  /// Partitions that can hold detections from `camera` during `interval`.
  [[nodiscard]] virtual std::vector<PartitionId> partitions_for_camera(
      CameraId camera, const TimeInterval& interval) const = 0;

  /// All partitions (used for queries without a spatial footprint, e.g.
  /// trajectory-by-object-id).
  [[nodiscard]] std::vector<PartitionId> all_partitions() const {
    std::vector<PartitionId> out;
    out.reserve(partition_count());
    for (std::size_t i = 0; i < partition_count(); ++i) {
      out.emplace_back(i);
    }
    return out;
  }
};

/// Placement of partitions on workers, with a replication factor of 2.
class PartitionMap {
 public:
  PartitionMap() = default;

  /// Round-robin placement of `partition_count` partitions over `workers`,
  /// with the backup on the next worker (distinct when worker_count > 1).
  static PartitionMap round_robin(std::size_t partition_count,
                                  const std::vector<WorkerId>& workers) {
    STCN_CHECK(!workers.empty());
    PartitionMap map;
    map.primary_.resize(partition_count);
    map.backup_.resize(partition_count);
    for (std::size_t p = 0; p < partition_count; ++p) {
      map.primary_[p] = workers[p % workers.size()];
      map.backup_[p] = workers[(p + 1) % workers.size()];
    }
    return map;
  }

  [[nodiscard]] std::size_t partition_count() const {
    return primary_.size();
  }
  [[nodiscard]] WorkerId primary(PartitionId p) const {
    STCN_CHECK(p.value() < primary_.size());
    return primary_[p.value()];
  }
  [[nodiscard]] WorkerId backup(PartitionId p) const {
    STCN_CHECK(p.value() < backup_.size());
    return backup_[p.value()];
  }
  [[nodiscard]] bool has_distinct_backup(PartitionId p) const {
    return backup(p) != primary(p);
  }

  /// Re-points the primary of `p` (failover).
  void set_primary(PartitionId p, WorkerId w) {
    STCN_CHECK(p.value() < primary_.size());
    primary_[p.value()] = w;
  }
  void set_backup(PartitionId p, WorkerId w) {
    STCN_CHECK(p.value() < backup_.size());
    backup_[p.value()] = w;
  }

  /// Partitions whose primary is `w`.
  [[nodiscard]] std::vector<PartitionId> partitions_of(WorkerId w) const {
    std::vector<PartitionId> out;
    for (std::size_t p = 0; p < primary_.size(); ++p) {
      if (primary_[p] == w) out.emplace_back(p);
    }
    return out;
  }

 private:
  std::vector<WorkerId> primary_;
  std::vector<WorkerId> backup_;
};

}  // namespace stcn
