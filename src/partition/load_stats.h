// Load-balance metrics over a partition assignment (experiment E3).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "partition/partition_map.h"

namespace stcn {

/// Per-partition and per-worker event counts for one ingest run.
class LoadStats {
 public:
  explicit LoadStats(std::size_t partition_count)
      : per_partition_(partition_count, 0) {}

  void record(PartitionId p, WorkerId w) {
    STCN_CHECK(p.value() < per_partition_.size());
    ++per_partition_[p.value()];
    ++per_worker_[w];
  }

  [[nodiscard]] const std::vector<std::uint64_t>& per_partition() const {
    return per_partition_;
  }

  /// Coefficient of variation of per-worker load over `workers` (workers
  /// with zero load count as zero — an idle worker is imbalance too).
  [[nodiscard]] double worker_load_cv(
      const std::vector<WorkerId>& workers) const {
    RunningStat stat;
    for (WorkerId w : workers) {
      auto it = per_worker_.find(w);
      stat.add(it == per_worker_.end() ? 0.0
                                       : static_cast<double>(it->second));
    }
    return stat.cv();
  }

  /// Max/mean per-worker load ratio (1.0 = perfectly balanced).
  [[nodiscard]] double worker_max_over_mean(
      const std::vector<WorkerId>& workers) const {
    RunningStat stat;
    for (WorkerId w : workers) {
      auto it = per_worker_.find(w);
      stat.add(it == per_worker_.end() ? 0.0
                                       : static_cast<double>(it->second));
    }
    return stat.mean() > 0.0 ? stat.max() / stat.mean() : 0.0;
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : per_partition_) t += c;
    return t;
  }

 private:
  std::vector<std::uint64_t> per_partition_;
  std::unordered_map<WorkerId, std::uint64_t> per_worker_;
};

}  // namespace stcn
