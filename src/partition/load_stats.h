// Load-balance metrics over a partition assignment (experiment E3), plus
// the per-partition heat record and the skew statistics (relative stddev,
// Gini) shared by the heat observatory in obs/heat.h.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "partition/partition_map.h"

namespace stcn {

/// Per-partition load telemetry a worker accumulates and ships to the
/// coordinator (piggybacked on heartbeats). All fields except
/// `store_memory_bytes` (a level) and `ewma_load_per_s` (a smoothed rate)
/// are monotonic totals for the worker's current incarnation — a crash
/// resets them, and every rate derived downstream clamps at zero.
struct PartitionHeat {
  PartitionId partition;
  std::uint64_t ingested_rows = 0;
  std::uint64_t rows_evaluated = 0;
  std::uint64_t rows_selected = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_skipped = 0;
  std::uint64_t fragments_served = 0;
  std::uint64_t wire_bytes_out = 0;
  std::uint64_t store_memory_bytes = 0;
  double ewma_load_per_s = 0.0;
};

/// Scalar load of one partition: ingest work plus scan work. Row-granular
/// on both sides so a write-heavy and a read-heavy partition compare on
/// the same axis.
[[nodiscard]] inline double partition_heat_load(const PartitionHeat& h) {
  return static_cast<double>(h.ingested_rows) +
         static_cast<double>(h.rows_evaluated);
}

/// Population relative standard deviation (stddev / mean) of `xs` — the
/// NuCut-style balance metric: 0 = perfectly even, grows with skew.
/// Returns 0 for an empty or all-zero vector (idle is not imbalance).
[[nodiscard]] inline double relative_stddev(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double n = static_cast<double>(xs.size());
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= n;
  if (mean == 0.0) return 0.0;
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / n) / mean;
}

/// Gini coefficient over non-negative loads: 0 = evenly spread, → 1 as
/// all load concentrates on one element. Returns 0 when fewer than two
/// elements or no load at all.
[[nodiscard]] inline double gini(std::vector<double> xs) {
  if (xs.size() < 2) return 0.0;
  std::sort(xs.begin(), xs.end());
  double n = static_cast<double>(xs.size());
  double sum = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) * xs[i];
    sum += xs[i];
  }
  return sum > 0.0 ? weighted / (n * sum) : 0.0;
}

/// Per-partition and per-worker event counts for one ingest run.
class LoadStats {
 public:
  explicit LoadStats(std::size_t partition_count)
      : per_partition_(partition_count, 0) {}

  void record(PartitionId p, WorkerId w) {
    STCN_CHECK(p.value() < per_partition_.size());
    ++per_partition_[p.value()];
    ++per_worker_[w];
  }

  [[nodiscard]] const std::vector<std::uint64_t>& per_partition() const {
    return per_partition_;
  }

  /// Coefficient of variation of per-worker load over `workers` (workers
  /// with zero load count as zero — an idle worker is imbalance too).
  [[nodiscard]] double worker_load_cv(
      const std::vector<WorkerId>& workers) const {
    RunningStat stat;
    for (WorkerId w : workers) {
      auto it = per_worker_.find(w);
      stat.add(it == per_worker_.end() ? 0.0
                                       : static_cast<double>(it->second));
    }
    return stat.cv();
  }

  /// Max/mean per-worker load ratio (1.0 = perfectly balanced).
  [[nodiscard]] double worker_max_over_mean(
      const std::vector<WorkerId>& workers) const {
    RunningStat stat;
    for (WorkerId w : workers) {
      auto it = per_worker_.find(w);
      stat.add(it == per_worker_.end() ? 0.0
                                       : static_cast<double>(it->second));
    }
    return stat.mean() > 0.0 ? stat.max() / stat.mean() : 0.0;
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : per_partition_) t += c;
    return t;
  }

  /// Relative stddev of per-partition load (NuCut balance metric).
  [[nodiscard]] double partition_load_relative_stddev() const {
    std::vector<double> loads;
    loads.reserve(per_partition_.size());
    for (auto c : per_partition_) loads.push_back(static_cast<double>(c));
    return relative_stddev(loads);
  }

  /// Gini coefficient of per-worker load over `workers` (idle workers
  /// count as zero load).
  [[nodiscard]] double worker_load_gini(
      const std::vector<WorkerId>& workers) const {
    std::vector<double> loads;
    loads.reserve(workers.size());
    for (WorkerId w : workers) {
      auto it = per_worker_.find(w);
      loads.push_back(it == per_worker_.end()
                          ? 0.0
                          : static_cast<double>(it->second));
    }
    return gini(std::move(loads));
  }

 private:
  std::vector<std::uint64_t> per_partition_;
  std::unordered_map<WorkerId, std::uint64_t> per_worker_;
};

}  // namespace stcn
