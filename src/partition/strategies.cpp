#include "partition/strategies.h"

#include <algorithm>

namespace stcn {

// ---------------------------------------------------------------- spatial

SpatialGridStrategy::SpatialGridStrategy(Rect world, std::size_t tiles_x,
                                         std::size_t tiles_y,
                                         const CameraNetwork& cameras)
    : world_(world), tiles_x_(tiles_x), tiles_y_(tiles_y) {
  STCN_CHECK(!world.is_empty());
  STCN_CHECK(tiles_x_ > 0 && tiles_y_ > 0);
  for (const Camera& cam : cameras.cameras()) {
    camera_positions_[cam.id] = cam.fov.apex;
  }
}

std::size_t SpatialGridStrategy::tile_x(double x) const {
  auto t = static_cast<std::ptrdiff_t>(
      std::floor((x - world_.min.x) / world_.width() *
                 static_cast<double>(tiles_x_)));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(t, 0, static_cast<std::ptrdiff_t>(tiles_x_) - 1));
}

std::size_t SpatialGridStrategy::tile_y(double y) const {
  auto t = static_cast<std::ptrdiff_t>(
      std::floor((y - world_.min.y) / world_.height() *
                 static_cast<double>(tiles_y_)));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(t, 0, static_cast<std::ptrdiff_t>(tiles_y_) - 1));
}

PartitionId SpatialGridStrategy::partition_of(CameraId, Point position,
                                              TimePoint) const {
  return PartitionId(tile_y(position.y) * tiles_x_ + tile_x(position.x));
}

std::vector<PartitionId> SpatialGridStrategy::partitions_for_region(
    const Rect& region, const TimeInterval&) const {
  std::vector<PartitionId> out;
  if (region.is_empty()) return out;
  std::size_t x0 = tile_x(region.min.x);
  std::size_t x1 = tile_x(region.max.x);
  std::size_t y0 = tile_y(region.min.y);
  std::size_t y1 = tile_y(region.max.y);
  for (std::size_t y = y0; y <= y1; ++y) {
    for (std::size_t x = x0; x <= x1; ++x) {
      out.emplace_back(y * tiles_x_ + x);
    }
  }
  return out;
}

std::vector<PartitionId> SpatialGridStrategy::partitions_for_camera(
    CameraId camera, const TimeInterval&) const {
  auto it = camera_positions_.find(camera);
  if (it == camera_positions_.end()) return all_partitions();
  // A camera's detections carry positions within its FOV, which may cross a
  // tile edge; return the tiles the FOV's reach can touch. Conservative:
  // pad by a typical FOV range.
  constexpr double kPad = 80.0;
  return partitions_for_region(Rect::centered(it->second, kPad),
                               TimeInterval::all());
}

Rect SpatialGridStrategy::tile_bounds(PartitionId p) const {
  std::size_t idx = p.value();
  std::size_t ty = idx / tiles_x_;
  std::size_t tx = idx % tiles_x_;
  double w = world_.width() / static_cast<double>(tiles_x_);
  double h = world_.height() / static_cast<double>(tiles_y_);
  Point lo{world_.min.x + static_cast<double>(tx) * w,
           world_.min.y + static_cast<double>(ty) * h};
  return {lo, {lo.x + w, lo.y + h}};
}

// --------------------------------------------------------------- temporal

std::vector<PartitionId> TemporalStrategy::epochs_in(
    const TimeInterval& interval) const {
  if (interval.empty()) return {};
  std::uint64_t first = epoch_index(interval.begin);
  std::uint64_t last = epoch_index(interval.end - Duration::micros(1));
  if (last - first + 1 >= partition_count_) return all_partitions();
  std::vector<PartitionId> out;
  for (std::uint64_t e = first; e <= last; ++e) {
    out.emplace_back(e % partition_count_);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ----------------------------------------------------------------- hybrid

HybridStrategy::HybridStrategy(Rect world, const CameraNetwork& cameras,
                               const Config& config)
    : world_(world), config_(config) {
  STCN_CHECK(!world.is_empty());
  STCN_CHECK(config_.tiles_x > 0 && config_.tiles_y > 0);
  STCN_CHECK(config_.hot_split_factor >= 1);
  for (const Camera& cam : cameras.cameras()) {
    camera_positions_[cam.id] = cam.fov.apex;
  }

  std::size_t tile_count = config_.tiles_x * config_.tiles_y;
  std::vector<std::size_t> cameras_per_tile(tile_count, 0);
  for (const Camera& cam : cameras.cameras()) {
    ++cameras_per_tile[tile_of(cam.fov.apex)];
  }

  first_partition_.resize(tile_count);
  width_.resize(tile_count);
  for (std::size_t t = 0; t < tile_count; ++t) {
    bool hot = cameras_per_tile[t] > config_.hot_camera_threshold;
    first_partition_[t] = total_partitions_;
    width_[t] = hot ? config_.hot_split_factor : 1;
    total_partitions_ += width_[t];
    if (hot) ++hot_tiles_;
  }
}

std::size_t HybridStrategy::tile_of(Point p) const {
  auto tx = static_cast<std::ptrdiff_t>(
      std::floor((p.x - world_.min.x) / world_.width() *
                 static_cast<double>(config_.tiles_x)));
  auto ty = static_cast<std::ptrdiff_t>(
      std::floor((p.y - world_.min.y) / world_.height() *
                 static_cast<double>(config_.tiles_y)));
  tx = std::clamp<std::ptrdiff_t>(
      tx, 0, static_cast<std::ptrdiff_t>(config_.tiles_x) - 1);
  ty = std::clamp<std::ptrdiff_t>(
      ty, 0, static_cast<std::ptrdiff_t>(config_.tiles_y) - 1);
  return static_cast<std::size_t>(ty) * config_.tiles_x +
         static_cast<std::size_t>(tx);
}

void HybridStrategy::tile_partitions(std::size_t tile,
                                     std::vector<PartitionId>& out) const {
  for (std::size_t i = 0; i < width_[tile]; ++i) {
    out.emplace_back(first_partition_[tile] + i);
  }
}

PartitionId HybridStrategy::partition_of(CameraId camera, Point position,
                                         TimePoint) const {
  std::size_t tile = tile_of(position);
  std::size_t w = width_[tile];
  if (w == 1) return PartitionId(first_partition_[tile]);
  std::uint64_t h = SplitMix64(camera.value()).next();
  return PartitionId(first_partition_[tile] + h % w);
}

std::vector<PartitionId> HybridStrategy::partitions_for_region(
    const Rect& region, const TimeInterval&) const {
  std::vector<PartitionId> out;
  if (region.is_empty()) return out;
  auto clamp_tile = [](double v, std::size_t n) {
    auto t = static_cast<std::ptrdiff_t>(v);
    return static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(t, 0, static_cast<std::ptrdiff_t>(n) - 1));
  };
  double fx = static_cast<double>(config_.tiles_x) / world_.width();
  double fy = static_cast<double>(config_.tiles_y) / world_.height();
  std::size_t x0 = clamp_tile((region.min.x - world_.min.x) * fx, config_.tiles_x);
  std::size_t x1 = clamp_tile((region.max.x - world_.min.x) * fx, config_.tiles_x);
  std::size_t y0 = clamp_tile((region.min.y - world_.min.y) * fy, config_.tiles_y);
  std::size_t y1 = clamp_tile((region.max.y - world_.min.y) * fy, config_.tiles_y);
  for (std::size_t y = y0; y <= y1; ++y) {
    for (std::size_t x = x0; x <= x1; ++x) {
      tile_partitions(y * config_.tiles_x + x, out);
    }
  }
  return out;
}

std::vector<PartitionId> HybridStrategy::partitions_for_camera(
    CameraId camera, const TimeInterval&) const {
  auto it = camera_positions_.find(camera);
  if (it == camera_positions_.end()) return all_partitions();
  constexpr double kPad = 80.0;
  // Within each candidate tile the camera maps to exactly one hash
  // sub-partition, so refine tile fan-out down to that sub-partition.
  std::vector<PartitionId> tiles_fanout = partitions_for_region(
      Rect::centered(it->second, kPad), TimeInterval::all());
  std::vector<PartitionId> out;
  std::uint64_t h = SplitMix64(camera.value()).next();
  for (std::size_t t = 0; t < width_.size(); ++t) {
    std::size_t first = first_partition_[t];
    std::size_t w = width_[t];
    bool tile_selected = false;
    for (PartitionId p : tiles_fanout) {
      if (p.value() >= first && p.value() < first + w) {
        tile_selected = true;
        break;
      }
    }
    if (tile_selected) out.emplace_back(first + h % w);
  }
  return out;
}

}  // namespace stcn
