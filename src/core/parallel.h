// Real-thread parallel scatter-gather over local index shards.
//
// The simulated cluster executes workers serially on the driver thread; in
// a real deployment each worker runs its fragment concurrently. This
// utility provides that execution model for in-process use: a query is
// executed against N index shards on a persistent TaskPool and the
// fragments merged. Results are bit-identical to sequential execution
// (the merger dedups and canonically orders), so it doubles as a
// thread-safety check on the read path of every index structure: queries
// are const and shards are disjoint, so no synchronization beyond the
// final merge is needed.
//
// The pool threads are created once in the constructor and reused across
// execute() calls; the old implementation spawned and joined fresh
// std::threads per query, which dominated latency for cheap selective
// queries.
//
// Note for benchmarking: on a single-core host this demonstrates
// correctness, not speedup; see DESIGN.md §5 on substituted hardware.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/thread_pool.h"
#include "query/executor.h"

namespace stcn {

class ParallelScatterGather {
 public:
  explicit ParallelScatterGather(std::size_t thread_count)
      : thread_count_(thread_count) {
    STCN_CHECK(thread_count_ > 0);
    if (thread_count_ > 1) pool_ = std::make_unique<TaskPool>(thread_count_);
  }

  /// Executes `query` against every shard, fragments merged canonically.
  [[nodiscard]] QueryResult execute(
      std::span<const WorkerIndexes* const> shards,
      const Query& query) const {
    ResultMerger merger(query);
    if (shards.empty()) return merger.take();

    std::size_t workers = std::min(thread_count_, shards.size());
    if (workers == 1) {
      for (const WorkerIndexes* shard : shards) {
        merger.add(LocalExecutor::execute(*shard, query));
      }
      return merger.take();
    }

    std::atomic<std::size_t> next{0};
    std::mutex merge_mutex;
    pool_->run(workers, [&](std::size_t /*slot*/) {
      // Batch fragments locally; take the merge lock once per thread.
      std::vector<QueryResult> local;
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= shards.size()) break;
        local.push_back(LocalExecutor::execute(*shards[i], query));
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (QueryResult& fragment : local) {
        merger.add(fragment);
      }
    });
    return merger.take();
  }

  [[nodiscard]] std::size_t thread_count() const { return thread_count_; }

 private:
  std::size_t thread_count_;
  std::unique_ptr<TaskPool> pool_;  // null when thread_count_ == 1
};

}  // namespace stcn
