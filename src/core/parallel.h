// Real-thread parallel scatter-gather over local index shards.
//
// The simulated cluster executes workers serially on the driver thread; in
// a real deployment each worker runs its fragment concurrently. This
// utility provides that execution model for in-process use: a query is
// executed against N index shards on a persistent TaskPool and the
// fragments merged. Results are bit-identical to sequential execution
// (the merger dedups and canonically orders), so it doubles as a
// thread-safety check on the read path of every index structure: queries
// are const and shards are disjoint, so no synchronization beyond the
// final merge is needed.
//
// The pool threads are created once in the constructor and reused across
// execute() calls; the old implementation spawned and joined fresh
// std::threads per query, which dominated latency for cheap selective
// queries.
//
// Note for benchmarking: on a single-core host this demonstrates
// correctness, not speedup; see DESIGN.md §5 on substituted hardware.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/thread_pool.h"
#include "query/executor.h"

namespace stcn {

class ParallelScatterGather {
 public:
  explicit ParallelScatterGather(std::size_t thread_count)
      : thread_count_(thread_count) {
    STCN_CHECK(thread_count_ > 0);
    if (thread_count_ > 1) pool_ = std::make_unique<TaskPool>(thread_count_);
  }

  /// Executes `query` against every shard, fragments merged canonically.
  [[nodiscard]] QueryResult execute(
      std::span<const WorkerIndexes* const> shards,
      const Query& query) const {
    ResultMerger merger(query);
    if (shards.empty()) return merger.take();

    std::size_t workers = std::min(thread_count_, shards.size());
    if (workers == 1) {
      for (const WorkerIndexes* shard : shards) {
        merger.add(LocalExecutor::execute(*shard, query));
      }
      return merger.take();
    }

    std::atomic<std::size_t> next{0};
    std::mutex merge_mutex;
    pool_->run(workers, [&](std::size_t /*slot*/) {
      // Batch fragments locally; take the merge lock once per thread.
      std::vector<QueryResult> local;
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= shards.size()) break;
        local.push_back(LocalExecutor::execute(*shards[i], query));
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (QueryResult& fragment : local) {
        merger.add(fragment);
      }
    });
    return merger.take();
  }

  [[nodiscard]] std::size_t thread_count() const { return thread_count_; }

 private:
  std::size_t thread_count_;
  std::unique_ptr<TaskPool> pool_;  // null when thread_count_ == 1
};

/// Morsel-driven parallel scans over one DetectionStore: whole 4096-row
/// blocks are the unit of work, handed to the persistent TaskPool. Each
/// thread claims blocks off an atomic cursor, runs the vectorized block
/// entry into its own selection buffer, and stashes per-block results;
/// outputs are concatenated in block order afterwards so the row order is
/// identical to the single-threaded scan. The block entries only write
/// caller-owned MorselStats (never the store's mutable counters), which is
/// what makes concurrent morsels over one store safe; the merged stats are
/// folded back on the calling thread.
class MorselScanner {
 public:
  explicit MorselScanner(std::size_t thread_count)
      : thread_count_(thread_count) {
    STCN_CHECK(thread_count_ > 0);
    if (thread_count_ > 1) pool_ = std::make_unique<TaskPool>(thread_count_);
  }

  [[nodiscard]] std::vector<DetectionRef> scan_range(
      const DetectionStore& store, const Rect& region,
      const TimeInterval& interval, MorselStats* stats = nullptr) const {
    if (region.is_empty() || interval.empty()) return {};
    return scan(store, stats,
                [&](std::size_t b, std::uint32_t* sel, MorselStats& ms) {
                  return store.scan_range_block(b, region, interval, sel, ms);
                });
  }

  [[nodiscard]] std::vector<DetectionRef> scan_circle(
      const DetectionStore& store, const Circle& circle,
      const TimeInterval& interval, MorselStats* stats = nullptr) const {
    if (interval.empty() || circle.radius < 0.0) return {};
    return scan(store, stats,
                [&](std::size_t b, std::uint32_t* sel, MorselStats& ms) {
                  return store.scan_circle_block(b, circle, interval, sel, ms);
                });
  }

  [[nodiscard]] std::vector<DetectionRef> scan_camera(
      const DetectionStore& store, CameraId camera,
      const TimeInterval& interval, MorselStats* stats = nullptr) const {
    if (interval.empty()) return {};
    return scan(store, stats,
                [&](std::size_t b, std::uint32_t* sel, MorselStats& ms) {
                  return store.scan_camera_block(b, camera, interval, sel, ms);
                });
  }

  [[nodiscard]] std::size_t thread_count() const { return thread_count_; }

 private:
  template <typename BlockFn>
  [[nodiscard]] std::vector<DetectionRef> scan(const DetectionStore& store,
                                               MorselStats* stats,
                                               const BlockFn& block_fn) const {
    std::size_t blocks = store.block_count();
    MorselStats merged;
    std::vector<std::vector<DetectionRef>> per_block(blocks);
    std::size_t workers = pool_ ? std::min(thread_count_, blocks) : 1;
    if (workers <= 1) {
      std::vector<std::uint32_t> sel(kDetectionBlockRows);
      for (std::size_t b = 0; b < blocks; ++b) {
        std::uint32_t n = block_fn(b, sel.data(), merged);
        store_refs(sel.data(), n, per_block[b]);
      }
    } else {
      std::atomic<std::size_t> next{0};
      std::mutex merge_mutex;
      pool_->run(workers, [&](std::size_t /*slot*/) {
        std::vector<std::uint32_t> sel(kDetectionBlockRows);
        MorselStats local;
        for (;;) {
          std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
          if (b >= blocks) break;
          std::uint32_t n = block_fn(b, sel.data(), local);
          store_refs(sel.data(), n, per_block[b]);
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        merged.merge(local);
      });
    }
    store.note_scan(merged);
    if (stats != nullptr) stats->merge(merged);
    std::size_t total = 0;
    for (const auto& v : per_block) total += v.size();
    std::vector<DetectionRef> out;
    out.reserve(total);
    for (const auto& v : per_block) out.insert(out.end(), v.begin(), v.end());
    return out;
  }

  static void store_refs(const std::uint32_t* sel, std::uint32_t n,
                         std::vector<DetectionRef>& out) {
    out.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      out[i] = static_cast<DetectionRef>(sel[i]);
    }
  }

  std::size_t thread_count_;
  std::unique_ptr<TaskPool> pool_;  // null when thread_count_ == 1
};

}  // namespace stcn
