// Real-thread parallel scatter-gather over local index shards.
//
// The simulated cluster executes workers serially on the driver thread; in
// a real deployment each worker runs its fragment concurrently. This
// utility provides that execution model for in-process use: a query is
// executed against N index shards on a pool of std::threads and the
// fragments merged. Results are bit-identical to sequential execution
// (the merger dedups and canonically orders), so it doubles as a
// thread-safety check on the read path of every index structure: queries
// are const and shards are disjoint, so no synchronization beyond the
// final merge is needed.
//
// Note for benchmarking: on a single-core host this demonstrates
// correctness, not speedup; see DESIGN.md §5 on substituted hardware.
#pragma once

#include <atomic>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/status.h"
#include "query/executor.h"

namespace stcn {

class ParallelScatterGather {
 public:
  explicit ParallelScatterGather(std::size_t thread_count)
      : thread_count_(thread_count) {
    STCN_CHECK(thread_count_ > 0);
  }

  /// Executes `query` against every shard, fragments merged canonically.
  [[nodiscard]] QueryResult execute(
      std::span<const WorkerIndexes* const> shards,
      const Query& query) const {
    ResultMerger merger(query);
    if (shards.empty()) return merger.take();

    std::size_t workers = std::min(thread_count_, shards.size());
    if (workers == 1) {
      for (const WorkerIndexes* shard : shards) {
        merger.add(LocalExecutor::execute(*shard, query));
      }
      return merger.take();
    }

    std::atomic<std::size_t> next{0};
    std::mutex merge_mutex;
    auto work = [&] {
      // Batch fragments locally; take the merge lock once per thread.
      std::vector<QueryResult> local;
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= shards.size()) break;
        local.push_back(LocalExecutor::execute(*shards[i], query));
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (QueryResult& fragment : local) {
        merger.add(fragment);
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
      pool.emplace_back(work);
    }
    for (std::thread& t : pool) t.join();
    return merger.take();
  }

  [[nodiscard]] std::size_t thread_count() const { return thread_count_; }

 private:
  std::size_t thread_count_;
};

}  // namespace stcn
