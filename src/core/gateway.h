// Camera gateway nodes: edge-side ingestion.
//
// In a deployed camera network, detections do not funnel through the
// coordinator — edge gateways (one per camera pod / street cabinet) hold a
// cached copy of the partition map and route detection batches straight to
// the owning workers. This file provides that ingestion path, plus a relay
// mode (gateway → coordinator → worker) that models the naive architecture
// for the ablation benchmark: direct routing halves hop count and wire
// bytes and removes the coordinator as an ingest bottleneck.
//
// Map staleness: gateways hold a snapshot of the partition map taken at
// construction (or the last refresh_map call). After a failover the
// snapshot may point at a crashed primary; refresh_map re-snapshots from
// the coordinator's live map — the recovery benchmarks exercise this.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "core/protocol.h"
#include "net/node.h"
#include "net/sim_network.h"
#include "partition/partition_map.h"

namespace stcn {

struct GatewayConfig {
  std::size_t batch_size = 32;
  bool relay_through_coordinator = false;  // ablation baseline
  bool replicate = true;
};

class GatewayNode final : public NetworkNode {
 public:
  GatewayNode(NodeId id, NodeId coordinator,
              const PartitionStrategy& strategy, PartitionMap map_snapshot,
              GatewayConfig config)
      : id_(id),
        coordinator_(coordinator),
        strategy_(strategy),
        map_(std::move(map_snapshot)),
        config_(config) {}

  [[nodiscard]] NodeId node_id() const override { return id_; }
  void handle_message(const Message&, SimNetwork&) override {
    // Gateways currently receive nothing; map refresh is pushed by the
    // fleet owner via refresh_map.
  }

  /// Routes one detection (buffered; flush() to force out).
  void ingest(const Detection& d, SimNetwork& network) {
    PartitionId p = strategy_.partition_of(d.camera, d.position, d.time);
    if (config_.relay_through_coordinator) {
      // Naive architecture: ship to the coordinator, which re-routes.
      relay_buffer_.push_back(d);
      if (relay_buffer_.size() >= config_.batch_size) flush_relay(network);
      return;
    }
    buffer_to(worker_node(map_.primary(p)), p, false, d, network);
    if (config_.replicate && map_.has_distinct_backup(p)) {
      buffer_to(worker_node(map_.backup(p)), p, true, d, network);
    }
  }

  void flush(SimNetwork& network) {
    for (auto& [key, buffer] : buffers_) {
      if (buffer.empty()) continue;
      IngestBatch batch{PartitionId(key.partition), key.replica,
                        std::move(buffer)};
      buffer.clear();
      network.send({id_, NodeId(key.node),
                    static_cast<std::uint32_t>(MsgType::kIngestBatch),
                    encode(batch), network.now(), {}});
    }
    flush_relay(network);
  }

  /// Re-snapshots the partition map (e.g. after a failover notification).
  void refresh_map(const PartitionMap& live) { map_ = live; }

 private:
  struct BufferKey {
    std::uint64_t node;
    std::uint64_t partition;
    bool replica;
    friend bool operator==(const BufferKey&, const BufferKey&) = default;
  };
  struct BufferKeyHash {
    std::size_t operator()(const BufferKey& k) const {
      return std::hash<std::uint64_t>{}(k.node * 0x9e3779b97f4a7c15ULL ^
                                        (k.partition << 1) ^
                                        (k.replica ? 1 : 0));
    }
  };

  static NodeId worker_node(WorkerId w) { return NodeId(w.value()); }

  void buffer_to(NodeId node, PartitionId p, bool replica,
                 const Detection& d, SimNetwork& network) {
    BufferKey key{node.value(), p.value(), replica};
    auto& buffer = buffers_[key];
    buffer.push_back(d);
    if (buffer.size() >= config_.batch_size) {
      IngestBatch batch{p, replica, std::move(buffer)};
      buffer.clear();
      network.send({id_, node,
                    static_cast<std::uint32_t>(MsgType::kIngestBatch),
                    encode(batch), network.now(), {}});
    }
  }

  void flush_relay(SimNetwork& network) {
    if (relay_buffer_.empty()) return;
    IngestForward forward{std::move(relay_buffer_)};
    relay_buffer_.clear();
    network.send({id_, coordinator_,
                  static_cast<std::uint32_t>(MsgType::kIngestForward),
                  encode(forward), network.now(), {}});
  }

  NodeId id_;
  NodeId coordinator_;
  const PartitionStrategy& strategy_;
  PartitionMap map_;
  GatewayConfig config_;
  std::unordered_map<BufferKey, std::vector<Detection>, BufferKeyHash>
      buffers_;
  std::vector<Detection> relay_buffer_;
};

/// A fleet of gateways; cameras are assigned to gateways by id hash, as a
/// street-cabinet deployment would group nearby cameras.
class GatewayFleet {
 public:
  GatewayFleet(std::size_t gateway_count, NodeId coordinator,
               const PartitionStrategy& strategy, const PartitionMap& map,
               GatewayConfig config, SimNetwork& network) {
    STCN_CHECK(gateway_count > 0);
    gateways_.reserve(gateway_count);
    for (std::size_t i = 0; i < gateway_count; ++i) {
      gateways_.push_back(std::make_unique<GatewayNode>(
          NodeId(kGatewayNodeBase + i), coordinator, strategy, map, config));
      network.attach(*gateways_.back());
    }
  }

  GatewayNode& gateway_for(CameraId camera) {
    return *gateways_[SplitMix64(camera.value()).next() % gateways_.size()];
  }

  void ingest(const Detection& d, SimNetwork& network) {
    gateway_for(d.camera).ingest(d, network);
  }

  void flush(SimNetwork& network) {
    for (auto& g : gateways_) g->flush(network);
  }

  void refresh_maps(const PartitionMap& live) {
    for (auto& g : gateways_) g->refresh_map(live);
  }

  [[nodiscard]] std::size_t size() const { return gateways_.size(); }

  static constexpr std::uint64_t kGatewayNodeBase = 2'000'000;

 private:
  std::vector<std::unique_ptr<GatewayNode>> gateways_;
};

}  // namespace stcn
