// Camera gateway nodes: edge-side ingestion.
//
// In a deployed camera network, detections do not funnel through the
// coordinator — edge gateways (one per camera pod / street cabinet) hold a
// cached copy of the partition map and route detection batches straight to
// the owning workers. This file provides that ingestion path, plus a relay
// mode (gateway → coordinator → worker) that models the naive architecture
// for the ablation benchmark: direct routing halves hop count and wire
// bytes and removes the coordinator as an ingest bottleneck.
//
// Map staleness: gateways hold a snapshot of the partition map taken at
// construction (or the last refresh_map call). After a failover the
// snapshot may point at a crashed primary; refresh_map re-snapshots from
// the coordinator's live map — the recovery benchmarks exercise this.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "core/protocol.h"
#include "net/node.h"
#include "net/sim_network.h"
#include "partition/partition_map.h"

namespace stcn {

struct GatewayConfig {
  std::size_t batch_size = 32;
  bool relay_through_coordinator = false;  // ablation baseline
  bool replicate = true;
};

class GatewayNode final : public NetworkNode {
 public:
  GatewayNode(NodeId id, NodeId coordinator,
              const PartitionStrategy& strategy, PartitionMap map_snapshot,
              GatewayConfig config)
      : id_(id),
        coordinator_(coordinator),
        strategy_(strategy),
        map_(std::move(map_snapshot)),
        config_(config) {}

  [[nodiscard]] NodeId node_id() const override { return id_; }
  void handle_message(const Message&, SimNetwork&) override {
    // Gateways currently receive nothing; map refresh is pushed by the
    // fleet owner via refresh_map.
  }

  /// Routes one detection (buffered; flush() to force out).
  void ingest(const Detection& d, SimNetwork& network) {
    PartitionId p = strategy_.partition_of(d.camera, d.position, d.time);
    if (config_.relay_through_coordinator) {
      // Naive architecture: ship to the coordinator, which re-routes.
      relay_buffer_.push_back(d);
      if (relay_buffer_.size() >= config_.batch_size) flush_relay(network);
      return;
    }
    auto& buffer = buffers_[p.value()];
    buffer.push_back(d);
    if (buffer.size() >= config_.batch_size) {
      flush_partition(p, buffer, network);
    }
  }

  void flush(SimNetwork& network) {
    for (auto& [partition, buffer] : buffers_) {
      flush_partition(PartitionId(partition), buffer, network);
    }
    flush_relay(network);
  }

  /// Re-snapshots the partition map (e.g. after a failover notification).
  void refresh_map(const PartitionMap& live) { map_ = live; }

 private:
  static NodeId worker_node(WorkerId w) { return NodeId(w.value()); }

  /// Per-partition flush: assigns the batch its pbid (the gateway is one
  /// ingest *source*; the coordinator is another) and sends the identical
  /// set to the primary and distinct backup, so recovery watermarks stay
  /// comparable across holders.
  void flush_partition(PartitionId p, std::vector<Detection>& buffer,
                       SimNetwork& network) {
    if (buffer.empty()) return;
    IngestBatch batch{p, false, std::move(buffer), ++next_pbid_[p.value()]};
    buffer.clear();
    network.send({id_, worker_node(map_.primary(p)),
                  static_cast<std::uint32_t>(MsgType::kIngestBatch),
                  encode(batch), network.now(), {}});
    if (config_.replicate && map_.has_distinct_backup(p)) {
      batch.is_replica = true;
      network.send({id_, worker_node(map_.backup(p)),
                    static_cast<std::uint32_t>(MsgType::kIngestBatch),
                    encode(batch), network.now(), {}});
    }
  }

  void flush_relay(SimNetwork& network) {
    if (relay_buffer_.empty()) return;
    IngestForward forward{std::move(relay_buffer_)};
    relay_buffer_.clear();
    network.send({id_, coordinator_,
                  static_cast<std::uint32_t>(MsgType::kIngestForward),
                  encode(forward), network.now(), {}});
  }

  NodeId id_;
  NodeId coordinator_;
  const PartitionStrategy& strategy_;
  PartitionMap map_;
  GatewayConfig config_;
  // Per-partition buffers keyed by raw partition id; one pbid sequence per
  // partition (pbid 0 is reserved for "unsequenced").
  std::unordered_map<std::uint64_t, std::vector<Detection>> buffers_;
  std::unordered_map<std::uint64_t, std::uint64_t> next_pbid_;
  std::vector<Detection> relay_buffer_;
};

/// A fleet of gateways; cameras are assigned to gateways by id hash, as a
/// street-cabinet deployment would group nearby cameras.
class GatewayFleet {
 public:
  GatewayFleet(std::size_t gateway_count, NodeId coordinator,
               const PartitionStrategy& strategy, const PartitionMap& map,
               GatewayConfig config, SimNetwork& network) {
    STCN_CHECK(gateway_count > 0);
    gateways_.reserve(gateway_count);
    for (std::size_t i = 0; i < gateway_count; ++i) {
      gateways_.push_back(std::make_unique<GatewayNode>(
          NodeId(kGatewayNodeBase + i), coordinator, strategy, map, config));
      network.attach(*gateways_.back());
    }
  }

  GatewayNode& gateway_for(CameraId camera) {
    return *gateways_[SplitMix64(camera.value()).next() % gateways_.size()];
  }

  void ingest(const Detection& d, SimNetwork& network) {
    gateway_for(d.camera).ingest(d, network);
  }

  void flush(SimNetwork& network) {
    for (auto& g : gateways_) g->flush(network);
  }

  void refresh_maps(const PartitionMap& live) {
    for (auto& g : gateways_) g->refresh_map(live);
  }

  [[nodiscard]] std::size_t size() const { return gateways_.size(); }

  static constexpr std::uint64_t kGatewayNodeBase = 2'000'000;

 private:
  std::vector<std::unique_ptr<GatewayNode>> gateways_;
};

}  // namespace stcn
