#include "core/framework.h"

#include <algorithm>

namespace stcn {

Cluster::Cluster(Rect world, std::unique_ptr<PartitionStrategy> strategy,
                 const ClusterConfig& config)
    : world_(world),
      config_(config),
      strategy_(std::move(strategy)),
      network_(config.network),
      tracer_(config.tracer),
      estimator_(SelectivityConfig{world, 16, 16, Duration::minutes(1), 32}),
      health_monitor_(config.health.monitor),
      slo_engine_(health_monitor_, config.health.monitor.ring_capacity),
      flight_recorder_(config.health.flight) {
  STCN_CHECK(strategy_ != nullptr);
  STCN_CHECK(config_.worker_count > 0);
  STCN_CHECK(!world.is_empty());

  worker_ids_.reserve(config_.worker_count);
  for (std::size_t i = 0; i < config_.worker_count; ++i) {
    worker_ids_.emplace_back(i + 1);
  }

  PartitionMap map =
      PartitionMap::round_robin(strategy_->partition_count(), worker_ids_);
  CoordinatorConfig coordinator_config = config_.coordinator;
  coordinator_config.channel = config_.reliable;
  coordinator_ = std::make_unique<Coordinator>(
      NodeId(kCoordinatorNode), *strategy_, std::move(map),
      coordinator_config);
  network_.attach(*coordinator_);
  coordinator_->set_tracer(&tracer_);
  coordinator_->set_profiler(&profiler_);
  coordinator_->start(network_);

  WorkerConfig worker_config;
  worker_config.grid = {world, config_.grid_cell_size};
  worker_config.world = world;
  worker_config.monitor_tick = config_.monitor_tick;
  worker_config.retention = config_.retention;
  worker_config.summary_every_ticks = config_.summary_every_ticks;
  worker_config.channel = config_.reliable;
  worker_config.snapshot_every_ticks = config_.snapshot_every_ticks;
  worker_config.replay_log_max_bytes = config_.replay_log_max_bytes;
  worker_config.resync_retry_timeout = config_.resync_retry_timeout;
  worker_config.resync_max_attempts = config_.resync_max_attempts;
  worker_config.tiered_storage = config_.tiered_storage;
  worker_config.hot_sealed_blocks = config_.hot_sealed_blocks;
  worker_config.demote_after = config_.demote_after;
  for (WorkerId w : worker_ids_) {
    auto worker = std::make_unique<WorkerNode>(
        w, NodeId(kCoordinatorNode), worker_config);
    network_.attach(*worker);
    worker->set_tracer(&tracer_);
    worker->start(network_);
    workers_.push_back(std::move(worker));
  }

  // Health monitoring: every node's registry is a sample source; worker
  // source names match the subjects the coordinator's per-peer rules
  // indict ("worker.<node id>"), so both observation paths agree on who is
  // unhealthy.
  health_monitor_.add_source("net", &network_.metrics());
  health_monitor_.add_source("coordinator", &coordinator_->metrics());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    health_monitor_.add_source(
        "worker." + std::to_string(worker_ids_[i].value()),
        &workers_[i]->metrics());
  }
  if (config_.health.install_default_rules) {
    health_monitor_.add_default_rules(config_.health.thresholds);
  }

  // SLO engine: reads the same live registries the monitor samples, fires
  // through the monitor's hysteresis, so SLO alerts land in the same event
  // log and health rollup as rule-based alerts.
  slo_engine_.add_source("coordinator", &coordinator_->metrics());
  if (config_.health.install_default_slos) {
    for (SloSpec spec :
         default_slos(config_.health.slo_latency_threshold_us,
                      config_.health.slo_availability_objective,
                      config_.health.slo_latency_objective)) {
      spec.short_window = config_.health.slo_short_window;
      spec.long_window = config_.health.slo_long_window;
      slo_engine_.add_slo(std::move(spec));
    }
  }

  if (config_.health.enabled) {
    health_ticker_ = std::make_unique<HealthTicker>(
        NodeId(kHealthNode),
        [this](TimePoint now) { sample_health_at(now); },
        config_.health.sample_period);
    network_.attach(*health_ticker_);
    health_ticker_->start(network_);
  }
}

WorkerNode& Cluster::worker(WorkerId w) {
  STCN_CHECK(w.value() >= 1 && w.value() <= workers_.size());
  return *workers_[w.value() - 1];
}

void Cluster::ingest_all(std::span<const Detection> detections) {
  for (const Detection& d : detections) {
    // Keep virtual time in step with detection time, draining queued
    // events along the way — jumping the clock past pending heartbeats
    // would make the failure detector see artificial silences.
    if (d.time > network_.now()) network_.run_until_idle(d.time);
    coordinator_->ingest(d, network_);
  }
  coordinator_->flush_ingest(network_);
  pump();
}

QueryResult Cluster::execute(const Query& query) {
  // The gateway span is the client-facing root: it covers submission, the
  // network pump, and result assembly; the coordinator's fan-out nests
  // under it. Node 0 = "the client side" (no simulated node has id 0).
  TraceContext root;
  if (tracer_.enabled()) {
    root = tracer_.start_trace("gateway.execute", 0, network_.now());
    last_trace_id_ = root.trace_id;
  }

  // Pre-submit cardinality estimate for the kinds the feedback loop also
  // observes, so every such query yields an estimate-vs-actual pair for
  // the planner-calibration histograms (and an EXPLAIN stage when
  // profiling).
  double estimated = -1.0;
  switch (query.kind) {
    case QueryKind::kRange:
      estimated = estimator_.estimate(query.region, query.interval);
      break;
    case QueryKind::kCircle:
      estimated =
          estimator_.estimate(query.circle.bounding_box(), query.interval);
      break;
    case QueryKind::kHeatmap:
      estimated = estimator_.estimate(query.region, query.interval);
      break;
    default:
      break;
  }

  bool profiling = profiler_.active();
  std::size_t sel_stage = QueryProfiler::kNoStage;
  if (profiling) {
    profiler_.set_time(network_.now());
    if (root.valid()) profiler_.set_trace(root.trace_id);
    if (estimated >= 0.0) {
      sel_stage = profiler_.open_stage("selectivity.estimate",
                                       network_.now());
      ExplainStage& s = profiler_.stage(sel_stage);
      s.estimated = estimated;
      s.note("kind", query_kind_name(query.kind));
    }
  }

  std::uint64_t request =
      coordinator_->submit(query, network_, root, estimated);
  while (!coordinator_->is_complete(request)) {
    if (!network_.step()) break;  // should not happen: timers pend
  }
  auto result = coordinator_->poll(request);
  STCN_CHECK(result.has_value());
  if (root.valid()) {
    tracer_.tag(root, "results", std::to_string(result->detections.size()));
    tracer_.end_span(root, network_.now());
  }

  double actual = query.kind == QueryKind::kHeatmap
                      ? static_cast<double>(result->total_count())
                      : static_cast<double>(result->detections.size());
  if (estimated >= 0.0) {
    coordinator_->observe_estimate_error(estimated, actual);
  }
  if (sel_stage != QueryProfiler::kNoStage) {
    ExplainStage& s = profiler_.stage(sel_stage);
    s.actual = static_cast<std::int64_t>(actual);
    profiler_.close_stage(sel_stage, network_.now());
  }
  if (profiling) profiler_.set_time(network_.now());

  // Query feedback refines the selectivity histogram (no stream scanning).
  switch (query.kind) {
    case QueryKind::kRange:
      estimator_.observe(query.region, query.interval,
                         result->detections.size());
      break;
    case QueryKind::kCircle:
      estimator_.observe(query.circle.bounding_box(), query.interval,
                         result->detections.size());
      break;
    case QueryKind::kHeatmap:
      estimator_.observe(query.region, query.interval,
                         result->total_count());
      break;
    default:
      break;
  }
  return std::move(*result);
}

QueryResult Cluster::execute_knn_adaptive(Point center, std::uint32_t k,
                                          const TimeInterval& interval) {
  bool profiling = profiler_.active();
  if (profiling) profiler_.set_time(network_.now());
  KnnPlanner planner(estimator_, world_);
  KnnPlan plan =
      planner.plan(center, k, interval, profiling ? &profiler_ : nullptr);
  coordinator_->counters().add("knn_adaptive_plans");
  if (plan.degenerate) coordinator_->counters().add("knn_adaptive_degenerate");

  double radius = plan.initial_radius;
  bool first_round = true;
  for (;;) {
    coordinator_->counters().add("knn_adaptive_rounds");
    std::size_t round_stage = QueryProfiler::kNoStage;
    if (profiling) {
      round_stage = profiler_.open_stage("knn.round", network_.now());
      ExplainStage& s = profiler_.stage(round_stage);
      s.estimated = first_round ? plan.estimated_count
                                : estimator_.estimate(
                                      Rect::centered(center, radius),
                                      interval);
      s.note("radius", std::to_string(radius));
      profiler_.push_depth();
    }
    QueryResult candidates = execute(Query::circle_query(
        next_query_id(), {center, radius}, interval));
    if (round_stage != QueryProfiler::kNoStage) {
      profiler_.pop_depth();
      ExplainStage& s = profiler_.stage(round_stage);
      s.actual = static_cast<std::int64_t>(candidates.detections.size());
      profiler_.close_stage(round_stage, network_.now());
    }
    if (first_round) {
      // Plan calibration: how close was the planner's estimate for its
      // chosen initial radius to what that circle actually held?
      coordinator_->observe_knn_plan_error(
          plan.estimated_count,
          static_cast<double>(candidates.detections.size()));
      first_round = false;
    }
    bool covers_world = radius >= planner.world_radius();
    if (candidates.detections.size() >= k || covers_world) {
      // The k nearest within the circle are the global k nearest (every
      // point outside is farther than every point inside).
      std::sort(candidates.detections.begin(), candidates.detections.end(),
                [center](const Detection& a, const Detection& b) {
                  double da = squared_distance(a.position, center);
                  double db = squared_distance(b.position, center);
                  if (da != db) return da < db;
                  return a.id < b.id;
                });
      if (candidates.detections.size() > k) candidates.detections.resize(k);
      return candidates;
    }
    radius = planner.grow(radius);
  }
}

Cluster::ExplainResult Cluster::explain(const Query& query) {
  profiler_.begin(std::string("query kind=") + query_kind_name(query.kind),
                  network_.now());
  ExplainResult out;
  out.result =
      query.kind == QueryKind::kKnn
          ? execute_knn_adaptive(query.center, query.k, query.interval)
          : execute(query);
  out.profile = profiler_.finish(network_.now());
  // The slow-query log records by request id in maybe_finish; if this query
  // qualified, enrich its entry with the plan profile.
  coordinator_->slow_query_log().attach_profile(out.profile);
  return out;
}

Cluster::ExplainPathResult Cluster::explain_path(
    const ReidEngine& engine, const PathParams& params,
    const Detection& probe, const CandidateSource& source) {
  profiler_.begin("path_reconstruction", network_.now());
  PathReconstructor reconstructor(engine, params);
  ExplainPathResult out;
  out.path = reconstructor.reconstruct(probe, source, &profiler_);
  out.profile = profiler_.finish(network_.now());
  coordinator_->slow_query_log().attach_profile(out.profile);
  return out;
}

MetricsRegistry Cluster::metrics_snapshot() const {
  MetricsRegistry snapshot;
  network_.metrics().merge_into(snapshot, "net.");
  coordinator_->metrics().merge_into(snapshot, "coordinator.");
  snapshot.import_counter_set(coordinator_->counters(), "coordinator.",
                              &coordinator_->metrics());
  for (const auto& worker : workers_) {
    worker->metrics().merge_into(snapshot, "worker.");
    snapshot.import_counter_set(worker->counters(), "worker.",
                                &worker->metrics());
  }
  coordinator_->cost_ledger().metrics().merge_into(snapshot, "cost.");
  return snapshot;
}

// ------------------------------------------------ health sampling pipeline

void Cluster::sample_health_at(TimePoint now) {
  // Heat rollups first, so the partition_imbalance / hot_partition gauge
  // rules below sample fresh skew values, not the last heartbeat's.
  coordinator_->refresh_heat_gauges(now);
  health_monitor_.sample(now);
  slo_engine_.sample(now);
  record_flight_frame(now);
  check_flight_triggers(now);
}

std::uint64_t Cluster::recovery_failed_total() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    const auto& counters = worker->metrics().counters();
    auto it = counters.find("recovery_failed");
    if (it != counters.end()) total += it->second->value();
  }
  return total;
}

void Cluster::record_flight_frame(TimePoint now) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("health");
  w.begin_object();
  for (const auto& [node, status] : health_monitor_.health().nodes) {
    w.key(node);
    w.value(health_status_name(status));
  }
  w.end_object();
  w.key("firing");
  w.value(static_cast<std::uint64_t>(health_monitor_.firing().size()));
  const ResourceLedger& ledger = coordinator_->cost_ledger();
  w.key("queries");
  w.value(ledger.queries());
  w.key("rows_evaluated");
  w.value(ledger.totals().rows_evaluated);
  w.key("recovery_failed");
  w.value(recovery_failed_total());
  w.key("slo_burn");
  w.begin_object();
  for (const SloEngine::Status& st : slo_engine_.status()) {
    w.key(st.name);
    w.value(st.burn);
  }
  w.end_object();
  w.end_object();
  flight_recorder_.record_frame(now, w.take());
}

void Cluster::check_flight_triggers(TimePoint) {
  // New firing transitions since the last check (SLO rules included: they
  // fire through the same monitor, named "slo:<objective>").
  const EventLog& log = health_monitor_.events();
  std::uint64_t total = log.total();
  if (total > flight_events_seen_) {
    std::uint64_t fresh = total - flight_events_seen_;
    const auto& events = log.events();
    std::size_t start =
        events.size() > fresh ? events.size() - static_cast<std::size_t>(fresh)
                              : 0;
    for (std::size_t i = start; i < events.size(); ++i) {
      const HealthEvent& e = events[i];
      if (e.kind != "firing") continue;
      FlightTrigger t;
      t.kind = e.rule.rfind("slo:", 0) == 0 ? "slo" : "alert";
      t.rule = e.rule;
      t.subject = e.subject;
      t.severity = e.severity;
      t.value = e.value;
      t.threshold = e.threshold;
      freeze_postmortem(t);
    }
    flight_events_seen_ = total;
  }

  // A recovery_failed increment means a partition permanently gave up
  // catching up — no alert rule needs to cover it for the recorder to care.
  std::uint64_t failed = recovery_failed_total();
  if (failed > flight_recovery_failed_seen_) {
    FlightTrigger t;
    t.kind = "recovery_failed";
    t.rule = "recovery_failed";
    t.severity = "suspect";
    t.value = static_cast<double>(failed);
    t.threshold = static_cast<double>(flight_recovery_failed_seen_);
    flight_recovery_failed_seen_ = failed;
    freeze_postmortem(t);
  }
}

namespace {
void append_spans_json(obs::JsonWriter& w,
                       const std::vector<SpanRecord>& spans) {
  w.begin_array();
  for (const SpanRecord& span : spans) {
    w.begin_object();
    w.key("span_id");
    w.value(span.span_id);
    w.key("parent_id");
    w.value(span.parent_id);
    w.key("name");
    w.value(span.name);
    w.key("node");
    w.value(span.node);
    w.key("start_us");
    w.value(span.start.micros_since_origin());
    w.key("duration_us");
    w.value(span.duration().count_micros());
    for (const auto& [k, v] : span.tags) {
      w.key(k);
      w.value(v);
    }
    w.end_object();
  }
  w.end_array();
}
}  // namespace

const PostmortemBundle& Cluster::freeze_postmortem(
    const FlightTrigger& trigger) {
  FlightRecorder::Sections s;
  s.slo_json = slo_engine_.to_json();
  s.cost_json = coordinator_->cost_ledger().to_json();

  // Exemplars: every pinned bucket of the query-latency histogram, each
  // with its cost summary and (when the trace is still retained) the full
  // span tree — the p99 bucket links to the query that actually landed
  // there and the worker that made it slow.
  obs::JsonWriter ew;
  ew.begin_array();
  const auto& hists = coordinator_->metrics().histograms();
  if (auto it = hists.find("query_latency_us"); it != hists.end()) {
    const LatencyHistogram& h = *it->second;
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
      const Exemplar* e = h.exemplar(b);
      if (e == nullptr) continue;
      ew.begin_object();
      ew.key("metric");
      ew.value("coordinator.query_latency_us");
      ew.key("bucket");
      ew.value(b);
      ew.key("value_us");
      ew.value(e->value);
      ew.key("trace_id");
      ew.value(e->trace_id);
      ew.key("summary");
      ew.value(e->summary);
      if (tracer_.enabled() && e->trace_id != 0 &&
          tracer_.has_trace(e->trace_id)) {
        ew.key("spans");
        append_spans_json(ew, tracer_.trace(e->trace_id));
      }
      ew.end_object();
    }
  }
  ew.end_array();
  s.exemplars_json = ew.take();

  obs::JsonWriter evw;
  health_monitor_.events().append_json(evw);
  s.events_json = evw.take();
  s.slow_queries_json = coordinator_->slow_query_log().to_json();

  obs::JsonWriter cw;
  cw.begin_object();
  cw.key("worker_count");
  cw.value(static_cast<std::uint64_t>(config_.worker_count));
  cw.key("query_timeout_us");
  cw.value(config_.coordinator.query_timeout.count_micros());
  cw.key("hedge_queries");
  cw.value(config_.coordinator.hedge_queries);
  cw.key("max_retries");
  cw.value(config_.coordinator.max_retries);
  cw.key("health_sample_period_us");
  cw.value(config_.health.sample_period.count_micros());
  cw.key("slo_short_window_us");
  cw.value(config_.health.slo_short_window.count_micros());
  cw.key("slo_long_window_us");
  cw.value(config_.health.slo_long_window.count_micros());
  cw.end_object();
  s.config_json = cw.take();

  // Heat table + top-K placement advice: "who was hot, and what would
  // have fixed it" frozen alongside the alert that fired.
  obs::JsonWriter hw;
  hw.begin_object();
  hw.key("table");
  coordinator_->heat().append_json(hw, network_.now());
  hw.key("advisor");
  PlacementAdvisor::append_json(
      hw, coordinator_->placement_advice(network_.now()));
  hw.end_object();
  s.heat_json = hw.take();

  return flight_recorder_.freeze(network_.now(), trigger, std::move(s));
}

void Cluster::pump(Duration horizon) {
  network_.run_until_idle(network_.now() + horizon);
}

void Cluster::advance_time(Duration d) {
  network_.run_until_idle(network_.now() + d);
}

void Cluster::crash_worker(WorkerId w) {
  network_.crash(NodeId(w.value()));
  worker(w).lose_state();
  coordinator_->counters().add("workers_crashed");
}

Cluster::RecoveryReport Cluster::restart_worker(WorkerId w) {
  TimePoint start = network_.now();
  network_.restart(NodeId(w.value()));

  WorkerNode& node = worker(w);
  node.restart_ticks(network_);
  coordinator_->clear_suspicion(w);

  TraceContext rspan;
  if (tracer_.enabled()) {
    rspan = tracer_.start_trace("recovery", w.value(), network_.now());
    tracer_.tag(rspan, "worker", std::to_string(w.value()));
    last_trace_id_ = rspan.trace_id;
  }

  // Routing flips before any data moves: the surviving holder serves as
  // primary while the rejoiner rides as backup (warmed by the live replica
  // stream), and per-partition RECOVERING state gates hedging/failover
  // until RecoveryDone flips roles back.
  Coordinator::RecoveryPlan plan = coordinator_->begin_worker_recovery(w);
  node.start_recovery(plan.recovery_id, plan.specs, rspan, network_);

  RecoveryReport report;
  report.partitions_total = plan.specs.size();

  // Bounded by virtual time: each sync exchange has its own retry/backoff
  // ladder, but recurring timers keep the queue non-empty forever, so the
  // pump itself needs a deadline too.
  TimePoint deadline = network_.now() + config_.resync_timeout;
  while (network_.now() < deadline) {
    if (node.resync_complete() &&
        coordinator_->recovering_count_for(w) <= node.recovery_failed_count()) {
      break;
    }
    if (!network_.step()) break;
  }

  report.duration = network_.now() - start;
  report.partitions_recovered = node.recovery_recovered_count();
  report.partitions_failed = node.recovery_failed_count();
  report.completed =
      node.resync_complete() && coordinator_->recovering_count_for(w) == 0 &&
      report.partitions_failed == 0;
  if (!report.completed && network_.now() >= deadline) {
    coordinator_->counters().add("resync_timeout");
  }
  if (rspan.valid()) {
    tracer_.tag(rspan, "partitions", std::to_string(report.partitions_total));
    tracer_.tag(rspan, "recovered",
                std::to_string(report.partitions_recovered));
    tracer_.tag(rspan, "outcome", report.completed ? "ok" : "incomplete");
    tracer_.end_span(rspan, network_.now());
  }
  coordinator_->counters().add("workers_restarted");
  return report;
}

}  // namespace stcn
