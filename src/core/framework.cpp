#include "core/framework.h"

#include <algorithm>

namespace stcn {

Cluster::Cluster(Rect world, std::unique_ptr<PartitionStrategy> strategy,
                 const ClusterConfig& config)
    : world_(world),
      config_(config),
      strategy_(std::move(strategy)),
      network_(config.network),
      tracer_(config.tracer),
      estimator_(SelectivityConfig{world, 16, 16, Duration::minutes(1), 32}) {
  STCN_CHECK(strategy_ != nullptr);
  STCN_CHECK(config_.worker_count > 0);
  STCN_CHECK(!world.is_empty());

  worker_ids_.reserve(config_.worker_count);
  for (std::size_t i = 0; i < config_.worker_count; ++i) {
    worker_ids_.emplace_back(i + 1);
  }

  PartitionMap map =
      PartitionMap::round_robin(strategy_->partition_count(), worker_ids_);
  CoordinatorConfig coordinator_config = config_.coordinator;
  coordinator_config.channel = config_.reliable;
  coordinator_ = std::make_unique<Coordinator>(
      NodeId(kCoordinatorNode), *strategy_, std::move(map),
      coordinator_config);
  network_.attach(*coordinator_);
  coordinator_->set_tracer(&tracer_);
  coordinator_->start(network_);

  WorkerConfig worker_config;
  worker_config.grid = {world, config_.grid_cell_size};
  worker_config.world = world;
  worker_config.monitor_tick = config_.monitor_tick;
  worker_config.retention = config_.retention;
  worker_config.summary_every_ticks = config_.summary_every_ticks;
  worker_config.channel = config_.reliable;
  for (WorkerId w : worker_ids_) {
    auto worker = std::make_unique<WorkerNode>(
        w, NodeId(kCoordinatorNode), worker_config);
    network_.attach(*worker);
    worker->set_tracer(&tracer_);
    worker->start(network_);
    workers_.push_back(std::move(worker));
  }
}

WorkerNode& Cluster::worker(WorkerId w) {
  STCN_CHECK(w.value() >= 1 && w.value() <= workers_.size());
  return *workers_[w.value() - 1];
}

void Cluster::ingest_all(std::span<const Detection> detections) {
  for (const Detection& d : detections) {
    // Keep virtual time in step with detection time, draining queued
    // events along the way — jumping the clock past pending heartbeats
    // would make the failure detector see artificial silences.
    if (d.time > network_.now()) network_.run_until_idle(d.time);
    coordinator_->ingest(d, network_);
  }
  coordinator_->flush_ingest(network_);
  pump();
}

QueryResult Cluster::execute(const Query& query) {
  // The gateway span is the client-facing root: it covers submission, the
  // network pump, and result assembly; the coordinator's fan-out nests
  // under it. Node 0 = "the client side" (no simulated node has id 0).
  TraceContext root;
  if (tracer_.enabled()) {
    root = tracer_.start_trace("gateway.execute", 0, network_.now());
    last_trace_id_ = root.trace_id;
  }
  std::uint64_t request = coordinator_->submit(query, network_, root);
  while (!coordinator_->is_complete(request)) {
    if (!network_.step()) break;  // should not happen: timers pend
  }
  auto result = coordinator_->poll(request);
  STCN_CHECK(result.has_value());
  if (root.valid()) {
    tracer_.tag(root, "results", std::to_string(result->detections.size()));
    tracer_.end_span(root, network_.now());
  }

  // Query feedback refines the selectivity histogram (no stream scanning).
  switch (query.kind) {
    case QueryKind::kRange:
      estimator_.observe(query.region, query.interval,
                         result->detections.size());
      break;
    case QueryKind::kCircle:
      estimator_.observe(query.circle.bounding_box(), query.interval,
                         result->detections.size());
      break;
    case QueryKind::kHeatmap:
      estimator_.observe(query.region, query.interval,
                         result->total_count());
      break;
    default:
      break;
  }
  return std::move(*result);
}

QueryResult Cluster::execute_knn_adaptive(Point center, std::uint32_t k,
                                          const TimeInterval& interval) {
  KnnPlanner planner(estimator_, world_);
  KnnPlan plan = planner.plan(center, k, interval);
  coordinator_->counters().add("knn_adaptive_plans");
  if (plan.degenerate) coordinator_->counters().add("knn_adaptive_degenerate");

  double radius = plan.initial_radius;
  for (;;) {
    coordinator_->counters().add("knn_adaptive_rounds");
    QueryResult candidates = execute(Query::circle_query(
        next_query_id(), {center, radius}, interval));
    bool covers_world = radius >= planner.world_radius();
    if (candidates.detections.size() >= k || covers_world) {
      // The k nearest within the circle are the global k nearest (every
      // point outside is farther than every point inside).
      std::sort(candidates.detections.begin(), candidates.detections.end(),
                [center](const Detection& a, const Detection& b) {
                  double da = squared_distance(a.position, center);
                  double db = squared_distance(b.position, center);
                  if (da != db) return da < db;
                  return a.id < b.id;
                });
      if (candidates.detections.size() > k) candidates.detections.resize(k);
      return candidates;
    }
    radius = planner.grow(radius);
  }
}

MetricsRegistry Cluster::metrics_snapshot() const {
  MetricsRegistry snapshot;
  network_.metrics().merge_into(snapshot, "net.");
  coordinator_->metrics().merge_into(snapshot, "coordinator.");
  snapshot.import_counter_set(coordinator_->counters(), "coordinator.");
  for (const auto& worker : workers_) {
    worker->metrics().merge_into(snapshot, "worker.");
    snapshot.import_counter_set(worker->counters(), "worker.");
  }
  return snapshot;
}

void Cluster::pump(Duration horizon) {
  network_.run_until_idle(network_.now() + horizon);
}

void Cluster::advance_time(Duration d) {
  network_.run_until_idle(network_.now() + d);
}

void Cluster::crash_worker(WorkerId w) {
  network_.crash(NodeId(w.value()));
  worker(w).lose_state();
  coordinator_->counters().add("workers_crashed");
}

Duration Cluster::restart_worker(WorkerId w) {
  TimePoint start = network_.now();
  network_.restart(NodeId(w.value()));

  // The restarted worker resyncs every partition it should hold (as primary
  // or backup) from the other replica. Partitions left degraded by an
  // earlier failover (primary == backup) are re-replicated onto the
  // restarted worker, restoring single-failure tolerance.
  PartitionMap& map = coordinator_->mutable_partition_map();
  std::vector<std::pair<PartitionId, NodeId>> holders;
  for (std::size_t i = 0; i < map.partition_count(); ++i) {
    PartitionId p(i);
    WorkerId primary = map.primary(p);
    WorkerId backup = map.backup(p);
    if (primary == w && backup != w) {
      holders.emplace_back(p, NodeId(backup.value()));
    } else if (backup == w && primary != w) {
      holders.emplace_back(p, NodeId(primary.value()));
    } else if (primary == backup && primary != w) {
      map.set_backup(p, w);
      holders.emplace_back(p, NodeId(primary.value()));
      coordinator_->counters().add("partitions_rereplicated");
    }
  }
  WorkerNode& node = worker(w);
  node.restart_ticks(network_);
  coordinator_->clear_suspicion(w);
  node.start_resync(holders, network_);
  // Bounded by virtual time: under heavy loss a sync exchange can exhaust
  // its retransmission ladder (e.g. the replica holder is also down), and
  // recurring timers keep the queue non-empty forever.
  TimePoint deadline = network_.now() + Duration::seconds(30);
  while (!node.resync_complete() && network_.now() < deadline) {
    if (!network_.step()) break;
  }
  coordinator_->counters().add("workers_restarted");
  return network_.now() - start;
}

}  // namespace stcn
