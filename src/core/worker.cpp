#include "core/worker.h"

namespace stcn {

namespace {
// Timer tokens encode the tick generation so a chain armed before a crash
// cannot double up with the chain re-armed after restart. The reliable
// channel owns its own token range ([2^62, 2^62 + 2^32)), far above any
// plausible generation count.
constexpr std::uint64_t kMonitorTickBase = 1'000;
}  // namespace

WorkerIndexes& WorkerNode::partition(PartitionId p) {
  auto it = partitions_.find(p);
  if (it == partitions_.end()) {
    it = partitions_
             .emplace(p, std::make_unique<WorkerIndexes>(config_.grid))
             .first;
  }
  return *it->second;
}

void WorkerNode::start(SimNetwork& network) {
  if (started_) return;
  started_ = true;
  network.set_timer(node_id(), config_.monitor_tick,
                    kMonitorTickBase + tick_generation_);
}

void WorkerNode::restart_ticks(SimNetwork& network) {
  ++tick_generation_;
  started_ = true;
  network.set_timer(node_id(), config_.monitor_tick,
                    kMonitorTickBase + tick_generation_);
}

void WorkerNode::handle_timer(std::uint64_t timer_token, SimNetwork& network) {
  if (channel_.owns_timer(timer_token)) {
    channel_.handle_timer(timer_token, network);
    return;
  }
  if (timer_token != kMonitorTickBase + tick_generation_) return;  // stale
  monitors_.advance_to(network.now(), pending_deltas_);
  flush_deltas(network);

  if (config_.send_heartbeats) {
    // Best-effort on purpose: a heartbeat that needs retransmission is
    // stale by the time it lands; the next tick supersedes it.
    Heartbeat hb{id_, stored_detections()};
    network.send({node_id(), coordinator_,
                  static_cast<std::uint32_t>(MsgType::kHeartbeat),
                  encode(hb), network.now()});
  }

  if (config_.summary_every_ticks > 0 &&
      ++ticks_since_summary_ >= config_.summary_every_ticks) {
    ticks_since_summary_ = 0;
    for (const auto& [partition_id, indexes] : partitions_) {
      ObjectSummary summary{partition_id, network.now(),
                            BloomFilter(config_.summary_bloom_bits)};
      for (ObjectId object : indexes->trajectories.object_ids()) {
        summary.objects.insert(object.value());
      }
      // Best-effort: summaries are advisory pruning hints, refreshed
      // periodically; a lost one only costs pruning opportunity.
      network.send({node_id(), coordinator_,
                    static_cast<std::uint32_t>(MsgType::kObjectSummary),
                    encode(summary), network.now()});
      counters_.add("summaries_published");
    }
  }

  if (config_.retention != Duration::max() &&
      ++ticks_since_compaction_ >= config_.compaction_every_ticks) {
    ticks_since_compaction_ = 0;
    TimePoint horizon = network.now() - config_.retention;
    for (auto& [p, indexes] : partitions_) {
      counters_.add("detections_evicted", indexes->compact(horizon));
    }
    counters_.add("compactions");
  }
  network.set_timer(node_id(), config_.monitor_tick, timer_token);
}

void WorkerNode::handle_message(const Message& message, SimNetwork& network) {
  switch (static_cast<MsgType>(message.type)) {
    case MsgType::kReliableData: {
      if (auto inner = channel_.on_data(message, network)) {
        dispatch(*inner, /*reliable=*/true, network);
      }
      return;
    }
    case MsgType::kReliableAck:
      channel_.on_ack(message);
      return;
    default:
      dispatch(message, /*reliable=*/false, network);
  }
}

void WorkerNode::dispatch(const Message& message, bool reliable,
                          SimNetwork& network) {
  BinaryReader reader(message.payload);
  switch (static_cast<MsgType>(message.type)) {
    case MsgType::kIngestBatch:
      on_ingest(decode_ingest_batch(reader), network);
      break;
    case MsgType::kQueryRequest:
      on_query(decode_query_request(reader), message.from, reliable, network);
      break;
    case MsgType::kInstallMonitor: {
      MonitorInstall m = decode_monitor_install(reader);
      monitors_.install({m.query, m.region, m.window});
      break;
    }
    case MsgType::kRemoveMonitor: {
      MonitorInstall m = decode_monitor_install(reader);
      monitors_.remove(m.query);
      break;
    }
    case MsgType::kSyncRequest:
      on_sync_request(decode_sync_request(reader), message.from, reliable,
                      network);
      break;
    case MsgType::kSyncResponse:
      on_sync_response(decode_sync_response(reader));
      break;
    default:
      counters_.add("unknown_message");
      break;
  }
}

void WorkerNode::on_ingest(const IngestBatch& batch, SimNetwork& network) {
  WorkerIndexes& indexes = partition(batch.partition);
  auto& seen = ingested_ids_[batch.partition];
  for (const Detection& d : batch.detections) {
    if (!seen.insert(d.id.value()).second) {
      counters_.add("ingest_dups_skipped");
      continue;
    }
    indexes.ingest(d);
    counters_.add(batch.is_replica ? "ingested_replica" : "ingested_primary");
    if (!batch.is_replica) {
      std::size_t tested = monitors_.on_detection(d, pending_deltas_);
      counters_.add("monitors_tested", tested);
    }
  }
  if (pending_deltas_.size() >= config_.delta_flush_threshold) {
    flush_deltas(network);
  }
}

void WorkerNode::on_query(const QueryRequest& request, NodeId reply_to,
                          bool reliable, SimNetwork& network) {
  counters_.add("queries_served");
  ResultMerger merger(request.query);
  for (PartitionId p : request.partitions) {
    auto it = partitions_.find(p);
    if (it == partitions_.end()) continue;  // empty partition: no matches
    merger.add(LocalExecutor::execute(*it->second, request.query));
  }
  QueryResponse response{request.request_id, request.sub_id, merger.take()};
  if (reliable) {
    channel_.send(reply_to,
                  static_cast<std::uint32_t>(MsgType::kQueryResponse),
                  encode(response), network);
  } else {
    network.send({node_id(), reply_to,
                  static_cast<std::uint32_t>(MsgType::kQueryResponse),
                  encode(response), network.now()});
  }
}

void WorkerNode::on_sync_request(const SyncRequest& request, NodeId reply_to,
                                 bool reliable, SimNetwork& network) {
  counters_.add("sync_requests_served");
  SyncResponse response;
  response.partition = request.partition;
  auto it = partitions_.find(request.partition);
  if (it != partitions_.end()) {
    const DetectionStore& store = it->second->store;
    response.detections.reserve(store.size());
    for (std::size_t i = 0; i < store.size(); ++i) {
      response.detections.push_back(
          store.get(static_cast<DetectionRef>(i)));
    }
  }
  if (reliable) {
    channel_.send(reply_to,
                  static_cast<std::uint32_t>(MsgType::kSyncResponse),
                  encode(response), network);
  } else {
    network.send({node_id(), reply_to,
                  static_cast<std::uint32_t>(MsgType::kSyncResponse),
                  encode(response), network.now()});
  }
}

void WorkerNode::on_sync_response(const SyncResponse& response) {
  WorkerIndexes& indexes = partition(response.partition);
  auto& seen = ingested_ids_[response.partition];
  for (const Detection& d : response.detections) {
    if (!seen.insert(d.id.value()).second) {
      counters_.add("ingest_dups_skipped");
      continue;
    }
    indexes.ingest(d);
    counters_.add("ingested_resync");
  }
  if (pending_syncs_ > 0) --pending_syncs_;
}

void WorkerNode::flush_deltas(SimNetwork& network) {
  if (pending_deltas_.empty()) return;
  DeltaBatch batch;
  batch.deltas.reserve(pending_deltas_.size());
  for (const DeltaUpdate& d : pending_deltas_) {
    batch.deltas.push_back({d.query, d.positive, d.detection});
  }
  pending_deltas_.clear();
  channel_.send(coordinator_,
                static_cast<std::uint32_t>(MsgType::kDeltaBatch),
                encode(batch), network);
}

void WorkerNode::lose_state() {
  partitions_.clear();
  pending_deltas_.clear();
  ingested_ids_.clear();
  channel_.reset();
  counters_.add("state_losses");
}

void WorkerNode::start_resync(
    const std::vector<std::pair<PartitionId, NodeId>>& replica_holders,
    SimNetwork& network) {
  for (const auto& [partition_id, holder] : replica_holders) {
    ++pending_syncs_;
    SyncRequest request{partition_id};
    channel_.send(holder, static_cast<std::uint32_t>(MsgType::kSyncRequest),
                  encode(request), network);
  }
}

std::size_t WorkerNode::stored_detections() const {
  std::size_t total = 0;
  for (const auto& [p, indexes] : partitions_) total += indexes->size();
  return total;
}

}  // namespace stcn
