#include "core/worker.h"

#include <chrono>

namespace stcn {

namespace {
// Timer tokens encode the tick generation so a chain armed before a crash
// cannot double up with the chain re-armed after restart. The reliable
// channel owns its own token range ([2^62, 2^62 + 2^32)), far above any
// plausible generation count.
constexpr std::uint64_t kMonitorTickBase = 1'000;
// Snapshot ticker chain: same generation scheme, disjoint base (far above
// any plausible monitor-tick generation).
constexpr std::uint64_t kSnapshotTickBase = 500'000'000;
// Recovery exchange retry timers: base + a task token that is monotonic
// across restarts, so a timer parked by a crash can never alias a live
// task after the worker rejoins.
constexpr std::uint64_t kRecoveryTimerBase = 1'000'000'000;
constexpr std::uint64_t kRecoveryTimerSpan = std::uint64_t{1} << 32;
}  // namespace

WorkerIndexes& WorkerNode::partition(PartitionId p) {
  auto it = partitions_.find(p);
  if (it == partitions_.end()) {
    it = partitions_
             .emplace(p, std::make_unique<WorkerIndexes>(config_.grid))
             .first;
    if (config_.tiered_storage) {
      it->second->store.set_tier_config(
          {true, config_.hot_sealed_blocks});
    }
  }
  return *it->second;
}

void WorkerNode::start(SimNetwork& network) {
  if (started_) return;
  started_ = true;
  network.set_timer(node_id(), config_.monitor_tick,
                    kMonitorTickBase + tick_generation_);
  if (config_.snapshot_every_ticks > 0) {
    network.set_timer(node_id(),
                      config_.monitor_tick *
                          static_cast<std::int64_t>(config_.snapshot_every_ticks),
                      kSnapshotTickBase + tick_generation_);
  }
}

void WorkerNode::restart_ticks(SimNetwork& network) {
  ++tick_generation_;
  started_ = true;
  network.set_timer(node_id(), config_.monitor_tick,
                    kMonitorTickBase + tick_generation_);
  if (config_.snapshot_every_ticks > 0) {
    network.set_timer(node_id(),
                      config_.monitor_tick *
                          static_cast<std::int64_t>(config_.snapshot_every_ticks),
                      kSnapshotTickBase + tick_generation_);
  }
}

void WorkerNode::handle_timer(std::uint64_t timer_token, SimNetwork& network) {
  if (channel_.owns_timer(timer_token)) {
    channel_.handle_timer(timer_token, network);
    return;
  }
  if (timer_token >= kRecoveryTimerBase &&
      timer_token < kRecoveryTimerBase + kRecoveryTimerSpan) {
    auto it = recovery_tasks_.find(timer_token);
    if (it == recovery_tasks_.end()) return;  // stale incarnation / finished
    RecoveryTask& task = it->second;
    // The doubling ladder gives up on the `resync_max_attempts`-th timer
    // fire (0.5+1+2+4+8+16 s ≈ 31.5 s at the defaults); restart_worker's
    // own deadline may report resync_timeout slightly earlier — both are
    // explicit outcomes, never a silent hang.
    if (++task.attempts >= config_.resync_max_attempts) {
      recovery_failed_.inc();
      counters_.add("recovery_failed_partitions");
      if (task.span.valid()) {
        tracer_->tag(task.span, "outcome", "failed");
        tracer_->tag(task.span, "attempts", std::to_string(task.attempts - 1));
        tracer_->end_span(task.span, network.now());
      }
      task_by_partition_.erase(task.partition);
      recovery_tasks_.erase(it);
      ++failed_last_;
      return;
    }
    resync_retries_.inc();
    if (tracer_ != nullptr && task.span.valid()) {
      TraceContext retry = tracer_->instant("recovery.retry", task.span,
                                            node_id().value(), network.now());
      tracer_->tag(retry, "attempt", std::to_string(task.attempts));
    }
    task.rto = task.rto * 2;
    send_recovery_request(task, network);
    return;
  }
  if (timer_token == kSnapshotTickBase + tick_generation_) {
    take_snapshots(network.now());
    network.set_timer(node_id(),
                      config_.monitor_tick *
                          static_cast<std::int64_t>(config_.snapshot_every_ticks),
                      timer_token);
    return;
  }
  if (timer_token != kMonitorTickBase + tick_generation_) return;  // stale
  monitors_.advance_to(network.now(), pending_deltas_);
  flush_deltas(network);

  // Age-triggered demotion runs before the footprint refresh so the
  // gauges below already reflect blocks that just moved cold.
  if (config_.tiered_storage && config_.demote_after != Duration::max()) {
    TimePoint cutoff = network.now() - config_.demote_after;
    for (auto& [p, indexes] : partitions_) {
      (void)indexes->store.demote_older_than(cutoff);
    }
  }

  // Exact columnar footprint (capacity-based columns + arena + zones +
  // compressed cold blocks), refreshed per tick for dashboards and load
  // accounting, split by tier.
  double resident = 0;
  double hot = 0, compressed = 0, cold_blocks = 0;
  for (const auto& [p, indexes] : partitions_) {
    DetectionStore::MemoryBreakdown mb = indexes->store.memory_breakdown();
    std::size_t bytes = mb.total();
    resident += static_cast<double>(bytes);
    hot += static_cast<double>(mb.hot_bytes());
    compressed += static_cast<double>(indexes->store.compressed_bytes());
    cold_blocks += static_cast<double>(indexes->store.cold_block_count());
    heat_.set_memory(p, bytes);
  }
  store_memory_bytes_.set(resident);
  store_hot_bytes_.set(hot);
  store_compressed_bytes_.set(compressed);
  store_cold_blocks_.set(cold_blocks);
  store_scratch_bytes_.set(static_cast<double>(cold_scratch_bytes()));
  heat_.sample(network.now());
  heat_partitions_tracked_.set(
      static_cast<double>(heat_.partition_count()));
  update_recovery_gauges();

  if (config_.send_heartbeats) {
    // Best-effort on purpose: a heartbeat that needs retransmission is
    // stale by the time it lands; the next tick supersedes it.
    Heartbeat hb{id_, stored_detections(), heat_.snapshot()};
    network.send({node_id(), coordinator_,
                  static_cast<std::uint32_t>(MsgType::kHeartbeat),
                  encode(hb), network.now(), {}});
  }

  if (config_.summary_every_ticks > 0 &&
      ++ticks_since_summary_ >= config_.summary_every_ticks) {
    ticks_since_summary_ = 0;
    for (const auto& [partition_id, indexes] : partitions_) {
      ObjectSummary summary{partition_id, network.now(),
                            BloomFilter(config_.summary_bloom_bits)};
      for (ObjectId object : indexes->trajectories.object_ids()) {
        summary.objects.insert(object.value());
      }
      // Best-effort: summaries are advisory pruning hints, refreshed
      // periodically; a lost one only costs pruning opportunity.
      network.send({node_id(), coordinator_,
                    static_cast<std::uint32_t>(MsgType::kObjectSummary),
                    encode(summary), network.now(), {}});
      counters_.add("summaries_published");
    }
  }

  if (config_.retention != Duration::max() &&
      ++ticks_since_compaction_ >= config_.compaction_every_ticks) {
    ticks_since_compaction_ = 0;
    TimePoint horizon = network.now() - config_.retention;
    for (auto& [p, indexes] : partitions_) {
      counters_.add("detections_evicted", indexes->compact(horizon));
    }
    counters_.add("compactions");
  }
  network.set_timer(node_id(), config_.monitor_tick, timer_token);
}

void WorkerNode::handle_message(const Message& message, SimNetwork& network) {
  switch (static_cast<MsgType>(message.type)) {
    case MsgType::kReliableData: {
      if (auto inner = channel_.on_data(message, network)) {
        dispatch(*inner, /*reliable=*/true, network);
      }
      return;
    }
    case MsgType::kReliableAck:
      channel_.on_ack(message);
      return;
    default:
      dispatch(message, /*reliable=*/false, network);
  }
}

void WorkerNode::dispatch(const Message& message, bool reliable,
                          SimNetwork& network) {
  BinaryReader reader(message.payload);
  switch (static_cast<MsgType>(message.type)) {
    case MsgType::kIngestBatch:
      on_ingest(decode_ingest_batch(reader), message.from, network);
      break;
    case MsgType::kQueryRequest:
      on_query(decode_query_request(reader), message.from, reliable,
               message.trace, network);
      break;
    case MsgType::kInstallMonitor: {
      MonitorInstall m = decode_monitor_install(reader);
      monitors_.install({m.query, m.region, m.window});
      break;
    }
    case MsgType::kRemoveMonitor: {
      MonitorInstall m = decode_monitor_install(reader);
      monitors_.remove(m.query);
      break;
    }
    case MsgType::kSyncRequest:
      on_sync_request(decode_sync_request(reader), message.from, reliable,
                      network);
      break;
    case MsgType::kSyncResponse:
      on_sync_response(decode_sync_response(reader), network);
      break;
    case MsgType::kDeltaSyncRequest:
      on_delta_sync_request(decode_delta_sync_request(reader), message.from,
                            reliable, network);
      break;
    case MsgType::kDeltaSyncResponse:
      on_delta_sync_response(decode_delta_sync_response(reader), network);
      break;
    default:
      counters_.add("unknown_message");
      break;
  }
}

void WorkerNode::on_ingest(const IngestBatch& batch, NodeId source,
                           SimNetwork& network) {
  WorkerIndexes& indexes = partition(batch.partition);
  auto& seen = ingested_ids_[batch.partition];
  std::uint64_t fresh_rows = 0;
  for (const Detection& d : batch.detections) {
    if (!seen.insert(d.id.value()).second) {
      ingest_dups_skipped_.inc();
      continue;
    }
    indexes.ingest(d);
    ++fresh_rows;
    (batch.is_replica ? ingested_replica_ : ingested_primary_).inc();
    if (!batch.is_replica) {
      std::size_t tested = monitors_.on_detection(d, pending_deltas_);
      monitors_tested_.add(tested);
    }
  }
  // Heat counts live ingest only (primary or replica): recovery installs
  // are replayed history, not fresh load, and would distort post-restart
  // rates if they counted.
  if (fresh_rows > 0) heat_.on_ingest(batch.partition, fresh_rows);
  // Watermark + replay log: track the batch under its (source, pbid)
  // identity even when every row deduplicated away — the watermark records
  // batches *applied*, and a dup batch is applied by definition.
  if (batch.pbid != 0) {
    watermarks_[batch.partition][source.value()].note(batch.pbid);
  }
  replay_log(batch.partition).append(source.value(), batch.pbid,
                                     batch.detections);
  if (pending_deltas_.size() >= config_.delta_flush_threshold) {
    flush_deltas(network);
  }
}

void WorkerNode::on_query(const QueryRequest& request, NodeId reply_to,
                          bool reliable, TraceContext parent,
                          SimNetwork& network) {
  queries_served_.inc();
  // Worker compute is instantaneous in virtual time; spans below all share
  // one sim timestamp and carry `wall_us` tags for the real index cost.
  TraceContext qspan;
  if (tracer_ != nullptr && parent.valid()) {
    qspan = tracer_->start_span("worker.query", parent,
                                node_id().value(), network.now());
    tracer_->tag(qspan, "sub_id", std::to_string(request.sub_id));
  }
  auto wall_start = std::chrono::steady_clock::now();
  ResultMerger merger(request.query);
  ScanStats scan_stats;
  std::vector<PartitionId> held;
  for (PartitionId p : request.partitions) {
    auto scan_start = std::chrono::steady_clock::now();
    auto it = partitions_.find(p);
    // One scan span per requested partition — including partitions this
    // worker does not hold (the scan is a no-op, but the trace still shows
    // that the fragment named it).
    if (it != partitions_.end()) {
      ScanStats before = scan_stats;
      merger.add(LocalExecutor::execute(*it->second, request.query,
                                        &scan_stats));
      heat_.on_scan(p, scan_stats.rows_evaluated - before.rows_evaluated,
                    scan_stats.rows_selected - before.rows_selected,
                    scan_stats.blocks_scanned - before.blocks_scanned,
                    scan_stats.blocks_skipped - before.blocks_skipped);
      held.push_back(p);
    }
    if (qspan.valid()) {
      auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - scan_start)
                         .count();
      TraceContext scan = tracer_->instant("worker.scan", qspan,
                                           node_id().value(), network.now());
      tracer_->tag(scan, "partition", std::to_string(p.value()));
      tracer_->tag(scan, "wall_us", std::to_string(wall_us));
      if (it == partitions_.end()) tracer_->tag(scan, "absent", "true");
    }
  }
  // Scan-loop wall time, measured before serialization so EXPLAIN's
  // `wall_us` reflects index cost only (the histogram below keeps the
  // serialize-inclusive total).
  auto scan_only_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
  QueryResponse response{request.request_id, request.sub_id, merger.take()};
  response.rows_scanned = scan_stats.rows_scanned;
  response.scan_wall_us = static_cast<std::uint64_t>(scan_only_us);
  response.blocks_scanned = scan_stats.blocks_scanned;
  response.blocks_skipped = scan_stats.blocks_skipped;
  response.rows_evaluated = scan_stats.rows_evaluated;
  response.rows_selected = scan_stats.rows_selected;
  response.vectorized_morsels = scan_stats.vectorized_morsels;
  response.cold_blocks_scanned = scan_stats.cold_blocks_scanned;
  response.cold_blocks_skipped = scan_stats.cold_blocks_skipped;
  response.decode_morsels = scan_stats.decode_morsels;
  store_blocks_scanned_.add(scan_stats.blocks_scanned);
  store_blocks_skipped_.add(scan_stats.blocks_skipped);
  vectorized_morsels_.add(scan_stats.vectorized_morsels);
  store_cold_blocks_scanned_.add(scan_stats.cold_blocks_scanned);
  store_cold_blocks_skipped_.add(scan_stats.cold_blocks_skipped);
  store_decode_morsels_.add(scan_stats.decode_morsels);
  TraceContext sspan;
  if (qspan.valid()) {
    sspan = tracer_->start_span("worker.serialize", qspan,
                                node_id().value(), network.now());
  }
  auto payload = encode(response);
  if (sspan.valid()) {
    tracer_->tag(sspan, "bytes", std::to_string(payload.size()));
    tracer_->end_span(sspan, network.now());
  }
  // Fragment + wire-bytes heat, apportioned evenly across the partitions
  // actually scanned (the response is one payload; per-partition byte
  // attribution finer than this does not exist on the wire).
  if (!held.empty()) {
    std::uint64_t share = payload.size() / held.size();
    for (PartitionId p : held) heat_.on_fragment(p, share);
  }
  auto total_wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  scan_wall_us_.observe(static_cast<double>(total_wall_us));
  if (qspan.valid()) {
    tracer_->tag(qspan, "wall_us", std::to_string(total_wall_us));
    tracer_->end_span(qspan, network.now());
  }
  if (reliable) {
    channel_.send(reply_to,
                  static_cast<std::uint32_t>(MsgType::kQueryResponse),
                  std::move(payload), network, qspan);
  } else {
    Message reply;
    reply.from = node_id();
    reply.to = reply_to;
    reply.type = static_cast<std::uint32_t>(MsgType::kQueryResponse);
    reply.payload = std::move(payload);
    reply.sent_at = network.now();
    reply.trace = qspan;
    network.send(std::move(reply));
  }
}

void WorkerNode::on_sync_request(const SyncRequest& request, NodeId reply_to,
                                 bool reliable, SimNetwork& network) {
  counters_.add("sync_requests_served");
  SyncResponse response;
  response.partition = request.partition;
  auto it = partitions_.find(request.partition);
  if (it != partitions_.end()) {
    const DetectionStore& store = it->second->store;
    response.detections.reserve(store.size());
    for (std::size_t i = 0; i < store.size(); ++i) {
      response.detections.push_back(
          store.get(static_cast<DetectionRef>(i)));
    }
    // Full transfers still carry the watermark + out-of-order tail so the
    // receiver can serve and request *delta* syncs later.
    response.watermark = watermark_of(request.partition);
    response.tail = replay_log(request.partition).collect(response.watermark);
  }
  if (reliable) {
    channel_.send(reply_to,
                  static_cast<std::uint32_t>(MsgType::kSyncResponse),
                  encode(response), network);
  } else {
    network.send({node_id(), reply_to,
                  static_cast<std::uint32_t>(MsgType::kSyncResponse),
                  encode(response), network.now(), {}});
  }
}

void WorkerNode::on_sync_response(const SyncResponse& response,
                                  SimNetwork& network) {
  WorkerIndexes& indexes = partition(response.partition);
  auto& seen = ingested_ids_[response.partition];
  for (const Detection& d : response.detections) {
    if (!seen.insert(d.id.value()).second) {
      ingest_dups_skipped_.inc();
      continue;
    }
    indexes.ingest(d);
    ingested_resync_.inc();
  }
  // Adopt the holder's watermark: everything at or below it arrived in
  // `detections`, so this partition can serve delta requests from here on
  // — but nothing older (those rows live only in the store now).
  auto& trackers = watermarks_[response.partition];
  for (const auto& [src, pbid] : response.watermark) {
    trackers[src].advance_to(pbid);
  }
  replay_log(response.partition).set_floor(response.watermark);
  apply_replay_entries(response.partition, response.tail);
  auto task_it = task_by_partition_.find(response.partition);
  if (task_it != task_by_partition_.end()) {
    finish_task(task_it->second, network);
  }
}

void WorkerNode::on_delta_sync_request(const DeltaSyncRequest& request,
                                       NodeId reply_to, bool reliable,
                                       SimNetwork& network) {
  DeltaSyncResponse response;
  response.partition = request.partition;
  if (partitions_.contains(request.partition) &&
      replay_log(request.partition).can_serve(request.since)) {
    response.ok = true;
    response.watermark = watermark_of(request.partition);
    response.entries = replay_log(request.partition).collect(request.since);
    delta_syncs_served_.inc();
  } else {
    counters_.add("delta_syncs_refused");
  }
  if (reliable) {
    channel_.send(reply_to,
                  static_cast<std::uint32_t>(MsgType::kDeltaSyncResponse),
                  encode(response), network);
  } else {
    network.send({node_id(), reply_to,
                  static_cast<std::uint32_t>(MsgType::kDeltaSyncResponse),
                  encode(response), network.now(), {}});
  }
}

void WorkerNode::on_delta_sync_response(const DeltaSyncResponse& response,
                                        SimNetwork& network) {
  auto task_it = task_by_partition_.find(response.partition);
  if (task_it == task_by_partition_.end()) return;  // stale / finished
  RecoveryTask& task = recovery_tasks_.at(task_it->second);
  if (!task.delta) return;  // already fell back; ignore the late delta
  if (!response.ok) {
    // Holder pruned its log past our snapshot watermark: fall back to a
    // full sync with a fresh retry ladder.
    delta_sync_fallback_.inc();
    task.delta = false;
    task.attempts = 0;
    task.rto = config_.resync_retry_timeout;
    if (tracer_ != nullptr && task.span.valid()) {
      tracer_->instant("recovery.fallback_full", task.span,
                       node_id().value(), network.now());
    }
    send_recovery_request(task, network);
    return;
  }
  apply_replay_entries(response.partition, response.entries);
  auto& trackers = watermarks_[response.partition];
  for (const auto& [src, pbid] : response.watermark) {
    trackers[src].advance_to(pbid);
  }
  finish_task(task_it->second, network);
}

void WorkerNode::flush_deltas(SimNetwork& network) {
  if (pending_deltas_.empty()) return;
  DeltaBatch batch;
  batch.deltas.reserve(pending_deltas_.size());
  for (const DeltaUpdate& d : pending_deltas_) {
    batch.deltas.push_back({d.query, d.positive, d.detection});
  }
  pending_deltas_.clear();
  channel_.send(coordinator_,
                static_cast<std::uint32_t>(MsgType::kDeltaBatch),
                encode(batch), network);
}

void WorkerNode::lose_state() {
  partitions_.clear();
  pending_deltas_.clear();
  ingested_ids_.clear();
  watermarks_.clear();
  replay_logs_.clear();
  recovery_tasks_.clear();
  task_by_partition_.clear();
  // Heat totals die with the store: the next heartbeat ships fresh (lower)
  // totals, and every downstream windowed rate clamps at zero rather than
  // going negative across the reset.
  heat_.clear();
  // vault_ survives: snapshots model a checkpoint on local disk, which a
  // process crash does not erase. next_task_token_ also survives so stale
  // parked timers can never alias a post-restart task.
  channel_.reset();
  counters_.add("state_losses");
}

ReplayLog& WorkerNode::replay_log(PartitionId p) {
  auto [it, inserted] = replay_logs_.try_emplace(p);
  if (inserted) it->second.set_max_bytes(config_.replay_log_max_bytes);
  return it->second;
}

bool WorkerNode::dedup_ingest(PartitionId p, const Detection& d) {
  auto& seen = ingested_ids_[p];
  if (!seen.insert(d.id.value()).second) {
    ingest_dups_skipped_.inc();
    return false;
  }
  partition(p).ingest(d);
  return true;
}

Watermark WorkerNode::watermark_of(PartitionId p) const {
  Watermark mark;
  auto it = watermarks_.find(p);
  if (it == watermarks_.end()) return mark;
  for (const auto& [src, tracker] : it->second) {
    if (tracker.contig > 0) mark[src] = tracker.contig;
  }
  return mark;
}

void WorkerNode::take_snapshots(TimePoint now) {
  for (const auto& [p, indexes] : partitions_) {
    PartitionSnapshot snap;
    snap.version = ++snapshot_version_;
    snap.taken_at = now;
    snap.watermark = watermark_of(p);
    snap.rows = indexes->store.size();
    BinaryWriter w;
    indexes->store.serialize_to(w);
    snap.store_bytes = w.take();
    // Rows the contiguous watermark does not cover (delivered out of
    // order) ride along as replay entries under their true identity.
    snap.tail = replay_log(p).collect(snap.watermark);
    vault_[p] = std::move(snap);
    snapshots_taken_.inc();
  }
  update_recovery_gauges();
}

bool WorkerNode::install_snapshot(PartitionId p) {
  auto it = vault_.find(p);
  if (it == vault_.end()) return false;
  const PartitionSnapshot& snap = it->second;
  BinaryReader r(snap.store_bytes);
  DetectionStore decoded = DetectionStore::deserialize_from(r);
  if (r.failed()) {
    counters_.add("snapshot_corrupt");
    return false;
  }
  WorkerIndexes& indexes = partition(p);
  auto& seen = ingested_ids_[p];
  if (indexes.store.empty()) {
    // Bulk path: adopt the decoded columns wholesale (cold blocks stay
    // compressed) and index from them. The move clobbers the partition's
    // tier config, so reapply it for subsequent demotion.
    StoreTierConfig tier = indexes.store.tier_config();
    indexes.store = std::move(decoded);
    indexes.store.set_tier_config(tier);
    for (std::size_t i = 0; i < indexes.store.size(); ++i) {
      auto ref = static_cast<DetectionRef>(i);
      indexes.grid.insert(indexes.store, ref);
      indexes.trajectories.insert(indexes.store, ref);
      indexes.temporal.insert(indexes.store, ref);
      seen.insert(indexes.store.id_of(ref).value());
    }
    snapshot_rows_installed_.add(indexes.store.size());
  } else {
    // A live replica stream beat the install: merge row-by-row through the
    // dedup gate so nothing double-counts.
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      if (dedup_ingest(p, decoded.get(static_cast<DetectionRef>(i)))) {
        snapshot_rows_installed_.inc();
      }
    }
  }
  auto& trackers = watermarks_[p];
  for (const auto& [src, pbid] : snap.watermark) {
    trackers[src].advance_to(pbid);
  }
  replay_log(p).set_floor(snap.watermark);
  apply_replay_entries(p, snap.tail);
  snapshots_installed_.inc();
  return true;
}

void WorkerNode::apply_replay_entries(
    PartitionId p, const std::vector<ReplayEntry>& entries) {
  auto& trackers = watermarks_[p];
  ReplayLog& log = replay_log(p);
  for (const ReplayEntry& e : entries) {
    for (const Detection& d : e.detections) {
      if (dedup_ingest(p, d)) replayed_detections_.inc();
    }
    log.append(e.source, e.pbid, e.detections);
    if (e.pbid != 0) trackers[e.source].note(e.pbid);
  }
}

void WorkerNode::send_recovery_request(RecoveryTask& task,
                                       SimNetwork& network) {
  if (task.delta) {
    DeltaSyncRequest request{task.partition, watermark_of(task.partition)};
    channel_.send(task.holder,
                  static_cast<std::uint32_t>(MsgType::kDeltaSyncRequest),
                  encode(request), network, task.span);
  } else {
    SyncRequest request{task.partition};
    channel_.send(task.holder,
                  static_cast<std::uint32_t>(MsgType::kSyncRequest),
                  encode(request), network, task.span);
  }
  network.set_timer(node_id(), task.rto, task.token);
}

void WorkerNode::finish_task(std::uint64_t token, SimNetwork& network) {
  auto it = recovery_tasks_.find(token);
  if (it == recovery_tasks_.end()) return;
  RecoveryTask task = std::move(it->second);
  recovery_tasks_.erase(it);
  task_by_partition_.erase(task.partition);
  ++recovered_last_;
  counters_.add("partitions_resynced");
  if (tracer_ != nullptr && task.span.valid()) {
    tracer_->tag(task.span, "outcome", "ok");
    tracer_->tag(task.span, "mode", task.delta ? "delta" : "full");
    tracer_->end_span(task.span, network.now());
  }
  if (task.recovery_id != 0) {
    std::size_t rows = 0;
    auto pit = partitions_.find(task.partition);
    if (pit != partitions_.end()) rows = pit->second->size();
    RecoveryDone done{task.recovery_id, task.partition,
                      static_cast<std::uint64_t>(rows)};
    channel_.send(coordinator_,
                  static_cast<std::uint32_t>(MsgType::kRecoveryDone),
                  encode(done), network, task.span);
  }
}

void WorkerNode::update_recovery_gauges() {
  double log_bytes = 0;
  for (const auto& [p, log] : replay_logs_) {
    log_bytes += static_cast<double>(log.bytes());
  }
  replay_log_bytes_.set(log_bytes);
  double snap_bytes = 0;
  for (const auto& [p, snap] : vault_) {
    snap_bytes += static_cast<double>(snap.store_bytes.size());
  }
  snapshot_bytes_.set(snap_bytes);
}

void WorkerNode::start_recovery(std::uint64_t recovery_id,
                                const std::vector<RecoverySpec>& specs,
                                TraceContext parent, SimNetwork& network) {
  // Supersede any tasks from a previous incarnation that never finished
  // (e.g. the worker re-crashed mid-recovery, or an earlier manual resync
  // stalled): their parked retry timers become no-ops once erased.
  for (auto& [token, task] : recovery_tasks_) {
    if (tracer_ != nullptr && task.span.valid()) {
      tracer_->tag(task.span, "outcome", "superseded");
      tracer_->end_span(task.span, network.now());
    }
  }
  recovery_tasks_.clear();
  task_by_partition_.clear();
  recovered_last_ = 0;
  failed_last_ = 0;
  for (const RecoverySpec& spec : specs) {
    bool installed = install_snapshot(spec.partition);
    if (spec.holder == NodeId(0)) {
      // No surviving holder: the vault snapshot is the best obtainable
      // state. No exchange, no completion message — the coordinator knew
      // there was nothing to wait for when it built this spec.
      counters_.add(installed ? "recovered_local_only"
                              : "recovery_no_source");
      continue;
    }
    std::uint64_t token = kRecoveryTimerBase + (next_task_token_++ %
                                                kRecoveryTimerSpan);
    RecoveryTask task;
    task.partition = spec.partition;
    task.holder = spec.holder;
    task.recovery_id = recovery_id;
    task.rto = config_.resync_retry_timeout;
    task.delta = installed;
    task.token = token;
    if (tracer_ != nullptr && parent.valid()) {
      task.span = tracer_->start_span("recovery.partition", parent,
                                      node_id().value(), network.now());
      tracer_->tag(task.span, "partition",
                   std::to_string(spec.partition.value()));
      tracer_->tag(task.span, "mode", installed ? "delta" : "full");
    }
    task_by_partition_[spec.partition] = token;
    auto it = recovery_tasks_.emplace(token, std::move(task)).first;
    send_recovery_request(it->second, network);
  }
}

void WorkerNode::start_resync(
    const std::vector<std::pair<PartitionId, NodeId>>& replica_holders,
    SimNetwork& network) {
  std::vector<RecoverySpec> specs;
  specs.reserve(replica_holders.size());
  for (const auto& [partition_id, holder] : replica_holders) {
    specs.push_back({partition_id, holder});
  }
  start_recovery(0, specs, {}, network);
}

std::size_t WorkerNode::stored_detections() const {
  std::size_t total = 0;
  for (const auto& [p, indexes] : partitions_) total += indexes->size();
  return total;
}

}  // namespace stcn
