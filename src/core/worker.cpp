#include "core/worker.h"

#include <chrono>

namespace stcn {

namespace {
// Timer tokens encode the tick generation so a chain armed before a crash
// cannot double up with the chain re-armed after restart. The reliable
// channel owns its own token range ([2^62, 2^62 + 2^32)), far above any
// plausible generation count.
constexpr std::uint64_t kMonitorTickBase = 1'000;
}  // namespace

WorkerIndexes& WorkerNode::partition(PartitionId p) {
  auto it = partitions_.find(p);
  if (it == partitions_.end()) {
    it = partitions_
             .emplace(p, std::make_unique<WorkerIndexes>(config_.grid))
             .first;
  }
  return *it->second;
}

void WorkerNode::start(SimNetwork& network) {
  if (started_) return;
  started_ = true;
  network.set_timer(node_id(), config_.monitor_tick,
                    kMonitorTickBase + tick_generation_);
}

void WorkerNode::restart_ticks(SimNetwork& network) {
  ++tick_generation_;
  started_ = true;
  network.set_timer(node_id(), config_.monitor_tick,
                    kMonitorTickBase + tick_generation_);
}

void WorkerNode::handle_timer(std::uint64_t timer_token, SimNetwork& network) {
  if (channel_.owns_timer(timer_token)) {
    channel_.handle_timer(timer_token, network);
    return;
  }
  if (timer_token != kMonitorTickBase + tick_generation_) return;  // stale
  monitors_.advance_to(network.now(), pending_deltas_);
  flush_deltas(network);

  // Exact columnar footprint (capacity-based columns + arena + zones),
  // refreshed per tick for dashboards and load accounting.
  double resident = 0;
  for (const auto& [p, indexes] : partitions_) {
    resident += static_cast<double>(indexes->store.memory_bytes());
  }
  store_memory_bytes_.set(resident);

  if (config_.send_heartbeats) {
    // Best-effort on purpose: a heartbeat that needs retransmission is
    // stale by the time it lands; the next tick supersedes it.
    Heartbeat hb{id_, stored_detections()};
    network.send({node_id(), coordinator_,
                  static_cast<std::uint32_t>(MsgType::kHeartbeat),
                  encode(hb), network.now(), {}});
  }

  if (config_.summary_every_ticks > 0 &&
      ++ticks_since_summary_ >= config_.summary_every_ticks) {
    ticks_since_summary_ = 0;
    for (const auto& [partition_id, indexes] : partitions_) {
      ObjectSummary summary{partition_id, network.now(),
                            BloomFilter(config_.summary_bloom_bits)};
      for (ObjectId object : indexes->trajectories.object_ids()) {
        summary.objects.insert(object.value());
      }
      // Best-effort: summaries are advisory pruning hints, refreshed
      // periodically; a lost one only costs pruning opportunity.
      network.send({node_id(), coordinator_,
                    static_cast<std::uint32_t>(MsgType::kObjectSummary),
                    encode(summary), network.now(), {}});
      counters_.add("summaries_published");
    }
  }

  if (config_.retention != Duration::max() &&
      ++ticks_since_compaction_ >= config_.compaction_every_ticks) {
    ticks_since_compaction_ = 0;
    TimePoint horizon = network.now() - config_.retention;
    for (auto& [p, indexes] : partitions_) {
      counters_.add("detections_evicted", indexes->compact(horizon));
    }
    counters_.add("compactions");
  }
  network.set_timer(node_id(), config_.monitor_tick, timer_token);
}

void WorkerNode::handle_message(const Message& message, SimNetwork& network) {
  switch (static_cast<MsgType>(message.type)) {
    case MsgType::kReliableData: {
      if (auto inner = channel_.on_data(message, network)) {
        dispatch(*inner, /*reliable=*/true, network);
      }
      return;
    }
    case MsgType::kReliableAck:
      channel_.on_ack(message);
      return;
    default:
      dispatch(message, /*reliable=*/false, network);
  }
}

void WorkerNode::dispatch(const Message& message, bool reliable,
                          SimNetwork& network) {
  BinaryReader reader(message.payload);
  switch (static_cast<MsgType>(message.type)) {
    case MsgType::kIngestBatch:
      on_ingest(decode_ingest_batch(reader), network);
      break;
    case MsgType::kQueryRequest:
      on_query(decode_query_request(reader), message.from, reliable,
               message.trace, network);
      break;
    case MsgType::kInstallMonitor: {
      MonitorInstall m = decode_monitor_install(reader);
      monitors_.install({m.query, m.region, m.window});
      break;
    }
    case MsgType::kRemoveMonitor: {
      MonitorInstall m = decode_monitor_install(reader);
      monitors_.remove(m.query);
      break;
    }
    case MsgType::kSyncRequest:
      on_sync_request(decode_sync_request(reader), message.from, reliable,
                      network);
      break;
    case MsgType::kSyncResponse:
      on_sync_response(decode_sync_response(reader));
      break;
    default:
      counters_.add("unknown_message");
      break;
  }
}

void WorkerNode::on_ingest(const IngestBatch& batch, SimNetwork& network) {
  WorkerIndexes& indexes = partition(batch.partition);
  auto& seen = ingested_ids_[batch.partition];
  for (const Detection& d : batch.detections) {
    if (!seen.insert(d.id.value()).second) {
      ingest_dups_skipped_.inc();
      continue;
    }
    indexes.ingest(d);
    (batch.is_replica ? ingested_replica_ : ingested_primary_).inc();
    if (!batch.is_replica) {
      std::size_t tested = monitors_.on_detection(d, pending_deltas_);
      monitors_tested_.add(tested);
    }
  }
  if (pending_deltas_.size() >= config_.delta_flush_threshold) {
    flush_deltas(network);
  }
}

void WorkerNode::on_query(const QueryRequest& request, NodeId reply_to,
                          bool reliable, TraceContext parent,
                          SimNetwork& network) {
  queries_served_.inc();
  // Worker compute is instantaneous in virtual time; spans below all share
  // one sim timestamp and carry `wall_us` tags for the real index cost.
  TraceContext qspan;
  if (tracer_ != nullptr && parent.valid()) {
    qspan = tracer_->start_span("worker.query", parent,
                                node_id().value(), network.now());
    tracer_->tag(qspan, "sub_id", std::to_string(request.sub_id));
  }
  auto wall_start = std::chrono::steady_clock::now();
  ResultMerger merger(request.query);
  ScanStats scan_stats;
  for (PartitionId p : request.partitions) {
    auto scan_start = std::chrono::steady_clock::now();
    auto it = partitions_.find(p);
    // One scan span per requested partition — including partitions this
    // worker does not hold (the scan is a no-op, but the trace still shows
    // that the fragment named it).
    if (it != partitions_.end()) {
      merger.add(LocalExecutor::execute(*it->second, request.query,
                                        &scan_stats));
    }
    if (qspan.valid()) {
      auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - scan_start)
                         .count();
      TraceContext scan = tracer_->instant("worker.scan", qspan,
                                           node_id().value(), network.now());
      tracer_->tag(scan, "partition", std::to_string(p.value()));
      tracer_->tag(scan, "wall_us", std::to_string(wall_us));
      if (it == partitions_.end()) tracer_->tag(scan, "absent", "true");
    }
  }
  // Scan-loop wall time, measured before serialization so EXPLAIN's
  // `wall_us` reflects index cost only (the histogram below keeps the
  // serialize-inclusive total).
  auto scan_only_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
  QueryResponse response{request.request_id, request.sub_id, merger.take()};
  response.rows_scanned = scan_stats.rows_scanned;
  response.scan_wall_us = static_cast<std::uint64_t>(scan_only_us);
  response.blocks_scanned = scan_stats.blocks_scanned;
  response.blocks_skipped = scan_stats.blocks_skipped;
  response.rows_evaluated = scan_stats.rows_evaluated;
  response.rows_selected = scan_stats.rows_selected;
  response.vectorized_morsels = scan_stats.vectorized_morsels;
  store_blocks_scanned_.add(scan_stats.blocks_scanned);
  store_blocks_skipped_.add(scan_stats.blocks_skipped);
  vectorized_morsels_.add(scan_stats.vectorized_morsels);
  TraceContext sspan;
  if (qspan.valid()) {
    sspan = tracer_->start_span("worker.serialize", qspan,
                                node_id().value(), network.now());
  }
  auto payload = encode(response);
  if (sspan.valid()) {
    tracer_->tag(sspan, "bytes", std::to_string(payload.size()));
    tracer_->end_span(sspan, network.now());
  }
  auto total_wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  scan_wall_us_.observe(static_cast<double>(total_wall_us));
  if (qspan.valid()) {
    tracer_->tag(qspan, "wall_us", std::to_string(total_wall_us));
    tracer_->end_span(qspan, network.now());
  }
  if (reliable) {
    channel_.send(reply_to,
                  static_cast<std::uint32_t>(MsgType::kQueryResponse),
                  std::move(payload), network, qspan);
  } else {
    Message reply;
    reply.from = node_id();
    reply.to = reply_to;
    reply.type = static_cast<std::uint32_t>(MsgType::kQueryResponse);
    reply.payload = std::move(payload);
    reply.sent_at = network.now();
    reply.trace = qspan;
    network.send(std::move(reply));
  }
}

void WorkerNode::on_sync_request(const SyncRequest& request, NodeId reply_to,
                                 bool reliable, SimNetwork& network) {
  counters_.add("sync_requests_served");
  SyncResponse response;
  response.partition = request.partition;
  auto it = partitions_.find(request.partition);
  if (it != partitions_.end()) {
    const DetectionStore& store = it->second->store;
    response.detections.reserve(store.size());
    for (std::size_t i = 0; i < store.size(); ++i) {
      response.detections.push_back(
          store.get(static_cast<DetectionRef>(i)));
    }
  }
  if (reliable) {
    channel_.send(reply_to,
                  static_cast<std::uint32_t>(MsgType::kSyncResponse),
                  encode(response), network);
  } else {
    network.send({node_id(), reply_to,
                  static_cast<std::uint32_t>(MsgType::kSyncResponse),
                  encode(response), network.now(), {}});
  }
}

void WorkerNode::on_sync_response(const SyncResponse& response) {
  WorkerIndexes& indexes = partition(response.partition);
  auto& seen = ingested_ids_[response.partition];
  for (const Detection& d : response.detections) {
    if (!seen.insert(d.id.value()).second) {
      ingest_dups_skipped_.inc();
      continue;
    }
    indexes.ingest(d);
    ingested_resync_.inc();
  }
  if (pending_syncs_ > 0) --pending_syncs_;
}

void WorkerNode::flush_deltas(SimNetwork& network) {
  if (pending_deltas_.empty()) return;
  DeltaBatch batch;
  batch.deltas.reserve(pending_deltas_.size());
  for (const DeltaUpdate& d : pending_deltas_) {
    batch.deltas.push_back({d.query, d.positive, d.detection});
  }
  pending_deltas_.clear();
  channel_.send(coordinator_,
                static_cast<std::uint32_t>(MsgType::kDeltaBatch),
                encode(batch), network);
}

void WorkerNode::lose_state() {
  partitions_.clear();
  pending_deltas_.clear();
  ingested_ids_.clear();
  channel_.reset();
  counters_.add("state_losses");
}

void WorkerNode::start_resync(
    const std::vector<std::pair<PartitionId, NodeId>>& replica_holders,
    SimNetwork& network) {
  for (const auto& [partition_id, holder] : replica_holders) {
    ++pending_syncs_;
    SyncRequest request{partition_id};
    channel_.send(holder, static_cast<std::uint32_t>(MsgType::kSyncRequest),
                  encode(request), network);
  }
}

std::size_t WorkerNode::stored_detections() const {
  std::size_t total = 0;
  for (const auto& [p, indexes] : partitions_) total += indexes->size();
  return total;
}

}  // namespace stcn
