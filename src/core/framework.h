// Cluster: the framework's top-level façade and public API.
//
// Wires together the simulated network, one coordinator, N workers, a
// partition strategy, and a partition map, and exposes the operations a
// downstream application uses:
//
//   Cluster cluster(world, std::make_unique<HybridStrategy>(...), config);
//   cluster.ingest_all(trace.detections);
//   QueryResult r = cluster.execute(
//       Query::range(cluster.next_query_id(), region, interval));
//
// Everything is driven by the deterministic virtual clock; `execute` pumps
// the network until the query completes (or fails over and completes
// partially), so callers see a synchronous API over an asynchronous
// distributed system.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/ids.h"
#include "core/coordinator.h"
#include "core/gateway.h"
#include "core/worker.h"
#include "net/sim_network.h"
#include "obs/explain.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/tracer.h"
#include "partition/partition_map.h"
#include "query/planner.h"
#include "query/selectivity.h"
#include "reid/path_reconstruction.h"
#include "reid/reid_engine.h"
#include "trace/camera.h"

namespace stcn {

/// Continuous health monitoring. The monitor and its sources are always
/// wired (manual `sample_health` works regardless); `enabled` additionally
/// attaches a ticker node that samples on the sim clock.
struct ClusterHealthConfig {
  bool enabled = false;
  Duration sample_period = Duration::millis(500);
  bool install_default_rules = true;
  HealthThresholds thresholds;
  HealthMonitorConfig monitor;
  /// SLO burn-rate engine: ships with a query-availability and a
  /// query-latency objective unless disabled; specs evaluate on every
  /// health sample through the monitor's hysteresis.
  bool install_default_slos = true;
  double slo_latency_threshold_us = 25'000.0;
  double slo_availability_objective = 0.99;
  double slo_latency_objective = 0.90;
  /// Burn-rate windows (sim clock), applied to the default SLOs. Tests
  /// shrink these so a chaos scenario burns visibly within seconds.
  Duration slo_short_window = Duration::minutes(5);
  Duration slo_long_window = Duration::hours(1);
  /// Alert-triggered flight recorder (see obs/flight_recorder.h).
  FlightRecorderConfig flight;
};

struct ClusterConfig {
  std::size_t worker_count = 4;
  NetworkConfig network;
  CoordinatorConfig coordinator;
  /// Cell size of each worker's spatio-temporal grid index.
  double grid_cell_size = 50.0;
  Duration monitor_tick = Duration::seconds(1);
  /// Worker-side retention window; Duration::max() disables eviction.
  Duration retention = Duration::max();
  /// Object-presence summary cadence in monitor ticks (0 disables).
  std::uint32_t summary_every_ticks = 5;
  /// Reliable-transport knobs, applied to the coordinator and every worker.
  ReliableChannelConfig reliable;
  /// Snapshot cadence in monitor ticks (0 disables the snapshot ticker).
  std::uint32_t snapshot_every_ticks = 10;
  /// Per-partition replay-log retention budget on each worker.
  std::size_t replay_log_max_bytes = 4 * 1024 * 1024;
  /// First retry timeout of a recovery sync exchange (doubles per attempt).
  Duration resync_retry_timeout = Duration::millis(500);
  /// Attempts per sync exchange before the partition is declared failed.
  std::uint32_t resync_max_attempts = 6;
  /// Overall restart_worker deadline (virtual time).
  Duration resync_timeout = Duration::seconds(30);
  /// Distributed-tracing retention; max_traces = 0 disables tracing.
  TracerConfig tracer;
  /// Continuous cluster health monitoring (see ClusterHealthConfig).
  ClusterHealthConfig health;
  /// Tiered detection storage on every worker: sealed blocks past the hot
  /// window are compressed in place (see StoreTierConfig in
  /// index/detection_store.h).
  bool tiered_storage = false;
  /// Sealed blocks kept hot (uncompressed) per partition when tiering is on.
  std::uint32_t hot_sealed_blocks = 2;
  /// Age-triggered demotion: blocks whose newest detection is older than
  /// this are compressed on the next monitor tick. Duration::max() leaves
  /// demotion purely fill-triggered.
  Duration demote_after = Duration::max();
};

/// Dedicated node that drives the health-sampling pipeline (monitor, SLO
/// engine, flight recorder) on a recurring timer, so health sampling
/// advances with the virtual clock like every other periodic process in
/// the simulation.
class HealthTicker final : public NetworkNode {
 public:
  using SampleFn = std::function<void(TimePoint)>;

  HealthTicker(NodeId id, SampleFn sample, Duration period)
      : id_(id), sample_(std::move(sample)), period_(period) {}

  [[nodiscard]] NodeId node_id() const override { return id_; }
  void handle_message(const Message&, SimNetwork&) override {}
  void handle_timer(std::uint64_t, SimNetwork& network) override {
    sample_(network.now());
    network.set_timer(id_, period_, 0);
  }
  void start(SimNetwork& network) { network.set_timer(id_, period_, 0); }

 private:
  NodeId id_;
  SampleFn sample_;
  Duration period_;
};

class Cluster {
 public:
  Cluster(Rect world, std::unique_ptr<PartitionStrategy> strategy,
          const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // -------------------------------------------------------------- ingest
  /// Routes one detection into the cluster (delivery happens on pump()).
  void ingest(const Detection& d) { coordinator_->ingest(d, network_); }
  /// Ingests a full batch: routes, flushes, and pumps to delivery.
  void ingest_all(std::span<const Detection> detections);
  void flush_ingest() { coordinator_->flush_ingest(network_); }

  /// Creates an edge gateway fleet attached to this cluster's network,
  /// seeded with a snapshot of the current partition map. See gateway.h.
  [[nodiscard]] GatewayFleet make_gateway_fleet(std::size_t gateway_count,
                                                GatewayConfig config = {}) {
    return GatewayFleet(gateway_count, NodeId(kCoordinatorNode), *strategy_,
                        coordinator_->partition_map(), config, network_);
  }

  // ------------------------------------------------------------- queries
  [[nodiscard]] QueryId next_query_id() { return QueryId(next_query_id_++); }

  /// Executes a query to completion (synchronous over the virtual clock).
  /// Range/circle/heatmap results feed the selectivity estimator as a side
  /// effect (the framework's query-feedback loop).
  QueryResult execute(const Query& query);

  /// Planner-assisted k-NN: uses the selectivity estimator to run bounded
  /// circle queries (prunable) instead of a cluster-wide broadcast,
  /// expanding the radius only when the estimate under-shot. Exact: returns
  /// the same answer as the broadcast plan.
  QueryResult execute_knn_adaptive(Point center, std::uint32_t k,
                                   const TimeInterval& interval);

  // ------------------------------------------------------ EXPLAIN/ANALYZE
  struct ExplainResult {
    QueryResult result;
    QueryProfile profile;
  };
  struct ExplainPathResult {
    ReconstructedPath path;
    QueryProfile profile;
  };

  /// Executes `query` with the profiler armed: the returned profile holds
  /// every planning/execution stage with estimated vs actual cardinalities.
  /// k-NN queries route through the adaptive planner (that is the plan
  /// worth explaining). The profile is also attached to the slow-query log
  /// entry when the query qualified.
  ExplainResult explain(const Query& query);

  /// Profiled multi-hop path reconstruction: per-hop stages with the
  /// distributed camera-window queries they issued nested under them.
  ExplainPathResult explain_path(const ReidEngine& engine,
                                 const PathParams& params,
                                 const Detection& probe,
                                 const CandidateSource& source);

  [[nodiscard]] QueryProfiler& profiler() { return profiler_; }

  [[nodiscard]] const SelectivityEstimator& selectivity() const {
    return estimator_;
  }

  // --------------------------------------------------- continuous queries
  void install_monitor(const ContinuousQuerySpec& spec) {
    coordinator_->install_monitor(spec, network_);
    pump();
  }
  std::vector<DeltaUpdate> drain_deltas(QueryId id) {
    return coordinator_->drain_deltas(id);
  }
  [[nodiscard]] std::vector<Detection> live_answer(QueryId id) const {
    return coordinator_->live_answer(id);
  }

  // ------------------------------------------------------------ failures
  /// Crashes a worker: network partitions it away AND its in-memory state
  /// is lost (real crash semantics). Snapshots persist (local disk model).
  void crash_worker(WorkerId w);

  /// Outcome of restart_worker: how long recovery took (virtual time) and
  /// whether every partition actually caught up. `completed == false`
  /// means the deadline expired or some exchange exhausted its retry
  /// ladder — the coordinator keeps routing those partitions to the
  /// surviving holder, so queries stay correct either way.
  struct RecoveryReport {
    Duration duration = Duration::zero();
    bool completed = false;
    std::size_t partitions_total = 0;
    std::size_t partitions_recovered = 0;
    std::size_t partitions_failed = 0;
  };

  /// Restarts a crashed worker and recovers the partitions it should hold
  /// via snapshot install + replay-log delta resync (full copy when no
  /// usable snapshot/log survives). Routing flips to the surviving holder
  /// before any data moves and flips back per partition on catch-up, so
  /// serving stays correct throughout.
  RecoveryReport restart_worker(WorkerId w);

  // ------------------------------------------------------------ plumbing
  /// Delivers all in-flight messages (bounded by `horizon` of virtual time
  /// ahead of now, so recurring timers cannot spin forever).
  void pump(Duration horizon = Duration::seconds(2));

  /// Advances the virtual clock (drives monitor window expiry).
  void advance_time(Duration d);

  // ------------------------------------------------------- observability
  /// Cluster-wide tracer (shared by coordinator, workers, channels).
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }

  /// Trace id of the most recent `execute` call (0 if tracing is off).
  [[nodiscard]] std::uint64_t last_trace_id() const {
    return last_trace_id_;
  }

  /// One registry holding every node's metrics, namespaced: `net.*`,
  /// `coordinator.*`, `worker.*` (summed across workers). Counter-only
  /// node stats not yet on handles are imported too, so the snapshot is a
  /// complete machine-readable view of the cluster.
  [[nodiscard]] MetricsRegistry metrics_snapshot() const;

  /// Continuous health monitor over every node's registry. Sources and
  /// rules are wired at construction; sampling runs on the sim clock when
  /// `config.health.enabled`, or manually via sample_health().
  [[nodiscard]] HealthMonitor& health_monitor() { return health_monitor_; }
  [[nodiscard]] const HealthMonitor& health_monitor() const {
    return health_monitor_;
  }
  /// Per-node healthy/degraded/suspect rollup as of the last sample.
  [[nodiscard]] ClusterHealth health() const {
    return health_monitor_.health();
  }
  /// Takes one health sample now (manual drive for tests): monitor, SLO
  /// burn rates, flight-recorder frame, and trigger check, in that order —
  /// the same pipeline the ticker runs.
  void sample_health() { sample_health_at(network_.now()); }

  /// SLO burn-rate engine (objectives evaluated on every health sample).
  [[nodiscard]] SloEngine& slo_engine() { return slo_engine_; }
  [[nodiscard]] const SloEngine& slo_engine() const { return slo_engine_; }

  /// Per-query cost ledger assembled by the coordinator.
  [[nodiscard]] const ResourceLedger& cost_ledger() const {
    return coordinator_->cost_ledger();
  }

  /// Flight recorder: pre-trigger frames and frozen postmortem bundles.
  [[nodiscard]] FlightRecorder& flight_recorder() { return flight_recorder_; }
  [[nodiscard]] const FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }

  /// Assembles and freezes a postmortem bundle right now (manual trigger;
  /// the sampling pipeline calls this automatically on alert transitions).
  const PostmortemBundle& freeze_postmortem(const FlightTrigger& trigger);

  [[nodiscard]] SimNetwork& network() { return network_; }
  [[nodiscard]] Coordinator& coordinator() { return *coordinator_; }
  [[nodiscard]] const Coordinator& coordinator() const {
    return *coordinator_;
  }
  [[nodiscard]] WorkerNode& worker(WorkerId w);
  [[nodiscard]] const std::vector<WorkerId>& worker_ids() const {
    return worker_ids_;
  }
  [[nodiscard]] const PartitionStrategy& strategy() const {
    return *strategy_;
  }
  [[nodiscard]] TimePoint now() const { return network_.now(); }

 private:
  static constexpr std::uint64_t kCoordinatorNode = 1'000'000;
  // Gateways occupy [2'000'000, …); the health ticker sits above them.
  static constexpr std::uint64_t kHealthNode = 3'000'000;

  /// The full sampling pipeline behind sample_health() and the ticker.
  void sample_health_at(TimePoint now);
  /// Appends one compact cluster-state frame to the flight recorder.
  void record_flight_frame(TimePoint now);
  /// Freezes a bundle for every new firing transition / recovery failure.
  void check_flight_triggers(TimePoint now);
  /// Sum of `recovery_failed` across all workers.
  [[nodiscard]] std::uint64_t recovery_failed_total() const;

  Rect world_;
  ClusterConfig config_;
  std::unique_ptr<PartitionStrategy> strategy_;
  SimNetwork network_;
  Tracer tracer_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<WorkerNode>> workers_;
  std::vector<WorkerId> worker_ids_;
  std::uint64_t next_query_id_ = 1;
  std::uint64_t last_trace_id_ = 0;
  SelectivityEstimator estimator_;
  QueryProfiler profiler_;
  HealthMonitor health_monitor_;
  SloEngine slo_engine_;
  FlightRecorder flight_recorder_;
  // Trigger-edge detection state for the flight recorder.
  std::uint64_t flight_events_seen_ = 0;
  std::uint64_t flight_recovery_failed_seen_ = 0;
  std::unique_ptr<HealthTicker> health_ticker_;
};

/// CandidateSource backed by distributed camera-window queries — this is
/// how the re-identification engine runs on the framework.
class DistributedCandidateSource final : public CandidateSource {
 public:
  DistributedCandidateSource(Cluster& cluster, const CameraNetwork& cameras)
      : cluster_(cluster), cameras_(cameras) {}

  [[nodiscard]] std::vector<Detection> detections_at(
      CameraId camera, const TimeInterval& window) const override {
    Query q = Query::camera_window(cluster_.next_query_id(), camera, window);
    return cluster_.execute(q).detections;
  }

  [[nodiscard]] std::vector<CameraId> all_cameras() const override {
    std::vector<CameraId> out;
    out.reserve(cameras_.size());
    for (const Camera& cam : cameras_.cameras()) out.push_back(cam.id);
    return out;
  }

 private:
  Cluster& cluster_;
  const CameraNetwork& cameras_;
};

}  // namespace stcn
