// Persistent condition-variable task pool.
//
// ParallelScatterGather and the morsel-driven scan layer need to fan short
// tasks out to real threads on every query; spawning std::threads per call
// costs more than the scans themselves for selective queries. The pool
// creates its threads once and reuses them: run(count, fn) wakes the first
// `count` workers, each executes fn(slot) exactly once for its slot, and
// run() returns when every slot has finished. Calls are serialized by the
// caller (one run() at a time), which is the only usage pattern the query
// path needs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace stcn {

class TaskPool {
 public:
  explicit TaskPool(std::size_t threads) {
    STCN_CHECK(threads > 0);
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~TaskPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Executes fn(0) ... fn(count-1), one slot per pool thread, and blocks
  /// until all have returned. `count` must not exceed thread_count().
  void run(std::size_t count, const std::function<void(std::size_t)>& fn) {
    STCN_CHECK(count <= workers_.size());
    if (count == 0) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_ = &fn;
      active_ = count;
      remaining_ = count;
      ++generation_;
    }
    wake_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return remaining_ == 0; });
    task_ = nullptr;
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop(std::size_t slot) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this, &seen] {
          return stopping_ || generation_ != seen;
        });
        if (stopping_) return;
        seen = generation_;
        if (slot >= active_) continue;  // not needed this round
        task = task_;
      }
      (*task)(slot);
      bool last;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        last = --remaining_ == 0;
      }
      if (last) done_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t active_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace stcn
