// Coordinator node: ingest routing, query scatter-gather, failover.
//
// The coordinator is the client-facing brain of the framework:
//  * Ingest — each detection is routed by the PartitionStrategy to its
//    partition's primary (and backup replica), batched per destination, and
//    shipped over the reliable channel so fabric loss cannot silently drop
//    detections.
//  * Queries — the strategy turns a query footprint into a partition set;
//    partitions are grouped by owning worker; each worker gets one request
//    fragment (identified by a sub_id it echoes back) naming exactly the
//    partitions it must serve; fragments are merged. The per-query worker
//    fan-out is the pruning metric of E2/E3.
//  * Hedging — a fragment unanswered after `hedge_delay_fraction *
//    query_timeout` is speculatively re-issued to the partition backups;
//    the first answer (original or hedge) wins. This masks gray failures
//    (slow-but-alive workers) that heartbeat-based detection cannot see.
//  * Failover — if a fragment misses the reply deadline outright, its
//    partitions are re-pointed to their backups and the fragment is
//    re-issued there.
//  * Continuous queries — monitors are installed on every worker whose
//    partitions overlap the region; delta batches stream back and are
//    folded into live answer sets.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "core/protocol.h"
#include "core/recovery.h"
#include "net/node.h"
#include "net/reliable_channel.h"
#include "net/sim_network.h"
#include "obs/cost.h"
#include "obs/explain.h"
#include "obs/heat.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/tracer.h"
#include "partition/partition_map.h"
#include "query/continuous.h"
#include "query/result.h"

namespace stcn {

struct CoordinatorConfig {
  std::size_t ingest_batch_size = 32;
  Duration query_timeout = Duration::millis(50);
  /// Maximum failover re-issues per query before reporting partial results.
  int max_retries = 2;
  bool replicate = true;
  /// Heartbeat-based failure detection: a worker silent for longer than
  /// `heartbeat_timeout` has its partitions proactively failed over, so
  /// queries after detection avoid the dead worker entirely (no per-query
  /// retry latency).
  bool detect_failures = true;
  Duration heartbeat_timeout = Duration::seconds(5);
  Duration failure_sweep_period = Duration::seconds(2);
  /// Hedged requests: when a query fragment is still unanswered after
  /// `hedge_delay_fraction * query_timeout`, speculatively re-issue it to
  /// the partition backups and take whichever answer lands first. One hedge
  /// round per query.
  bool hedge_queries = true;
  double hedge_delay_fraction = 0.5;
  /// Queries slower than this get their full span tree captured in the
  /// slow-query log (only effective when a tracer is attached).
  Duration slow_query_threshold = Duration::millis(25);
  std::size_t slow_query_log_capacity = 64;
  /// Reliable-transport knobs for loss-sensitive traffic (ingest, queries).
  ReliableChannelConfig channel;
  /// Per-query cost accounting (top-K heavy-hitter capacity, recent ring).
  ResourceLedgerConfig ledger;
  /// Cluster-wide heat map (per-partition rings, skew rollup window).
  HeatSnapshotConfig heat;
};

class Coordinator final : public NetworkNode {
 public:
  Coordinator(NodeId id, const PartitionStrategy& strategy, PartitionMap map,
              CoordinatorConfig config)
      : id_(id), strategy_(strategy), map_(std::move(map)), config_(config),
        ingested_(metrics_.counter(
            "ingested", "Detections routed into the cluster by this node")),
        queries_submitted_(metrics_.counter(
            "queries_submitted", "Queries accepted for scatter-gather")),
        query_fanout_total_(metrics_.counter(
            "query_fanout_total",
            "Worker fragments issued, summed over queries (pruning metric)")),
        query_partitions_total_(metrics_.counter(
            "query_partitions_total",
            "Partitions selected by query footprints, summed over queries")),
        query_latency_us_(metrics_.histogram(
            "query_latency_us",
            "End-to-end query latency, submit to last fragment (sim us)")),
        hedges_issued_(metrics_.counter(
            "hedges_issued",
            "Speculative backup fragments sent for slow primaries")),
        hedges_won_(metrics_.counter(
            "hedges_won", "Primary fragments retired by hedge answers")),
        failover_retries_(metrics_.counter(
            "failover_retries",
            "Query timeout rounds that re-routed fragments to backups")),
        queries_partial_(metrics_.counter(
            "queries_partial",
            "Queries answered incompletely after exhausting retries")),
        workers_suspected_(metrics_.counter(
            "workers_suspected",
            "Workers declared dead by the heartbeat failure detector")),
        partitions_recovering_(metrics_.gauge(
            "partitions_recovering",
            "Partitions currently mid-resync (routing points at survivor)")),
        trajectory_partitions_pruned_(metrics_.counter(
            "trajectory_partitions_pruned",
            "Trajectory fragments skipped via object-presence summaries")),
        estimate_q_error_x100_(metrics_.histogram(
            "estimate_q_error_x100",
            "Selectivity q-error per realized estimate, x100")),
        knn_plan_q_error_x100_(metrics_.histogram(
            "knn_plan_q_error_x100",
            "kNN planner initial-radius q-error per plan, x100")),
        heat_(config.heat),
        partition_load_relative_stddev_(metrics_.gauge(
            "partition.load_relative_stddev",
            "Relative stddev (stddev/mean) of windowed per-partition load")),
        partition_hot_cold_ratio_(metrics_.gauge(
            "partition.hot_cold_ratio",
            "Hottest / coldest partition windowed-load ratio")),
        partition_replicate_factor_(metrics_.gauge(
            "partition.replicate_factor",
            "Mean replicas per heat-tracked partition")),
        partition_scan_gini_(metrics_.gauge(
            "partition.scan_gini",
            "Gini coefficient of windowed per-worker scan load")),
        partition_hottest_load_(metrics_.gauge(
            "partition.hottest_load",
            "Windowed load of the hottest partition (labeled with its id)")),
        partition_tracked_(metrics_.gauge(
            "partition.tracked",
            "Partitions with heat telemetry in the coordinator's map")),
        slow_log_(config.slow_query_threshold,
                  config.slow_query_log_capacity),
        ledger_(config.ledger),
        channel_(id, counters_, config.channel) {
    channel_.register_metrics(metrics_);
    register_event_counter_help();
  }

  [[nodiscard]] NodeId node_id() const override { return id_; }
  void handle_message(const Message& message, SimNetwork& network) override;
  void handle_timer(std::uint64_t timer_token, SimNetwork& network) override;

  /// Arms the failure-detection sweep (call once after attaching).
  void start(SimNetwork& network);

  /// Number of partitions with a current object-presence summary.
  [[nodiscard]] std::size_t summarized_partitions() const {
    return summaries_.size();
  }

  /// Workers currently considered dead by the failure detector.
  [[nodiscard]] const std::unordered_set<WorkerId>& suspected_workers()
      const {
    return suspected_;
  }
  /// Clears suspicion (a restarted worker resumes heartbeating anyway, but
  /// recovery paths may clear eagerly).
  void clear_suspicion(WorkerId w) { suspected_.erase(w); }

  // ------------------------------------------------------------- ingest
  /// Routes one detection (batched; call flush_ingest when done).
  void ingest(const Detection& d, SimNetwork& network);
  void flush_ingest(SimNetwork& network);

  // ------------------------------------------------------------- queries
  /// Starts a query; returns a request handle. Completion is observed via
  /// `poll` after pumping the network. A valid `parent` attaches the
  /// query's span tree under the caller's span (gateway entry point).
  /// `estimated_rows` (>= 0) is the caller's pre-submit cardinality
  /// estimate; it is apportioned across fragments so EXPLAIN's per-worker
  /// scan stages carry estimated-vs-actual pairs.
  std::uint64_t submit(const Query& query, SimNetwork& network,
                       TraceContext parent = {},
                       double estimated_rows = -1.0);

  /// Result if the request completed (all fragments in, or retries
  /// exhausted → partial). nullopt while still pending.
  [[nodiscard]] std::optional<QueryResult> poll(std::uint64_t request_id);

  /// True once the request is no longer awaiting any fragment.
  [[nodiscard]] bool is_complete(std::uint64_t request_id) const;

  // --------------------------------------------------- continuous queries
  void install_monitor(const ContinuousQuerySpec& spec, SimNetwork& network);
  void remove_monitor(QueryId id, const Rect& region, SimNetwork& network);

  /// Deltas received for `id` since the last drain.
  std::vector<DeltaUpdate> drain_deltas(QueryId id);
  /// Live answer set maintained from the delta stream.
  [[nodiscard]] std::vector<Detection> live_answer(QueryId id) const;

  // -------------------------------------------------------------- failover
  /// Promotes backups for every partition whose primary is `worker`.
  void promote_backups_of(WorkerId worker);

  // -------------------------------------------------------------- recovery

  /// The routing plan for one worker's restart: which holder each lost
  /// partition recovers from, tagged with a recovery id so stale
  /// completions from a previous incarnation are ignored.
  struct RecoveryPlan {
    std::uint64_t recovery_id = 0;
    std::vector<RecoverySpec> specs;
  };

  /// Flips routing *before* any data moves: every partition `w` held is
  /// pointed at its surviving holder (the recovering worker rides along as
  /// backup so the live replica stream warms it), marked RECOVERING, and
  /// given a recovery spec. Partitions with no surviving holder get a
  /// local-only spec (holder NodeId(0)) and are not marked — there is
  /// nothing to wait for, and queries against them go partial rather than
  /// silently empty.
  [[nodiscard]] RecoveryPlan begin_worker_recovery(WorkerId w);

  /// Partitions currently marked RECOVERING with `w` as the rejoining
  /// target (0 == recovery complete from the router's point of view).
  [[nodiscard]] std::size_t recovering_count_for(WorkerId w) const {
    std::size_t n = 0;
    for (const auto& [p, r] : recovering_) {
      if (r.target == w) ++n;
    }
    return n;
  }
  [[nodiscard]] bool partition_recovering(PartitionId p) const {
    return recovering_.contains(p);
  }

  [[nodiscard]] const PartitionMap& partition_map() const { return map_; }
  /// Mutable access for recovery orchestration (re-replication after
  /// failover leaves a partition with primary == backup).
  [[nodiscard]] PartitionMap& mutable_partition_map() { return map_; }

  /// Counter view; registry-backed counters are mirrored in at read time.
  [[nodiscard]] const CounterSet& counters() const {
    metrics_.sync_counters_into(counters_);
    return counters_;
  }
  CounterSet& counters() {
    metrics_.sync_counters_into(counters_);
    return counters_;
  }

  /// Pre-registered metric handles (counters, query-latency histogram).
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Attaches the cluster-wide tracer (shared with the reliable channel).
  void set_tracer(Tracer* tracer) {
    tracer_ = tracer;
    channel_.set_tracer(tracer);
  }

  /// Span trees of queries that exceeded `slow_query_threshold`.
  [[nodiscard]] const SlowQueryLog& slow_query_log() const {
    return slow_log_;
  }
  SlowQueryLog& slow_query_log() { return slow_log_; }

  /// Per-query resource costs attributed by kind / tenant / hottest camera.
  [[nodiscard]] const ResourceLedger& cost_ledger() const { return ledger_; }
  ResourceLedger& cost_ledger() { return ledger_; }

  // ------------------------------------------------------- heat observatory
  /// Cluster-wide per-partition heat, folded in from heartbeat piggybacks.
  [[nodiscard]] const HeatMapSnapshot& heat() const { return heat_; }

  /// Recomputes the partition.* skew gauges (and the exemplar partition-id
  /// labels) from the heat map. Runs on every heartbeat that carried heat
  /// and at the head of the cluster's health-sampling pipeline, so the
  /// gauges are fresh when the monitor samples them.
  void refresh_heat_gauges(TimePoint now);

  /// Read-only placement advice over the current heat map (never mutates
  /// routing state).
  [[nodiscard]] std::vector<PlacementRecommendation> placement_advice(
      TimePoint now, PlacementAdvisorConfig config = {}) const {
    return PlacementAdvisor::advise(heat_, map_, now, config);
  }

  /// Attaches an EXPLAIN/ANALYZE profiler (may be null). While the profiler
  /// has an active profile, submit/on_response record planning and
  /// per-worker scan stages into it.
  void set_profiler(QueryProfiler* profiler) { profiler_ = profiler; }

  /// Feeds a realized estimate-vs-actual pair into the planner-calibration
  /// histograms (stored as q-error × 100 for bucket resolution).
  void observe_estimate_error(double estimated, double actual) {
    estimate_q_error_x100_.observe(q_error(estimated, actual) * 100.0);
  }
  void observe_knn_plan_error(double estimated, double actual) {
    knn_plan_q_error_x100_.observe(q_error(estimated, actual) * 100.0);
  }

  /// Reliable-transport state: frames sent but not yet acked. 0 means every
  /// ingest batch and query fragment this node sent has been delivered (the
  /// "acked" in the chaos invariant *no acked detection is ever lost*).
  [[nodiscard]] std::size_t unacked_frames() const {
    return channel_.unacked();
  }

  /// Cumulative worker fan-out / query count (E2/E3 pruning metric).
  [[nodiscard]] double mean_fanout() const {
    auto q = queries_submitted_.value();
    return q ? static_cast<double>(query_fanout_total_.value()) /
                   static_cast<double>(q)
             : 0.0;
  }

 private:
  /// One scatter unit of a query: a partition set sent to one worker. A
  /// hedge fragment duplicates part of a primary fragment (`covers` names
  /// it); the primary is satisfied when it answers itself, or when hedge
  /// answers cumulatively cover every one of its partitions (its partitions
  /// may back up to different workers, so one hedge answer is not enough).
  struct Fragment {
    NodeId worker;
    std::vector<PartitionId> partitions;
    std::uint64_t covers = 0;  // != 0 → hedge for that primary fragment
    bool retired = false;      // answered, hedged-over, or abandoned
    std::unordered_set<std::uint64_t> hedge_covered;  // partitions answered
    TraceContext span;  // fragment span (send → retire)
    /// EXPLAIN: caller's estimate apportioned to this fragment, or -1.
    double est_rows = -1.0;
    /// When the fragment was (re-)issued; answers observe per-peer latency.
    TimePoint sent_at;
  };

  struct PendingQuery {
    Query query;
    std::unordered_map<std::uint64_t, Fragment> fragments;  // by sub_id
    std::vector<QueryResult> results;
    std::size_t outstanding = 0;  // unretired primary fragments
    int retries_left = 0;
    bool hedged = false;
    bool partial = false;
    TraceContext root;  // coordinator.fanout span
    TimePoint submitted_at;
    bool finished = false;  // latency observed, root span ended
    /// Resource-cost accumulator, committed to the ledger at finish.
    CostVector cost;
    /// Detections returned per camera, for hottest-camera attribution.
    std::unordered_map<std::uint64_t, std::uint64_t> camera_counts;
  };

  static NodeId worker_node(WorkerId w) { return NodeId(w.value()); }

  /// Per-peer health signals: hedges issued against / won from a worker,
  /// fragment timeouts, and end-to-end fragment latency. Registered lazily
  /// under `peer.<node>.` so the health monitor's wildcard rules can watch
  /// every worker without enumeration.
  struct PeerStats {
    Counter* hedged = nullptr;
    Counter* hedge_wins = nullptr;
    Counter* timeouts = nullptr;
    LatencyHistogram* latency = nullptr;
  };
  PeerStats& peer_stats(NodeId worker);

  /// Help strings for eagerly-bumped CounterSet events (no registry handle;
  /// picked up by import_counter_set when snapshots are assembled).
  void register_event_counter_help();

  /// Application-level dispatch (after reliable-channel unwrapping).
  void dispatch(const Message& message, SimNetwork& network);

  /// Returns the encoded request payload size (ledger bytes-out accounting).
  std::size_t send_query_to(NodeId worker, std::uint64_t request_id,
                            std::uint64_t sub_id, const Query& query,
                            const std::vector<PartitionId>& partitions,
                            SimNetwork& network, TraceContext ctx);
  /// `wire_bytes` is the response payload size as it arrived off the wire.
  void on_response(const QueryResponse& response, std::size_t wire_bytes,
                   TimePoint now);
  /// Ends the root span and observes latency once all fragments resolve.
  void maybe_finish(std::uint64_t request_id, PendingQuery& pending,
                    TimePoint now);
  void on_deltas(const DeltaBatch& batch);
  void on_recovery_done(const RecoveryDone& done);
  /// Speculatively re-issues unanswered fragments to partition backups.
  void hedge(std::uint64_t request_id, SimNetwork& network);
  /// Re-routes a timed-out request's unanswered partitions to backups.
  void failover_retry(std::uint64_t request_id, SimNetwork& network);

  /// Workers whose partitions overlap `region` footprint partitions.
  [[nodiscard]] std::vector<PartitionId> footprint(const Query& query) const;

  NodeId id_;
  const PartitionStrategy& strategy_;
  PartitionMap map_;
  CoordinatorConfig config_;

  /// Flushes one partition's buffer: assigns the batch its pbid and sends
  /// the identical detection set to the primary and (distinct) backup.
  void flush_partition_buffer(PartitionId p, std::vector<Detection>& buffer,
                              SimNetwork& network);

  // Ingest batching: per partition, so one pbid covers the identical batch
  // sent to both holders (that is what makes watermarks comparable across
  // replicas).
  std::unordered_map<std::uint64_t, std::vector<Detection>> ingest_buffers_;
  // Next batch id per partition (pbid 0 is reserved for "unsequenced").
  std::unordered_map<std::uint64_t, std::uint64_t> ingest_pbids_;

  /// RECOVERING bookkeeping for one partition: who is rejoining, who is
  /// serving meanwhile, and whether the rejoiner was the primary (so roles
  /// are restored on completion).
  struct RecoveringPartition {
    WorkerId target;
    WorkerId holder;
    bool restore_primary = false;
    std::uint64_t recovery_id = 0;
  };
  std::unordered_map<PartitionId, RecoveringPartition> recovering_;
  std::uint64_t next_recovery_id_ = 1;

  std::uint64_t next_request_id_ = 1;
  std::uint64_t next_sub_id_ = 1;
  std::unordered_map<std::uint64_t, PendingQuery> pending_;

  std::unordered_map<QueryId, std::vector<DeltaUpdate>> delta_log_;
  std::unordered_map<QueryId, std::unordered_map<std::uint64_t, Detection>>
      live_answers_;

  // Failure detector state.
  std::unordered_map<WorkerId, TimePoint> last_heartbeat_;
  std::unordered_set<WorkerId> suspected_;

  // Freshest object-presence summary per partition (trajectory pruning).
  std::unordered_map<PartitionId, ObjectSummary> summaries_;

  // mutable: observability counters are updated from const query-planning
  // paths (e.g. footprint pruning), and registry-backed counters are
  // mirrored in from const accessors.
  mutable CounterSet counters_;

  // Pre-registered metric handles for hot paths; everything else still
  // writes counters_ eagerly and both views meet in counters().
  MetricsRegistry metrics_;
  Counter& ingested_;
  Counter& queries_submitted_;
  Counter& query_fanout_total_;
  Counter& query_partitions_total_;
  LatencyHistogram& query_latency_us_;
  Counter& hedges_issued_;
  Counter& hedges_won_;
  Counter& failover_retries_;
  Counter& queries_partial_;
  Counter& workers_suspected_;
  Gauge& partitions_recovering_;
  // Reference member: bumped from the const footprint() planning path.
  Counter& trajectory_partitions_pruned_;
  // Planner calibration: q-error × 100 per realized estimate.
  LatencyHistogram& estimate_q_error_x100_;
  LatencyHistogram& knn_plan_q_error_x100_;
  // Cluster-wide per-partition heat, fed from heartbeat piggybacks; the
  // skew rollups are exported through the gauges below.
  HeatMapSnapshot heat_;
  Gauge& partition_load_relative_stddev_;
  Gauge& partition_hot_cold_ratio_;
  Gauge& partition_replicate_factor_;
  Gauge& partition_scan_gini_;
  Gauge& partition_hottest_load_;
  Gauge& partition_tracked_;
  std::unordered_map<std::uint64_t, PeerStats> peer_stats_;  // by node id

  Tracer* tracer_ = nullptr;
  SlowQueryLog slow_log_;
  ResourceLedger ledger_;
  QueryProfiler* profiler_ = nullptr;
  // Request the active profile belongs to; responses for other requests
  // (late monitors, unrelated traffic) do not record stages.
  std::uint64_t profiled_request_ = 0;

  // Reliable transport for ingest batches and query fragments. Declared
  // after counters_/metrics_ (it writes its accounting there).
  ReliableChannel channel_;
};

}  // namespace stcn
