// Coordinator node: ingest routing, query scatter-gather, failover.
//
// The coordinator is the client-facing brain of the framework:
//  * Ingest — each detection is routed by the PartitionStrategy to its
//    partition's primary (and backup replica), batched per destination.
//  * Queries — the strategy turns a query footprint into a partition set;
//    partitions are grouped by owning worker; each worker gets one request
//    naming exactly the partitions it must serve; fragments are merged.
//    The per-query worker fan-out is the pruning metric of E2/E3.
//  * Failover — if a worker misses the reply deadline, its partitions are
//    re-pointed to their backups and the request is re-issued there.
//  * Continuous queries — monitors are installed on every worker whose
//    partitions overlap the region; delta batches stream back and are
//    folded into live answer sets.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "core/protocol.h"
#include "net/node.h"
#include "net/sim_network.h"
#include "partition/partition_map.h"
#include "query/continuous.h"
#include "query/result.h"

namespace stcn {

struct CoordinatorConfig {
  std::size_t ingest_batch_size = 32;
  Duration query_timeout = Duration::millis(50);
  /// Maximum failover re-issues per query before reporting partial results.
  int max_retries = 2;
  bool replicate = true;
  /// Heartbeat-based failure detection: a worker silent for longer than
  /// `heartbeat_timeout` has its partitions proactively failed over, so
  /// queries after detection avoid the dead worker entirely (no per-query
  /// retry latency).
  bool detect_failures = true;
  Duration heartbeat_timeout = Duration::seconds(5);
  Duration failure_sweep_period = Duration::seconds(2);
};

class Coordinator final : public NetworkNode {
 public:
  Coordinator(NodeId id, const PartitionStrategy& strategy, PartitionMap map,
              CoordinatorConfig config)
      : id_(id), strategy_(strategy), map_(std::move(map)), config_(config) {}

  [[nodiscard]] NodeId node_id() const override { return id_; }
  void handle_message(const Message& message, SimNetwork& network) override;
  void handle_timer(std::uint64_t timer_token, SimNetwork& network) override;

  /// Arms the failure-detection sweep (call once after attaching).
  void start(SimNetwork& network);

  /// Number of partitions with a current object-presence summary.
  [[nodiscard]] std::size_t summarized_partitions() const {
    return summaries_.size();
  }

  /// Workers currently considered dead by the failure detector.
  [[nodiscard]] const std::unordered_set<WorkerId>& suspected_workers()
      const {
    return suspected_;
  }
  /// Clears suspicion (a restarted worker resumes heartbeating anyway, but
  /// recovery paths may clear eagerly).
  void clear_suspicion(WorkerId w) { suspected_.erase(w); }

  // ------------------------------------------------------------- ingest
  /// Routes one detection (batched; call flush_ingest when done).
  void ingest(const Detection& d, SimNetwork& network);
  void flush_ingest(SimNetwork& network);

  // ------------------------------------------------------------- queries
  /// Starts a query; returns a request handle. Completion is observed via
  /// `poll` after pumping the network.
  std::uint64_t submit(const Query& query, SimNetwork& network);

  /// Result if the request completed (all fragments in, or retries
  /// exhausted → partial). nullopt while still pending.
  [[nodiscard]] std::optional<QueryResult> poll(std::uint64_t request_id);

  /// True once the request is no longer awaiting any worker.
  [[nodiscard]] bool is_complete(std::uint64_t request_id) const;

  // --------------------------------------------------- continuous queries
  void install_monitor(const ContinuousQuerySpec& spec, SimNetwork& network);
  void remove_monitor(QueryId id, const Rect& region, SimNetwork& network);

  /// Deltas received for `id` since the last drain.
  std::vector<DeltaUpdate> drain_deltas(QueryId id);
  /// Live answer set maintained from the delta stream.
  [[nodiscard]] std::vector<Detection> live_answer(QueryId id) const;

  // -------------------------------------------------------------- failover
  /// Promotes backups for every partition whose primary is `worker`.
  void promote_backups_of(WorkerId worker);

  [[nodiscard]] const PartitionMap& partition_map() const { return map_; }
  /// Mutable access for recovery orchestration (re-replication after
  /// failover leaves a partition with primary == backup).
  [[nodiscard]] PartitionMap& mutable_partition_map() { return map_; }
  [[nodiscard]] const CounterSet& counters() const { return counters_; }
  CounterSet& counters() { return counters_; }

  /// Cumulative worker fan-out / query count (E2/E3 pruning metric).
  [[nodiscard]] double mean_fanout() const {
    auto q = counters_.get("queries_submitted");
    return q ? static_cast<double>(counters_.get("query_fanout_total")) /
                   static_cast<double>(q)
             : 0.0;
  }

 private:
  struct PendingQuery {
    Query query;
    std::unordered_map<NodeId, std::vector<PartitionId>> assignment;
    std::unordered_set<NodeId> awaiting;
    std::vector<QueryResult> fragments;
    int retries_left = 0;
    bool partial = false;
  };

  static NodeId worker_node(WorkerId w) { return NodeId(w.value()); }

  void send_query_to(NodeId worker, std::uint64_t request_id,
                     const Query& query,
                     const std::vector<PartitionId>& partitions,
                     SimNetwork& network);
  void on_response(const QueryResponse& response, NodeId from);
  void on_deltas(const DeltaBatch& batch);
  /// Re-routes a timed-out request's unanswered partitions to backups.
  void failover_retry(std::uint64_t request_id, SimNetwork& network);

  /// Workers whose partitions overlap `region` footprint partitions.
  [[nodiscard]] std::vector<PartitionId> footprint(const Query& query) const;

  NodeId id_;
  const PartitionStrategy& strategy_;
  PartitionMap map_;
  CoordinatorConfig config_;

  // Ingest batching: (worker node, partition, is_replica) → buffered batch.
  struct BatchKey {
    std::uint64_t node;
    std::uint64_t partition;
    bool replica;
    friend bool operator==(const BatchKey&, const BatchKey&) = default;
  };
  struct BatchKeyHash {
    std::size_t operator()(const BatchKey& k) const {
      return std::hash<std::uint64_t>{}(k.node * 0x9e3779b97f4a7c15ULL ^
                                        (k.partition << 1) ^
                                        (k.replica ? 1 : 0));
    }
  };
  std::unordered_map<BatchKey, std::vector<Detection>, BatchKeyHash>
      ingest_buffers_;

  std::uint64_t next_request_id_ = 1;
  std::unordered_map<std::uint64_t, PendingQuery> pending_;

  std::unordered_map<QueryId, std::vector<DeltaUpdate>> delta_log_;
  std::unordered_map<QueryId, std::unordered_map<std::uint64_t, Detection>>
      live_answers_;

  // Failure detector state.
  std::unordered_map<WorkerId, TimePoint> last_heartbeat_;
  std::unordered_set<WorkerId> suspected_;

  // Freshest object-presence summary per partition (trajectory pruning).
  std::unordered_map<PartitionId, ObjectSummary> summaries_;

  // mutable: observability counters are updated from const query-planning
  // paths (e.g. footprint pruning).
  mutable CounterSet counters_;
};

}  // namespace stcn
