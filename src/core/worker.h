// Worker node: hosts partitions, executes query fragments, runs monitors.
//
// A worker owns one WorkerIndexes bundle per partition it hosts (primary or
// backup replica — same storage either way; the role matters only for
// monitor/delta emission, which only primaries do). Queries name the
// partitions they want served, so a worker answers consistently regardless
// of how many partitions it holds or gains via failover.
//
// Crash modeling: a real crash loses in-memory state. `lose_state` clears
// every partition; on restart the framework triggers `start_resync`, which
// fetches lost partitions back from their replicas.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "core/protocol.h"
#include "net/node.h"
#include "net/reliable_channel.h"
#include "net/sim_network.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "query/continuous.h"
#include "query/executor.h"

namespace stcn {

struct WorkerConfig {
  GridIndexConfig grid;
  Rect world;
  /// Monitor windows are advanced (negative deltas emitted) on this period.
  Duration monitor_tick = Duration::seconds(1);
  /// Deltas are flushed to the coordinator when this many accumulate or on
  /// the monitor tick, whichever first.
  std::size_t delta_flush_threshold = 64;
  /// Detections older than this are evicted by periodic compaction.
  /// Duration::max() (the default) disables retention entirely.
  Duration retention = Duration::max();
  /// Compaction runs every this-many monitor ticks (when retention is on).
  std::uint32_t compaction_every_ticks = 30;
  /// Emit a liveness heartbeat to the coordinator on every monitor tick.
  bool send_heartbeats = true;
  /// Publish per-partition object-presence Bloom summaries every
  /// `summary_every_ticks` monitor ticks (0 disables). The coordinator
  /// uses them to prune trajectory-query fan-out.
  std::uint32_t summary_every_ticks = 5;
  std::size_t summary_bloom_bits = 2048;
  /// Reliable-transport knobs (delta batches, query replies, resync).
  ReliableChannelConfig channel;
};

class WorkerNode final : public NetworkNode {
 public:
  WorkerNode(WorkerId id, NodeId coordinator, const WorkerConfig& config)
      : id_(id), coordinator_(coordinator), config_(config),
        monitors_(config.world),
        ingested_primary_(metrics_.counter("ingested_primary")),
        ingested_replica_(metrics_.counter("ingested_replica")),
        ingested_resync_(metrics_.counter("ingested_resync")),
        ingest_dups_skipped_(metrics_.counter("ingest_dups_skipped")),
        monitors_tested_(metrics_.counter("monitors_tested")),
        queries_served_(metrics_.counter("queries_served")),
        store_blocks_scanned_(metrics_.counter("store_blocks_scanned")),
        store_blocks_skipped_(metrics_.counter("store_blocks_skipped")),
        vectorized_morsels_(metrics_.counter("vectorized_morsels")),
        store_memory_bytes_(metrics_.gauge("store_memory_bytes")),
        scan_wall_us_(metrics_.histogram("scan_wall_us")),
        channel_(NodeId(id.value()), counters_, config.channel) {
    channel_.register_metrics(metrics_);
  }

  [[nodiscard]] NodeId node_id() const override { return NodeId(id_.value()); }
  [[nodiscard]] WorkerId worker_id() const { return id_; }

  void handle_message(const Message& message, SimNetwork& network) override;
  void handle_timer(std::uint64_t timer_token, SimNetwork& network) override;

  /// Arms the recurring monitor tick. Call once after attaching.
  void start(SimNetwork& network);

  /// Re-arms the monitor tick after a crash+restart (a crash suppresses the
  /// pending tick, breaking the re-arm chain). Stale chains from before the
  /// restart are ignored via a generation counter.
  void restart_ticks(SimNetwork& network);

  /// Simulates state loss at crash time.
  void lose_state();

  /// Requests partition data back from `replica_holders` (partition →
  /// worker node currently holding a copy).
  void start_resync(
      const std::vector<std::pair<PartitionId, NodeId>>& replica_holders,
      SimNetwork& network);

  [[nodiscard]] bool resync_complete() const {
    return pending_syncs_ == 0;
  }

  /// Total detections stored across partitions (incl. replicas).
  [[nodiscard]] std::size_t stored_detections() const;
  [[nodiscard]] std::size_t partition_count() const {
    return partitions_.size();
  }
  /// Counter view; registry-backed counters are mirrored in at read time.
  [[nodiscard]] const CounterSet& counters() const {
    metrics_.sync_counters_into(counters_);
    return counters_;
  }
  CounterSet& counters() {
    metrics_.sync_counters_into(counters_);
    return counters_;
  }

  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Attaches the cluster-wide tracer (shared with the reliable channel).
  void set_tracer(Tracer* tracer) {
    tracer_ = tracer;
    channel_.set_tracer(tracer);
  }

  /// Reliable-transport frames sent but not yet acked (0 == quiescent).
  [[nodiscard]] std::size_t unacked_frames() const {
    return channel_.unacked();
  }

 private:
  WorkerIndexes& partition(PartitionId p);

  /// Application-level dispatch; `reliable` records whether the message
  /// arrived through the reliable channel, so replies mirror the
  /// transport the requester chose.
  void dispatch(const Message& message, bool reliable, SimNetwork& network);

  void on_ingest(const IngestBatch& batch, SimNetwork& network);
  void on_query(const QueryRequest& request, NodeId reply_to, bool reliable,
                TraceContext parent, SimNetwork& network);
  void on_sync_request(const SyncRequest& request, NodeId reply_to,
                       bool reliable, SimNetwork& network);
  void on_sync_response(const SyncResponse& response);
  void flush_deltas(SimNetwork& network);

  WorkerId id_;
  NodeId coordinator_;
  WorkerConfig config_;
  std::unordered_map<PartitionId, std::unique_ptr<WorkerIndexes>> partitions_;
  ContinuousQueryManager monitors_;
  std::vector<DeltaUpdate> pending_deltas_;
  // Per-partition ids already ingested: makes ingest idempotent so
  // retransmission races, dead-incarnation redeliveries, and resync
  // overlapping a live replica stream cannot double-count detections.
  std::unordered_map<PartitionId, std::unordered_set<std::uint64_t>>
      ingested_ids_;
  std::size_t pending_syncs_ = 0;
  bool started_ = false;
  std::uint64_t tick_generation_ = 0;
  std::uint32_t ticks_since_compaction_ = 0;
  std::uint32_t ticks_since_summary_ = 0;
  // mutable: registry-backed counters are mirrored in from const accessors.
  mutable CounterSet counters_;
  MetricsRegistry metrics_;
  Counter& ingested_primary_;
  Counter& ingested_replica_;
  Counter& ingested_resync_;
  Counter& ingest_dups_skipped_;
  Counter& monitors_tested_;
  Counter& queries_served_;
  Counter& store_blocks_scanned_;
  Counter& store_blocks_skipped_;
  /// 4096-row morsels this worker pushed through the vectorized scan path.
  Counter& vectorized_morsels_;
  Gauge& store_memory_bytes_;
  /// Real (wall-clock) scan cost per query fragment — virtual time treats
  /// worker compute as instantaneous, so this is the only place the actual
  /// index work shows up.
  LatencyHistogram& scan_wall_us_;
  Tracer* tracer_ = nullptr;
  // Declared after counters_/metrics_ (it writes its accounting there).
  ReliableChannel channel_;
};

}  // namespace stcn
