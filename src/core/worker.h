// Worker node: hosts partitions, executes query fragments, runs monitors.
//
// A worker owns one WorkerIndexes bundle per partition it hosts (primary or
// backup replica — same storage either way; the role matters only for
// monitor/delta emission, which only primaries do). Queries name the
// partitions they want served, so a worker answers consistently regardless
// of how many partitions it holds or gains via failover.
//
// Crash modeling: a real crash loses in-memory state. `lose_state` clears
// every partition; on restart the framework triggers `start_recovery`,
// which installs the local snapshot (the vault survives a process crash,
// like a checkpoint on disk) and fetches only post-watermark data back from
// the surviving holders — falling back to a full copy when the holders'
// replay logs have been pruned past the snapshot's watermark.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "core/protocol.h"
#include "core/recovery.h"
#include "net/node.h"
#include "net/reliable_channel.h"
#include "net/sim_network.h"
#include "obs/heat.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "query/continuous.h"
#include "query/executor.h"

namespace stcn {

struct WorkerConfig {
  GridIndexConfig grid;
  Rect world;
  /// Monitor windows are advanced (negative deltas emitted) on this period.
  Duration monitor_tick = Duration::seconds(1);
  /// Deltas are flushed to the coordinator when this many accumulate or on
  /// the monitor tick, whichever first.
  std::size_t delta_flush_threshold = 64;
  /// Detections older than this are evicted by periodic compaction.
  /// Duration::max() (the default) disables retention entirely.
  Duration retention = Duration::max();
  /// Tiered storage: when enabled, sealed 4096-row detection blocks past
  /// the hot watermark are demoted into compressed cold blocks
  /// (index/compressed_block.h) that remain scannable in place.
  bool tiered_storage = false;
  /// Full hot blocks each partition retains before fill-triggered demotion.
  std::uint32_t hot_sealed_blocks = 2;
  /// Age-triggered demotion: on each monitor tick, sealed blocks whose
  /// newest row is older than this are demoted even below the hot
  /// watermark. Duration::max() (the default) disables the age trigger.
  Duration demote_after = Duration::max();
  /// Compaction runs every this-many monitor ticks (when retention is on).
  std::uint32_t compaction_every_ticks = 30;
  /// Emit a liveness heartbeat to the coordinator on every monitor tick.
  bool send_heartbeats = true;
  /// Publish per-partition object-presence Bloom summaries every
  /// `summary_every_ticks` monitor ticks (0 disables). The coordinator
  /// uses them to prune trajectory-query fan-out.
  std::uint32_t summary_every_ticks = 5;
  std::size_t summary_bloom_bits = 2048;
  /// Snapshot every partition every this-many monitor ticks (0 disables
  /// the ticker; take_snapshots() can still be driven manually).
  std::uint32_t snapshot_every_ticks = 10;
  /// Per-partition replay-log budget; oldest batches are pruned past it,
  /// raising the delta-serving floor.
  std::size_t replay_log_max_bytes = 4u << 20;
  /// Recovery exchange retry ladder: first retry after this timeout,
  /// doubling per attempt, giving up after `resync_max_attempts`.
  Duration resync_retry_timeout = Duration::millis(500);
  int resync_max_attempts = 6;
  /// Per-partition heat telemetry (rings, rate window, EWMA smoothing).
  HeatTrackerConfig heat;
  /// Reliable-transport knobs (delta batches, query replies, resync).
  ReliableChannelConfig channel;
};

class WorkerNode final : public NetworkNode {
 public:
  WorkerNode(WorkerId id, NodeId coordinator, const WorkerConfig& config)
      : id_(id), coordinator_(coordinator), config_(config),
        monitors_(config.world),
        ingested_primary_(metrics_.counter(
            "ingested_primary", "Detections ingested as partition primary")),
        ingested_replica_(metrics_.counter(
            "ingested_replica", "Detections ingested as backup replica")),
        ingested_resync_(metrics_.counter(
            "ingested_resync", "Detections installed by recovery syncs")),
        ingest_dups_skipped_(metrics_.counter(
            "ingest_dups_skipped",
            "Duplicate detections dropped by ingest idempotency")),
        monitors_tested_(metrics_.counter(
            "monitors_tested",
            "Detection-vs-monitor predicate evaluations")),
        queries_served_(metrics_.counter(
            "queries_served", "Query fragments answered by this worker")),
        store_blocks_scanned_(metrics_.counter(
            "store_blocks_scanned",
            "Columnar blocks whose rows were examined")),
        store_blocks_skipped_(metrics_.counter(
            "store_blocks_skipped",
            "Columnar blocks skipped wholesale by zone maps")),
        vectorized_morsels_(metrics_.counter(
            "vectorized_morsels",
            "4096-row morsels run through vectorized filter kernels")),
        store_cold_blocks_scanned_(metrics_.counter(
            "store_cold_blocks_scanned",
            "Compressed cold blocks whose rows were examined")),
        store_cold_blocks_skipped_(metrics_.counter(
            "store_cold_blocks_skipped",
            "Compressed cold blocks skipped wholesale by zone maps")),
        store_decode_morsels_(metrics_.counter(
            "store.decode_morsels",
            "Cold morsels evaluated through decode-fused filter kernels")),
        snapshots_taken_(metrics_.counter(
            "snapshots_taken", "Partition snapshots written to the vault")),
        snapshots_installed_(metrics_.counter(
            "snapshots_installed",
            "Snapshots restored into the store during recovery")),
        snapshot_rows_installed_(metrics_.counter(
            "snapshot_rows_installed", "Rows restored from snapshots")),
        delta_syncs_served_(metrics_.counter(
            "delta_syncs_served",
            "Delta-sync requests served from the replay log")),
        replayed_detections_(metrics_.counter(
            "replayed_detections",
            "Detections replayed from a holder's log during recovery")),
        delta_sync_fallback_(metrics_.counter(
            "delta_sync_fallback_full",
            "Delta syncs refused (log pruned) that fell back to full copy")),
        resync_retries_(metrics_.counter(
            "resync_exchange_retries",
            "Recovery sync exchanges re-sent after a timeout")),
        recovery_failed_(metrics_.counter(
            "recovery_failed",
            "Partitions whose recovery exchange exhausted its retries")),
        store_memory_bytes_(metrics_.gauge(
            "store_memory_bytes", "Resident bytes in the detection store")),
        store_hot_bytes_(metrics_.gauge(
            "store_hot_bytes",
            "Resident bytes in hot (uncompressed) detection columns")),
        store_cold_blocks_(metrics_.gauge(
            "store.cold_blocks",
            "Compressed cold blocks held across partitions")),
        store_compressed_bytes_(metrics_.gauge(
            "store.compressed_bytes",
            "Resident bytes in compressed cold blocks")),
        store_scratch_bytes_(metrics_.gauge(
            "store_scratch_bytes",
            "Process-wide thread-local cold decode scratch bytes")),
        snapshot_bytes_(metrics_.gauge(
            "snapshot_bytes", "Bytes held in vault snapshots")),
        replay_log_bytes_(metrics_.gauge(
            "replay_log_bytes", "Bytes retained in the ingest replay log")),
        heat_partitions_tracked_(metrics_.gauge(
            "heat.partitions_tracked",
            "Partitions with live heat telemetry on this worker")),
        scan_wall_us_(metrics_.histogram(
            "scan_wall_us", "Real microseconds per fragment scan loop")),
        heat_(config.heat),
        channel_(NodeId(id.value()), counters_, config.channel) {
    channel_.register_metrics(metrics_);
    // Eagerly-bumped CounterSet events: helps only, no registry handle
    // (import_counter_set attaches them at snapshot time).
    metrics_.set_help("recovery_failed_partitions",
                      "Partitions whose recovery gave up permanently");
    metrics_.set_help("summaries_published",
                      "Object-presence summaries published upstream");
    metrics_.set_help("detections_evicted",
                      "Detections dropped by retention compaction");
    metrics_.set_help("compactions", "Retention compaction sweeps run");
    metrics_.set_help("unknown_message",
                      "Messages dropped for an unrecognized type");
    metrics_.set_help("sync_requests_served",
                      "Full-state sync requests answered for peers");
    metrics_.set_help("delta_syncs_refused",
                      "Delta syncs refused (replay log too shallow)");
    metrics_.set_help("state_losses", "Crash events that wiped local state");
    metrics_.set_help("snapshot_corrupt",
                      "Snapshots rejected by checksum validation");
    metrics_.set_help("partitions_resynced",
                      "Partitions rebuilt from a surviving holder");
    metrics_.set_help("recovered_local_only",
                      "Partitions restored from the local vault snapshot "
                      "with no surviving holder");
    metrics_.set_help("recovery_no_source",
                      "Partitions unrecoverable: no snapshot and no holder");
  }

  [[nodiscard]] NodeId node_id() const override { return NodeId(id_.value()); }
  [[nodiscard]] WorkerId worker_id() const { return id_; }

  void handle_message(const Message& message, SimNetwork& network) override;
  void handle_timer(std::uint64_t timer_token, SimNetwork& network) override;

  /// Arms the recurring monitor tick. Call once after attaching.
  void start(SimNetwork& network);

  /// Re-arms the monitor tick after a crash+restart (a crash suppresses the
  /// pending tick, breaking the re-arm chain). Stale chains from before the
  /// restart are ignored via a generation counter.
  void restart_ticks(SimNetwork& network);

  /// Simulates state loss at crash time. The snapshot vault deliberately
  /// survives — it models a checkpoint on local disk.
  void lose_state();

  /// Captures a versioned snapshot of every held partition: the serialized
  /// columnar store keyed by the current watermark, plus the replay-log
  /// tail past it. Also driven periodically by the snapshot ticker.
  void take_snapshots(TimePoint now);

  /// Starts incremental recovery for `specs`: install each partition's
  /// vault snapshot, then fetch the post-watermark delta from its holder
  /// (full sync when no snapshot or the holder's log can't serve it).
  /// Each exchange retries on a doubling ladder and gives up after
  /// `resync_max_attempts`, surfacing `recovery_failed`. `recovery_id`
  /// ties completions back to the coordinator's routing plan (0 = none).
  void start_recovery(std::uint64_t recovery_id,
                      const std::vector<RecoverySpec>& specs,
                      TraceContext parent, SimNetwork& network);

  /// Legacy entry point: full-resync semantics via start_recovery with no
  /// coordinator plan attached.
  void start_resync(
      const std::vector<std::pair<PartitionId, NodeId>>& replica_holders,
      SimNetwork& network);

  [[nodiscard]] bool resync_complete() const {
    return recovery_tasks_.empty();
  }
  /// Partitions whose recovery exchange finished / gave up since the last
  /// start_recovery call.
  [[nodiscard]] std::size_t recovery_recovered_count() const {
    return recovered_last_;
  }
  [[nodiscard]] std::size_t recovery_failed_count() const {
    return failed_last_;
  }
  /// Contiguous per-source ingest watermark for one partition.
  [[nodiscard]] Watermark watermark_of(PartitionId p) const;
  [[nodiscard]] const std::unordered_map<PartitionId, PartitionSnapshot>&
  snapshot_vault() const {
    return vault_;
  }

  /// Total detections stored across partitions (incl. replicas).
  [[nodiscard]] std::size_t stored_detections() const;
  [[nodiscard]] std::size_t partition_count() const {
    return partitions_.size();
  }
  /// Counter view; registry-backed counters are mirrored in at read time.
  [[nodiscard]] const CounterSet& counters() const {
    metrics_.sync_counters_into(counters_);
    return counters_;
  }
  CounterSet& counters() {
    metrics_.sync_counters_into(counters_);
    return counters_;
  }

  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Per-partition heat telemetry (read-only; shipped on heartbeats).
  [[nodiscard]] const HeatTracker& heat() const { return heat_; }

  /// Attaches the cluster-wide tracer (shared with the reliable channel).
  void set_tracer(Tracer* tracer) {
    tracer_ = tracer;
    channel_.set_tracer(tracer);
  }

  /// Reliable-transport frames sent but not yet acked (0 == quiescent).
  [[nodiscard]] std::size_t unacked_frames() const {
    return channel_.unacked();
  }

 private:
  WorkerIndexes& partition(PartitionId p);

  /// Application-level dispatch; `reliable` records whether the message
  /// arrived through the reliable channel, so replies mirror the
  /// transport the requester chose.
  void dispatch(const Message& message, bool reliable, SimNetwork& network);

  void on_ingest(const IngestBatch& batch, NodeId source,
                 SimNetwork& network);
  void on_query(const QueryRequest& request, NodeId reply_to, bool reliable,
                TraceContext parent, SimNetwork& network);
  void on_sync_request(const SyncRequest& request, NodeId reply_to,
                       bool reliable, SimNetwork& network);
  void on_sync_response(const SyncResponse& response, SimNetwork& network);
  void on_delta_sync_request(const DeltaSyncRequest& request, NodeId reply_to,
                             bool reliable, SimNetwork& network);
  void on_delta_sync_response(const DeltaSyncResponse& response,
                              SimNetwork& network);
  void flush_deltas(SimNetwork& network);

  // ----------------------------------------------------------- recovery

  /// One in-flight recovery exchange (per partition being recovered).
  struct RecoveryTask {
    PartitionId partition;
    NodeId holder;
    std::uint64_t recovery_id = 0;
    int attempts = 0;
    Duration rto;
    bool delta = false;  // true: DeltaSyncRequest; false: full SyncRequest
    std::uint64_t token = 0;
    TraceContext span;
  };

  ReplayLog& replay_log(PartitionId p);
  /// Ingests `d` unless already present; returns true if it was new.
  bool dedup_ingest(PartitionId p, const Detection& d);
  /// Installs the vault snapshot for `p` (no-op without one). Returns true
  /// iff a snapshot was applied, enabling delta-mode recovery.
  bool install_snapshot(PartitionId p);
  void send_recovery_request(RecoveryTask& task, SimNetwork& network);
  void finish_task(std::uint64_t token, SimNetwork& network);
  void apply_replay_entries(PartitionId p,
                            const std::vector<ReplayEntry>& entries);
  void update_recovery_gauges();

  WorkerId id_;
  NodeId coordinator_;
  WorkerConfig config_;
  std::unordered_map<PartitionId, std::unique_ptr<WorkerIndexes>> partitions_;
  ContinuousQueryManager monitors_;
  std::vector<DeltaUpdate> pending_deltas_;
  // Per-partition ids already ingested: makes ingest idempotent so
  // retransmission races, dead-incarnation redeliveries, and resync
  // overlapping a live replica stream cannot double-count detections.
  std::unordered_map<PartitionId, std::unordered_set<std::uint64_t>>
      ingested_ids_;
  // Per-(partition, source) contiguous batch watermarks; the map key is the
  // raw source node id.
  std::unordered_map<PartitionId, std::map<std::uint64_t, PbidTracker>>
      watermarks_;
  std::unordered_map<PartitionId, ReplayLog> replay_logs_;
  // Snapshot vault: survives lose_state() (checkpoint on local disk).
  std::unordered_map<PartitionId, PartitionSnapshot> vault_;
  std::uint64_t snapshot_version_ = 0;
  std::unordered_map<std::uint64_t, RecoveryTask> recovery_tasks_;
  std::unordered_map<PartitionId, std::uint64_t> task_by_partition_;
  // Monotonic across restarts so a parked timer from a dead incarnation
  // can never alias a live task's token.
  std::uint64_t next_task_token_ = 0;
  std::size_t recovered_last_ = 0;
  std::size_t failed_last_ = 0;
  bool started_ = false;
  std::uint64_t tick_generation_ = 0;
  std::uint32_t ticks_since_compaction_ = 0;
  std::uint32_t ticks_since_summary_ = 0;
  // mutable: registry-backed counters are mirrored in from const accessors.
  mutable CounterSet counters_;
  MetricsRegistry metrics_;
  Counter& ingested_primary_;
  Counter& ingested_replica_;
  Counter& ingested_resync_;
  Counter& ingest_dups_skipped_;
  Counter& monitors_tested_;
  Counter& queries_served_;
  Counter& store_blocks_scanned_;
  Counter& store_blocks_skipped_;
  /// 4096-row morsels this worker pushed through the vectorized scan path.
  Counter& vectorized_morsels_;
  Counter& store_cold_blocks_scanned_;
  Counter& store_cold_blocks_skipped_;
  Counter& store_decode_morsels_;
  Counter& snapshots_taken_;
  Counter& snapshots_installed_;
  Counter& snapshot_rows_installed_;
  Counter& delta_syncs_served_;
  Counter& replayed_detections_;
  Counter& delta_sync_fallback_;
  Counter& resync_retries_;
  Counter& recovery_failed_;
  Gauge& store_memory_bytes_;
  Gauge& store_hot_bytes_;
  Gauge& store_cold_blocks_;
  Gauge& store_compressed_bytes_;
  Gauge& store_scratch_bytes_;
  Gauge& snapshot_bytes_;
  Gauge& replay_log_bytes_;
  Gauge& heat_partitions_tracked_;
  /// Real (wall-clock) scan cost per query fragment — virtual time treats
  /// worker compute as instantaneous, so this is the only place the actual
  /// index work shows up.
  LatencyHistogram& scan_wall_us_;
  Tracer* tracer_ = nullptr;
  // Per-partition load telemetry; snapshots ride on heartbeats. Cleared by
  // lose_state() — heat totals are per-incarnation like the store itself.
  HeatTracker heat_;
  // Declared after counters_/metrics_ (it writes its accounting there).
  ReliableChannel channel_;
};

}  // namespace stcn
