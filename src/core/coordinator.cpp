#include "core/coordinator.h"

#include <algorithm>

namespace stcn {
namespace {
// The net layer's channel framing is decoupled from the application MsgType
// enum; make sure the defaults agree.
static_assert(static_cast<std::uint32_t>(MsgType::kReliableData) ==
              ReliableChannelConfig{}.data_type);
static_assert(static_cast<std::uint32_t>(MsgType::kReliableAck) ==
              ReliableChannelConfig{}.ack_type);

// Timer token namespaces. Query-timeout timers use the (monotonically
// increasing, small) request id directly; hedge timers set bit 61; the
// reliable channel owns [2^62, 2^62 + 2^32); the failure sweep is all-ones.
constexpr std::uint64_t kSweepToken = ~std::uint64_t{0};
constexpr std::uint64_t kHedgeBit = 1ULL << 61;
}  // namespace

void Coordinator::start(SimNetwork& network) {
  if (config_.detect_failures) {
    network.set_timer(id_, config_.failure_sweep_period, kSweepToken);
  }
}

void Coordinator::handle_message(const Message& message, SimNetwork& network) {
  switch (static_cast<MsgType>(message.type)) {
    case MsgType::kReliableData: {
      if (auto inner = channel_.on_data(message, network)) {
        dispatch(*inner, network);
      }
      return;
    }
    case MsgType::kReliableAck:
      channel_.on_ack(message);
      return;
    default:
      dispatch(message, network);
  }
}

void Coordinator::dispatch(const Message& message, SimNetwork& network) {
  BinaryReader reader(message.payload);
  switch (static_cast<MsgType>(message.type)) {
    case MsgType::kQueryResponse:
      on_response(decode_query_response(reader), message.payload.size(),
                  network.now());
      break;
    case MsgType::kDeltaBatch:
      on_deltas(decode_delta_batch(reader));
      break;
    case MsgType::kHeartbeat: {
      Heartbeat hb = decode_heartbeat(reader);
      last_heartbeat_[hb.worker] = network.now();
      if (suspected_.erase(hb.worker) > 0) {
        counters_.add("workers_unsuspected");
      }
      for (const PartitionHeat& ph : hb.heat) {
        heat_.ingest(hb.worker, ph, network.now());
      }
      if (!hb.heat.empty()) refresh_heat_gauges(network.now());
      break;
    }
    case MsgType::kObjectSummary: {
      ObjectSummary summary = decode_object_summary(reader);
      auto it = summaries_.find(summary.partition);
      if (it == summaries_.end() || summary.as_of > it->second.as_of) {
        summaries_.insert_or_assign(summary.partition, std::move(summary));
      }
      break;
    }
    case MsgType::kIngestForward: {
      // Relay-mode gateway traffic: re-route each detection to its worker.
      IngestForward forward = decode_ingest_forward(reader);
      counters_.add("ingest_forwards");
      for (const Detection& d : forward.detections) ingest(d, network);
      flush_ingest(network);
      break;
    }
    case MsgType::kRecoveryDone:
      on_recovery_done(decode_recovery_done(reader));
      break;
    default:
      counters_.add("unknown_message");
      break;
  }
}

void Coordinator::handle_timer(std::uint64_t timer_token,
                               SimNetwork& network) {
  if (channel_.owns_timer(timer_token)) {
    channel_.handle_timer(timer_token, network);
    return;
  }
  if (timer_token == kSweepToken) {
    // Failure-detection sweep: suspect every worker that has heartbeated
    // before but has now been silent past the timeout, and proactively
    // fail its partitions over to their backups.
    for (const auto& [worker, last_seen] : last_heartbeat_) {
      if (suspected_.contains(worker)) continue;
      if (network.now() - last_seen > config_.heartbeat_timeout) {
        suspected_.insert(worker);
        workers_suspected_.inc();
        promote_backups_of(worker);
      }
    }
    network.set_timer(id_, config_.failure_sweep_period, kSweepToken);
    return;
  }
  if (timer_token & kHedgeBit) {
    hedge(timer_token & ~kHedgeBit, network);
    return;
  }
  failover_retry(timer_token, network);
}

// ----------------------------------------------------------------- ingest

void Coordinator::ingest(const Detection& d, SimNetwork& network) {
  PartitionId p = strategy_.partition_of(d.camera, d.position, d.time);
  ingested_.inc();
  auto& buf = ingest_buffers_[p.value()];
  buf.push_back(d);
  if (buf.size() >= config_.ingest_batch_size) {
    flush_partition_buffer(p, buf, network);
  }
}

void Coordinator::flush_partition_buffer(PartitionId p,
                                         std::vector<Detection>& buffer,
                                         SimNetwork& network) {
  if (buffer.empty()) return;
  // One pbid per flushed batch; the primary and backup copies carry the
  // same pbid over identical contents, which is what makes per-source
  // watermarks comparable across holders during recovery.
  IngestBatch batch{p, false, std::move(buffer), ++ingest_pbids_[p.value()]};
  buffer.clear();
  channel_.send(worker_node(map_.primary(p)),
                static_cast<std::uint32_t>(MsgType::kIngestBatch),
                encode(batch), network);
  if (config_.replicate && map_.has_distinct_backup(p)) {
    batch.is_replica = true;
    channel_.send(worker_node(map_.backup(p)),
                  static_cast<std::uint32_t>(MsgType::kIngestBatch),
                  encode(batch), network);
  }
}

void Coordinator::flush_ingest(SimNetwork& network) {
  for (auto& [partition, buf] : ingest_buffers_) {
    flush_partition_buffer(PartitionId(partition), buf, network);
  }
}

// ---------------------------------------------------------------- queries

std::vector<PartitionId> Coordinator::footprint(const Query& query) const {
  switch (query.kind) {
    case QueryKind::kRange:
    case QueryKind::kCount:
    case QueryKind::kHeatmap:
      return strategy_.partitions_for_region(query.region, query.interval);
    case QueryKind::kCircle:
      return strategy_.partitions_for_region(query.circle.bounding_box(),
                                             query.interval);
    case QueryKind::kCameraWindow:
      return strategy_.partitions_for_camera(query.camera, query.interval);
    case QueryKind::kTrajectory: {
      // No spatial footprint, but object-presence summaries prune: a
      // partition can be skipped when its summary (a) is fresh enough to
      // cover the whole query interval and (b) rules the object out.
      // Bloom filters have no false negatives, so this is sound.
      std::vector<PartitionId> pruned;
      for (PartitionId p : strategy_.all_partitions()) {
        auto it = summaries_.find(p);
        bool must_ask = it == summaries_.end() ||
                        query.interval.end > it->second.as_of ||
                        it->second.objects.may_contain(query.object.value());
        if (must_ask) {
          pruned.push_back(p);
        } else {
          trajectory_partitions_pruned_.inc();
        }
      }
      return pruned;
    }
    case QueryKind::kKnn:
      // No bounded spatial footprint: must ask every partition.
      return strategy_.all_partitions();
  }
  return strategy_.all_partitions();
}

std::size_t Coordinator::send_query_to(
    NodeId worker, std::uint64_t request_id, std::uint64_t sub_id,
    const Query& query, const std::vector<PartitionId>& partitions,
    SimNetwork& network, TraceContext ctx) {
  QueryRequest request{request_id, sub_id, query, partitions};
  std::vector<std::uint8_t> payload = encode(request);
  std::size_t bytes = payload.size();
  channel_.send(worker, static_cast<std::uint32_t>(MsgType::kQueryRequest),
                std::move(payload), network, ctx);
  return bytes;
}

std::uint64_t Coordinator::submit(const Query& query, SimNetwork& network,
                                  TraceContext parent,
                                  double estimated_rows) {
  std::uint64_t request_id = next_request_id_++;
  PendingQuery pending;
  pending.query = query;
  pending.retries_left = config_.max_retries;
  pending.submitted_at = network.now();
  if (tracer_ != nullptr) {
    pending.root = tracer_->start_span("coordinator.fanout", parent,
                                       id_.value(), network.now());
    tracer_->tag(pending.root, "kind", query_kind_name(query.kind));
    tracer_->tag(pending.root, "request_id", std::to_string(request_id));
  }

  std::vector<PartitionId> selected = footprint(query);
  std::unordered_map<NodeId, std::vector<PartitionId>> assignment;
  for (PartitionId p : selected) {
    assignment[worker_node(map_.primary(p))].push_back(p);
  }
  queries_submitted_.inc();
  query_fanout_total_.add(assignment.size());
  std::size_t total_partitions = 0;
  for (const auto& [w, ps] : assignment) total_partitions += ps.size();
  query_partitions_total_.add(total_partitions);

  bool profiling = profiler_ != nullptr && profiler_->active();
  if (profiling) {
    profiled_request_ = request_id;
    profiler_->set_request(request_id);
    std::size_t stage = profiler_->open_stage("partition_selection",
                                              network.now());
    ExplainStage& s = profiler_->stage(stage);
    s.considered = map_.partition_count();
    s.actual = static_cast<std::int64_t>(selected.size());
    s.pruned = map_.partition_count() >= selected.size()
                   ? map_.partition_count() - selected.size()
                   : 0;
    s.note("kind", query_kind_name(query.kind));
    s.note("fanout", std::to_string(assignment.size()));
    profiler_->close_stage(stage, network.now());
  }

  for (auto& [worker, partitions] : assignment) {
    std::uint64_t sub_id = next_sub_id_++;
    TraceContext fspan;
    if (tracer_ != nullptr) {
      fspan = tracer_->start_span("fragment", pending.root, id_.value(),
                                  network.now());
      tracer_->tag(fspan, "worker", std::to_string(worker.value()));
      tracer_->tag(fspan, "partitions", std::to_string(partitions.size()));
    }
    // Apportion the caller's cardinality estimate by partition share: with
    // no better signal, a fragment serving half the partitions is expected
    // to return half the rows.
    double est = -1.0;
    if (estimated_rows >= 0.0 && total_partitions > 0) {
      est = estimated_rows * static_cast<double>(partitions.size()) /
            static_cast<double>(total_partitions);
    }
    pending.cost.bytes_out += send_query_to(worker, request_id, sub_id,
                                            query, partitions, network,
                                            fspan);
    ++pending.cost.fragments;
    pending.fragments.emplace(
        sub_id, Fragment{worker, std::move(partitions), 0, false, {}, fspan,
                         est, network.now()});
    ++pending.outstanding;
  }
  bool empty = pending.outstanding == 0;
  auto [it, inserted] = pending_.emplace(request_id, std::move(pending));
  if (!empty) {
    network.set_timer(id_, config_.query_timeout, request_id);
    if (config_.hedge_queries && config_.hedge_delay_fraction > 0.0) {
      auto delay = Duration::micros(static_cast<std::int64_t>(
          static_cast<double>(config_.query_timeout.count_micros()) *
          config_.hedge_delay_fraction));
      network.set_timer(id_, delay, kHedgeBit | request_id);
    }
  } else {
    maybe_finish(request_id, it->second, network.now());
  }
  return request_id;
}

void Coordinator::maybe_finish(std::uint64_t request_id,
                               PendingQuery& pending, TimePoint now) {
  if (pending.outstanding > 0 || pending.finished) return;
  pending.finished = true;
  Duration latency = now - pending.submitted_at;
  double latency_us = static_cast<double>(latency.count_micros());
  query_latency_us_.observe(latency_us);

  // Commit the accumulated cost vector to the ledger, attributed to query
  // kind, originating tenant, and the camera that dominated the answer.
  pending.cost.sim_latency_us =
      static_cast<std::uint64_t>(latency.count_micros());
  if (tracer_ != nullptr && pending.root.valid()) {
    // Retransmits are recorded as instant spans under the frames that
    // carried this query's fragments, so the trace is the per-query view
    // of what the channel-level counter only shows in aggregate.
    for (const SpanRecord& s : tracer_->trace(pending.root.trace_id)) {
      if (s.name == "net.retransmit") ++pending.cost.retransmits;
    }
  }
  CostRecord rec;
  rec.request_id = request_id;
  rec.trace_id = pending.root.trace_id;
  rec.kind = query_kind_name(pending.query.kind);
  rec.tenant = pending.query.tenant;
  rec.partial = pending.partial;
  if (pending.query.kind == QueryKind::kCameraWindow) {
    rec.hottest_camera = pending.query.camera.value();
  } else {
    std::uint64_t best_cam = CostRecord::kNoCamera;
    std::uint64_t best_n = 0;
    for (const auto& [cam, n] : pending.camera_counts) {
      // Smallest id wins ties, keeping attribution deterministic across
      // unordered_map iteration orders.
      if (n > best_n || (n == best_n && n > 0 && cam < best_cam)) {
        best_cam = cam;
        best_n = n;
      }
    }
    rec.hottest_camera = best_cam;
  }
  rec.cost = pending.cost;
  ledger_.record(rec);

  std::string cost_summary = rec.cost.summary();
  query_latency_us_.set_exemplar(latency_us, rec.trace_id, cost_summary);

  if (profiler_ != nullptr && profiler_->active() &&
      profiled_request_ == request_id) {
    std::size_t stage = profiler_->open_stage("query.cost", now);
    ExplainStage& s = profiler_->stage(stage);
    s.note("summary", cost_summary);
    s.note("tenant", std::to_string(pending.query.tenant));
    if (rec.hottest_camera != CostRecord::kNoCamera) {
      s.note("hottest_camera", std::to_string(rec.hottest_camera));
    }
    profiler_->close_stage(stage, now);
  }

  if (tracer_ != nullptr && pending.root.valid()) {
    if (pending.partial) tracer_->tag(pending.root, "partial", "true");
    tracer_->end_span(pending.root, now);
    slow_log_.maybe_record(*tracer_, pending.root.trace_id, request_id,
                           query_kind_name(pending.query.kind), latency,
                           cost_summary);
  }
}

void Coordinator::on_response(const QueryResponse& response,
                              std::size_t wire_bytes, TimePoint now) {
  auto it = pending_.find(response.request_id);
  if (it == pending_.end()) return;  // late response after completion
  PendingQuery& pending = it->second;
  // Keep every fragment result — even from a fragment already retired by a
  // faster hedge or failover re-issue: the merger dedups detections.
  pending.results.push_back(response.result);

  // Cost accrues for every answer that arrived, retired fragment or not:
  // a hedged-over primary's scan still happened and still gets billed.
  pending.cost.rows_scanned += response.rows_scanned;
  pending.cost.rows_returned += response.result.detections.size();
  pending.cost.blocks_scanned += response.blocks_scanned;
  pending.cost.blocks_skipped += response.blocks_skipped;
  pending.cost.rows_evaluated += response.rows_evaluated;
  pending.cost.morsels += response.vectorized_morsels;
  pending.cost.scan_wall_us += response.scan_wall_us;
  pending.cost.bytes_in += wire_bytes;
  for (const Detection& d : response.result.detections) {
    ++pending.camera_counts[d.camera.value()];
  }

  auto frag = pending.fragments.find(response.sub_id);
  if (frag == pending.fragments.end()) return;  // pre-sub_id sender (tests)
  if (frag->second.retired) return;
  frag->second.retired = true;
  if (tracer_ != nullptr) tracer_->end_span(frag->second.span, now);

  // Per-peer health signal: end-to-end fragment latency against the worker
  // that answered (a gray-slow worker shows as a per-peer latency burn).
  peer_stats(frag->second.worker)
      .latency->observe(static_cast<double>(
          (now - frag->second.sent_at).count_micros()));

  if (profiler_ != nullptr && profiler_->active() &&
      profiled_request_ == response.request_id) {
    std::size_t stage = profiler_->open_stage("worker.scan", now);
    ExplainStage& s = profiler_->stage(stage);
    if (frag->second.est_rows >= 0.0) s.estimated = frag->second.est_rows;
    s.actual = static_cast<std::int64_t>(
        response.result.detections.empty() && !response.result.counts.empty()
            ? response.result.total_count()
            : response.result.detections.size());
    s.considered = response.rows_scanned;
    s.pruned = response.rows_scanned >= static_cast<std::uint64_t>(s.actual)
                   ? response.rows_scanned -
                         static_cast<std::uint64_t>(s.actual)
                   : 0;
    s.wall_us = static_cast<std::int64_t>(response.scan_wall_us);
    s.sim_time = now - frag->second.sent_at;
    s.start = frag->second.sent_at;
    s.note("worker", std::to_string(frag->second.worker.value()));
    s.note("partitions", std::to_string(frag->second.partitions.size()));
    s.note("blocks_scanned", std::to_string(response.blocks_scanned));
    s.note("blocks_skipped", std::to_string(response.blocks_skipped));
    if (response.vectorized_morsels != 0) {
      s.note("rows_evaluated", std::to_string(response.rows_evaluated));
      s.note("rows_selected", std::to_string(response.rows_selected));
      s.note("vectorized_morsels",
             std::to_string(response.vectorized_morsels));
    }
    // Per-tier split: only emitted when the scan touched the cold tier at
    // all, so hot-only deployments keep their EXPLAIN output unchanged.
    if (response.cold_blocks_scanned != 0 ||
        response.cold_blocks_skipped != 0) {
      s.note("cold_blocks_scanned",
             std::to_string(response.cold_blocks_scanned));
      s.note("cold_blocks_skipped",
             std::to_string(response.cold_blocks_skipped));
    }
    if (response.decode_morsels != 0) {
      s.note("decode_morsels", std::to_string(response.decode_morsels));
    }
    if (frag->second.covers != 0) s.note("hedge", "true");
    profiler_->close_stage(stage, now);
  }

  if (frag->second.covers == 0) {
    // Primary fragment answered directly.
    if (pending.outstanding > 0) --pending.outstanding;
    maybe_finish(response.request_id, pending, now);
    return;
  }
  // Hedge answer: credit the covered partitions to the primary fragment.
  // A primary's partitions may back up to different workers, so it retires
  // only once hedge answers cumulatively cover its whole partition set.
  auto primary = pending.fragments.find(frag->second.covers);
  if (primary == pending.fragments.end() || primary->second.retired) return;
  for (PartitionId p : frag->second.partitions) {
    primary->second.hedge_covered.insert(p.value());
  }
  bool fully_covered = std::all_of(
      primary->second.partitions.begin(), primary->second.partitions.end(),
      [&](PartitionId p) {
        return primary->second.hedge_covered.contains(p.value());
      });
  if (fully_covered) {
    primary->second.retired = true;
    if (pending.outstanding > 0) --pending.outstanding;
    hedges_won_.inc();
    // Attribute the win to the *slow* peer the hedge raced (the primary
    // fragment's worker): a per-peer hedge-win spike marks it gray.
    peer_stats(primary->second.worker).hedge_wins->inc();
    if (tracer_ != nullptr) {
      tracer_->tag(primary->second.span, "hedged_over", "true");
      tracer_->end_span(primary->second.span, now);
    }
    maybe_finish(response.request_id, pending, now);
  }
}

std::optional<QueryResult> Coordinator::poll(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return std::nullopt;
  PendingQuery& pending = it->second;
  if (pending.outstanding > 0) return std::nullopt;
  ResultMerger merger(pending.query);
  for (const QueryResult& fragment : pending.results) {
    merger.add(fragment);
  }
  QueryResult result = merger.take();
  pending_.erase(it);
  return result;
}

bool Coordinator::is_complete(std::uint64_t request_id) const {
  auto it = pending_.find(request_id);
  return it == pending_.end() || it->second.outstanding == 0;
}

void Coordinator::hedge(std::uint64_t request_id, SimNetwork& network) {
  if (!config_.hedge_queries) return;
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // completed before the hedge deadline
  PendingQuery& pending = it->second;
  if (pending.outstanding == 0 || pending.hedged) return;
  pending.hedged = true;  // one hedge round per query

  // For every unanswered primary fragment, re-issue its partitions to their
  // backups (grouped per backup worker). The hedge fragment records which
  // primary it covers; whichever answer lands first retires the primary.
  struct HedgePlan {
    NodeId worker;
    std::vector<PartitionId> partitions;
    std::uint64_t covers;
    TraceContext parent;  // primary fragment's span
  };
  std::vector<HedgePlan> plans;
  for (const auto& [sub_id, frag] : pending.fragments) {
    if (frag.retired || frag.covers != 0) continue;
    // The unanswered fragment's worker is the peer being hedged against.
    peer_stats(frag.worker).hedged->inc();
    std::unordered_map<NodeId, std::vector<PartitionId>> by_backup;
    for (PartitionId p : frag.partitions) {
      if (recovering_.contains(p)) {
        // The backup is the mid-resync rejoiner: hedging to it would race
        // an incomplete partition. The surviving holder (the primary we
        // already asked) is the only correct source.
        counters_.add("hedges_suppressed_recovering");
        continue;
      }
      if (!map_.has_distinct_backup(p)) continue;
      WorkerId backup = map_.backup(p);
      if (worker_node(backup) == frag.worker) continue;
      if (suspected_.contains(backup)) continue;
      by_backup[worker_node(backup)].push_back(p);
    }
    for (auto& [worker, partitions] : by_backup) {
      plans.push_back({worker, std::move(partitions), sub_id, frag.span});
    }
  }
  for (HedgePlan& plan : plans) {
    std::uint64_t sub_id = next_sub_id_++;
    TraceContext hspan;
    if (tracer_ != nullptr) {
      // The hedge rides under the primary fragment it covers, so the trace
      // shows which slow fragment triggered the speculative re-issue.
      hspan = tracer_->start_span("fragment", plan.parent, id_.value(),
                                  network.now());
      tracer_->tag(hspan, "worker", std::to_string(plan.worker.value()));
      tracer_->tag(hspan, "hedge", "true");
    }
    pending.cost.bytes_out +=
        send_query_to(plan.worker, request_id, sub_id, pending.query,
                      plan.partitions, network, hspan);
    ++pending.cost.fragments;
    ++pending.cost.hedges;
    std::size_t hedge_partitions = plan.partitions.size();
    pending.fragments.emplace(
        sub_id, Fragment{plan.worker, std::move(plan.partitions),
                         plan.covers, false, {}, hspan, -1.0,
                         network.now()});
    hedges_issued_.inc();
    if (profiler_ != nullptr && profiler_->active() &&
        profiled_request_ == request_id) {
      std::size_t stage = profiler_->open_stage("hedge", network.now());
      ExplainStage& s = profiler_->stage(stage);
      s.considered = hedge_partitions;
      s.note("backup", std::to_string(plan.worker.value()));
      profiler_->close_stage(stage, network.now());
    }
  }
}

void Coordinator::failover_retry(std::uint64_t request_id,
                                 SimNetwork& network) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // completed before the deadline
  PendingQuery& pending = it->second;
  if (pending.outstanding == 0) return;
  if (pending.retries_left-- <= 0) {
    pending.partial = true;
    for (auto& [sub_id, frag] : pending.fragments) {
      if (tracer_ != nullptr && !frag.retired) {
        tracer_->tag(frag.span, "timed_out", "true");
        tracer_->end_span(frag.span, network.now());
      }
      frag.retired = true;
    }
    pending.outstanding = 0;
    queries_partial_.inc();
    maybe_finish(request_id, pending, network.now());
    return;
  }
  failover_retries_.inc();

  // Re-route every unanswered primary fragment's partitions to their
  // backups and re-issue as fresh fragments. Results already received stay;
  // duplicates are deduped by the merger.
  struct RetryPlan {
    NodeId worker;
    std::vector<PartitionId> partitions;
  };
  std::vector<RetryPlan> plans;
  for (auto& [sub_id, frag] : pending.fragments) {
    if (frag.retired || frag.covers != 0) continue;
    frag.retired = true;
    peer_stats(frag.worker).timeouts->inc();
    if (tracer_ != nullptr) {
      tracer_->tag(frag.span, "timed_out", "true");
      tracer_->end_span(frag.span, network.now());
    }
    if (pending.outstanding > 0) --pending.outstanding;
    std::unordered_map<NodeId, std::vector<PartitionId>> by_backup;
    for (PartitionId p : frag.partitions) {
      if (recovering_.contains(p)) continue;  // backup is mid-resync
      WorkerId backup = map_.backup(p);
      if (worker_node(backup) == frag.worker) continue;  // no usable replica
      if (suspected_.contains(backup)) continue;         // replica also down
      map_.set_primary(p, backup);
      by_backup[worker_node(backup)].push_back(p);
    }
    for (auto& [worker, partitions] : by_backup) {
      plans.push_back({worker, std::move(partitions)});
    }
  }
  for (RetryPlan& plan : plans) {
    std::uint64_t sub_id = next_sub_id_++;
    TraceContext rspan;
    if (tracer_ != nullptr) {
      rspan = tracer_->start_span("fragment", pending.root, id_.value(),
                                  network.now());
      tracer_->tag(rspan, "worker", std::to_string(plan.worker.value()));
      tracer_->tag(rspan, "retry", "true");
    }
    pending.cost.bytes_out +=
        send_query_to(plan.worker, request_id, sub_id, pending.query,
                      plan.partitions, network, rspan);
    ++pending.cost.fragments;
    std::size_t retry_partitions = plan.partitions.size();
    pending.fragments.emplace(
        sub_id,
        Fragment{plan.worker, std::move(plan.partitions), 0, false, {},
                 rspan, -1.0, network.now()});
    ++pending.outstanding;
    if (profiler_ != nullptr && profiler_->active() &&
        profiled_request_ == request_id) {
      std::size_t stage = profiler_->open_stage("failover_retry",
                                                network.now());
      ExplainStage& s = profiler_->stage(stage);
      s.considered = retry_partitions;
      s.note("backup", std::to_string(plan.worker.value()));
      profiler_->close_stage(stage, network.now());
    }
  }
  if (pending.outstanding > 0) {
    network.set_timer(id_, config_.query_timeout, request_id);
  } else {
    // No replica could take over any lost partition: the answer is partial.
    pending.partial = true;
    queries_partial_.inc();
    maybe_finish(request_id, pending, network.now());
  }
}

void Coordinator::register_event_counter_help() {
  metrics_.set_help("workers_unsuspected",
                    "Suspected workers cleared after a heartbeat resumed");
  metrics_.set_help("ingest_forwards",
                    "Detections routed to workers by the ingest path");
  metrics_.set_help("unknown_message",
                    "Messages dropped for an unrecognized type");
  metrics_.set_help("hedges_suppressed_recovering",
                    "Hedges skipped because the backup was still recovering");
  metrics_.set_help("partitions_failed_over",
                    "Partitions re-pointed at a replica after a crash");
  metrics_.set_help("partitions_rereplicated",
                    "Partitions assigned a new replica after failover");
  metrics_.set_help("recoveries_started",
                    "Worker restarts that began partition resync");
  metrics_.set_help("recovery_done_stale",
                    "Recovery completions for an already-superseded plan");
  metrics_.set_help("partitions_recovered",
                    "Partitions fully resynced onto a restarted worker");
  metrics_.set_help("monitors_installed",
                    "Continuous monitors installed across workers");
  metrics_.set_help("monitor_fanout_total",
                    "Worker installations summed over all monitors");
  metrics_.set_help("deltas_positive",
                    "Continuous-monitor delta notifications with new rows");
  metrics_.set_help("deltas_negative",
                    "Continuous-monitor delta notifications retracting rows");
  metrics_.set_help("knn_adaptive_plans",
                    "kNN queries planned with the adaptive radius ladder");
  metrics_.set_help("knn_adaptive_degenerate",
                    "Adaptive kNN plans that fell back to a full-space probe");
  metrics_.set_help("knn_adaptive_rounds",
                    "Radius-expansion rounds issued by adaptive kNN");
  metrics_.set_help("workers_crashed", "Worker crashes injected or observed");
  metrics_.set_help("workers_restarted",
                    "Worker restarts driven through the cluster");
  metrics_.set_help("resync_timeout",
                    "Recovery resyncs abandoned after the drain deadline");
}

Coordinator::PeerStats& Coordinator::peer_stats(NodeId worker) {
  auto [it, inserted] = peer_stats_.try_emplace(worker.value());
  if (inserted) {
    std::string prefix = "peer." + std::to_string(worker.value()) + ".";
    it->second.hedged = &metrics_.counter(
        prefix + "hedged", "Hedges issued against this worker's fragments");
    it->second.hedge_wins = &metrics_.counter(
        prefix + "hedge_wins",
        "This worker's fragments beaten by a backup's hedge answer");
    it->second.timeouts = &metrics_.counter(
        prefix + "timeouts", "Fragments this worker failed to answer in time");
    it->second.latency = &metrics_.histogram(
        prefix + "fragment_latency_us",
        "Fragment round-trip latency against this worker (sim us)");
  }
  return it->second;
}

void Coordinator::refresh_heat_gauges(TimePoint now) {
  HeatMapSnapshot::Skew s = heat_.skew(now, &map_);
  partition_load_relative_stddev_.set(s.load_relative_stddev);
  partition_hot_cold_ratio_.set(s.hot_cold_ratio);
  partition_replicate_factor_.set(s.replicate_factor);
  partition_scan_gini_.set(s.scan_gini);
  partition_hottest_load_.set(s.hottest_load);
  partition_tracked_.set(static_cast<double>(heat_.entries().size()));
  // Exemplar labels: the gauge value says *how* skewed, the label says
  // *which* partition — so an operator (or the advisor) can go straight
  // from the alert to the subject.
  if (s.hottest_load > 0.0) {
    metrics_.set_labels(
        "partition.hottest_load",
        {{"partition", "p" + std::to_string(s.hottest.value())}});
    metrics_.set_labels(
        "partition.hot_cold_ratio",
        {{"hottest", "p" + std::to_string(s.hottest.value())},
         {"coldest", "p" + std::to_string(s.coldest.value())}});
  } else {
    metrics_.set_labels("partition.hottest_load", {});
    metrics_.set_labels("partition.hot_cold_ratio", {});
  }
}

void Coordinator::promote_backups_of(WorkerId worker) {
  for (std::size_t i = 0; i < map_.partition_count(); ++i) {
    PartitionId p(i);
    if (recovering_.contains(p)) continue;  // backup is mid-resync
    if (map_.primary(p) == worker && map_.has_distinct_backup(p) &&
        !suspected_.contains(map_.backup(p))) {
      map_.set_primary(p, map_.backup(p));
      counters_.add("partitions_failed_over");
    }
  }
}

// ---------------------------------------------------------------- recovery

Coordinator::RecoveryPlan Coordinator::begin_worker_recovery(WorkerId w) {
  // Stale RECOVERING entries for the same target mean the previous
  // recovery never completed (the worker re-crashed, or the exchange gave
  // up); replan them from the current map.
  std::erase_if(recovering_,
                [&](const auto& kv) { return kv.second.target == w; });
  RecoveryPlan plan;
  plan.recovery_id = next_recovery_id_++;
  for (std::size_t i = 0; i < map_.partition_count(); ++i) {
    PartitionId p(i);
    WorkerId primary = map_.primary(p);
    WorkerId backup = map_.backup(p);
    if (primary == w && backup != w) {
      // The rejoiner was primary: serve from the surviving backup while it
      // recovers, and keep the rejoiner as backup so the live replica
      // stream warms it during the catch-up window.
      map_.set_primary(p, backup);
      map_.set_backup(p, w);
      recovering_[p] = {w, backup, /*restore_primary=*/true,
                        plan.recovery_id};
      plan.specs.push_back({p, worker_node(backup)});
    } else if (backup == w && primary != w) {
      recovering_[p] = {w, primary, /*restore_primary=*/false,
                        plan.recovery_id};
      plan.specs.push_back({p, worker_node(primary)});
    } else if (primary == backup && primary != w) {
      // Failover earlier collapsed this partition onto one holder;
      // re-replicate onto the rejoining worker.
      map_.set_backup(p, w);
      recovering_[p] = {w, primary, /*restore_primary=*/false,
                        plan.recovery_id};
      plan.specs.push_back({p, worker_node(primary)});
      counters_.add("partitions_rereplicated");
    } else if (primary == w && backup == w) {
      // No surviving holder anywhere: recovery is local-only (vault
      // snapshot or nothing). Not marked RECOVERING — queries against it
      // answer from whatever the snapshot restores, or go partial.
      plan.specs.push_back({p, NodeId(0)});
    }
  }
  if (recovering_count_for(w) > 0) counters_.add("recoveries_started");
  partitions_recovering_.set(static_cast<double>(recovering_.size()));
  return plan;
}

void Coordinator::on_recovery_done(const RecoveryDone& done) {
  auto it = recovering_.find(done.partition);
  if (it == recovering_.end() ||
      it->second.recovery_id != done.recovery_id) {
    // Stale completion from a previous incarnation (the worker re-crashed
    // and a new plan superseded this one): must not flip routing.
    counters_.add("recovery_done_stale");
    return;
  }
  RecoveringPartition r = it->second;
  recovering_.erase(it);
  if (r.restore_primary) {
    map_.set_primary(done.partition, r.target);
    map_.set_backup(done.partition, r.holder);
  }
  counters_.add("partitions_recovered");
  partitions_recovering_.set(static_cast<double>(recovering_.size()));
}

// ---------------------------------------------------- continuous queries

void Coordinator::install_monitor(const ContinuousQuerySpec& spec,
                                  SimNetwork& network) {
  MonitorInstall install{spec.id, spec.region, spec.window};
  auto payload = encode(install);
  // Install on every worker owning a partition that overlaps the region:
  // those are the only workers that can see matching detections as primary.
  std::unordered_set<std::uint64_t> targets;
  for (PartitionId p :
       strategy_.partitions_for_region(spec.region, TimeInterval::all())) {
    targets.insert(map_.primary(p).value());
  }
  for (std::uint64_t w : targets) {
    network.send({id_, NodeId(w),
                  static_cast<std::uint32_t>(MsgType::kInstallMonitor),
                  payload, network.now(), {}});
  }
  counters_.add("monitors_installed");
  counters_.add("monitor_fanout_total", targets.size());
}

void Coordinator::remove_monitor(QueryId id, const Rect& region,
                                 SimNetwork& network) {
  MonitorInstall install{id, region, Duration::zero()};
  auto payload = encode(install);
  std::unordered_set<std::uint64_t> targets;
  for (PartitionId p :
       strategy_.partitions_for_region(region, TimeInterval::all())) {
    targets.insert(map_.primary(p).value());
  }
  for (std::uint64_t w : targets) {
    network.send({id_, NodeId(w),
                  static_cast<std::uint32_t>(MsgType::kRemoveMonitor),
                  payload, network.now(), {}});
  }
  delta_log_.erase(id);
  live_answers_.erase(id);
}

void Coordinator::on_deltas(const DeltaBatch& batch) {
  for (const WireDelta& d : batch.deltas) {
    delta_log_[d.query].push_back({d.query, d.positive, d.detection});
    auto& live = live_answers_[d.query];
    if (d.positive) {
      live.emplace(d.detection.id.value(), d.detection);
    } else {
      live.erase(d.detection.id.value());
    }
    counters_.add(d.positive ? "deltas_positive" : "deltas_negative");
  }
}

std::vector<DeltaUpdate> Coordinator::drain_deltas(QueryId id) {
  auto it = delta_log_.find(id);
  if (it == delta_log_.end()) return {};
  std::vector<DeltaUpdate> out = std::move(it->second);
  it->second.clear();
  return out;
}

std::vector<Detection> Coordinator::live_answer(QueryId id) const {
  std::vector<Detection> out;
  auto it = live_answers_.find(id);
  if (it == live_answers_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [det_id, d] : it->second) out.push_back(d);
  std::sort(out.begin(), out.end(), [](const Detection& a, const Detection& b) {
    return a.id < b.id;
  });
  return out;
}

}  // namespace stcn
