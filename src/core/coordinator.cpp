#include "core/coordinator.h"

#include <algorithm>

namespace stcn {
namespace {
// Timer token reserved for the failure-detection sweep; query-timeout
// timers use the (monotonically increasing, small) request id.
constexpr std::uint64_t kSweepToken = ~std::uint64_t{0};
}  // namespace

void Coordinator::start(SimNetwork& network) {
  if (config_.detect_failures) {
    network.set_timer(id_, config_.failure_sweep_period, kSweepToken);
  }
}

void Coordinator::handle_message(const Message& message, SimNetwork& network) {
  BinaryReader reader(message.payload);
  switch (static_cast<MsgType>(message.type)) {
    case MsgType::kQueryResponse:
      on_response(decode_query_response(reader), message.from);
      break;
    case MsgType::kDeltaBatch:
      on_deltas(decode_delta_batch(reader));
      break;
    case MsgType::kHeartbeat: {
      Heartbeat hb = decode_heartbeat(reader);
      last_heartbeat_[hb.worker] = network.now();
      if (suspected_.erase(hb.worker) > 0) {
        counters_.add("workers_unsuspected");
      }
      break;
    }
    case MsgType::kObjectSummary: {
      ObjectSummary summary = decode_object_summary(reader);
      auto it = summaries_.find(summary.partition);
      if (it == summaries_.end() || summary.as_of > it->second.as_of) {
        summaries_.insert_or_assign(summary.partition, std::move(summary));
      }
      break;
    }
    case MsgType::kIngestForward: {
      // Relay-mode gateway traffic: re-route each detection to its worker.
      IngestForward forward = decode_ingest_forward(reader);
      counters_.add("ingest_forwards");
      for (const Detection& d : forward.detections) ingest(d, network);
      flush_ingest(network);
      break;
    }
    default:
      counters_.add("unknown_message");
      break;
  }
}

void Coordinator::handle_timer(std::uint64_t timer_token,
                               SimNetwork& network) {
  if (timer_token == kSweepToken) {
    // Failure-detection sweep: suspect every worker that has heartbeated
    // before but has now been silent past the timeout, and proactively
    // fail its partitions over to their backups.
    for (const auto& [worker, last_seen] : last_heartbeat_) {
      if (suspected_.contains(worker)) continue;
      if (network.now() - last_seen > config_.heartbeat_timeout) {
        suspected_.insert(worker);
        counters_.add("workers_suspected");
        promote_backups_of(worker);
      }
    }
    network.set_timer(id_, config_.failure_sweep_period, kSweepToken);
    return;
  }
  failover_retry(timer_token, network);
}

// ----------------------------------------------------------------- ingest

void Coordinator::ingest(const Detection& d, SimNetwork& network) {
  PartitionId p = strategy_.partition_of(d.camera, d.position, d.time);
  WorkerId primary = map_.primary(p);
  counters_.add("ingested");

  auto buffer_to = [&](WorkerId w, bool replica) {
    BatchKey key{w.value(), p.value(), replica};
    auto& buf = ingest_buffers_[key];
    buf.push_back(d);
    if (buf.size() >= config_.ingest_batch_size) {
      IngestBatch batch{p, replica, std::move(buf)};
      buf.clear();
      network.send({id_, worker_node(w),
                    static_cast<std::uint32_t>(MsgType::kIngestBatch),
                    encode(batch), network.now()});
    }
  };

  buffer_to(primary, false);
  if (config_.replicate && map_.has_distinct_backup(p)) {
    buffer_to(map_.backup(p), true);
  }
}

void Coordinator::flush_ingest(SimNetwork& network) {
  for (auto& [key, buf] : ingest_buffers_) {
    if (buf.empty()) continue;
    IngestBatch batch{PartitionId(key.partition), key.replica,
                      std::move(buf)};
    buf.clear();
    network.send({id_, NodeId(key.node),
                  static_cast<std::uint32_t>(MsgType::kIngestBatch),
                  encode(batch), network.now()});
  }
}

// ---------------------------------------------------------------- queries

std::vector<PartitionId> Coordinator::footprint(const Query& query) const {
  switch (query.kind) {
    case QueryKind::kRange:
    case QueryKind::kCount:
    case QueryKind::kHeatmap:
      return strategy_.partitions_for_region(query.region, query.interval);
    case QueryKind::kCircle:
      return strategy_.partitions_for_region(query.circle.bounding_box(),
                                             query.interval);
    case QueryKind::kCameraWindow:
      return strategy_.partitions_for_camera(query.camera, query.interval);
    case QueryKind::kTrajectory: {
      // No spatial footprint, but object-presence summaries prune: a
      // partition can be skipped when its summary (a) is fresh enough to
      // cover the whole query interval and (b) rules the object out.
      // Bloom filters have no false negatives, so this is sound.
      std::vector<PartitionId> pruned;
      for (PartitionId p : strategy_.all_partitions()) {
        auto it = summaries_.find(p);
        bool must_ask = it == summaries_.end() ||
                        query.interval.end > it->second.as_of ||
                        it->second.objects.may_contain(query.object.value());
        if (must_ask) {
          pruned.push_back(p);
        } else {
          counters_.add("trajectory_partitions_pruned");
        }
      }
      return pruned;
    }
    case QueryKind::kKnn:
      // No bounded spatial footprint: must ask every partition.
      return strategy_.all_partitions();
  }
  return strategy_.all_partitions();
}

void Coordinator::send_query_to(NodeId worker, std::uint64_t request_id,
                                const Query& query,
                                const std::vector<PartitionId>& partitions,
                                SimNetwork& network) {
  QueryRequest request{request_id, query, partitions};
  network.send({id_, worker,
                static_cast<std::uint32_t>(MsgType::kQueryRequest),
                encode(request), network.now()});
}

std::uint64_t Coordinator::submit(const Query& query, SimNetwork& network) {
  std::uint64_t request_id = next_request_id_++;
  PendingQuery pending;
  pending.query = query;
  pending.retries_left = config_.max_retries;

  for (PartitionId p : footprint(query)) {
    pending.assignment[worker_node(map_.primary(p))].push_back(p);
  }
  counters_.add("queries_submitted");
  counters_.add("query_fanout_total", pending.assignment.size());
  counters_.add("query_partitions_total",
                [&pending] {
                  std::size_t n = 0;
                  for (const auto& [w, ps] : pending.assignment) {
                    n += ps.size();
                  }
                  return n;
                }());

  for (const auto& [worker, partitions] : pending.assignment) {
    pending.awaiting.insert(worker);
    send_query_to(worker, request_id, query, partitions, network);
  }
  bool empty = pending.awaiting.empty();
  pending_.emplace(request_id, std::move(pending));
  if (!empty) {
    network.set_timer(id_, config_.query_timeout, request_id);
  }
  return request_id;
}

void Coordinator::on_response(const QueryResponse& response, NodeId from) {
  auto it = pending_.find(response.request_id);
  if (it == pending_.end()) return;  // late response after completion
  PendingQuery& pending = it->second;
  // Keep the fragment even from a worker we stopped awaiting (a slow
  // primary racing its promoted backup): the merger dedups detections.
  pending.fragments.push_back(response.result);
  pending.awaiting.erase(from);
}

std::optional<QueryResult> Coordinator::poll(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return std::nullopt;
  PendingQuery& pending = it->second;
  if (!pending.awaiting.empty()) return std::nullopt;
  ResultMerger merger(pending.query);
  for (const QueryResult& fragment : pending.fragments) {
    merger.add(fragment);
  }
  QueryResult result = merger.take();
  pending_.erase(it);
  return result;
}

bool Coordinator::is_complete(std::uint64_t request_id) const {
  auto it = pending_.find(request_id);
  return it == pending_.end() || it->second.awaiting.empty();
}

void Coordinator::failover_retry(std::uint64_t request_id,
                                 SimNetwork& network) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // completed before the deadline
  PendingQuery& pending = it->second;
  if (pending.awaiting.empty()) return;
  if (pending.retries_left-- <= 0) {
    pending.partial = true;
    pending.awaiting.clear();
    counters_.add("queries_partial");
    return;
  }
  counters_.add("failover_retries");

  // Re-route every unanswered worker's partitions to their backups and
  // re-issue. Fragments already received stay; duplicates are deduped by
  // the merger.
  std::unordered_map<NodeId, std::vector<PartitionId>> retry_assignment;
  for (NodeId dead : pending.awaiting) {
    auto assigned = pending.assignment.find(dead);
    if (assigned == pending.assignment.end()) continue;
    for (PartitionId p : assigned->second) {
      WorkerId backup = map_.backup(p);
      if (worker_node(backup) == dead) continue;    // no usable replica
      if (suspected_.contains(backup)) continue;    // replica also down
      map_.set_primary(p, backup);
      retry_assignment[worker_node(backup)].push_back(p);
    }
  }
  pending.awaiting.clear();
  for (auto& [worker, partitions] : retry_assignment) {
    pending.awaiting.insert(worker);
    pending.assignment[worker] = partitions;
    send_query_to(worker, request_id, pending.query, partitions, network);
  }
  if (!pending.awaiting.empty()) {
    network.set_timer(id_, config_.query_timeout, request_id);
  } else {
    // No replica could take over any lost partition: the answer is partial.
    pending.partial = true;
    counters_.add("queries_partial");
  }
}

void Coordinator::promote_backups_of(WorkerId worker) {
  for (std::size_t i = 0; i < map_.partition_count(); ++i) {
    PartitionId p(i);
    if (map_.primary(p) == worker && map_.has_distinct_backup(p) &&
        !suspected_.contains(map_.backup(p))) {
      map_.set_primary(p, map_.backup(p));
      counters_.add("partitions_failed_over");
    }
  }
}

// ---------------------------------------------------- continuous queries

void Coordinator::install_monitor(const ContinuousQuerySpec& spec,
                                  SimNetwork& network) {
  MonitorInstall install{spec.id, spec.region, spec.window};
  auto payload = encode(install);
  // Install on every worker owning a partition that overlaps the region:
  // those are the only workers that can see matching detections as primary.
  std::unordered_set<std::uint64_t> targets;
  for (PartitionId p :
       strategy_.partitions_for_region(spec.region, TimeInterval::all())) {
    targets.insert(map_.primary(p).value());
  }
  for (std::uint64_t w : targets) {
    network.send({id_, NodeId(w),
                  static_cast<std::uint32_t>(MsgType::kInstallMonitor),
                  payload, network.now()});
  }
  counters_.add("monitors_installed");
  counters_.add("monitor_fanout_total", targets.size());
}

void Coordinator::remove_monitor(QueryId id, const Rect& region,
                                 SimNetwork& network) {
  MonitorInstall install{id, region, Duration::zero()};
  auto payload = encode(install);
  std::unordered_set<std::uint64_t> targets;
  for (PartitionId p :
       strategy_.partitions_for_region(region, TimeInterval::all())) {
    targets.insert(map_.primary(p).value());
  }
  for (std::uint64_t w : targets) {
    network.send({id_, NodeId(w),
                  static_cast<std::uint32_t>(MsgType::kRemoveMonitor),
                  payload, network.now()});
  }
  delta_log_.erase(id);
  live_answers_.erase(id);
}

void Coordinator::on_deltas(const DeltaBatch& batch) {
  for (const WireDelta& d : batch.deltas) {
    delta_log_[d.query].push_back({d.query, d.positive, d.detection});
    auto& live = live_answers_[d.query];
    if (d.positive) {
      live.emplace(d.detection.id.value(), d.detection);
    } else {
      live.erase(d.detection.id.value());
    }
    counters_.add(d.positive ? "deltas_positive" : "deltas_negative");
  }
}

std::vector<DeltaUpdate> Coordinator::drain_deltas(QueryId id) {
  auto it = delta_log_.find(id);
  if (it == delta_log_.end()) return {};
  std::vector<DeltaUpdate> out = std::move(it->second);
  it->second.clear();
  return out;
}

std::vector<Detection> Coordinator::live_answer(QueryId id) const {
  std::vector<Detection> out;
  auto it = live_answers_.find(id);
  if (it == live_answers_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [det_id, d] : it->second) out.push_back(d);
  std::sort(out.begin(), out.end(), [](const Detection& a, const Detection& b) {
    return a.id < b.id;
  });
  return out;
}

}  // namespace stcn
