// Wire protocol between coordinator and workers.
//
// Message types and their payload encodings. Every payload is produced with
// BinaryWriter so the simulated network accounts real byte volumes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/serialize.h"
#include "core/recovery.h"
#include "index/bloom.h"
#include "partition/load_stats.h"
#include "query/query.h"
#include "query/result.h"
#include "trace/detection.h"

namespace stcn {

enum class MsgType : std::uint32_t {
  kIngestBatch = 1,     // router → worker: detections for one partition
  kQueryRequest = 2,    // coordinator → worker
  kQueryResponse = 3,   // worker → coordinator
  kInstallMonitor = 4,  // coordinator → worker: continuous query spec
  kRemoveMonitor = 5,   // coordinator → worker
  kDeltaBatch = 6,      // worker → coordinator: continuous query deltas
  kSyncRequest = 7,     // recovering worker → backup: send partition data
  kSyncResponse = 8,    // backup → recovering worker
  kHeartbeat = 9,       // worker → coordinator: liveness
  kIngestForward = 10,   // gateway → coordinator: relay-mode ingest
  kObjectSummary = 11,   // worker → coordinator: per-partition object Bloom
  kReliableData = 12,    // reliable-channel DATA frame (wraps another type)
  kReliableAck = 13,     // reliable-channel ACK frame
  kDeltaSyncRequest = 14,   // recovering worker → holder: post-watermark data
  kDeltaSyncResponse = 15,  // holder → recovering worker: replay-log entries
  kRecoveryDone = 16,       // worker → coordinator: partition caught up
};

// ------------------------------------------------------------ ingest batch

struct IngestBatch {
  PartitionId partition;
  bool is_replica = false;  // replica copies do not drive monitors/deltas
  std::vector<Detection> detections;
  /// Per-(source, partition) monotonically increasing batch id, assigned by
  /// the sender at flush time. The same pbid is stamped on the primary and
  /// replica copies (identical contents), so watermarks are comparable
  /// across holders. 0 = unsequenced (direct test sends): never advances a
  /// watermark, always included in delta replays.
  std::uint64_t pbid = 0;
};

/// Exact encoded size of a detection vector (length prefix + elements),
/// for BinaryWriter::reserve before batch encodes.
[[nodiscard]] inline std::size_t wire_size(
    const std::vector<Detection>& detections) {
  std::size_t n = 4;
  for (const Detection& d : detections) n += wire_size(d);
  return n;
}

inline std::vector<std::uint8_t> encode(const IngestBatch& batch) {
  BinaryWriter w;
  w.reserve(8 + 1 + 8 + wire_size(batch.detections));
  w.write_id(batch.partition);
  w.write_bool(batch.is_replica);
  w.write_u64(batch.pbid);
  w.write_vector(batch.detections,
                 [](BinaryWriter& bw, const Detection& d) { serialize(bw, d); });
  return w.take();
}

inline IngestBatch decode_ingest_batch(BinaryReader& r) {
  IngestBatch batch;
  batch.partition = r.read_id<PartitionIdTag>();
  batch.is_replica = r.read_bool();
  batch.pbid = r.read_u64();
  batch.detections = r.read_vector<Detection>(
      [](BinaryReader& br) { return deserialize_detection(br); });
  return batch;
}

// ---------------------------------------------------------- ingest forward

/// Relay-mode ingest: a gateway without routing knowledge ships raw
/// detections to the coordinator for re-routing (ablation baseline).
struct IngestForward {
  std::vector<Detection> detections;
};

inline std::vector<std::uint8_t> encode(const IngestForward& fwd) {
  BinaryWriter w;
  w.reserve(wire_size(fwd.detections));
  w.write_vector(fwd.detections,
                 [](BinaryWriter& bw, const Detection& d) { serialize(bw, d); });
  return w.take();
}

inline IngestForward decode_ingest_forward(BinaryReader& r) {
  IngestForward fwd;
  fwd.detections = r.read_vector<Detection>(
      [](BinaryReader& br) { return deserialize_detection(br); });
  return fwd;
}

// ----------------------------------------------------------- query request

struct QueryRequest {
  std::uint64_t request_id = 0;
  /// Fragment id: identifies this (request, worker, partition-set) send so
  /// the coordinator can tell a hedged duplicate's answer from the
  /// original's. Workers echo it verbatim in the response.
  std::uint64_t sub_id = 0;
  Query query;
  std::vector<PartitionId> partitions;  // partitions this worker must serve
};

inline std::vector<std::uint8_t> encode(const QueryRequest& req) {
  BinaryWriter w;
  w.write_u64(req.request_id);
  w.write_u64(req.sub_id);
  serialize(w, req.query);
  w.write_vector(req.partitions, [](BinaryWriter& bw, PartitionId p) {
    bw.write_id(p);
  });
  return w.take();
}

inline QueryRequest decode_query_request(BinaryReader& r) {
  QueryRequest req;
  req.request_id = r.read_u64();
  req.sub_id = r.read_u64();
  req.query = deserialize_query(r);
  req.partitions = r.read_vector<PartitionId>(
      [](BinaryReader& br) { return br.read_id<PartitionIdTag>(); });
  return req;
}

// ---------------------------------------------------------- query response

struct QueryResponse {
  std::uint64_t request_id = 0;
  std::uint64_t sub_id = 0;  // echoed from the QueryRequest fragment
  QueryResult result;
  /// EXPLAIN/ANALYZE scan stats: rows the worker's indexes yielded before
  /// merging, and the real microseconds the scan loop took.
  std::uint64_t rows_scanned = 0;
  std::uint64_t scan_wall_us = 0;
  /// Columnar zone-map stats: detection-store blocks whose rows were
  /// actually examined vs. skipped wholesale by their zone maps.
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_skipped = 0;
  /// Vectorized-scan stats: rows the filter kernels evaluated vs rows that
  /// survived into selection vectors, and how many 4096-row morsels went
  /// through the vectorized path (0 ⇒ the query used a non-columnar index).
  std::uint64_t rows_evaluated = 0;
  std::uint64_t rows_selected = 0;
  std::uint64_t vectorized_morsels = 0;
  /// Cold-tier stats: blocks scanned/skipped that were compressed, and
  /// cold morsels that ran decode-fused kernels (0 ⇒ scan was all-hot).
  std::uint64_t cold_blocks_scanned = 0;
  std::uint64_t cold_blocks_skipped = 0;
  std::uint64_t decode_morsels = 0;
};

inline std::vector<std::uint8_t> encode(const QueryResponse& resp) {
  BinaryWriter w;
  w.write_u64(resp.request_id);
  w.write_u64(resp.sub_id);
  serialize(w, resp.result);
  w.write_u64(resp.rows_scanned);
  w.write_u64(resp.scan_wall_us);
  w.write_u64(resp.blocks_scanned);
  w.write_u64(resp.blocks_skipped);
  w.write_u64(resp.rows_evaluated);
  w.write_u64(resp.rows_selected);
  w.write_u64(resp.vectorized_morsels);
  w.write_u64(resp.cold_blocks_scanned);
  w.write_u64(resp.cold_blocks_skipped);
  w.write_u64(resp.decode_morsels);
  return w.take();
}

inline QueryResponse decode_query_response(BinaryReader& r) {
  QueryResponse resp;
  resp.request_id = r.read_u64();
  resp.sub_id = r.read_u64();
  resp.result = deserialize_query_result(r);
  resp.rows_scanned = r.read_u64();
  resp.scan_wall_us = r.read_u64();
  resp.blocks_scanned = r.read_u64();
  resp.blocks_skipped = r.read_u64();
  resp.rows_evaluated = r.read_u64();
  resp.rows_selected = r.read_u64();
  resp.vectorized_morsels = r.read_u64();
  resp.cold_blocks_scanned = r.read_u64();
  resp.cold_blocks_skipped = r.read_u64();
  resp.decode_morsels = r.read_u64();
  return resp;
}

// -------------------------------------------------------- monitor install

struct MonitorInstall {
  QueryId query;
  Rect region;
  Duration window;
};

inline std::vector<std::uint8_t> encode(const MonitorInstall& m) {
  BinaryWriter w;
  w.write_id(m.query);
  w.write_double(m.region.min.x);
  w.write_double(m.region.min.y);
  w.write_double(m.region.max.x);
  w.write_double(m.region.max.y);
  w.write_duration(m.window);
  return w.take();
}

inline MonitorInstall decode_monitor_install(BinaryReader& r) {
  MonitorInstall m;
  m.query = r.read_id<QueryIdTag>();
  m.region.min.x = r.read_double();
  m.region.min.y = r.read_double();
  m.region.max.x = r.read_double();
  m.region.max.y = r.read_double();
  m.window = r.read_duration();
  return m;
}

// ------------------------------------------------------------ delta batch

struct WireDelta {
  QueryId query;
  bool positive = true;
  Detection detection;
};

struct DeltaBatch {
  std::vector<WireDelta> deltas;
};

inline std::vector<std::uint8_t> encode(const DeltaBatch& batch) {
  BinaryWriter w;
  w.write_vector(batch.deltas, [](BinaryWriter& bw, const WireDelta& d) {
    bw.write_id(d.query);
    bw.write_bool(d.positive);
    serialize(bw, d.detection);
  });
  return w.take();
}

inline DeltaBatch decode_delta_batch(BinaryReader& r) {
  DeltaBatch batch;
  batch.deltas = r.read_vector<WireDelta>([](BinaryReader& br) {
    WireDelta d;
    d.query = br.read_id<QueryIdTag>();
    d.positive = br.read_bool();
    d.detection = deserialize_detection(br);
    return d;
  });
  return batch;
}

// -------------------------------------------------------------- heartbeat

struct Heartbeat {
  WorkerId worker;
  std::uint64_t stored_detections = 0;  // piggybacked load signal
  /// Per-partition heat telemetry (see partition/load_stats.h): piggybacked
  /// on the liveness signal so the coordinator's HeatMapSnapshot stays
  /// fresh without a dedicated stats round-trip.
  std::vector<PartitionHeat> heat;
};

inline std::vector<std::uint8_t> encode(const Heartbeat& hb) {
  BinaryWriter w;
  w.write_id(hb.worker);
  w.write_u64(hb.stored_detections);
  w.write_vector(hb.heat, [](BinaryWriter& bw, const PartitionHeat& ph) {
    bw.write_id(ph.partition);
    bw.write_u64(ph.ingested_rows);
    bw.write_u64(ph.rows_evaluated);
    bw.write_u64(ph.rows_selected);
    bw.write_u64(ph.blocks_scanned);
    bw.write_u64(ph.blocks_skipped);
    bw.write_u64(ph.fragments_served);
    bw.write_u64(ph.wire_bytes_out);
    bw.write_u64(ph.store_memory_bytes);
    bw.write_double(ph.ewma_load_per_s);
  });
  return w.take();
}

inline Heartbeat decode_heartbeat(BinaryReader& r) {
  Heartbeat hb;
  hb.worker = r.read_id<WorkerIdTag>();
  hb.stored_detections = r.read_u64();
  hb.heat = r.read_vector<PartitionHeat>([](BinaryReader& br) {
    PartitionHeat ph;
    ph.partition = br.read_id<PartitionIdTag>();
    ph.ingested_rows = br.read_u64();
    ph.rows_evaluated = br.read_u64();
    ph.rows_selected = br.read_u64();
    ph.blocks_scanned = br.read_u64();
    ph.blocks_skipped = br.read_u64();
    ph.fragments_served = br.read_u64();
    ph.wire_bytes_out = br.read_u64();
    ph.store_memory_bytes = br.read_u64();
    ph.ewma_load_per_s = br.read_double();
    return ph;
  });
  return hb;
}

// --------------------------------------------------------- object summary

/// Per-partition Bloom filter of object ids present, covering all data the
/// worker held at `as_of`. The coordinator may prune a trajectory query
/// away from this partition ONLY for query intervals ending before
/// `as_of` — data arriving after the summary is not covered by it.
struct ObjectSummary {
  PartitionId partition;
  TimePoint as_of;
  BloomFilter objects;
};

inline std::vector<std::uint8_t> encode(const ObjectSummary& summary) {
  BinaryWriter w;
  w.write_id(summary.partition);
  w.write_time(summary.as_of);
  summary.objects.serialize_to(w);
  return w.take();
}

inline ObjectSummary decode_object_summary(BinaryReader& r) {
  ObjectSummary summary{PartitionId(0), TimePoint(0), BloomFilter(64, 1)};
  summary.partition = r.read_id<PartitionIdTag>();
  summary.as_of = r.read_time();
  summary.objects = BloomFilter::deserialize_from(r);
  return summary;
}

// ------------------------------------------------------------------- sync

struct SyncRequest {
  PartitionId partition;
};

inline std::vector<std::uint8_t> encode(const SyncRequest& req) {
  BinaryWriter w;
  w.write_id(req.partition);
  return w.take();
}

inline SyncRequest decode_sync_request(BinaryReader& r) {
  return {r.read_id<PartitionIdTag>()};
}

struct SyncResponse {
  PartitionId partition;
  std::vector<Detection> detections;
  /// Holder's contiguous per-source watermark for this partition: the
  /// receiver adopts it as its own floor (everything at or below is in
  /// `detections`), so future delta syncs start from here.
  Watermark watermark;
  /// Replay-log entries past `watermark` — rows delivered out of order that
  /// the contiguous watermark does not cover. Receivers append them to
  /// their own log under the true (source, pbid) identity.
  std::vector<ReplayEntry> tail;
};

inline std::vector<std::uint8_t> encode(const SyncResponse& resp) {
  BinaryWriter w;
  w.reserve(8 + wire_size(resp.detections));
  w.write_id(resp.partition);
  w.write_vector(resp.detections,
                 [](BinaryWriter& bw, const Detection& d) { serialize(bw, d); });
  write_watermark(w, resp.watermark);
  w.write_vector(resp.tail, [](BinaryWriter& bw, const ReplayEntry& e) {
    write_replay_entry(bw, e);
  });
  return w.take();
}

inline SyncResponse decode_sync_response(BinaryReader& r) {
  SyncResponse resp;
  resp.partition = r.read_id<PartitionIdTag>();
  resp.detections = r.read_vector<Detection>(
      [](BinaryReader& br) { return deserialize_detection(br); });
  resp.watermark = read_watermark(r);
  resp.tail = r.read_vector<ReplayEntry>(
      [](BinaryReader& br) { return read_replay_entry(br); });
  return resp;
}

// ----------------------------------------------------------- delta sync

/// Recovering worker → holder: "I have everything up to `since`; send what
/// I'm missing." Served from the holder's replay log iff the log still
/// retains every batch past `since`; otherwise the holder refuses and the
/// requester falls back to a full SyncRequest.
struct DeltaSyncRequest {
  PartitionId partition;
  Watermark since;
};

inline std::vector<std::uint8_t> encode(const DeltaSyncRequest& req) {
  BinaryWriter w;
  w.write_id(req.partition);
  write_watermark(w, req.since);
  return w.take();
}

inline DeltaSyncRequest decode_delta_sync_request(BinaryReader& r) {
  DeltaSyncRequest req;
  req.partition = r.read_id<PartitionIdTag>();
  req.since = read_watermark(r);
  return req;
}

struct DeltaSyncResponse {
  PartitionId partition;
  bool ok = false;  // false: log pruned past `since` — do a full sync
  Watermark watermark;
  std::vector<ReplayEntry> entries;
};

inline std::vector<std::uint8_t> encode(const DeltaSyncResponse& resp) {
  BinaryWriter w;
  w.write_id(resp.partition);
  w.write_bool(resp.ok);
  write_watermark(w, resp.watermark);
  w.write_vector(resp.entries, [](BinaryWriter& bw, const ReplayEntry& e) {
    write_replay_entry(bw, e);
  });
  return w.take();
}

inline DeltaSyncResponse decode_delta_sync_response(BinaryReader& r) {
  DeltaSyncResponse resp;
  resp.partition = r.read_id<PartitionIdTag>();
  resp.ok = r.read_bool();
  resp.watermark = read_watermark(r);
  resp.entries = r.read_vector<ReplayEntry>(
      [](BinaryReader& br) { return read_replay_entry(br); });
  return resp;
}

// ---------------------------------------------------------- recovery done

/// Worker → coordinator: one partition's recovery exchange finished and the
/// partition is caught up. `recovery_id` identifies the restart_worker
/// plan that started it, so a stale completion from a previous incarnation
/// (worker re-crashed mid-recovery) cannot flip routing back early.
struct RecoveryDone {
  std::uint64_t recovery_id = 0;
  PartitionId partition;
  std::uint64_t detections = 0;  // rows held at completion time
};

inline std::vector<std::uint8_t> encode(const RecoveryDone& done) {
  BinaryWriter w;
  w.write_u64(done.recovery_id);
  w.write_id(done.partition);
  w.write_u64(done.detections);
  return w.take();
}

inline RecoveryDone decode_recovery_done(BinaryReader& r) {
  RecoveryDone done;
  done.recovery_id = r.read_u64();
  done.partition = r.read_id<PartitionIdTag>();
  done.detections = r.read_u64();
  return done;
}

}  // namespace stcn
