// Incremental crash recovery: watermarks, replay logs, and snapshots.
//
// Every ingest sender (the coordinator, each gateway) stamps the batches it
// emits with a per-partition monotonically increasing batch id (`pbid`).
// Workers track, per (partition, source), the highest *contiguous* pbid they
// have applied — the watermark. A snapshot is a serialized DetectionStore
// keyed by the watermark at capture time; a replay log retains recent
// batches past the watermark so a restarted peer can fetch only the delta
// instead of re-copying the whole partition.
//
// Soundness invariant: every row in a holder's store either arrived in a
// batch with pbid <= floor[source] (covered by any watermark >= floor), or
// is still present in a retained log entry. A holder can therefore serve a
// delta request `since` iff floor[source] <= since[source] for every source
// it has pruned — everything older is already covered by the requester's
// contiguous watermark, everything newer is in the log.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/serialize.h"
#include "common/time.h"
#include "trace/detection.h"

namespace stcn {

/// Per-source contiguous batch watermark. std::map so wire encoding is
/// deterministic across runs (the sim is fully deterministic).
using Watermark = std::map<std::uint64_t, std::uint64_t>;

inline void write_watermark(BinaryWriter& w, const Watermark& mark) {
  w.write_u32(static_cast<std::uint32_t>(mark.size()));
  for (const auto& [source, pbid] : mark) {
    w.write_u64(source);
    w.write_u64(pbid);
  }
}

inline Watermark read_watermark(BinaryReader& r) {
  Watermark mark;
  std::uint32_t n = r.read_u32();
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
    std::uint64_t source = r.read_u64();
    mark[source] = r.read_u64();
  }
  return mark;
}

/// Tracks the highest contiguous pbid seen from one source. The reliable
/// channel can deliver batches out of order, so pbids ahead of the
/// contiguous frontier are parked until the gap fills.
struct PbidTracker {
  std::uint64_t contig = 0;
  std::set<std::uint64_t> ahead;

  void note(std::uint64_t pbid) {
    if (pbid == 0 || pbid <= contig) return;
    if (pbid == contig + 1) {
      ++contig;
      drain();
    } else {
      ahead.insert(pbid);
    }
  }

  /// Adopt a remote watermark (snapshot install / full sync): everything up
  /// to `w` is known-applied regardless of what we saw arrive directly.
  void advance_to(std::uint64_t w) {
    if (w <= contig) return;
    contig = w;
    ahead.erase(ahead.begin(), ahead.upper_bound(w));
    drain();
  }

 private:
  void drain() {
    while (!ahead.empty() && *ahead.begin() == contig + 1) {
      ++contig;
      ahead.erase(ahead.begin());
    }
  }
};

/// One retained ingest batch: the (source, pbid) identity plus its payload.
struct ReplayEntry {
  std::uint64_t source = 0;
  std::uint64_t pbid = 0;  // 0 = unsequenced (direct test sends)
  std::vector<Detection> detections;
};

inline void write_replay_entry(BinaryWriter& w, const ReplayEntry& e) {
  w.write_u64(e.source);
  w.write_u64(e.pbid);
  w.write_vector(e.detections,
                 [](BinaryWriter& bw, const Detection& d) { serialize(bw, d); });
}

inline ReplayEntry read_replay_entry(BinaryReader& r) {
  ReplayEntry e;
  e.source = r.read_u64();
  e.pbid = r.read_u64();
  e.detections = r.read_vector<Detection>(
      [](BinaryReader& br) { return deserialize_detection(br); });
  return e;
}

/// Bounded per-partition log of recent ingest batches. Holders keep it so a
/// restarted peer can replay only post-watermark data. Pruning records the
/// highest discarded pbid per source (the floor); a delta request older
/// than the floor cannot be served and falls back to a full sync.
class ReplayLog {
 public:
  void set_max_bytes(std::size_t max_bytes) { max_bytes_ = max_bytes; }

  void append(std::uint64_t source, std::uint64_t pbid,
              const std::vector<Detection>& detections) {
    bytes_ += entry_cost(detections);
    entries_.push_back({source, pbid, detections});
    while (bytes_ > max_bytes_ && entries_.size() > 1) {
      const ReplayEntry& front = entries_.front();
      bytes_ -= entry_cost(front.detections);
      if (front.pbid == 0) {
        unsequenced_pruned_ = true;
      } else {
        std::uint64_t& f = floor_[front.source];
        if (front.pbid > f) f = front.pbid;
      }
      entries_.pop_front();
    }
  }

  /// Can this log cover everything a peer at watermark `since` is missing?
  [[nodiscard]] bool can_serve(const Watermark& since) const {
    if (unsequenced_pruned_) return false;
    for (const auto& [source, floor] : floor_) {
      auto it = since.find(source);
      std::uint64_t have = it == since.end() ? 0 : it->second;
      if (floor > have) return false;
    }
    return true;
  }

  /// Entries the peer at `since` has not applied (plus all unsequenced).
  [[nodiscard]] std::vector<ReplayEntry> collect(const Watermark& since) const {
    std::vector<ReplayEntry> out;
    for (const ReplayEntry& e : entries_) {
      if (e.pbid == 0) {
        out.push_back(e);
        continue;
      }
      auto it = since.find(e.source);
      std::uint64_t have = it == since.end() ? 0 : it->second;
      if (e.pbid > have) out.push_back(e);
    }
    return out;
  }

  /// Max-merge a remote watermark into the floor: after adopting a snapshot
  /// or full sync at watermark `w`, rows at or below `w` live only in the
  /// store, so this log cannot serve peers older than `w`.
  void set_floor(const Watermark& w) {
    for (const auto& [source, pbid] : w) {
      std::uint64_t& f = floor_[source];
      if (pbid > f) f = pbid;
    }
  }

  [[nodiscard]] const Watermark& floor() const { return floor_; }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  void clear() {
    entries_.clear();
    floor_.clear();
    bytes_ = 0;
    unsequenced_pruned_ = false;
  }

 private:
  static std::size_t entry_cost(const std::vector<Detection>& detections) {
    return 16 + wire_size_of(detections);
  }
  static std::size_t wire_size_of(const std::vector<Detection>& detections) {
    std::size_t n = 4;
    for (const Detection& d : detections) n += wire_size(d);
    return n;
  }

  std::deque<ReplayEntry> entries_;
  Watermark floor_;
  std::size_t bytes_ = 0;
  std::size_t max_bytes_ = 4u << 20;
  bool unsequenced_pruned_ = false;
};

/// One partition's recovery source: fetch from `holder`, or rebuild from the
/// local snapshot vault alone when no holder survives (holder NodeId(0)).
struct RecoverySpec {
  PartitionId partition;
  NodeId holder;
};

/// A versioned, watermark-keyed capture of one partition: the serialized
/// columnar store plus the log tail past the watermark at capture time.
/// Lives in the worker's vault, which survives lose_state() — it models
/// a checkpoint on local disk that a process crash does not erase.
struct PartitionSnapshot {
  std::uint64_t version = 0;
  TimePoint taken_at;
  Watermark watermark;
  std::vector<std::uint8_t> store_bytes;
  std::vector<ReplayEntry> tail;
  std::size_t rows = 0;
};

}  // namespace stcn
