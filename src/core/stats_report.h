// Cluster diagnostics: one structured snapshot of everything the framework
// self-instruments — ingest volumes, query routing efficiency, network
// traffic, replication health, per-worker balance. Operators print it;
// tests assert on it; benches mine it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <vector>

#include "core/framework.h"

namespace stcn {

struct WorkerStats {
  WorkerId id;
  std::uint64_t primary_events = 0;
  std::uint64_t replica_events = 0;
  std::uint64_t resync_events = 0;
  std::uint64_t queries_served = 0;
  std::size_t stored_detections = 0;
  std::size_t partitions = 0;
};

struct ClusterStats {
  // Ingest.
  std::uint64_t events_ingested = 0;
  // Queries.
  std::uint64_t queries = 0;
  double mean_fanout = 0.0;
  std::uint64_t queries_partial = 0;
  std::uint64_t trajectory_partitions_pruned = 0;
  // Continuous queries.
  std::uint64_t monitors_installed = 0;
  std::uint64_t deltas_positive = 0;
  std::uint64_t deltas_negative = 0;
  // Resilience.
  std::uint64_t failover_retries = 0;
  std::uint64_t partitions_failed_over = 0;
  std::uint64_t partitions_rereplicated = 0;
  std::uint64_t workers_suspected = 0;
  // Network.
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  // Reliable transport (coordinator + workers) and hedging.
  std::uint64_t retransmits = 0;
  std::uint64_t retransmit_exhausted = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_won = 0;
  // Balance.
  std::vector<WorkerStats> workers;

  /// Max/mean ratio of stored detections across workers (1.0 = balanced).
  [[nodiscard]] double storage_imbalance() const {
    if (workers.empty()) return 0.0;
    std::size_t max_stored = 0;
    double total = 0.0;
    for (const WorkerStats& w : workers) {
      max_stored = std::max(max_stored, w.stored_detections);
      total += static_cast<double>(w.stored_detections);
    }
    double mean = total / static_cast<double>(workers.size());
    return mean > 0.0 ? static_cast<double>(max_stored) / mean : 0.0;
  }

  friend std::ostream& operator<<(std::ostream& os, const ClusterStats& s) {
    os << "cluster stats\n"
       << "  ingest:    " << s.events_ingested << " events, "
       << s.bytes_sent << " bytes on the wire (" << s.messages_sent
       << " messages)\n"
       << "  queries:   " << s.queries << " (mean fan-out "
       << s.mean_fanout << ", partial " << s.queries_partial
       << ", trajectory partitions pruned "
       << s.trajectory_partitions_pruned << ")\n"
       << "  monitors:  " << s.monitors_installed << " installed, +"
       << s.deltas_positive << "/-" << s.deltas_negative << " deltas\n"
       << "  failures:  " << s.workers_suspected << " suspected, "
       << s.partitions_failed_over << " failed over, "
       << s.partitions_rereplicated << " re-replicated, "
       << s.failover_retries << " query retries\n"
       << "  transport: " << s.retransmits << " retransmits ("
       << s.retransmit_exhausted << " exhausted), " << s.dup_suppressed
       << " dups suppressed, hedges " << s.hedges_issued << " issued / "
       << s.hedges_won << " won\n"
       << "  balance:   storage max/mean " << s.storage_imbalance() << "\n";
    for (const WorkerStats& w : s.workers) {
      os << "    " << w.id << ": " << w.stored_detections << " stored ("
         << w.primary_events << " primary / " << w.replica_events
         << " replica / " << w.resync_events << " resync), "
         << w.queries_served << " queries, " << w.partitions
         << " partitions\n";
    }
    return os;
  }
};

/// Snapshots all counters of a running cluster.
inline ClusterStats collect_stats(Cluster& cluster) {
  ClusterStats s;
  const CounterSet& c = cluster.coordinator().counters();
  s.events_ingested = c.get("ingested");
  s.queries = c.get("queries_submitted");
  s.mean_fanout = cluster.coordinator().mean_fanout();
  s.queries_partial = c.get("queries_partial");
  s.trajectory_partitions_pruned = c.get("trajectory_partitions_pruned");
  s.monitors_installed = c.get("monitors_installed");
  s.deltas_positive = c.get("deltas_positive");
  s.deltas_negative = c.get("deltas_negative");
  s.failover_retries = c.get("failover_retries");
  s.partitions_failed_over = c.get("partitions_failed_over");
  s.partitions_rereplicated = c.get("partitions_rereplicated");
  s.workers_suspected = c.get("workers_suspected");
  s.messages_sent = cluster.network().counters().get("messages_sent");
  s.bytes_sent = cluster.network().counters().get("bytes_sent");
  // Transport accounting is per-channel: sum the coordinator's and every
  // worker's reliable-channel counters for the cluster-wide picture.
  s.retransmits = c.get("retransmits");
  s.retransmit_exhausted = c.get("retransmit_exhausted");
  s.dup_suppressed = c.get("dup_suppressed");
  s.hedges_issued = c.get("hedges_issued");
  s.hedges_won = c.get("hedges_won");
  for (WorkerId id : cluster.worker_ids()) {
    const WorkerNode& w = cluster.worker(id);
    WorkerStats ws;
    ws.id = id;
    ws.primary_events = w.counters().get("ingested_primary");
    ws.replica_events = w.counters().get("ingested_replica");
    // Rows re-acquired through any recovery path: snapshot install,
    // replay-log replay, or holder-to-holder resync transfer.
    ws.resync_events = w.counters().get("ingested_resync") +
                       w.counters().get("replayed_detections") +
                       w.counters().get("snapshot_rows_installed");
    ws.queries_served = w.counters().get("queries_served");
    ws.stored_detections = w.stored_detections();
    ws.partitions = w.partition_count();
    s.workers.push_back(ws);
    s.retransmits += w.counters().get("retransmits");
    s.retransmit_exhausted += w.counters().get("retransmit_exhausted");
    s.dup_suppressed += w.counters().get("dup_suppressed");
  }
  return s;
}

}  // namespace stcn
