// Spatio-temporal grid index.
//
// The workhorse per-worker index: a uniform spatial grid over the worker's
// responsibility area; each cell keeps its detections ordered by time, so a
// range query is (cells overlapping R) × (binary-searched time slice), and a
// k-NN query expands outward ring by ring until the k-th best distance
// proves no farther ring can contribute.
//
// Scans read the store's columns directly (no record materialization), and
// each cell carries a zone map — the bounding rect of the positions actually
// inserted — so a cell wholly inside the query region skips its per-row
// position checks. Queries covering the entire index bounds bypass the grid
// and run the store's block-skipping columnar scan instead.
//
// Out-of-order arrival (network reordering) is handled by sorted insertion;
// the common case — near-time-ordered arrival — costs O(1) amortized.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/time.h"
#include "index/detection_store.h"

namespace stcn {

struct GridIndexConfig {
  Rect bounds;
  double cell_size = 100.0;
};

class GridIndex {
 public:
  explicit GridIndex(const GridIndexConfig& config);

  /// Inserts the detection referenced by `ref`. Positions outside the index
  /// bounds are clamped to the border cells (workers can receive events
  /// marginally outside their nominal area because detection positions are
  /// noisy).
  void insert(const DetectionStore& store, DetectionRef ref);

  /// All detections with position ∈ `region` and time ∈ `interval`. When
  /// the query covers the whole index bounds the store's vectorized block
  /// scan answers instead of the grid walk; `stats`, when given, receives
  /// that scan's morsel accounting.
  [[nodiscard]] std::vector<DetectionRef> query_range(
      const DetectionStore& store, const Rect& region,
      const TimeInterval& interval, MorselStats* stats = nullptr) const;

  /// All detections within `circle` during `interval`. Circles covering the
  /// whole index bounds delegate to the store's vectorized scan (see
  /// query_range).
  [[nodiscard]] std::vector<DetectionRef> query_circle(
      const DetectionStore& store, const Circle& circle,
      const TimeInterval& interval, MorselStats* stats = nullptr) const;

  /// The k detections during `interval` nearest to `center`, nearest first.
  /// Returns fewer than k if the index holds fewer matching detections.
  [[nodiscard]] std::vector<std::pair<DetectionRef, double>> query_knn(
      const DetectionStore& store, Point center, std::size_t k,
      const TimeInterval& interval) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const Rect& bounds() const { return config_.bounds; }
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }

  /// Number of cell probes performed since construction (pruning metric).
  [[nodiscard]] std::uint64_t cells_probed() const { return cells_probed_; }

 private:
  struct Entry {
    TimePoint time;
    DetectionRef ref;
  };
  /// A cell's time-sorted entries plus the observed position bounding box
  /// (border cells hold clamped out-of-bounds positions, so the observed
  /// box — not the nominal cell rect — is the sound zone map).
  struct Cell {
    std::vector<Entry> entries;
    double x_min = std::numeric_limits<double>::infinity();
    double x_max = -std::numeric_limits<double>::infinity();
    double y_min = std::numeric_limits<double>::infinity();
    double y_max = -std::numeric_limits<double>::infinity();

    /// Every observed position inside `region` (half-open max edges)?
    [[nodiscard]] bool within(const Rect& region) const {
      return !entries.empty() && x_min >= region.min.x &&
             x_max < region.max.x && y_min >= region.min.y &&
             y_max < region.max.y;
    }
    /// Every observed position inside `circle`? (The observed box's corners
    /// inside a convex shape imply the whole box is.)
    [[nodiscard]] bool within(const Circle& circle) const {
      return !entries.empty() && circle.contains({x_min, y_min}) &&
             circle.contains({x_min, y_max}) &&
             circle.contains({x_max, y_min}) &&
             circle.contains({x_max, y_max});
    }
  };

  [[nodiscard]] std::size_t cell_index(std::int32_t cx, std::int32_t cy) const {
    return static_cast<std::size_t>(cy) * cols_ + static_cast<std::size_t>(cx);
  }
  [[nodiscard]] std::int32_t clamp_cx(double x) const;
  [[nodiscard]] std::int32_t clamp_cy(double y) const;

  /// Appends matching entries from one cell, filtering on interval and —
  /// unless `skip_position_checks` — the per-row `keep` predicate.
  template <typename Pred>
  void scan_cell(const DetectionStore& store, const Cell& cell,
                 const TimeInterval& interval, bool skip_position_checks,
                 Pred&& keep, std::vector<DetectionRef>& out) const;

  GridIndexConfig config_;
  std::int32_t cols_ = 0;
  std::int32_t rows_ = 0;
  std::vector<Cell> cells_;
  std::size_t size_ = 0;
  mutable std::uint64_t cells_probed_ = 0;
};

}  // namespace stcn
