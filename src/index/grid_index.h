// Spatio-temporal grid index.
//
// The workhorse per-worker index: a uniform spatial grid over the worker's
// responsibility area; each cell keeps its detections ordered by time, so a
// range query is (cells overlapping R) × (binary-searched time slice), and a
// k-NN query expands outward ring by ring until the k-th best distance
// proves no farther ring can contribute.
//
// Out-of-order arrival (network reordering) is handled by sorted insertion;
// the common case — near-time-ordered arrival — costs O(1) amortized.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/time.h"
#include "index/detection_store.h"

namespace stcn {

struct GridIndexConfig {
  Rect bounds;
  double cell_size = 100.0;
};

class GridIndex {
 public:
  explicit GridIndex(const GridIndexConfig& config);

  /// Inserts the detection referenced by `ref`. Positions outside the index
  /// bounds are clamped to the border cells (workers can receive events
  /// marginally outside their nominal area because detection positions are
  /// noisy).
  void insert(const DetectionStore& store, DetectionRef ref);

  /// All detections with position ∈ `region` and time ∈ `interval`.
  [[nodiscard]] std::vector<DetectionRef> query_range(
      const DetectionStore& store, const Rect& region,
      const TimeInterval& interval) const;

  /// All detections within `circle` during `interval`.
  [[nodiscard]] std::vector<DetectionRef> query_circle(
      const DetectionStore& store, const Circle& circle,
      const TimeInterval& interval) const;

  /// The k detections during `interval` nearest to `center`, nearest first.
  /// Returns fewer than k if the index holds fewer matching detections.
  [[nodiscard]] std::vector<std::pair<DetectionRef, double>> query_knn(
      const DetectionStore& store, Point center, std::size_t k,
      const TimeInterval& interval) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const Rect& bounds() const { return config_.bounds; }
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }

  /// Number of cell probes performed since construction (pruning metric).
  [[nodiscard]] std::uint64_t cells_probed() const { return cells_probed_; }

 private:
  struct Entry {
    TimePoint time;
    DetectionRef ref;
  };
  using Cell = std::vector<Entry>;

  [[nodiscard]] std::size_t cell_index(std::int32_t cx, std::int32_t cy) const {
    return static_cast<std::size_t>(cy) * cols_ + static_cast<std::size_t>(cx);
  }
  [[nodiscard]] std::int32_t clamp_cx(double x) const;
  [[nodiscard]] std::int32_t clamp_cy(double y) const;

  /// Appends matching entries from one cell, filtering on region+interval.
  template <typename Pred>
  void scan_cell(const DetectionStore& store, const Cell& cell,
                 const TimeInterval& interval, Pred&& keep,
                 std::vector<DetectionRef>& out) const;

  GridIndexConfig config_;
  std::int32_t cols_ = 0;
  std::int32_t rows_ = 0;
  std::vector<Cell> cells_;
  std::size_t size_ = 0;
  mutable std::uint64_t cells_probed_ = 0;
};

}  // namespace stcn
