// Per-object trajectory index.
//
// Maps object id → time-ordered detections of that object, supporting
// trajectory reconstruction queries ("where was obj/42 between t1 and t2").
// Like GridIndex, tolerates mildly out-of-order arrival with sorted insert.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "index/detection_store.h"

namespace stcn {

class TrajectoryStore {
 public:
  void insert(const DetectionStore& store, DetectionRef ref) {
    TimePoint time = store.time_of(ref);
    auto& track = tracks_[store.object_of(ref)];
    Entry entry{time, ref};
    if (track.empty() || track.back().time <= time) {
      track.push_back(entry);
    } else {
      auto it = std::upper_bound(
          track.begin(), track.end(), time,
          [](TimePoint t, const Entry& e) { return t < e.time; });
      track.insert(it, entry);
    }
    ++size_;
  }

  /// Detections of `object` during `interval`, time-ordered.
  [[nodiscard]] std::vector<DetectionRef> query(
      ObjectId object, const TimeInterval& interval) const {
    std::vector<DetectionRef> out;
    auto it = tracks_.find(object);
    if (it == tracks_.end()) return out;
    const auto& track = it->second;
    auto lo = std::lower_bound(
        track.begin(), track.end(), interval.begin,
        [](const Entry& e, TimePoint t) { return e.time < t; });
    for (auto e = lo; e != track.end() && e->time < interval.end; ++e) {
      out.push_back(e->ref);
    }
    return out;
  }

  [[nodiscard]] bool has_object(ObjectId object) const {
    return tracks_.contains(object);
  }

  /// All object ids with at least one detection (for presence summaries).
  [[nodiscard]] std::vector<ObjectId> object_ids() const {
    std::vector<ObjectId> out;
    out.reserve(tracks_.size());
    for (const auto& [object, track] : tracks_) out.push_back(object);
    return out;
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t object_count() const { return tracks_.size(); }

 private:
  struct Entry {
    TimePoint time;
    DetectionRef ref;
  };
  std::unordered_map<ObjectId, std::vector<Entry>> tracks_;
  std::size_t size_ = 0;
};

}  // namespace stcn
