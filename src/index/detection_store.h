// Columnar, block-structured arena for detections held by a worker.
//
// Indexes (grid, trajectory, temporal) reference detections by a compact
// 32-bit handle into this store instead of duplicating the full record —
// a detection can appear in several indexes at once.
//
// Layout: hot columns (time, x, y, camera, confidence, ids) live in
// contiguous per-column arrays; appearance embeddings live in one flattened
// float arena addressed by cumulative offsets, so nothing on the scan path
// chases a per-record heap pointer. Rows are chunked into fixed-size blocks
// (kDetectionBlockRows), each carrying a zone map — time min/max, position
// bounding rect, camera-id min/max plus a 64-bit camera fingerprint — so
// selective scans skip whole blocks without touching a row (the
// small-materialized-aggregates / data-skipping design from the analytics
// literature). Skip effectiveness is observable via blocks_scanned() /
// blocks_skipped().
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "common/filter_kernel.h"
#include "common/geometry.h"
#include "common/status.h"
#include "common/time.h"
#include "trace/detection.h"

namespace stcn {

/// Handle into a DetectionStore. Only meaningful for the store that
/// issued it.
enum class DetectionRef : std::uint32_t {};

[[nodiscard]] constexpr std::uint32_t to_index(DetectionRef ref) {
  return static_cast<std::uint32_t>(ref);
}

/// Rows per block. 4096 rows × ~56 hot-column bytes ≈ 224 KiB per block —
/// a few L2-sized strips; zone-map overhead is ~90 bytes per block.
inline constexpr std::size_t kDetectionBlockRows = 4096;

/// Per-block small materialized aggregates. All bounds are inclusive over
/// the rows of the block; `camera_bits` is a 64-bit fingerprint with bit
/// (camera % 64) set for every camera seen in the block.
struct DetectionBlockZone {
  std::int64_t t_min = std::numeric_limits<std::int64_t>::max();
  std::int64_t t_max = std::numeric_limits<std::int64_t>::min();
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  std::uint64_t camera_min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t camera_max = 0;
  std::uint64_t camera_bits = 0;

  /// Could any row of this block fall inside `interval`?
  [[nodiscard]] bool overlaps(const TimeInterval& interval) const {
    return t_max >= interval.begin.micros_since_origin() &&
           t_min < interval.end.micros_since_origin();
  }
  /// Could any row's position fall inside `region` (half-open max edges)?
  [[nodiscard]] bool overlaps(const Rect& region) const {
    return x_max >= region.min.x && x_min < region.max.x &&
           y_max >= region.min.y && y_min < region.max.y;
  }
  /// Every row's time is inside `interval`.
  [[nodiscard]] bool within(const TimeInterval& interval) const {
    return t_min >= interval.begin.micros_since_origin() &&
           t_max < interval.end.micros_since_origin();
  }
  /// Every row's position is inside `region`.
  [[nodiscard]] bool within(const Rect& region) const {
    return x_min >= region.min.x && x_max < region.max.x &&
           y_min >= region.min.y && y_max < region.max.y;
  }
  /// Every row's position is inside `circle`. The observed bbox is inside a
  /// convex region iff all four of its corners are — comparing the bbox
  /// against the circle's *bounding box* instead would wrongly admit corner
  /// positions inside the box but outside the circle, which is exactly
  /// where border-clamped positions land.
  [[nodiscard]] bool within(const Circle& circle) const {
    return circle.contains({x_min, y_min}) && circle.contains({x_min, y_max}) &&
           circle.contains({x_max, y_min}) && circle.contains({x_max, y_max});
  }
  [[nodiscard]] bool may_contain(CameraId camera) const {
    std::uint64_t v = camera.value();
    return v >= camera_min && v <= camera_max &&
           (camera_bits & (std::uint64_t{1} << (v % 64))) != 0;
  }
  /// Every row belongs to `camera`.
  [[nodiscard]] bool only_camera(CameraId camera) const {
    return camera_min == camera_max && camera_min == camera.value();
  }

  // Zone-based selectivity estimates in [0, 1]: the fraction of this
  // block's rows expected to pass the predicate, assuming uniform spread
  // over the zone bounds. Multi-predicate block scans evaluate the most
  // selective predicate over the full morsel and refine survivors with the
  // rest, so the estimates only order work — they never affect results.

  [[nodiscard]] double time_selectivity(const TimeInterval& interval) const {
    if (within(interval)) return 1.0;
    double span = static_cast<double>(t_max - t_min) + 1.0;
    double lo = std::max<double>(static_cast<double>(t_min),
                                 static_cast<double>(
                                     interval.begin.micros_since_origin()));
    double hi = std::min<double>(static_cast<double>(t_max) + 1.0,
                                 static_cast<double>(
                                     interval.end.micros_since_origin()));
    return hi > lo ? (hi - lo) / span : 0.0;
  }

  [[nodiscard]] double space_selectivity(const Rect& region) const {
    double area = (x_max - x_min) * (y_max - y_min);
    if (!(area > 0.0)) return 1.0;  // degenerate bbox: all rows colinear
    double ix = std::min(x_max, region.max.x) - std::max(x_min, region.min.x);
    double iy = std::min(y_max, region.max.y) - std::max(y_min, region.min.y);
    if (ix <= 0.0 || iy <= 0.0) return 0.0;
    return std::min(1.0, ix * iy / area);
  }

  [[nodiscard]] double camera_selectivity() const {
    int cameras_seen = std::popcount(camera_bits);
    return cameras_seen > 0 ? 1.0 / static_cast<double>(cameras_seen) : 1.0;
  }
};

/// Accounting for the vectorized (selection-vector) scan path. Unlike the
/// store's cumulative blocks_scanned()/blocks_skipped() counters, a
/// MorselStats is plain caller-owned state, so block-granular scans are
/// safe to run concurrently over disjoint morsels of one store.
struct MorselStats {
  /// Row-predicate evaluations performed (a row counts once per predicate
  /// actually applied to it; zone fast paths evaluate nothing).
  std::uint64_t rows_evaluated = 0;
  /// Rows that passed every predicate (== selection-vector sizes).
  std::uint64_t rows_selected = 0;
  /// Non-skipped 4096-row morsels processed through selection vectors.
  std::uint64_t morsels = 0;
  /// Morsels emitted wholesale by the fully-inside zone fast path.
  std::uint64_t zone_fast_path = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_skipped = 0;

  void merge(const MorselStats& o) {
    rows_evaluated += o.rows_evaluated;
    rows_selected += o.rows_selected;
    morsels += o.morsels;
    zone_fast_path += o.zone_fast_path;
    blocks_scanned += o.blocks_scanned;
    blocks_skipped += o.blocks_skipped;
  }
};

class DetectionStore {
 public:
  /// Exact resident-byte accounting, split by component. All figures are
  /// capacity-based (what the allocator actually holds, not just live rows).
  struct MemoryBreakdown {
    std::size_t column_bytes = 0;  // hot columns + embedding offsets
    std::size_t arena_bytes = 0;   // flattened embedding floats
    std::size_t zone_bytes = 0;    // per-block zone maps
    [[nodiscard]] std::size_t total() const {
      return column_bytes + arena_bytes + zone_bytes;
    }
  };

  /// Appends a detection; the returned handle is stable forever.
  DetectionRef append(const Detection& d) {
    STCN_CHECK(ids_.size() < UINT32_MAX);
    auto row = static_cast<std::uint32_t>(ids_.size());
    ids_.push_back(d.id.value());
    cameras_.push_back(d.camera.value());
    objects_.push_back(d.object.value());
    times_.push_back(d.time.micros_since_origin());
    xs_.push_back(d.position.x);
    ys_.push_back(d.position.y);
    confidences_.push_back(d.confidence);
    arena_.insert(arena_.end(), d.appearance.values.begin(),
                  d.appearance.values.end());
    emb_offsets_.push_back(arena_.size());
    grow_zone(row);
    return static_cast<DetectionRef>(row);
  }

  /// Appends a copy of `src`'s row `ref` without materializing a Detection
  /// (no per-record heap allocation; used by retention compaction).
  DetectionRef append_copy(const DetectionStore& src, DetectionRef ref) {
    STCN_CHECK(ids_.size() < UINT32_MAX);
    std::uint32_t i = to_index(ref);
    STCN_CHECK(i < src.ids_.size());
    auto row = static_cast<std::uint32_t>(ids_.size());
    ids_.push_back(src.ids_[i]);
    cameras_.push_back(src.cameras_[i]);
    objects_.push_back(src.objects_[i]);
    times_.push_back(src.times_[i]);
    xs_.push_back(src.xs_[i]);
    ys_.push_back(src.ys_[i]);
    confidences_.push_back(src.confidences_[i]);
    std::span<const float> emb = src.embedding(ref);
    arena_.insert(arena_.end(), emb.begin(), emb.end());
    emb_offsets_.push_back(arena_.size());
    grow_zone(row);
    return static_cast<DetectionRef>(row);
  }

  /// Appends rows [first, last) of `src` in one column-wise pass (retention
  /// compaction's bulk path; last > first required). Returns the ref of the
  /// first copied row; the rest follow contiguously. Destination zone maps
  /// are recomputed tightly from the copied rows — source-block zone bounds
  /// are never carried over, since a filtered or re-packed copy would
  /// inherit stale-wide min/max and defeat block skipping after compaction.
  DetectionRef append_rows(const DetectionStore& src, std::uint32_t first,
                           std::uint32_t last) {
    STCN_CHECK(first < last && last <= src.ids_.size());
    STCN_CHECK(ids_.size() + (last - first) < UINT32_MAX);
    auto row0 = static_cast<std::uint32_t>(ids_.size());
    ids_.insert(ids_.end(), src.ids_.begin() + first, src.ids_.begin() + last);
    cameras_.insert(cameras_.end(), src.cameras_.begin() + first,
                    src.cameras_.begin() + last);
    objects_.insert(objects_.end(), src.objects_.begin() + first,
                    src.objects_.begin() + last);
    times_.insert(times_.end(), src.times_.begin() + first,
                  src.times_.begin() + last);
    xs_.insert(xs_.end(), src.xs_.begin() + first, src.xs_.begin() + last);
    ys_.insert(ys_.end(), src.ys_.begin() + first, src.ys_.begin() + last);
    confidences_.insert(confidences_.end(), src.confidences_.begin() + first,
                        src.confidences_.begin() + last);
    std::size_t emb_begin = first == 0 ? 0 : src.emb_offsets_[first - 1];
    std::size_t rebase = arena_.size() - emb_begin;
    arena_.insert(arena_.end(), src.arena_.begin() + emb_begin,
                  src.arena_.begin() + src.emb_offsets_[last - 1]);
    for (std::uint32_t i = first; i < last; ++i) {
      emb_offsets_.push_back(src.emb_offsets_[i] + rebase);
    }
    for (std::uint32_t r = row0; r < row0 + (last - first); ++r) {
      grow_zone(r);
    }
    return static_cast<DetectionRef>(row0);
  }

  // ----------------------------------------------------- column accessors
  // The scan-path API: one contiguous-array load each, no record assembly.

  // Whole-column views for the vectorized filter kernels.
  [[nodiscard]] std::span<const std::int64_t> time_column() const {
    return times_;
  }
  [[nodiscard]] std::span<const double> x_column() const { return xs_; }
  [[nodiscard]] std::span<const double> y_column() const { return ys_; }
  [[nodiscard]] std::span<const std::uint64_t> camera_column() const {
    return cameras_;
  }
  [[nodiscard]] std::span<const std::uint64_t> object_column() const {
    return objects_;
  }

  [[nodiscard]] TimePoint time_of(DetectionRef ref) const {
    return TimePoint(times_[checked(ref)]);
  }
  [[nodiscard]] Point position_of(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    return {xs_[i], ys_[i]};
  }
  [[nodiscard]] CameraId camera_of(DetectionRef ref) const {
    return CameraId(cameras_[checked(ref)]);
  }
  [[nodiscard]] ObjectId object_of(DetectionRef ref) const {
    return ObjectId(objects_[checked(ref)]);
  }
  [[nodiscard]] DetectionId id_of(DetectionRef ref) const {
    return DetectionId(ids_[checked(ref)]);
  }
  [[nodiscard]] double confidence_of(DetectionRef ref) const {
    return confidences_[checked(ref)];
  }
  /// The row's embedding as a view into the flattened arena.
  [[nodiscard]] std::span<const float> embedding(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    std::size_t begin = i == 0 ? 0 : emb_offsets_[i - 1];
    return {arena_.data() + begin, emb_offsets_[i] - begin};
  }

  /// Materializes the full record (cold path: result assembly, wire
  /// serialization, resync). Scan paths should use the column accessors.
  [[nodiscard]] Detection get(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    Detection d;
    d.id = DetectionId(ids_[i]);
    d.camera = CameraId(cameras_[i]);
    d.object = ObjectId(objects_[i]);
    d.time = TimePoint(times_[i]);
    d.position = {xs_[i], ys_[i]};
    d.confidence = confidences_[i];
    std::span<const float> emb = embedding(ref);
    d.appearance.values.assign(emb.begin(), emb.end());
    return d;
  }

  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] bool empty() const { return ids_.empty(); }

  // ------------------------------------------------------------- blocks

  [[nodiscard]] std::size_t block_count() const { return zones_.size(); }
  [[nodiscard]] const DetectionBlockZone& zone(std::size_t block) const {
    return zones_[block];
  }
  /// Half-open row range [first, last) of `block`.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> block_rows(
      std::size_t block) const {
    auto first = static_cast<std::uint32_t>(block * kDetectionBlockRows);
    auto last = static_cast<std::uint32_t>(
        std::min(size(), (block + 1) * kDetectionBlockRows));
    return {first, last};
  }

  // ------------------------------------------- vectorized block scans
  //
  // The production scan path: one block (4096-row morsel) at a time, each
  // predicate evaluated branch-free over whole columns into a `uint32_t`
  // selection vector (common/filter_kernel.h). A zone map proving the block
  // fully inside every predicate emits the morsel wholesale without
  // evaluating anything; otherwise predicates run most-selective-first
  // (zone-estimated), so later predicates only touch survivors. Block
  // entries write all accounting into the caller's MorselStats and never
  // touch the store's mutable counters, so disjoint morsels of one store
  // can be scanned from many threads (see MorselScanner).

  /// Scans block `b` for rows with position ∈ `region`, time ∈ `interval`.
  /// Appends at most kDetectionBlockRows row ids into `sel`; returns how
  /// many were selected.
  std::uint32_t scan_range_block(std::size_t b, const Rect& region,
                                 const TimeInterval& interval,
                                 std::uint32_t* sel, MorselStats& ms) const {
    const DetectionBlockZone& z = zones_[b];
    if (!z.overlaps(interval) || !z.overlaps(region)) {
      ++ms.blocks_skipped;
      return 0;
    }
    ++ms.blocks_scanned;
    ++ms.morsels;
    auto [first, last] = block_rows(b);
    std::int64_t t0 = interval.begin.micros_since_origin();
    std::int64_t t1 = interval.end.micros_since_origin();
    bool all_time = z.within(interval);
    bool all_space = z.within(region);
    std::uint32_t n;
    if (all_time && all_space) {
      n = fill_identity(first, last, sel);
      ++ms.zone_fast_path;
    } else if (all_space) {
      n = filter_time(times_.data(), first, last, t0, t1, sel);
      ms.rows_evaluated += last - first;
    } else if (all_time) {
      n = filter_rect(xs_.data(), ys_.data(), first, last, region, sel);
      ms.rows_evaluated += last - first;
    } else if (z.space_selectivity(region) <= z.time_selectivity(interval)) {
      n = filter_rect(xs_.data(), ys_.data(), first, last, region, sel);
      ms.rows_evaluated += (last - first) + n;
      n = refine_time(times_.data(), t0, t1, sel, n);
    } else {
      n = filter_time(times_.data(), first, last, t0, t1, sel);
      ms.rows_evaluated += (last - first) + n;
      n = refine_rect(xs_.data(), ys_.data(), region, sel, n);
    }
    ms.rows_selected += n;
    return n;
  }

  /// Scans block `b` for rows inside `circle` during `interval`.
  std::uint32_t scan_circle_block(std::size_t b, const Circle& circle,
                                  const TimeInterval& interval,
                                  std::uint32_t* sel, MorselStats& ms) const {
    const DetectionBlockZone& z = zones_[b];
    Rect box = circle.bounding_box();
    if (!z.overlaps(interval) || !z.overlaps(box)) {
      ++ms.blocks_skipped;
      return 0;
    }
    ++ms.blocks_scanned;
    ++ms.morsels;
    auto [first, last] = block_rows(b);
    std::int64_t t0 = interval.begin.micros_since_origin();
    std::int64_t t1 = interval.end.micros_since_origin();
    bool all_time = z.within(interval);
    bool all_space = z.within(circle);  // corner containment, not bbox-in-box
    std::uint32_t n;
    if (all_time && all_space) {
      n = fill_identity(first, last, sel);
      ++ms.zone_fast_path;
    } else if (all_space) {
      n = filter_time(times_.data(), first, last, t0, t1, sel);
      ms.rows_evaluated += last - first;
    } else if (all_time) {
      n = filter_circle(xs_.data(), ys_.data(), first, last, circle.center,
                        circle.radius, sel);
      ms.rows_evaluated += last - first;
    } else if (z.space_selectivity(box) <= z.time_selectivity(interval)) {
      n = filter_circle(xs_.data(), ys_.data(), first, last, circle.center,
                        circle.radius, sel);
      ms.rows_evaluated += (last - first) + n;
      n = refine_time(times_.data(), t0, t1, sel, n);
    } else {
      n = filter_time(times_.data(), first, last, t0, t1, sel);
      ms.rows_evaluated += (last - first) + n;
      n = refine_circle(xs_.data(), ys_.data(), circle.center, circle.radius,
                        sel, n);
    }
    ms.rows_selected += n;
    return n;
  }

  /// Scans block `b` for rows of `camera` during `interval`.
  std::uint32_t scan_camera_block(std::size_t b, CameraId camera,
                                  const TimeInterval& interval,
                                  std::uint32_t* sel, MorselStats& ms) const {
    const DetectionBlockZone& z = zones_[b];
    if (!z.overlaps(interval) || !z.may_contain(camera)) {
      ++ms.blocks_skipped;
      return 0;
    }
    ++ms.blocks_scanned;
    ++ms.morsels;
    auto [first, last] = block_rows(b);
    std::int64_t t0 = interval.begin.micros_since_origin();
    std::int64_t t1 = interval.end.micros_since_origin();
    bool all_time = z.within(interval);
    bool all_camera = z.only_camera(camera);
    std::uint32_t n;
    if (all_time && all_camera) {
      n = fill_identity(first, last, sel);
      ++ms.zone_fast_path;
    } else if (all_camera) {
      n = filter_time(times_.data(), first, last, t0, t1, sel);
      ms.rows_evaluated += last - first;
    } else if (all_time) {
      n = filter_camera(cameras_.data(), first, last, camera.value(), sel);
      ms.rows_evaluated += last - first;
    } else if (z.camera_selectivity() <= z.time_selectivity(interval)) {
      n = filter_camera(cameras_.data(), first, last, camera.value(), sel);
      ms.rows_evaluated += (last - first) + n;
      n = refine_time(times_.data(), t0, t1, sel, n);
    } else {
      n = filter_time(times_.data(), first, last, t0, t1, sel);
      ms.rows_evaluated += (last - first) + n;
      n = refine_camera(cameras_.data(), camera.value(), sel, n);
    }
    ms.rows_selected += n;
    return n;
  }

  /// Full-store scan with block skipping: every row with position ∈
  /// `region` and time ∈ `interval`, in row (arrival) order. Vectorized:
  /// each surviving block runs through the selection-vector kernels; a
  /// block proven fully inside both predicates is emitted without per-row
  /// checks. Accounting accumulates into `stats` when given.
  [[nodiscard]] std::vector<DetectionRef> scan_range(
      const Rect& region, const TimeInterval& interval,
      MorselStats* stats = nullptr) const {
    std::vector<DetectionRef> out;
    if (region.is_empty() || interval.empty()) return out;
    MorselStats ms;
    std::uint32_t sel[kDetectionBlockRows];
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (z.within(interval) && z.within(region)) {
        append_identity_block(b, ms, out);
        continue;
      }
      std::uint32_t n = scan_range_block(b, region, interval, sel, ms);
      append_refs(sel, n, out);
    }
    finish_scan(ms, stats);
    return out;
  }

  /// Full-store scan with block skipping: rows inside `circle` during
  /// `interval`, in row order. Vectorized (see scan_range).
  [[nodiscard]] std::vector<DetectionRef> scan_circle(
      const Circle& circle, const TimeInterval& interval,
      MorselStats* stats = nullptr) const {
    std::vector<DetectionRef> out;
    if (interval.empty() || circle.radius < 0.0) return out;
    MorselStats ms;
    std::uint32_t sel[kDetectionBlockRows];
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (z.within(interval) && z.within(circle)) {
        append_identity_block(b, ms, out);
        continue;
      }
      std::uint32_t n = scan_circle_block(b, circle, interval, sel, ms);
      append_refs(sel, n, out);
    }
    finish_scan(ms, stats);
    return out;
  }

  /// Full-store scan with block skipping on the camera fingerprint: rows of
  /// `camera` during `interval`, in row order. Vectorized (see scan_range).
  [[nodiscard]] std::vector<DetectionRef> scan_camera(
      CameraId camera, const TimeInterval& interval,
      MorselStats* stats = nullptr) const {
    std::vector<DetectionRef> out;
    if (interval.empty()) return out;
    MorselStats ms;
    std::uint32_t sel[kDetectionBlockRows];
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (z.within(interval) && z.only_camera(camera)) {
        append_identity_block(b, ms, out);
        continue;
      }
      std::uint32_t n = scan_camera_block(b, camera, interval, sel, ms);
      append_refs(sel, n, out);
    }
    finish_scan(ms, stats);
    return out;
  }

  // --------------------------------------------- scalar reference scans
  //
  // The row-at-a-time paths the vectorized layer replaced, retained as the
  // differential-testing reference and the bench before/after baseline.
  // Same zone-map block skipping, but predicates branch per row and there
  // is no selectivity-ordered evaluation.

  [[nodiscard]] std::vector<DetectionRef> scan_range_scalar(
      const Rect& region, const TimeInterval& interval) const {
    std::vector<DetectionRef> out;
    if (region.is_empty() || interval.empty()) return out;
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (!z.overlaps(interval) || !z.overlaps(region)) {
        ++blocks_skipped_;
        continue;
      }
      ++blocks_scanned_;
      auto [first, last] = block_rows(b);
      bool all_time = z.within(interval);
      bool all_space = z.within(region);
      for (std::uint32_t i = first; i < last; ++i) {
        if (!all_time && !(times_[i] >= interval.begin.micros_since_origin() &&
                           times_[i] < interval.end.micros_since_origin())) {
          continue;
        }
        if (!all_space && !region.contains(Point{xs_[i], ys_[i]})) continue;
        out.push_back(static_cast<DetectionRef>(i));
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<DetectionRef> scan_circle_scalar(
      const Circle& circle, const TimeInterval& interval) const {
    std::vector<DetectionRef> out;
    if (interval.empty() || circle.radius < 0.0) return out;
    Rect box = circle.bounding_box();
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (!z.overlaps(interval) || !z.overlaps(box)) {
        ++blocks_skipped_;
        continue;
      }
      ++blocks_scanned_;
      auto [first, last] = block_rows(b);
      bool all_time = z.within(interval);
      for (std::uint32_t i = first; i < last; ++i) {
        if (!all_time && !(times_[i] >= interval.begin.micros_since_origin() &&
                           times_[i] < interval.end.micros_since_origin())) {
          continue;
        }
        if (!circle.contains(Point{xs_[i], ys_[i]})) continue;
        out.push_back(static_cast<DetectionRef>(i));
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<DetectionRef> scan_camera_scalar(
      CameraId camera, const TimeInterval& interval) const {
    std::vector<DetectionRef> out;
    if (interval.empty()) return out;
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (!z.overlaps(interval) || !z.may_contain(camera)) {
        ++blocks_skipped_;
        continue;
      }
      ++blocks_scanned_;
      auto [first, last] = block_rows(b);
      bool all_time = z.within(interval);
      for (std::uint32_t i = first; i < last; ++i) {
        if (cameras_[i] != camera.value()) continue;
        if (!all_time && !(times_[i] >= interval.begin.micros_since_origin() &&
                           times_[i] < interval.end.micros_since_origin())) {
          continue;
        }
        out.push_back(static_cast<DetectionRef>(i));
      }
    }
    return out;
  }

  /// Cumulative zone-map accounting across every block-skipping scan.
  [[nodiscard]] std::uint64_t blocks_scanned() const { return blocks_scanned_; }
  [[nodiscard]] std::uint64_t blocks_skipped() const { return blocks_skipped_; }

  /// Folds externally-driven block-scan accounting (e.g. a MorselScanner
  /// run) into the cumulative counters. Call from one thread, after joins.
  void note_scan(const MorselStats& ms) const {
    blocks_scanned_ += ms.blocks_scanned;
    blocks_skipped_ += ms.blocks_skipped;
  }

  // ------------------------------------------------------------- memory

  /// Exact resident bytes: hot columns + embedding arena + zone maps,
  /// capacity-based (counts allocator slack, unlike the old AoS estimate
  /// that ignored per-vector heap blocks entirely).
  [[nodiscard]] std::size_t memory_bytes() const {
    return memory_breakdown().total();
  }

  [[nodiscard]] MemoryBreakdown memory_breakdown() const {
    MemoryBreakdown m;
    m.column_bytes = ids_.capacity() * sizeof(std::uint64_t) +
                     cameras_.capacity() * sizeof(std::uint64_t) +
                     objects_.capacity() * sizeof(std::uint64_t) +
                     times_.capacity() * sizeof(std::int64_t) +
                     xs_.capacity() * sizeof(double) +
                     ys_.capacity() * sizeof(double) +
                     confidences_.capacity() * sizeof(double) +
                     emb_offsets_.capacity() * sizeof(std::uint64_t);
    m.arena_bytes = arena_.capacity() * sizeof(float);
    m.zone_bytes = zones_.capacity() * sizeof(DetectionBlockZone);
    return m;
  }

  // ----------------------------------------------------------- snapshots
  //
  // Column-wise wire image for recovery checkpoints: row count, then each
  // hot column contiguously, then the embedding arena (floats as raw bits —
  // snapshots must round-trip exactly, unlike the double-widened per-record
  // wire form). Zone maps are not serialized; decode rebuilds them
  // deterministically from the columns.

  void serialize_to(BinaryWriter& w) const {
    auto n = static_cast<std::uint32_t>(ids_.size());
    w.reserve(4 + static_cast<std::size_t>(n) * 64 + 8 +
              arena_.size() * 4);
    w.write_u32(n);
    for (std::uint64_t v : ids_) w.write_u64(v);
    for (std::uint64_t v : cameras_) w.write_u64(v);
    for (std::uint64_t v : objects_) w.write_u64(v);
    for (std::int64_t v : times_) w.write_i64(v);
    for (double v : xs_) w.write_double(v);
    for (double v : ys_) w.write_double(v);
    for (double v : confidences_) w.write_double(v);
    for (std::uint64_t v : emb_offsets_) w.write_u64(v);
    w.write_u64(arena_.size());
    for (float v : arena_) w.write_u32(std::bit_cast<std::uint32_t>(v));
  }

  /// Decodes a serialize_to image. On truncated or inconsistent input the
  /// reader is left failed() and the returned store is empty.
  [[nodiscard]] static DetectionStore deserialize_from(BinaryReader& r) {
    DetectionStore s;
    std::uint32_t n = r.read_u32();
    // Eight fixed-width 8-byte columns per row: a row count the payload
    // cannot possibly hold is corrupt — poison the reader before reserving.
    if (r.failed() || static_cast<std::uint64_t>(n) * 64 > r.remaining()) {
      r.read_bytes(r.remaining() + 1);
      return s;
    }
    s.ids_.reserve(n);
    s.cameras_.reserve(n);
    s.objects_.reserve(n);
    s.times_.reserve(n);
    s.xs_.reserve(n);
    s.ys_.reserve(n);
    s.confidences_.reserve(n);
    s.emb_offsets_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) s.ids_.push_back(r.read_u64());
    for (std::uint32_t i = 0; i < n; ++i) s.cameras_.push_back(r.read_u64());
    for (std::uint32_t i = 0; i < n; ++i) s.objects_.push_back(r.read_u64());
    for (std::uint32_t i = 0; i < n; ++i) s.times_.push_back(r.read_i64());
    for (std::uint32_t i = 0; i < n; ++i) s.xs_.push_back(r.read_double());
    for (std::uint32_t i = 0; i < n; ++i) s.ys_.push_back(r.read_double());
    for (std::uint32_t i = 0; i < n; ++i) {
      s.confidences_.push_back(r.read_double());
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      s.emb_offsets_.push_back(r.read_u64());
    }
    std::uint64_t arena_n = r.read_u64();
    if (r.failed() || arena_n * 4 > r.remaining()) {
      r.read_bytes(r.remaining() + 1);
      return DetectionStore{};
    }
    s.arena_.reserve(arena_n);
    for (std::uint64_t i = 0; i < arena_n; ++i) {
      s.arena_.push_back(std::bit_cast<float>(r.read_u32()));
    }
    // Offsets must be non-decreasing and end exactly at the arena size, or
    // embedding() would hand out views past the arena.
    std::uint64_t prev = 0;
    for (std::uint64_t off : s.emb_offsets_) {
      if (off < prev) {
        r.read_bytes(r.remaining() + 1);
        return DetectionStore{};
      }
      prev = off;
    }
    if (r.failed() || (n > 0 && s.emb_offsets_.back() != arena_n)) {
      r.read_bytes(r.remaining() + 1);
      return DetectionStore{};
    }
    for (std::uint32_t row = 0; row < n; ++row) s.grow_zone(row);
    return s;
  }

 private:
  static void append_refs(const std::uint32_t* sel, std::uint32_t n,
                          std::vector<DetectionRef>& out) {
    std::size_t base = out.size();
    out.resize(base + n);
    for (std::uint32_t i = 0; i < n; ++i) {
      out[base + i] = static_cast<DetectionRef>(sel[i]);
    }
  }

  /// Fully-inside fast path for the single-threaded wrappers: the zone
  /// proved every row of block `b` qualifies, so the identity row range is
  /// appended in one pass — no selection vector, no per-row predicate.
  /// Accounting matches scan_*_block's fast-path case exactly.
  void append_identity_block(std::size_t b, MorselStats& ms,
                             std::vector<DetectionRef>& out) const {
    auto [first, last] = block_rows(b);
    ++ms.blocks_scanned;
    ++ms.morsels;
    ++ms.zone_fast_path;
    ms.rows_selected += last - first;
    std::size_t base = out.size();
    out.resize(base + (last - first));
    DetectionRef* p = out.data() + base;
    for (std::uint32_t i = first; i < last; ++i) {
      *p++ = static_cast<DetectionRef>(i);
    }
  }

  /// Folds a scan's caller-owned MorselStats into the store's cumulative
  /// counters (calling thread only) and into `stats` when given.
  void finish_scan(const MorselStats& ms, MorselStats* stats) const {
    note_scan(ms);
    if (stats != nullptr) stats->merge(ms);
  }

  [[nodiscard]] std::uint32_t checked(DetectionRef ref) const {
    std::uint32_t i = to_index(ref);
    STCN_CHECK(i < ids_.size());
    return i;
  }

  void grow_zone(std::uint32_t row) {
    if (row % kDetectionBlockRows == 0) zones_.emplace_back();
    DetectionBlockZone& z = zones_.back();
    std::int64_t t = times_[row];
    z.t_min = std::min(z.t_min, t);
    z.t_max = std::max(z.t_max, t);
    z.x_min = std::min(z.x_min, xs_[row]);
    z.x_max = std::max(z.x_max, xs_[row]);
    z.y_min = std::min(z.y_min, ys_[row]);
    z.y_max = std::max(z.y_max, ys_[row]);
    std::uint64_t cam = cameras_[row];
    z.camera_min = std::min(z.camera_min, cam);
    z.camera_max = std::max(z.camera_max, cam);
    z.camera_bits |= std::uint64_t{1} << (cam % 64);
  }

  // Hot columns: one contiguous array per attribute, indexed by row.
  std::vector<std::uint64_t> ids_;
  std::vector<std::uint64_t> cameras_;
  std::vector<std::uint64_t> objects_;
  std::vector<std::int64_t> times_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> confidences_;
  // Embedding arena: row i's floats live at [emb_offsets_[i-1],
  // emb_offsets_[i]) (cumulative offsets tolerate ragged dimensions; with
  // uniform dims the arena is a dense row-major matrix).
  std::vector<float> arena_;
  std::vector<std::uint64_t> emb_offsets_;
  std::vector<DetectionBlockZone> zones_;
  mutable std::uint64_t blocks_scanned_ = 0;
  mutable std::uint64_t blocks_skipped_ = 0;
};

}  // namespace stcn
