// Append-only arena for detections held by a worker.
//
// Indexes (grid, trajectory, temporal) reference detections by a compact
// 32-bit handle into this store instead of duplicating the full record —
// a detection can appear in several indexes at once.
#pragma once

#include <cstdint>
#include <deque>

#include "common/status.h"
#include "trace/detection.h"

namespace stcn {

/// Handle into a DetectionStore. Only meaningful for the store that
/// issued it.
enum class DetectionRef : std::uint32_t {};

[[nodiscard]] constexpr std::uint32_t to_index(DetectionRef ref) {
  return static_cast<std::uint32_t>(ref);
}

class DetectionStore {
 public:
  /// Appends a detection; the returned handle is stable forever.
  DetectionRef append(Detection d) {
    STCN_CHECK(detections_.size() < UINT32_MAX);
    detections_.push_back(std::move(d));
    return static_cast<DetectionRef>(detections_.size() - 1);
  }

  [[nodiscard]] const Detection& get(DetectionRef ref) const {
    STCN_CHECK(to_index(ref) < detections_.size());
    return detections_[to_index(ref)];
  }

  [[nodiscard]] std::size_t size() const { return detections_.size(); }
  [[nodiscard]] bool empty() const { return detections_.empty(); }

  /// Approximate resident bytes (records only, not index structures).
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t per_feature = detections_.empty()
                                  ? 0
                                  : detections_.front().appearance.values.size() *
                                        sizeof(float);
    return detections_.size() * (sizeof(Detection) + per_feature);
  }

 private:
  // deque: stable growth without relocation spikes on the ingest path.
  std::deque<Detection> detections_;
};

}  // namespace stcn
