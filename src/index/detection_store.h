// Tiered columnar, block-structured arena for detections held by a worker.
//
// Indexes (grid, trajectory, temporal) reference detections by a compact
// 32-bit handle into this store instead of duplicating the full record —
// a detection can appear in several indexes at once.
//
// Layout: rows are chunked into fixed-size blocks (kDetectionBlockRows) and
// live in one of two tiers.
//
//   · Hot tier: the newest rows, in contiguous per-column arrays (time, x,
//     y, camera, confidence, ids) plus one flattened float embedding arena
//     addressed by cumulative offsets — nothing on the scan path chases a
//     per-record heap pointer.
//   · Cold tier: sealed blocks demoted (by fill or age, see
//     StoreTierConfig) into CompressedBlocks — FOR-packed time/ids,
//     dictionary cameras/objects, FOR-quantized positions/confidences, and
//     an int8-quantized embedding arena (index/compressed_block.h). Cold
//     blocks form a strict prefix of the row space: rows [0, hot_base_) are
//     cold, [hot_base_, size()) are hot, and hot_base_ is always a multiple
//     of kDetectionBlockRows, so DetectionRefs stay stable across demotion.
//
// Every block — hot or cold — carries an uncompressed zone map (time
// min/max, position bounding rect, camera-id min/max plus a 64-bit camera
// fingerprint), so selective scans skip whole blocks without touching a
// row. Cold-block zones are recomputed from *decoded* (quantized) values at
// demotion, so zone fast paths, fused kernels, scalar scans, and per-row
// accessors all agree exactly on what a cold row contains. Cold scans never
// materialize a block into the store: the decode-fused kernels evaluate
// predicates straight off the packed codes into a per-thread ColdScratch
// (counted in MemoryBreakdown::scratch_bytes, process-wide).
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "common/filter_kernel.h"
#include "common/geometry.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/time.h"
#include "index/compressed_block.h"
#include "trace/detection.h"

namespace stcn {

/// Handle into a DetectionStore. Only meaningful for the store that
/// issued it.
enum class DetectionRef : std::uint32_t {};

[[nodiscard]] constexpr std::uint32_t to_index(DetectionRef ref) {
  return static_cast<std::uint32_t>(ref);
}

/// Rows per block. 4096 rows × ~56 hot-column bytes ≈ 224 KiB per block —
/// a few L2-sized strips; zone-map overhead is ~90 bytes per block.
inline constexpr std::size_t kDetectionBlockRows = 4096;

/// Per-block small materialized aggregates. All bounds are inclusive over
/// the rows of the block; `camera_bits` is a 64-bit fingerprint with bit
/// (camera % 64) set for every camera seen in the block.
struct DetectionBlockZone {
  std::int64_t t_min = std::numeric_limits<std::int64_t>::max();
  std::int64_t t_max = std::numeric_limits<std::int64_t>::min();
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  std::uint64_t camera_min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t camera_max = 0;
  std::uint64_t camera_bits = 0;

  /// Could any row of this block fall inside `interval`?
  [[nodiscard]] bool overlaps(const TimeInterval& interval) const {
    return t_max >= interval.begin.micros_since_origin() &&
           t_min < interval.end.micros_since_origin();
  }
  /// Could any row's position fall inside `region` (half-open max edges)?
  [[nodiscard]] bool overlaps(const Rect& region) const {
    return x_max >= region.min.x && x_min < region.max.x &&
           y_max >= region.min.y && y_min < region.max.y;
  }
  /// Every row's time is inside `interval`.
  [[nodiscard]] bool within(const TimeInterval& interval) const {
    return t_min >= interval.begin.micros_since_origin() &&
           t_max < interval.end.micros_since_origin();
  }
  /// Every row's position is inside `region`.
  [[nodiscard]] bool within(const Rect& region) const {
    return x_min >= region.min.x && x_max < region.max.x &&
           y_min >= region.min.y && y_max < region.max.y;
  }
  /// Every row's position is inside `circle`. The observed bbox is inside a
  /// convex region iff all four of its corners are — comparing the bbox
  /// against the circle's *bounding box* instead would wrongly admit corner
  /// positions inside the box but outside the circle, which is exactly
  /// where border-clamped positions land.
  [[nodiscard]] bool within(const Circle& circle) const {
    return circle.contains({x_min, y_min}) && circle.contains({x_min, y_max}) &&
           circle.contains({x_max, y_min}) && circle.contains({x_max, y_max});
  }
  [[nodiscard]] bool may_contain(CameraId camera) const {
    std::uint64_t v = camera.value();
    return v >= camera_min && v <= camera_max &&
           (camera_bits & (std::uint64_t{1} << (v % 64))) != 0;
  }
  /// Every row belongs to `camera`.
  [[nodiscard]] bool only_camera(CameraId camera) const {
    return camera_min == camera_max && camera_min == camera.value();
  }

  // Zone-based selectivity estimates in [0, 1]: the fraction of this
  // block's rows expected to pass the predicate, assuming uniform spread
  // over the zone bounds. Multi-predicate block scans evaluate the most
  // selective predicate over the full morsel and refine survivors with the
  // rest, so the estimates only order work — they never affect results.

  [[nodiscard]] double time_selectivity(const TimeInterval& interval) const {
    if (within(interval)) return 1.0;
    double span = static_cast<double>(t_max - t_min) + 1.0;
    double lo = std::max<double>(static_cast<double>(t_min),
                                 static_cast<double>(
                                     interval.begin.micros_since_origin()));
    double hi = std::min<double>(static_cast<double>(t_max) + 1.0,
                                 static_cast<double>(
                                     interval.end.micros_since_origin()));
    return hi > lo ? (hi - lo) / span : 0.0;
  }

  [[nodiscard]] double space_selectivity(const Rect& region) const {
    double area = (x_max - x_min) * (y_max - y_min);
    if (!(area > 0.0)) return 1.0;  // degenerate bbox: all rows colinear
    double ix = std::min(x_max, region.max.x) - std::max(x_min, region.min.x);
    double iy = std::min(y_max, region.max.y) - std::max(y_min, region.min.y);
    if (ix <= 0.0 || iy <= 0.0) return 0.0;
    return std::min(1.0, ix * iy / area);
  }

  [[nodiscard]] double camera_selectivity() const {
    int cameras_seen = std::popcount(camera_bits);
    return cameras_seen > 0 ? 1.0 / static_cast<double>(cameras_seen) : 1.0;
  }
};

// ------------------------------------------------- cold decode scratch

/// Process-wide resident bytes held by per-thread cold-decode scratches.
/// Informational (surfaced via MemoryBreakdown::scratch_bytes and the
/// store_scratch_bytes gauge); deliberately excluded from any per-store
/// total, since the scratch is shared across every store on the thread.
[[nodiscard]] inline std::atomic<std::size_t>& cold_scratch_bytes_counter() {
  static std::atomic<std::size_t> bytes{0};
  return bytes;
}
[[nodiscard]] inline std::size_t cold_scratch_bytes() {
  return cold_scratch_bytes_counter().load(std::memory_order_relaxed);
}

/// Per-thread decode buffers for one cold block at a time, tagged by the
/// block's process-unique uid (block content is immutable after encode, so
/// a matching tag proves the cached decode is current — copies of a block
/// share content and may share the cache). The embedding arena has its own
/// tag: scans churn through many blocks' scalar columns while re-id keeps
/// returning to one block's embeddings, and one tag for both would thrash.
struct ColdScratch {
  static constexpr std::uint32_t kTime = 1u << 0;
  static constexpr std::uint32_t kPos = 1u << 1;
  static constexpr std::uint32_t kCamera = 1u << 2;
  static constexpr std::uint32_t kObject = 1u << 3;
  static constexpr std::uint32_t kId = 1u << 4;
  static constexpr std::uint32_t kConf = 1u << 5;

  std::uint64_t block_uid = 0;  // 0 = nothing cached
  std::uint32_t valid = 0;      // bitmask of decoded columns
  std::int64_t times[kDetectionBlockRows];
  double xs[kDetectionBlockRows];
  double ys[kDetectionBlockRows];
  std::uint64_t cameras[kDetectionBlockRows];
  std::uint64_t objects[kDetectionBlockRows];
  std::uint64_t ids[kDetectionBlockRows];
  double confidences[kDetectionBlockRows];

  std::uint64_t emb_uid = 0;
  std::vector<float> emb;

  ColdScratch() {
    cold_scratch_bytes_counter().fetch_add(sizeof(ColdScratch),
                                           std::memory_order_relaxed);
  }
  ~ColdScratch() {
    cold_scratch_bytes_counter().fetch_sub(
        sizeof(ColdScratch) + emb.capacity() * sizeof(float),
        std::memory_order_relaxed);
  }
  ColdScratch(const ColdScratch&) = delete;
  ColdScratch& operator=(const ColdScratch&) = delete;

  /// Retargets the scalar-column cache at block `uid` (no-op if cached).
  void ensure(std::uint64_t uid) {
    if (block_uid != uid) {
      block_uid = uid;
      valid = 0;
    }
  }

  void grow_emb(std::size_t n) {
    std::size_t before = emb.capacity();
    if (emb.size() < n) emb.resize(n);
    if (emb.capacity() > before) {
      cold_scratch_bytes_counter().fetch_add(
          (emb.capacity() - before) * sizeof(float),
          std::memory_order_relaxed);
    }
  }
};

[[nodiscard]] inline ColdScratch& cold_scratch() {
  thread_local ColdScratch scratch;
  return scratch;
}

// Column-at-a-time decode helpers: return this thread's scratch view of one
// cold block's column, decoding only on a cache miss. Pointers stay valid
// until the calling thread touches a *different* cold block.

[[nodiscard]] inline const std::int64_t* cold_times(const CompressedBlock& b) {
  ColdScratch& sc = cold_scratch();
  sc.ensure(b.uid);
  if (!(sc.valid & ColdScratch::kTime)) {
    b.decode_times(sc.times);
    sc.valid |= ColdScratch::kTime;
  }
  return sc.times;
}

/// Decodes both position columns (they are filtered together).
inline void cold_positions(const CompressedBlock& b, const double*& xs,
                           const double*& ys) {
  ColdScratch& sc = cold_scratch();
  sc.ensure(b.uid);
  if (!(sc.valid & ColdScratch::kPos)) {
    b.decode_xs(sc.xs);
    b.decode_ys(sc.ys);
    sc.valid |= ColdScratch::kPos;
  }
  xs = sc.xs;
  ys = sc.ys;
}

[[nodiscard]] inline const std::uint64_t* cold_cameras(
    const CompressedBlock& b) {
  ColdScratch& sc = cold_scratch();
  sc.ensure(b.uid);
  if (!(sc.valid & ColdScratch::kCamera)) {
    b.decode_cameras(sc.cameras);
    sc.valid |= ColdScratch::kCamera;
  }
  return sc.cameras;
}

[[nodiscard]] inline const std::uint64_t* cold_objects(
    const CompressedBlock& b) {
  ColdScratch& sc = cold_scratch();
  sc.ensure(b.uid);
  if (!(sc.valid & ColdScratch::kObject)) {
    b.decode_objects(sc.objects);
    sc.valid |= ColdScratch::kObject;
  }
  return sc.objects;
}

[[nodiscard]] inline const std::uint64_t* cold_ids(const CompressedBlock& b) {
  ColdScratch& sc = cold_scratch();
  sc.ensure(b.uid);
  if (!(sc.valid & ColdScratch::kId)) {
    b.decode_ids(sc.ids);
    sc.valid |= ColdScratch::kId;
  }
  return sc.ids;
}

[[nodiscard]] inline const double* cold_confidences(const CompressedBlock& b) {
  ColdScratch& sc = cold_scratch();
  sc.ensure(b.uid);
  if (!(sc.valid & ColdScratch::kConf)) {
    b.decode_confidences(sc.confidences);
    sc.valid |= ColdScratch::kConf;
  }
  return sc.confidences;
}

/// Decodes the whole embedding arena of `b` into this thread's scratch and
/// returns its base pointer (row i's floats at b.emb_begin(i)). Valid until
/// the calling thread decodes a different cold block's embeddings.
[[nodiscard]] inline const float* cold_embeddings(const CompressedBlock& b) {
  ColdScratch& sc = cold_scratch();
  if (sc.emb_uid != b.uid) {
    sc.grow_emb(b.emb_codes.size());
    for (std::uint32_t i = 0; i < b.rows; ++i) {
      b.decode_embedding(i, sc.emb.data() + b.emb_begin(i));
    }
    sc.emb_uid = b.uid;
  }
  return sc.emb.data();
}

/// Demotion policy for the cold tier. Disabled by default: every store
/// starts hot-only, and enabling the tier is an explicit configuration act
/// (WorkerConfig::tiered_storage upstream).
struct StoreTierConfig {
  bool enabled = false;
  /// Full (sealed) hot blocks to retain before the oldest is demoted; the
  /// partially-filled tail block is never demoted by fill.
  std::uint32_t hot_sealed_blocks = 1;
};

/// Accounting for the vectorized (selection-vector) scan path. Unlike the
/// store's cumulative blocks_scanned()/blocks_skipped() counters, a
/// MorselStats is plain caller-owned state, so block-granular scans are
/// safe to run concurrently over disjoint morsels of one store.
struct MorselStats {
  /// Row-predicate evaluations performed (a row counts once per predicate
  /// actually applied to it; zone fast paths evaluate nothing).
  std::uint64_t rows_evaluated = 0;
  /// Rows that passed every predicate (== selection-vector sizes).
  std::uint64_t rows_selected = 0;
  /// Non-skipped 4096-row morsels processed through selection vectors.
  std::uint64_t morsels = 0;
  /// Morsels emitted wholesale by the fully-inside zone fast path.
  std::uint64_t zone_fast_path = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_skipped = 0;
  /// Cold-tier slices of blocks_scanned/blocks_skipped (hot = total − cold).
  std::uint64_t cold_blocks_scanned = 0;
  std::uint64_t cold_blocks_skipped = 0;
  /// Cold morsels that ran decode-fused kernels (zone fast paths decode
  /// nothing and are excluded).
  std::uint64_t decode_morsels = 0;

  void merge(const MorselStats& o) {
    rows_evaluated += o.rows_evaluated;
    rows_selected += o.rows_selected;
    morsels += o.morsels;
    zone_fast_path += o.zone_fast_path;
    blocks_scanned += o.blocks_scanned;
    blocks_skipped += o.blocks_skipped;
    cold_blocks_scanned += o.cold_blocks_scanned;
    cold_blocks_skipped += o.cold_blocks_skipped;
    decode_morsels += o.decode_morsels;
  }
};

class DetectionStore {
 public:
  /// Exact resident-byte accounting, split by component. All figures are
  /// capacity-based (what the allocator actually holds, not just live
  /// rows). `scratch_bytes` reports the process-wide per-thread decode
  /// scratches; it is informational and excluded from total(), which stays
  /// the sum of bytes this store itself owns.
  struct MemoryBreakdown {
    std::size_t column_bytes = 0;   // hot columns + embedding offsets
    std::size_t arena_bytes = 0;    // hot flattened embedding floats
    std::size_t zone_bytes = 0;     // per-block zone maps (both tiers)
    std::size_t cold_bytes = 0;     // compressed cold blocks
    std::size_t scratch_bytes = 0;  // process-wide decode scratch (info)
    [[nodiscard]] std::size_t hot_bytes() const {
      return column_bytes + arena_bytes;
    }
    [[nodiscard]] std::size_t total() const {
      return column_bytes + arena_bytes + zone_bytes + cold_bytes;
    }
  };

  // ------------------------------------------------------------ tiering

  void set_tier_config(const StoreTierConfig& config) {
    tier_ = config;
    maybe_demote();
  }
  [[nodiscard]] const StoreTierConfig& tier_config() const { return tier_; }

  [[nodiscard]] std::size_t cold_block_count() const { return cold_.size(); }
  /// Rows living in the cold tier (== the hot tier's base row).
  [[nodiscard]] std::size_t cold_rows() const { return hot_base_; }
  /// Resident bytes of all compressed cold blocks.
  [[nodiscard]] std::size_t compressed_bytes() const {
    std::size_t total = 0;
    for (const CompressedBlock& b : cold_) total += b.compressed_bytes();
    return total;
  }

  /// Demotes sealed hot blocks whose newest row is older than `cutoff`
  /// (age-triggered demotion, driven by the worker tick). Returns how many
  /// blocks moved cold. No-op while the tier is disabled.
  std::size_t demote_older_than(TimePoint cutoff) {
    if (!tier_.enabled) return 0;
    std::size_t demoted = 0;
    while (ids_.size() >= kDetectionBlockRows) {
      const DetectionBlockZone& z = zones_[cold_.size()];
      if (z.t_max >= cutoff.micros_since_origin()) break;
      demote_front_block();
      ++demoted;
    }
    return demoted;
  }

  // ------------------------------------------------------------ appends

  /// Appends a detection; the returned handle is stable forever (demotion
  /// never renumbers rows — cold blocks are a prefix of the row space).
  DetectionRef append(const Detection& d) {
    STCN_CHECK(size() < UINT32_MAX);
    auto row = static_cast<std::uint32_t>(size());
    ids_.push_back(d.id.value());
    cameras_.push_back(d.camera.value());
    objects_.push_back(d.object.value());
    times_.push_back(d.time.micros_since_origin());
    xs_.push_back(d.position.x);
    ys_.push_back(d.position.y);
    confidences_.push_back(d.confidence);
    arena_.insert(arena_.end(), d.appearance.values.begin(),
                  d.appearance.values.end());
    emb_offsets_.push_back(arena_.size());
    grow_zone(row);
    if (tier_.enabled && ids_.size() % kDetectionBlockRows == 0) {
      maybe_demote();
    }
    return static_cast<DetectionRef>(row);
  }

  /// Appends a copy of `src`'s row `ref` without materializing a Detection
  /// when the source row is hot (cold rows decode through get(); retention
  /// compaction's bulk path adopts whole cold blocks instead).
  DetectionRef append_copy(const DetectionStore& src, DetectionRef ref) {
    std::uint32_t i = to_index(ref);
    STCN_CHECK(i < src.size());
    if (i < src.hot_base_) return append(src.get(ref));
    STCN_CHECK(size() < UINT32_MAX);
    std::size_t h = i - src.hot_base_;
    auto row = static_cast<std::uint32_t>(size());
    ids_.push_back(src.ids_[h]);
    cameras_.push_back(src.cameras_[h]);
    objects_.push_back(src.objects_[h]);
    times_.push_back(src.times_[h]);
    xs_.push_back(src.xs_[h]);
    ys_.push_back(src.ys_[h]);
    confidences_.push_back(src.confidences_[h]);
    std::span<const float> emb = src.embedding(ref);
    arena_.insert(arena_.end(), emb.begin(), emb.end());
    emb_offsets_.push_back(arena_.size());
    grow_zone(row);
    if (tier_.enabled && ids_.size() % kDetectionBlockRows == 0) {
      maybe_demote();
    }
    return static_cast<DetectionRef>(row);
  }

  /// Appends rows [first, last) of `src` (retention compaction's bulk
  /// path; last > first required). Returns the ref of the first copied
  /// row; the rest follow contiguously. Three regimes:
  ///   · whole cold source blocks landing on a block boundary of an
  ///     all-cold destination are adopted verbatim (no decode, no
  ///     re-quantization drift — the common compaction case);
  ///   · other cold rows copy row-at-a-time through append_copy;
  ///   · the hot tail copies in one column-wise pass.
  /// Destination zone maps are recomputed tightly from the copied rows
  /// (adopted blocks carry their source zones, which are already exact for
  /// their decoded values).
  DetectionRef append_rows(const DetectionStore& src, std::uint32_t first,
                           std::uint32_t last) {
    STCN_CHECK(first < last && last <= src.size());
    STCN_CHECK(size() + (last - first) < UINT32_MAX);
    auto row0 = static_cast<std::uint32_t>(size());
    std::uint32_t cur = first;
    while (cur < last && cur < src.hot_base_) {
      std::size_t b = cur / kDetectionBlockRows;
      auto bend = static_cast<std::uint32_t>(
          std::min<std::size_t>((b + 1) * kDetectionBlockRows, last));
      bool whole_block = cur == b * kDetectionBlockRows &&
                         bend == (b + 1) * kDetectionBlockRows;
      if (whole_block && ids_.empty()) {
        cold_.push_back(src.cold_[b]);
        zones_.push_back(src.zones_[b]);
        hot_base_ += kDetectionBlockRows;
      } else {
        for (std::uint32_t i = cur; i < bend; ++i) {
          append_copy(src, static_cast<DetectionRef>(i));
        }
      }
      cur = bend;
    }
    if (cur < last) {
      std::size_t sf = cur - src.hot_base_;
      std::size_t sl = last - src.hot_base_;
      auto r0 = static_cast<std::uint32_t>(size());
      ids_.insert(ids_.end(), src.ids_.begin() + sf, src.ids_.begin() + sl);
      cameras_.insert(cameras_.end(), src.cameras_.begin() + sf,
                      src.cameras_.begin() + sl);
      objects_.insert(objects_.end(), src.objects_.begin() + sf,
                      src.objects_.begin() + sl);
      times_.insert(times_.end(), src.times_.begin() + sf,
                    src.times_.begin() + sl);
      xs_.insert(xs_.end(), src.xs_.begin() + sf, src.xs_.begin() + sl);
      ys_.insert(ys_.end(), src.ys_.begin() + sf, src.ys_.begin() + sl);
      confidences_.insert(confidences_.end(), src.confidences_.begin() + sf,
                          src.confidences_.begin() + sl);
      std::size_t emb_begin = sf == 0 ? 0 : src.emb_offsets_[sf - 1];
      std::size_t rebase = arena_.size() - emb_begin;
      arena_.insert(arena_.end(), src.arena_.begin() + emb_begin,
                    src.arena_.begin() + src.emb_offsets_[sl - 1]);
      for (std::size_t i = sf; i < sl; ++i) {
        emb_offsets_.push_back(src.emb_offsets_[i] + rebase);
      }
      auto copied = static_cast<std::uint32_t>(sl - sf);
      for (std::uint32_t r = r0; r < r0 + copied; ++r) grow_zone(r);
    }
    maybe_demote();
    return static_cast<DetectionRef>(row0);
  }

  // ----------------------------------------------------- column accessors
  // The hot-only scan-path API: one contiguous-array load each. Only valid
  // while no rows are cold (benches and tests on hot-only stores); tiered
  // scan paths go through block_columns() / the block scans below.

  [[nodiscard]] std::span<const std::int64_t> time_column() const {
    STCN_CHECK(hot_base_ == 0);
    return times_;
  }
  [[nodiscard]] std::span<const double> x_column() const {
    STCN_CHECK(hot_base_ == 0);
    return xs_;
  }
  [[nodiscard]] std::span<const double> y_column() const {
    STCN_CHECK(hot_base_ == 0);
    return ys_;
  }
  [[nodiscard]] std::span<const std::uint64_t> camera_column() const {
    STCN_CHECK(hot_base_ == 0);
    return cameras_;
  }
  [[nodiscard]] std::span<const std::uint64_t> object_column() const {
    STCN_CHECK(hot_base_ == 0);
    return objects_;
  }

  /// Per-block column views for consumers that aggregate over selection
  /// vectors (count/heatmap). Rows of block `b` are addressed as
  /// `view.xs[row - view.base]` with global row ids. Cold views point into
  /// this thread's decode scratch and stay valid until the thread touches a
  /// different cold block; hot views point into the store itself.
  struct BlockColumnsView {
    const std::int64_t* times;
    const double* xs;
    const double* ys;
    const std::uint64_t* cameras;
    std::uint32_t base;
  };
  [[nodiscard]] BlockColumnsView block_columns(std::size_t b) const {
    auto first = static_cast<std::uint32_t>(b * kDetectionBlockRows);
    if (b < cold_.size()) {
      const CompressedBlock& cb = cold_[b];
      BlockColumnsView v;
      v.times = cold_times(cb);
      cold_positions(cb, v.xs, v.ys);
      v.cameras = cold_cameras(cb);
      v.base = first;
      return v;
    }
    std::size_t h = first - hot_base_;
    return {times_.data() + h, xs_.data() + h, ys_.data() + h,
            cameras_.data() + h, first};
  }

  [[nodiscard]] TimePoint time_of(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    if (i >= hot_base_) return TimePoint(times_[i - hot_base_]);
    return TimePoint(
        cold_times(cold_[i / kDetectionBlockRows])[i % kDetectionBlockRows]);
  }
  [[nodiscard]] Point position_of(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    if (i >= hot_base_) {
      std::size_t h = i - hot_base_;
      return {xs_[h], ys_[h]};
    }
    const double* xs = nullptr;
    const double* ys = nullptr;
    cold_positions(cold_[i / kDetectionBlockRows], xs, ys);
    std::uint32_t local = i % kDetectionBlockRows;
    return {xs[local], ys[local]};
  }
  [[nodiscard]] CameraId camera_of(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    if (i >= hot_base_) return CameraId(cameras_[i - hot_base_]);
    return CameraId(
        cold_cameras(cold_[i / kDetectionBlockRows])[i % kDetectionBlockRows]);
  }
  [[nodiscard]] ObjectId object_of(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    if (i >= hot_base_) return ObjectId(objects_[i - hot_base_]);
    return ObjectId(
        cold_objects(cold_[i / kDetectionBlockRows])[i % kDetectionBlockRows]);
  }
  [[nodiscard]] DetectionId id_of(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    if (i >= hot_base_) return DetectionId(ids_[i - hot_base_]);
    return DetectionId(
        cold_ids(cold_[i / kDetectionBlockRows])[i % kDetectionBlockRows]);
  }
  [[nodiscard]] double confidence_of(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    if (i >= hot_base_) return confidences_[i - hot_base_];
    return cold_confidences(
        cold_[i / kDetectionBlockRows])[i % kDetectionBlockRows];
  }
  /// The row's embedding. Hot rows view the flattened arena directly; cold
  /// rows view this thread's decode scratch — the span stays valid until
  /// the calling thread decodes a different cold block's embeddings.
  [[nodiscard]] std::span<const float> embedding(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    if (i >= hot_base_) {
      std::size_t h = i - hot_base_;
      std::size_t begin = h == 0 ? 0 : emb_offsets_[h - 1];
      return {arena_.data() + begin, emb_offsets_[h] - begin};
    }
    const CompressedBlock& cb = cold_[i / kDetectionBlockRows];
    std::uint32_t local = i % kDetectionBlockRows;
    const float* base = cold_embeddings(cb);
    return {base + cb.emb_begin(local), cb.emb_dim_of(local)};
  }

  /// Materializes the full record (cold path: result assembly, wire
  /// serialization, resync). Scan paths should use the block scans.
  [[nodiscard]] Detection get(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    Detection d;
    if (i >= hot_base_) {
      std::size_t h = i - hot_base_;
      d.id = DetectionId(ids_[h]);
      d.camera = CameraId(cameras_[h]);
      d.object = ObjectId(objects_[h]);
      d.time = TimePoint(times_[h]);
      d.position = {xs_[h], ys_[h]};
      d.confidence = confidences_[h];
    } else {
      const CompressedBlock& cb = cold_[i / kDetectionBlockRows];
      std::uint32_t local = i % kDetectionBlockRows;
      d.id = DetectionId(cb.id_at(local));
      d.camera = CameraId(cb.camera_at(local));
      d.object = ObjectId(cb.object_at(local));
      d.time = TimePoint(cb.time_at(local));
      d.position = {cb.x_at(local), cb.y_at(local)};
      d.confidence = cb.confidence_at(local);
    }
    std::span<const float> emb = embedding(ref);
    d.appearance.values.assign(emb.begin(), emb.end());
    return d;
  }

  [[nodiscard]] std::size_t size() const { return hot_base_ + ids_.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  // ------------------------------------------------------------- blocks

  [[nodiscard]] std::size_t block_count() const { return zones_.size(); }
  [[nodiscard]] const DetectionBlockZone& zone(std::size_t block) const {
    return zones_[block];
  }
  /// Half-open row range [first, last) of `block`.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> block_rows(
      std::size_t block) const {
    auto first = static_cast<std::uint32_t>(block * kDetectionBlockRows);
    auto last = static_cast<std::uint32_t>(
        std::min(size(), (block + 1) * kDetectionBlockRows));
    return {first, last};
  }
  /// Whether block `b` lives in the cold tier.
  [[nodiscard]] bool block_is_cold(std::size_t b) const {
    return b < cold_.size();
  }
  [[nodiscard]] const CompressedBlock& cold_block(std::size_t b) const {
    return cold_[b];
  }

  // ------------------------------------------- vectorized block scans
  //
  // The production scan path: one block (4096-row morsel) at a time, each
  // predicate evaluated branch-free into a `uint32_t` selection vector. A
  // zone map proving the block fully inside every predicate emits the
  // morsel wholesale without evaluating (or, for cold blocks, decoding)
  // anything; otherwise predicates run most-selective-first
  // (zone-estimated), so later predicates only touch survivors. Hot blocks
  // run the plain kernels over the store's columns; cold blocks run the
  // decode-fused kernels (common/filter_kernel.h) straight off packed
  // codes into this thread's ColdScratch, counting one decode_morsel.
  // Block entries write all accounting into the caller's MorselStats and
  // never touch the store's mutable counters, so disjoint morsels of one
  // store can be scanned from many threads (see MorselScanner) — each
  // thread owns its scratch.

  /// Scans block `b` for rows with position ∈ `region`, time ∈ `interval`.
  /// Appends at most kDetectionBlockRows row ids into `sel`; returns how
  /// many were selected.
  std::uint32_t scan_range_block(std::size_t b, const Rect& region,
                                 const TimeInterval& interval,
                                 std::uint32_t* sel, MorselStats& ms) const {
    const DetectionBlockZone& z = zones_[b];
    bool cold = b < cold_.size();
    if (!z.overlaps(interval) || !z.overlaps(region)) {
      ++ms.blocks_skipped;
      ms.cold_blocks_skipped += cold;
      return 0;
    }
    ++ms.blocks_scanned;
    ms.cold_blocks_scanned += cold;
    ++ms.morsels;
    auto [first, last] = block_rows(b);
    std::int64_t t0 = interval.begin.micros_since_origin();
    std::int64_t t1 = interval.end.micros_since_origin();
    bool all_time = z.within(interval);
    bool all_space = z.within(region);
    if (all_time && all_space) {
      ++ms.zone_fast_path;
      std::uint32_t n = fill_identity(first, last, sel);
      ms.rows_selected += n;
      return n;
    }
    std::uint32_t n;
    if (cold) {
      const CompressedBlock& cb = cold_[b];
      ColdScratch& sc = cold_scratch();
      sc.ensure(cb.uid);
      ++ms.decode_morsels;
      if (all_space) {
        n = cb.filter_time(t0, t1, sc.times, sel);
        sc.valid |= ColdScratch::kTime;
        ms.rows_evaluated += last - first;
      } else if (all_time) {
        n = cb.filter_rect(region, sc.xs, sc.ys, sel);
        sc.valid |= ColdScratch::kPos;
        ms.rows_evaluated += last - first;
      } else if (z.space_selectivity(region) <= z.time_selectivity(interval)) {
        n = cb.filter_rect(region, sc.xs, sc.ys, sel);
        sc.valid |= ColdScratch::kPos;
        ms.rows_evaluated += (last - first) + n;
        n = cb.refine_time(t0, t1, sel, n);
      } else {
        n = cb.filter_time(t0, t1, sc.times, sel);
        sc.valid |= ColdScratch::kTime;
        ms.rows_evaluated += (last - first) + n;
        n = cb.refine_rect(region, sel, n);
      }
      offset_sel(sel, n, first);
    } else {
      auto lf = static_cast<std::uint32_t>(first - hot_base_);
      auto ll = static_cast<std::uint32_t>(last - hot_base_);
      if (all_space) {
        n = filter_time(times_.data(), lf, ll, t0, t1, sel);
        ms.rows_evaluated += last - first;
      } else if (all_time) {
        n = filter_rect(xs_.data(), ys_.data(), lf, ll, region, sel);
        ms.rows_evaluated += last - first;
      } else if (z.space_selectivity(region) <= z.time_selectivity(interval)) {
        n = filter_rect(xs_.data(), ys_.data(), lf, ll, region, sel);
        ms.rows_evaluated += (last - first) + n;
        n = refine_time(times_.data(), t0, t1, sel, n);
      } else {
        n = filter_time(times_.data(), lf, ll, t0, t1, sel);
        ms.rows_evaluated += (last - first) + n;
        n = refine_rect(xs_.data(), ys_.data(), region, sel, n);
      }
      if (hot_base_ != 0) {
        offset_sel(sel, n, static_cast<std::uint32_t>(hot_base_));
      }
    }
    ms.rows_selected += n;
    return n;
  }

  /// Scans block `b` for rows inside `circle` during `interval`.
  std::uint32_t scan_circle_block(std::size_t b, const Circle& circle,
                                  const TimeInterval& interval,
                                  std::uint32_t* sel, MorselStats& ms) const {
    const DetectionBlockZone& z = zones_[b];
    Rect box = circle.bounding_box();
    bool cold = b < cold_.size();
    if (!z.overlaps(interval) || !z.overlaps(box)) {
      ++ms.blocks_skipped;
      ms.cold_blocks_skipped += cold;
      return 0;
    }
    ++ms.blocks_scanned;
    ms.cold_blocks_scanned += cold;
    ++ms.morsels;
    auto [first, last] = block_rows(b);
    std::int64_t t0 = interval.begin.micros_since_origin();
    std::int64_t t1 = interval.end.micros_since_origin();
    bool all_time = z.within(interval);
    bool all_space = z.within(circle);  // corner containment, not bbox-in-box
    if (all_time && all_space) {
      ++ms.zone_fast_path;
      std::uint32_t n = fill_identity(first, last, sel);
      ms.rows_selected += n;
      return n;
    }
    std::uint32_t n;
    if (cold) {
      const CompressedBlock& cb = cold_[b];
      ColdScratch& sc = cold_scratch();
      sc.ensure(cb.uid);
      ++ms.decode_morsels;
      if (all_space) {
        n = cb.filter_time(t0, t1, sc.times, sel);
        sc.valid |= ColdScratch::kTime;
        ms.rows_evaluated += last - first;
      } else if (all_time) {
        n = cb.filter_circle(circle.center, circle.radius, sc.xs, sc.ys, sel);
        sc.valid |= ColdScratch::kPos;
        ms.rows_evaluated += last - first;
      } else if (z.space_selectivity(box) <= z.time_selectivity(interval)) {
        n = cb.filter_circle(circle.center, circle.radius, sc.xs, sc.ys, sel);
        sc.valid |= ColdScratch::kPos;
        ms.rows_evaluated += (last - first) + n;
        n = cb.refine_time(t0, t1, sel, n);
      } else {
        n = cb.filter_time(t0, t1, sc.times, sel);
        sc.valid |= ColdScratch::kTime;
        ms.rows_evaluated += (last - first) + n;
        n = cb.refine_circle(circle.center, circle.radius, sel, n);
      }
      offset_sel(sel, n, first);
    } else {
      auto lf = static_cast<std::uint32_t>(first - hot_base_);
      auto ll = static_cast<std::uint32_t>(last - hot_base_);
      if (all_space) {
        n = filter_time(times_.data(), lf, ll, t0, t1, sel);
        ms.rows_evaluated += last - first;
      } else if (all_time) {
        n = filter_circle(xs_.data(), ys_.data(), lf, ll, circle.center,
                          circle.radius, sel);
        ms.rows_evaluated += last - first;
      } else if (z.space_selectivity(box) <= z.time_selectivity(interval)) {
        n = filter_circle(xs_.data(), ys_.data(), lf, ll, circle.center,
                          circle.radius, sel);
        ms.rows_evaluated += (last - first) + n;
        n = refine_time(times_.data(), t0, t1, sel, n);
      } else {
        n = filter_time(times_.data(), lf, ll, t0, t1, sel);
        ms.rows_evaluated += (last - first) + n;
        n = refine_circle(xs_.data(), ys_.data(), circle.center, circle.radius,
                          sel, n);
      }
      if (hot_base_ != 0) {
        offset_sel(sel, n, static_cast<std::uint32_t>(hot_base_));
      }
    }
    ms.rows_selected += n;
    return n;
  }

  /// Scans block `b` for rows of `camera` during `interval`. Cold camera
  /// equality runs in dictionary-code space without decoding the column.
  std::uint32_t scan_camera_block(std::size_t b, CameraId camera,
                                  const TimeInterval& interval,
                                  std::uint32_t* sel, MorselStats& ms) const {
    const DetectionBlockZone& z = zones_[b];
    bool cold = b < cold_.size();
    if (!z.overlaps(interval) || !z.may_contain(camera)) {
      ++ms.blocks_skipped;
      ms.cold_blocks_skipped += cold;
      return 0;
    }
    ++ms.blocks_scanned;
    ms.cold_blocks_scanned += cold;
    ++ms.morsels;
    auto [first, last] = block_rows(b);
    std::int64_t t0 = interval.begin.micros_since_origin();
    std::int64_t t1 = interval.end.micros_since_origin();
    bool all_time = z.within(interval);
    bool all_camera = z.only_camera(camera);
    if (all_time && all_camera) {
      ++ms.zone_fast_path;
      std::uint32_t n = fill_identity(first, last, sel);
      ms.rows_selected += n;
      return n;
    }
    std::uint32_t n;
    if (cold) {
      const CompressedBlock& cb = cold_[b];
      ColdScratch& sc = cold_scratch();
      sc.ensure(cb.uid);
      ++ms.decode_morsels;
      if (all_camera) {
        n = cb.filter_time(t0, t1, sc.times, sel);
        sc.valid |= ColdScratch::kTime;
        ms.rows_evaluated += last - first;
      } else if (all_time) {
        n = cb.filter_camera(camera.value(), sel);
        ms.rows_evaluated += last - first;
      } else if (z.camera_selectivity() <= z.time_selectivity(interval)) {
        n = cb.filter_camera(camera.value(), sel);
        ms.rows_evaluated += (last - first) + n;
        n = cb.refine_time(t0, t1, sel, n);
      } else {
        n = cb.filter_time(t0, t1, sc.times, sel);
        sc.valid |= ColdScratch::kTime;
        ms.rows_evaluated += (last - first) + n;
        n = cb.refine_camera(camera.value(), sel, n);
      }
      offset_sel(sel, n, first);
    } else {
      auto lf = static_cast<std::uint32_t>(first - hot_base_);
      auto ll = static_cast<std::uint32_t>(last - hot_base_);
      if (all_camera) {
        n = filter_time(times_.data(), lf, ll, t0, t1, sel);
        ms.rows_evaluated += last - first;
      } else if (all_time) {
        n = filter_camera(cameras_.data(), lf, ll, camera.value(), sel);
        ms.rows_evaluated += last - first;
      } else if (z.camera_selectivity() <= z.time_selectivity(interval)) {
        n = filter_camera(cameras_.data(), lf, ll, camera.value(), sel);
        ms.rows_evaluated += (last - first) + n;
        n = refine_time(times_.data(), t0, t1, sel, n);
      } else {
        n = filter_time(times_.data(), lf, ll, t0, t1, sel);
        ms.rows_evaluated += (last - first) + n;
        n = refine_camera(cameras_.data(), camera.value(), sel, n);
      }
      if (hot_base_ != 0) {
        offset_sel(sel, n, static_cast<std::uint32_t>(hot_base_));
      }
    }
    ms.rows_selected += n;
    return n;
  }

  /// Full-store scan with block skipping: every row with position ∈
  /// `region` and time ∈ `interval`, in row (arrival) order. Vectorized:
  /// each surviving block runs through the selection-vector kernels; a
  /// block proven fully inside both predicates is emitted without per-row
  /// checks. Accounting accumulates into `stats` when given.
  [[nodiscard]] std::vector<DetectionRef> scan_range(
      const Rect& region, const TimeInterval& interval,
      MorselStats* stats = nullptr) const {
    std::vector<DetectionRef> out;
    if (region.is_empty() || interval.empty()) return out;
    MorselStats ms;
    std::uint32_t sel[kDetectionBlockRows];
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (z.within(interval) && z.within(region)) {
        append_identity_block(b, ms, out);
        continue;
      }
      std::uint32_t n = scan_range_block(b, region, interval, sel, ms);
      append_refs(sel, n, out);
    }
    finish_scan(ms, stats);
    return out;
  }

  /// Full-store scan with block skipping: rows inside `circle` during
  /// `interval`, in row order. Vectorized (see scan_range).
  [[nodiscard]] std::vector<DetectionRef> scan_circle(
      const Circle& circle, const TimeInterval& interval,
      MorselStats* stats = nullptr) const {
    std::vector<DetectionRef> out;
    if (interval.empty() || circle.radius < 0.0) return out;
    MorselStats ms;
    std::uint32_t sel[kDetectionBlockRows];
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (z.within(interval) && z.within(circle)) {
        append_identity_block(b, ms, out);
        continue;
      }
      std::uint32_t n = scan_circle_block(b, circle, interval, sel, ms);
      append_refs(sel, n, out);
    }
    finish_scan(ms, stats);
    return out;
  }

  /// Full-store scan with block skipping on the camera fingerprint: rows of
  /// `camera` during `interval`, in row order. Vectorized (see scan_range).
  [[nodiscard]] std::vector<DetectionRef> scan_camera(
      CameraId camera, const TimeInterval& interval,
      MorselStats* stats = nullptr) const {
    std::vector<DetectionRef> out;
    if (interval.empty()) return out;
    MorselStats ms;
    std::uint32_t sel[kDetectionBlockRows];
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (z.within(interval) && z.only_camera(camera)) {
        append_identity_block(b, ms, out);
        continue;
      }
      std::uint32_t n = scan_camera_block(b, camera, interval, sel, ms);
      append_refs(sel, n, out);
    }
    finish_scan(ms, stats);
    return out;
  }

  // --------------------------------------------- scalar reference scans
  //
  // The row-at-a-time paths the vectorized layer replaced, retained as the
  // differential-testing reference and the bench before/after baseline.
  // Same zone-map block skipping, but predicates branch per row and there
  // is no selectivity-ordered evaluation. Cold blocks are read through
  // block_columns() (whole-column decode into scratch) — deliberately the
  // simplest correct path, not the fused one under test.

  [[nodiscard]] std::vector<DetectionRef> scan_range_scalar(
      const Rect& region, const TimeInterval& interval) const {
    std::vector<DetectionRef> out;
    if (region.is_empty() || interval.empty()) return out;
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      bool cold = b < cold_.size();
      if (!z.overlaps(interval) || !z.overlaps(region)) {
        ++blocks_skipped_;
        cold_blocks_skipped_ += cold;
        continue;
      }
      ++blocks_scanned_;
      cold_blocks_scanned_ += cold;
      decode_morsels_ += cold;
      auto [first, last] = block_rows(b);
      BlockColumnsView v = block_columns(b);
      bool all_time = z.within(interval);
      bool all_space = z.within(region);
      for (std::uint32_t i = first; i < last; ++i) {
        std::uint32_t j = i - v.base;
        if (!all_time &&
            !(v.times[j] >= interval.begin.micros_since_origin() &&
              v.times[j] < interval.end.micros_since_origin())) {
          continue;
        }
        if (!all_space && !region.contains(Point{v.xs[j], v.ys[j]})) continue;
        out.push_back(static_cast<DetectionRef>(i));
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<DetectionRef> scan_circle_scalar(
      const Circle& circle, const TimeInterval& interval) const {
    std::vector<DetectionRef> out;
    if (interval.empty() || circle.radius < 0.0) return out;
    Rect box = circle.bounding_box();
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      bool cold = b < cold_.size();
      if (!z.overlaps(interval) || !z.overlaps(box)) {
        ++blocks_skipped_;
        cold_blocks_skipped_ += cold;
        continue;
      }
      ++blocks_scanned_;
      cold_blocks_scanned_ += cold;
      decode_morsels_ += cold;
      auto [first, last] = block_rows(b);
      BlockColumnsView v = block_columns(b);
      bool all_time = z.within(interval);
      for (std::uint32_t i = first; i < last; ++i) {
        std::uint32_t j = i - v.base;
        if (!all_time &&
            !(v.times[j] >= interval.begin.micros_since_origin() &&
              v.times[j] < interval.end.micros_since_origin())) {
          continue;
        }
        if (!circle.contains(Point{v.xs[j], v.ys[j]})) continue;
        out.push_back(static_cast<DetectionRef>(i));
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<DetectionRef> scan_camera_scalar(
      CameraId camera, const TimeInterval& interval) const {
    std::vector<DetectionRef> out;
    if (interval.empty()) return out;
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      bool cold = b < cold_.size();
      if (!z.overlaps(interval) || !z.may_contain(camera)) {
        ++blocks_skipped_;
        cold_blocks_skipped_ += cold;
        continue;
      }
      ++blocks_scanned_;
      cold_blocks_scanned_ += cold;
      decode_morsels_ += cold;
      auto [first, last] = block_rows(b);
      BlockColumnsView v = block_columns(b);
      bool all_time = z.within(interval);
      for (std::uint32_t i = first; i < last; ++i) {
        std::uint32_t j = i - v.base;
        if (v.cameras[j] != camera.value()) continue;
        if (!all_time &&
            !(v.times[j] >= interval.begin.micros_since_origin() &&
              v.times[j] < interval.end.micros_since_origin())) {
          continue;
        }
        out.push_back(static_cast<DetectionRef>(i));
      }
    }
    return out;
  }

  /// Cumulative zone-map accounting across every block-skipping scan.
  [[nodiscard]] std::uint64_t blocks_scanned() const { return blocks_scanned_; }
  [[nodiscard]] std::uint64_t blocks_skipped() const { return blocks_skipped_; }
  /// Cold-tier slices of the cumulative counters.
  [[nodiscard]] std::uint64_t cold_blocks_scanned() const {
    return cold_blocks_scanned_;
  }
  [[nodiscard]] std::uint64_t cold_blocks_skipped() const {
    return cold_blocks_skipped_;
  }
  [[nodiscard]] std::uint64_t decode_morsels() const { return decode_morsels_; }

  /// Folds externally-driven block-scan accounting (e.g. a MorselScanner
  /// run) into the cumulative counters. Call from one thread, after joins.
  void note_scan(const MorselStats& ms) const {
    blocks_scanned_ += ms.blocks_scanned;
    blocks_skipped_ += ms.blocks_skipped;
    cold_blocks_scanned_ += ms.cold_blocks_scanned;
    cold_blocks_skipped_ += ms.cold_blocks_skipped;
    decode_morsels_ += ms.decode_morsels;
  }

  // ------------------------------------------------------------- memory

  /// Exact resident bytes this store owns: hot columns + embedding arena +
  /// zone maps + compressed cold blocks, capacity-based. The shared decode
  /// scratch is reported separately (memory_breakdown().scratch_bytes) and
  /// excluded here.
  [[nodiscard]] std::size_t memory_bytes() const {
    return memory_breakdown().total();
  }

  [[nodiscard]] MemoryBreakdown memory_breakdown() const {
    MemoryBreakdown m;
    m.column_bytes = ids_.capacity() * sizeof(std::uint64_t) +
                     cameras_.capacity() * sizeof(std::uint64_t) +
                     objects_.capacity() * sizeof(std::uint64_t) +
                     times_.capacity() * sizeof(std::int64_t) +
                     xs_.capacity() * sizeof(double) +
                     ys_.capacity() * sizeof(double) +
                     confidences_.capacity() * sizeof(double) +
                     emb_offsets_.capacity() * sizeof(std::uint64_t);
    m.arena_bytes = arena_.capacity() * sizeof(float);
    m.zone_bytes = zones_.capacity() * sizeof(DetectionBlockZone);
    m.cold_bytes = compressed_bytes() +
                   cold_.capacity() * sizeof(CompressedBlock);
    m.scratch_bytes = cold_scratch_bytes();
    return m;
  }

  // ----------------------------------------------------------- snapshots
  //
  // Wire image v2 for recovery checkpoints: magic, the cold tier as
  // compressed blocks (snapshots shrink with the store), then the hot tier
  // column-wise in the v1 layout (floats as raw bits — snapshots must
  // round-trip exactly). Zone maps are not serialized; decode rebuilds
  // them deterministically — cold zones from decoded cold values, hot
  // zones from the hot columns.

  void serialize_to(BinaryWriter& w) const {
    w.write_u32(kStoreSnapshotMagic);
    w.write_u32(static_cast<std::uint32_t>(cold_.size()));
    for (const CompressedBlock& cb : cold_) cb.serialize_to(w);
    auto n = static_cast<std::uint32_t>(ids_.size());
    w.reserve(4 + static_cast<std::size_t>(n) * 64 + 8 + arena_.size() * 4);
    w.write_u32(n);
    for (std::uint64_t v : ids_) w.write_u64(v);
    for (std::uint64_t v : cameras_) w.write_u64(v);
    for (std::uint64_t v : objects_) w.write_u64(v);
    for (std::int64_t v : times_) w.write_i64(v);
    for (double v : xs_) w.write_double(v);
    for (double v : ys_) w.write_double(v);
    for (double v : confidences_) w.write_double(v);
    for (std::uint64_t v : emb_offsets_) w.write_u64(v);
    w.write_u64(arena_.size());
    for (float v : arena_) w.write_u32(std::bit_cast<std::uint32_t>(v));
  }

  /// Decodes a serialize_to image. On truncated or inconsistent input the
  /// reader is left failed() and the returned store is empty.
  [[nodiscard]] static DetectionStore deserialize_from(BinaryReader& r) {
    DetectionStore s;
    auto poison = [&r] {
      (void)r.read_bytes(r.remaining() + 1);
      return DetectionStore{};
    };
    std::uint32_t magic = r.read_u32();
    if (r.failed() || magic != kStoreSnapshotMagic) return poison();
    std::uint32_t cold_n = r.read_u32();
    // Each cold block serializes to well over 16 bytes and holds a full
    // block of rows; a count the payload cannot hold (or that would push
    // row ids past 32 bits) is corrupt.
    if (r.failed() ||
        static_cast<std::uint64_t>(cold_n) * kDetectionBlockRows >=
            UINT32_MAX ||
        static_cast<std::uint64_t>(cold_n) * 16 > r.remaining()) {
      return poison();
    }
    s.cold_.reserve(cold_n);
    for (std::uint32_t i = 0; i < cold_n; ++i) {
      CompressedBlock cb;
      if (!CompressedBlock::deserialize_from(r, cb) ||
          cb.rows != kDetectionBlockRows) {
        return poison();
      }
      s.cold_.push_back(std::move(cb));
    }
    s.hot_base_ = static_cast<std::size_t>(cold_n) * kDetectionBlockRows;
    for (const CompressedBlock& cb : s.cold_) {
      s.zones_.push_back(zone_from_cold(cb));
    }
    std::uint32_t n = r.read_u32();
    // Eight fixed-width 8-byte columns per row: a row count the payload
    // cannot possibly hold is corrupt — poison the reader before reserving.
    if (r.failed() || static_cast<std::uint64_t>(n) * 64 > r.remaining() ||
        s.hot_base_ + n >= UINT32_MAX) {
      return poison();
    }
    s.ids_.reserve(n);
    s.cameras_.reserve(n);
    s.objects_.reserve(n);
    s.times_.reserve(n);
    s.xs_.reserve(n);
    s.ys_.reserve(n);
    s.confidences_.reserve(n);
    s.emb_offsets_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) s.ids_.push_back(r.read_u64());
    for (std::uint32_t i = 0; i < n; ++i) s.cameras_.push_back(r.read_u64());
    for (std::uint32_t i = 0; i < n; ++i) s.objects_.push_back(r.read_u64());
    for (std::uint32_t i = 0; i < n; ++i) s.times_.push_back(r.read_i64());
    for (std::uint32_t i = 0; i < n; ++i) s.xs_.push_back(r.read_double());
    for (std::uint32_t i = 0; i < n; ++i) s.ys_.push_back(r.read_double());
    for (std::uint32_t i = 0; i < n; ++i) {
      s.confidences_.push_back(r.read_double());
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      s.emb_offsets_.push_back(r.read_u64());
    }
    std::uint64_t arena_n = r.read_u64();
    if (r.failed() || arena_n * 4 > r.remaining()) return poison();
    s.arena_.reserve(arena_n);
    for (std::uint64_t i = 0; i < arena_n; ++i) {
      s.arena_.push_back(std::bit_cast<float>(r.read_u32()));
    }
    // Offsets must be non-decreasing and end exactly at the arena size, or
    // embedding() would hand out views past the arena.
    std::uint64_t prev = 0;
    for (std::uint64_t off : s.emb_offsets_) {
      if (off < prev) return poison();
      prev = off;
    }
    if (r.failed() || (n > 0 && s.emb_offsets_.back() != arena_n)) {
      return poison();
    }
    for (std::uint32_t row = 0; row < n; ++row) {
      s.grow_zone(static_cast<std::uint32_t>(s.hot_base_) + row);
    }
    return s;
  }

 private:
  static constexpr std::uint32_t kStoreSnapshotMagic = 0x53544332;  // "STC2"

  static void append_refs(const std::uint32_t* sel, std::uint32_t n,
                          std::vector<DetectionRef>& out) {
    std::size_t base = out.size();
    out.resize(base + n);
    for (std::uint32_t i = 0; i < n; ++i) {
      out[base + i] = static_cast<DetectionRef>(sel[i]);
    }
  }

  /// Fully-inside fast path for the single-threaded wrappers: the zone
  /// proved every row of block `b` qualifies, so the identity row range is
  /// appended in one pass — no selection vector, no per-row predicate, no
  /// decode (the chief cold-tier win: a fully-covered cold block costs the
  /// same as a hot one). Accounting matches scan_*_block's fast-path case.
  void append_identity_block(std::size_t b, MorselStats& ms,
                             std::vector<DetectionRef>& out) const {
    auto [first, last] = block_rows(b);
    ++ms.blocks_scanned;
    ms.cold_blocks_scanned += b < cold_.size();
    ++ms.morsels;
    ++ms.zone_fast_path;
    ms.rows_selected += last - first;
    std::size_t base = out.size();
    out.resize(base + (last - first));
    DetectionRef* p = out.data() + base;
    for (std::uint32_t i = first; i < last; ++i) {
      *p++ = static_cast<DetectionRef>(i);
    }
  }

  /// Folds a scan's caller-owned MorselStats into the store's cumulative
  /// counters (calling thread only) and into `stats` when given.
  void finish_scan(const MorselStats& ms, MorselStats* stats) const {
    note_scan(ms);
    if (stats != nullptr) stats->merge(ms);
  }

  [[nodiscard]] std::uint32_t checked(DetectionRef ref) const {
    std::uint32_t i = to_index(ref);
    STCN_CHECK(i < size());
    return i;
  }

  /// Extends the newest hot block's zone with (global) row `row`.
  void grow_zone(std::uint32_t row) {
    if (row % kDetectionBlockRows == 0) zones_.emplace_back();
    DetectionBlockZone& z = zones_.back();
    std::size_t h = row - hot_base_;
    std::int64_t t = times_[h];
    z.t_min = std::min(z.t_min, t);
    z.t_max = std::max(z.t_max, t);
    z.x_min = std::min(z.x_min, xs_[h]);
    z.x_max = std::max(z.x_max, xs_[h]);
    z.y_min = std::min(z.y_min, ys_[h]);
    z.y_max = std::max(z.y_max, ys_[h]);
    std::uint64_t cam = cameras_[h];
    z.camera_min = std::min(z.camera_min, cam);
    z.camera_max = std::max(z.camera_max, cam);
    z.camera_bits |= std::uint64_t{1} << (cam % 64);
  }

  /// Zone map of a cold block, computed from *decoded* values so every
  /// read path (zone fast path, fused kernel, scalar loop, accessor) sees
  /// one consistent quantized dataset. Carrying the raw-value zone over
  /// would be slightly tighter but could disagree with decoded positions
  /// at a quantum boundary.
  [[nodiscard]] static DetectionBlockZone zone_from_cold(
      const CompressedBlock& cb) {
    DetectionBlockZone z;
    const std::int64_t* times = cold_times(cb);
    const double* xs = nullptr;
    const double* ys = nullptr;
    cold_positions(cb, xs, ys);
    const std::uint64_t* cameras = cold_cameras(cb);
    for (std::uint32_t i = 0; i < cb.rows; ++i) {
      z.t_min = std::min(z.t_min, times[i]);
      z.t_max = std::max(z.t_max, times[i]);
      z.x_min = std::min(z.x_min, xs[i]);
      z.x_max = std::max(z.x_max, xs[i]);
      z.y_min = std::min(z.y_min, ys[i]);
      z.y_max = std::max(z.y_max, ys[i]);
      std::uint64_t cam = cameras[i];
      z.camera_min = std::min(z.camera_min, cam);
      z.camera_max = std::max(z.camera_max, cam);
      z.camera_bits |= std::uint64_t{1} << (cam % 64);
    }
    return z;
  }

  /// Demotes sealed hot blocks past the configured hot watermark.
  void maybe_demote() {
    if (!tier_.enabled) return;
    while (ids_.size() / kDetectionBlockRows > tier_.hot_sealed_blocks) {
      demote_front_block();
    }
  }

  /// Encodes the oldest sealed hot block into the cold tier and drops its
  /// hot rows. Row ids are unchanged: the block keeps its position, only
  /// its representation moves.
  void demote_front_block() {
    STCN_CHECK(ids_.size() >= kDetectionBlockRows);
    auto k = static_cast<std::uint32_t>(kDetectionBlockRows);
    cold_.push_back(CompressedBlock::encode(
        ids_.data(), cameras_.data(), objects_.data(), times_.data(),
        xs_.data(), ys_.data(), confidences_.data(), arena_.data(),
        emb_offsets_.data(), k));
    std::uint64_t emb_end = emb_offsets_[k - 1];
    ids_.erase(ids_.begin(), ids_.begin() + k);
    cameras_.erase(cameras_.begin(), cameras_.begin() + k);
    objects_.erase(objects_.begin(), objects_.begin() + k);
    times_.erase(times_.begin(), times_.begin() + k);
    xs_.erase(xs_.begin(), xs_.begin() + k);
    ys_.erase(ys_.begin(), ys_.begin() + k);
    confidences_.erase(confidences_.begin(), confidences_.begin() + k);
    arena_.erase(arena_.begin(),
                 arena_.begin() + static_cast<std::ptrdiff_t>(emb_end));
    emb_offsets_.erase(emb_offsets_.begin(), emb_offsets_.begin() + k);
    for (std::uint64_t& off : emb_offsets_) off -= emb_end;
    hot_base_ += kDetectionBlockRows;
    // Re-derive the block's zone from decoded values (see zone_from_cold).
    zones_[cold_.size() - 1] = zone_from_cold(cold_.back());
  }

  // Cold tier: compressed blocks covering rows [0, hot_base_).
  std::vector<CompressedBlock> cold_;
  std::size_t hot_base_ = 0;
  StoreTierConfig tier_;

  // Hot columns: one contiguous array per attribute, indexed by
  // (row − hot_base_).
  std::vector<std::uint64_t> ids_;
  std::vector<std::uint64_t> cameras_;
  std::vector<std::uint64_t> objects_;
  std::vector<std::int64_t> times_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> confidences_;
  // Embedding arena: hot row h's floats live at [emb_offsets_[h-1],
  // emb_offsets_[h]) (cumulative offsets tolerate ragged dimensions; with
  // uniform dims the arena is a dense row-major matrix).
  std::vector<float> arena_;
  std::vector<std::uint64_t> emb_offsets_;
  // Zone maps for every block, both tiers.
  std::vector<DetectionBlockZone> zones_;
  mutable std::uint64_t blocks_scanned_ = 0;
  mutable std::uint64_t blocks_skipped_ = 0;
  mutable std::uint64_t cold_blocks_scanned_ = 0;
  mutable std::uint64_t cold_blocks_skipped_ = 0;
  mutable std::uint64_t decode_morsels_ = 0;
};

}  // namespace stcn
