// Columnar, block-structured arena for detections held by a worker.
//
// Indexes (grid, trajectory, temporal) reference detections by a compact
// 32-bit handle into this store instead of duplicating the full record —
// a detection can appear in several indexes at once.
//
// Layout: hot columns (time, x, y, camera, confidence, ids) live in
// contiguous per-column arrays; appearance embeddings live in one flattened
// float arena addressed by cumulative offsets, so nothing on the scan path
// chases a per-record heap pointer. Rows are chunked into fixed-size blocks
// (kDetectionBlockRows), each carrying a zone map — time min/max, position
// bounding rect, camera-id min/max plus a 64-bit camera fingerprint — so
// selective scans skip whole blocks without touching a row (the
// small-materialized-aggregates / data-skipping design from the analytics
// literature). Skip effectiveness is observable via blocks_scanned() /
// blocks_skipped().
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/time.h"
#include "trace/detection.h"

namespace stcn {

/// Handle into a DetectionStore. Only meaningful for the store that
/// issued it.
enum class DetectionRef : std::uint32_t {};

[[nodiscard]] constexpr std::uint32_t to_index(DetectionRef ref) {
  return static_cast<std::uint32_t>(ref);
}

/// Rows per block. 4096 rows × ~56 hot-column bytes ≈ 224 KiB per block —
/// a few L2-sized strips; zone-map overhead is ~90 bytes per block.
inline constexpr std::size_t kDetectionBlockRows = 4096;

/// Per-block small materialized aggregates. All bounds are inclusive over
/// the rows of the block; `camera_bits` is a 64-bit fingerprint with bit
/// (camera % 64) set for every camera seen in the block.
struct DetectionBlockZone {
  std::int64_t t_min = std::numeric_limits<std::int64_t>::max();
  std::int64_t t_max = std::numeric_limits<std::int64_t>::min();
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  std::uint64_t camera_min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t camera_max = 0;
  std::uint64_t camera_bits = 0;

  /// Could any row of this block fall inside `interval`?
  [[nodiscard]] bool overlaps(const TimeInterval& interval) const {
    return t_max >= interval.begin.micros_since_origin() &&
           t_min < interval.end.micros_since_origin();
  }
  /// Could any row's position fall inside `region` (half-open max edges)?
  [[nodiscard]] bool overlaps(const Rect& region) const {
    return x_max >= region.min.x && x_min < region.max.x &&
           y_max >= region.min.y && y_min < region.max.y;
  }
  /// Every row's time is inside `interval`.
  [[nodiscard]] bool within(const TimeInterval& interval) const {
    return t_min >= interval.begin.micros_since_origin() &&
           t_max < interval.end.micros_since_origin();
  }
  /// Every row's position is inside `region`.
  [[nodiscard]] bool within(const Rect& region) const {
    return x_min >= region.min.x && x_max < region.max.x &&
           y_min >= region.min.y && y_max < region.max.y;
  }
  [[nodiscard]] bool may_contain(CameraId camera) const {
    std::uint64_t v = camera.value();
    return v >= camera_min && v <= camera_max &&
           (camera_bits & (std::uint64_t{1} << (v % 64))) != 0;
  }
};

class DetectionStore {
 public:
  /// Exact resident-byte accounting, split by component. All figures are
  /// capacity-based (what the allocator actually holds, not just live rows).
  struct MemoryBreakdown {
    std::size_t column_bytes = 0;  // hot columns + embedding offsets
    std::size_t arena_bytes = 0;   // flattened embedding floats
    std::size_t zone_bytes = 0;    // per-block zone maps
    [[nodiscard]] std::size_t total() const {
      return column_bytes + arena_bytes + zone_bytes;
    }
  };

  /// Appends a detection; the returned handle is stable forever.
  DetectionRef append(const Detection& d) {
    STCN_CHECK(ids_.size() < UINT32_MAX);
    auto row = static_cast<std::uint32_t>(ids_.size());
    ids_.push_back(d.id.value());
    cameras_.push_back(d.camera.value());
    objects_.push_back(d.object.value());
    times_.push_back(d.time.micros_since_origin());
    xs_.push_back(d.position.x);
    ys_.push_back(d.position.y);
    confidences_.push_back(d.confidence);
    arena_.insert(arena_.end(), d.appearance.values.begin(),
                  d.appearance.values.end());
    emb_offsets_.push_back(arena_.size());
    grow_zone(row);
    return static_cast<DetectionRef>(row);
  }

  /// Appends a copy of `src`'s row `ref` without materializing a Detection
  /// (no per-record heap allocation; used by retention compaction).
  DetectionRef append_copy(const DetectionStore& src, DetectionRef ref) {
    STCN_CHECK(ids_.size() < UINT32_MAX);
    std::uint32_t i = to_index(ref);
    STCN_CHECK(i < src.ids_.size());
    auto row = static_cast<std::uint32_t>(ids_.size());
    ids_.push_back(src.ids_[i]);
    cameras_.push_back(src.cameras_[i]);
    objects_.push_back(src.objects_[i]);
    times_.push_back(src.times_[i]);
    xs_.push_back(src.xs_[i]);
    ys_.push_back(src.ys_[i]);
    confidences_.push_back(src.confidences_[i]);
    std::span<const float> emb = src.embedding(ref);
    arena_.insert(arena_.end(), emb.begin(), emb.end());
    emb_offsets_.push_back(arena_.size());
    grow_zone(row);
    return static_cast<DetectionRef>(row);
  }

  // ----------------------------------------------------- column accessors
  // The scan-path API: one contiguous-array load each, no record assembly.

  [[nodiscard]] TimePoint time_of(DetectionRef ref) const {
    return TimePoint(times_[checked(ref)]);
  }
  [[nodiscard]] Point position_of(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    return {xs_[i], ys_[i]};
  }
  [[nodiscard]] CameraId camera_of(DetectionRef ref) const {
    return CameraId(cameras_[checked(ref)]);
  }
  [[nodiscard]] ObjectId object_of(DetectionRef ref) const {
    return ObjectId(objects_[checked(ref)]);
  }
  [[nodiscard]] DetectionId id_of(DetectionRef ref) const {
    return DetectionId(ids_[checked(ref)]);
  }
  [[nodiscard]] double confidence_of(DetectionRef ref) const {
    return confidences_[checked(ref)];
  }
  /// The row's embedding as a view into the flattened arena.
  [[nodiscard]] std::span<const float> embedding(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    std::size_t begin = i == 0 ? 0 : emb_offsets_[i - 1];
    return {arena_.data() + begin, emb_offsets_[i] - begin};
  }

  /// Materializes the full record (cold path: result assembly, wire
  /// serialization, resync). Scan paths should use the column accessors.
  [[nodiscard]] Detection get(DetectionRef ref) const {
    std::uint32_t i = checked(ref);
    Detection d;
    d.id = DetectionId(ids_[i]);
    d.camera = CameraId(cameras_[i]);
    d.object = ObjectId(objects_[i]);
    d.time = TimePoint(times_[i]);
    d.position = {xs_[i], ys_[i]};
    d.confidence = confidences_[i];
    std::span<const float> emb = embedding(ref);
    d.appearance.values.assign(emb.begin(), emb.end());
    return d;
  }

  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] bool empty() const { return ids_.empty(); }

  // ------------------------------------------------------------- blocks

  [[nodiscard]] std::size_t block_count() const { return zones_.size(); }
  [[nodiscard]] const DetectionBlockZone& zone(std::size_t block) const {
    return zones_[block];
  }
  /// Half-open row range [first, last) of `block`.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> block_rows(
      std::size_t block) const {
    auto first = static_cast<std::uint32_t>(block * kDetectionBlockRows);
    auto last = static_cast<std::uint32_t>(
        std::min(size(), (block + 1) * kDetectionBlockRows));
    return {first, last};
  }

  /// Full-store scan with block skipping: every row with position ∈
  /// `region` and time ∈ `interval`, in row (arrival) order. When a block's
  /// zone map proves it fully inside both predicates, its rows are emitted
  /// without per-row checks.
  [[nodiscard]] std::vector<DetectionRef> scan_range(
      const Rect& region, const TimeInterval& interval) const {
    std::vector<DetectionRef> out;
    if (region.is_empty() || interval.empty()) return out;
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (!z.overlaps(interval) || !z.overlaps(region)) {
        ++blocks_skipped_;
        continue;
      }
      ++blocks_scanned_;
      auto [first, last] = block_rows(b);
      bool all_time = z.within(interval);
      bool all_space = z.within(region);
      for (std::uint32_t i = first; i < last; ++i) {
        if (!all_time && !(times_[i] >= interval.begin.micros_since_origin() &&
                           times_[i] < interval.end.micros_since_origin())) {
          continue;
        }
        if (!all_space && !region.contains(Point{xs_[i], ys_[i]})) continue;
        out.push_back(static_cast<DetectionRef>(i));
      }
    }
    return out;
  }

  /// Full-store scan with block skipping: rows inside `circle` during
  /// `interval`, in row order.
  [[nodiscard]] std::vector<DetectionRef> scan_circle(
      const Circle& circle, const TimeInterval& interval) const {
    std::vector<DetectionRef> out;
    if (interval.empty() || circle.radius < 0.0) return out;
    Rect box = circle.bounding_box();
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (!z.overlaps(interval) || !z.overlaps(box)) {
        ++blocks_skipped_;
        continue;
      }
      ++blocks_scanned_;
      auto [first, last] = block_rows(b);
      bool all_time = z.within(interval);
      for (std::uint32_t i = first; i < last; ++i) {
        if (!all_time && !(times_[i] >= interval.begin.micros_since_origin() &&
                           times_[i] < interval.end.micros_since_origin())) {
          continue;
        }
        if (!circle.contains(Point{xs_[i], ys_[i]})) continue;
        out.push_back(static_cast<DetectionRef>(i));
      }
    }
    return out;
  }

  /// Full-store scan with block skipping on the camera fingerprint: rows of
  /// `camera` during `interval`, in row order.
  [[nodiscard]] std::vector<DetectionRef> scan_camera(
      CameraId camera, const TimeInterval& interval) const {
    std::vector<DetectionRef> out;
    if (interval.empty()) return out;
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      const DetectionBlockZone& z = zones_[b];
      if (!z.overlaps(interval) || !z.may_contain(camera)) {
        ++blocks_skipped_;
        continue;
      }
      ++blocks_scanned_;
      auto [first, last] = block_rows(b);
      bool all_time = z.within(interval);
      for (std::uint32_t i = first; i < last; ++i) {
        if (cameras_[i] != camera.value()) continue;
        if (!all_time && !(times_[i] >= interval.begin.micros_since_origin() &&
                           times_[i] < interval.end.micros_since_origin())) {
          continue;
        }
        out.push_back(static_cast<DetectionRef>(i));
      }
    }
    return out;
  }

  /// Cumulative zone-map accounting across every block-skipping scan.
  [[nodiscard]] std::uint64_t blocks_scanned() const { return blocks_scanned_; }
  [[nodiscard]] std::uint64_t blocks_skipped() const { return blocks_skipped_; }

  // ------------------------------------------------------------- memory

  /// Exact resident bytes: hot columns + embedding arena + zone maps,
  /// capacity-based (counts allocator slack, unlike the old AoS estimate
  /// that ignored per-vector heap blocks entirely).
  [[nodiscard]] std::size_t memory_bytes() const {
    return memory_breakdown().total();
  }

  [[nodiscard]] MemoryBreakdown memory_breakdown() const {
    MemoryBreakdown m;
    m.column_bytes = ids_.capacity() * sizeof(std::uint64_t) +
                     cameras_.capacity() * sizeof(std::uint64_t) +
                     objects_.capacity() * sizeof(std::uint64_t) +
                     times_.capacity() * sizeof(std::int64_t) +
                     xs_.capacity() * sizeof(double) +
                     ys_.capacity() * sizeof(double) +
                     confidences_.capacity() * sizeof(double) +
                     emb_offsets_.capacity() * sizeof(std::uint64_t);
    m.arena_bytes = arena_.capacity() * sizeof(float);
    m.zone_bytes = zones_.capacity() * sizeof(DetectionBlockZone);
    return m;
  }

 private:
  [[nodiscard]] std::uint32_t checked(DetectionRef ref) const {
    std::uint32_t i = to_index(ref);
    STCN_CHECK(i < ids_.size());
    return i;
  }

  void grow_zone(std::uint32_t row) {
    if (row % kDetectionBlockRows == 0) zones_.emplace_back();
    DetectionBlockZone& z = zones_.back();
    std::int64_t t = times_[row];
    z.t_min = std::min(z.t_min, t);
    z.t_max = std::max(z.t_max, t);
    z.x_min = std::min(z.x_min, xs_[row]);
    z.x_max = std::max(z.x_max, xs_[row]);
    z.y_min = std::min(z.y_min, ys_[row]);
    z.y_max = std::max(z.y_max, ys_[row]);
    std::uint64_t cam = cameras_[row];
    z.camera_min = std::min(z.camera_min, cam);
    z.camera_max = std::max(z.camera_max, cam);
    z.camera_bits |= std::uint64_t{1} << (cam % 64);
  }

  // Hot columns: one contiguous array per attribute, indexed by row.
  std::vector<std::uint64_t> ids_;
  std::vector<std::uint64_t> cameras_;
  std::vector<std::uint64_t> objects_;
  std::vector<std::int64_t> times_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> confidences_;
  // Embedding arena: row i's floats live at [emb_offsets_[i-1],
  // emb_offsets_[i]) (cumulative offsets tolerate ragged dimensions; with
  // uniform dims the arena is a dense row-major matrix).
  std::vector<float> arena_;
  std::vector<std::uint64_t> emb_offsets_;
  std::vector<DetectionBlockZone> zones_;
  mutable std::uint64_t blocks_scanned_ = 0;
  mutable std::uint64_t blocks_skipped_ = 0;
};

}  // namespace stcn
