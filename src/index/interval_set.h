// Disjoint set of half-open time intervals.
//
// Tracks which time ranges of a partition a replica has caught up on
// (replication/recovery) and which windows a continuous query has already
// reported. Insertions merge adjacent/overlapping intervals.
#pragma once

#include <algorithm>
#include <vector>

#include "common/time.h"

namespace stcn {

class IntervalSet {
 public:
  /// Adds [iv.begin, iv.end), merging with existing intervals.
  void add(TimeInterval iv) {
    if (iv.empty()) return;
    // Find all intervals that touch or overlap iv and fold them in.
    auto first = std::lower_bound(
        intervals_.begin(), intervals_.end(), iv.begin,
        [](const TimeInterval& a, TimePoint t) { return a.end < t; });
    auto last = first;
    while (last != intervals_.end() && last->begin <= iv.end) {
      iv.begin = std::min(iv.begin, last->begin);
      iv.end = std::max(iv.end, last->end);
      ++last;
    }
    auto pos = intervals_.erase(first, last);
    intervals_.insert(pos, iv);
  }

  [[nodiscard]] bool contains(TimePoint t) const {
    auto it = std::upper_bound(
        intervals_.begin(), intervals_.end(), t,
        [](TimePoint tp, const TimeInterval& a) { return tp < a.end; });
    return it != intervals_.end() && it->contains(t);
  }

  /// True iff every instant of `iv` is covered.
  [[nodiscard]] bool covers(const TimeInterval& iv) const {
    if (iv.empty()) return true;
    for (const TimeInterval& have : intervals_) {
      if (have.begin <= iv.begin && iv.end <= have.end) return true;
    }
    return false;
  }

  /// Sub-intervals of `iv` NOT covered by this set, in time order.
  [[nodiscard]] std::vector<TimeInterval> gaps(const TimeInterval& iv) const {
    std::vector<TimeInterval> out;
    if (iv.empty()) return out;
    TimePoint cursor = iv.begin;
    for (const TimeInterval& have : intervals_) {
      if (have.end <= cursor) continue;
      if (have.begin >= iv.end) break;
      if (have.begin > cursor) {
        out.push_back({cursor, std::min(have.begin, iv.end)});
      }
      cursor = std::max(cursor, have.end);
      if (cursor >= iv.end) break;
    }
    if (cursor < iv.end) out.push_back({cursor, iv.end});
    return out;
  }

  [[nodiscard]] Duration total_length() const {
    Duration total = Duration::zero();
    for (const TimeInterval& iv : intervals_) total = total + iv.length();
    return total;
  }

  [[nodiscard]] const std::vector<TimeInterval>& intervals() const {
    return intervals_;
  }
  [[nodiscard]] bool empty() const { return intervals_.empty(); }

 private:
  std::vector<TimeInterval> intervals_;  // sorted, disjoint, non-touching
};

}  // namespace stcn
