// A sealed, compressed 4096-row detection block — the cold-tier unit.
//
// Column encodings (common/codec.h): FOR-packed time and detection ids,
// dictionary-coded camera/object ids, FOR-quantized positions (30-bit:
// error ≤ range·2⁻³¹, sub-micrometre at city scale) and confidences
// (15-bit), plus an int8-quantized embedding arena with per-row
// scale/offset/code-sum parameters (common/appearance_kernel.h).
//
// Lossless columns: time, ids, cameras, objects. Lossy-but-stable columns:
// positions/confidences quantize once on demotion; because quanta are
// powers of two, re-encoding decoded values (compaction rewriting a cold
// block) is lossless, so values never drift after the first demotion.
// Embeddings re-quantize with bounded drift (≤ scale per component per
// re-encode); the compaction fast path adopts cold blocks verbatim, so in
// practice embeddings encode exactly once too.
//
// Scans never materialize the block: the filter_* members run the
// decode-fused kernels from common/filter_kernel.h, writing decoded
// columns into caller scratch while emitting block-local selection
// vectors; refine_* members gather-decode survivors only. Camera equality
// filters compare dictionary codes without decoding at all.
//
// Every block carries a process-unique `uid` assigned when its content is
// created (encode or deserialize). Content is immutable afterwards, so the
// uid doubles as a decode-scratch cache tag: copies share content and may
// share the tag; distinct contents can never collide.
#pragma once

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/appearance_kernel.h"
#include "common/codec.h"
#include "common/filter_kernel.h"
#include "common/serialize.h"

namespace stcn {

/// Quantization precision for position columns. 30 bits keeps the decode
/// grid ~2⁻³⁰ of the block's coordinate range — far below sensor noise and
/// fine enough that randomized differential tests never see a predicate
/// flip at a query boundary.
inline constexpr int kPositionPrecisionBits = 30;
/// Confidence is only ever thresholded/reported, never range-scanned;
/// 15 bits (≈3e-5 absolute error on [0,1]) is plenty.
inline constexpr int kConfidencePrecisionBits = 15;

[[nodiscard]] inline std::uint64_t next_compressed_block_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

struct CompressedBlock {
  std::uint32_t rows = 0;
  std::uint64_t uid = 0;  // content tag for decode-scratch caching

  PackedI64Column times;
  PackedU64Column ids;
  DictU64Column cameras;
  DictU64Column objects;
  QuantizedDoubleColumn xs;
  QuantizedDoubleColumn ys;
  QuantizedDoubleColumn confidences;

  // Int8 embedding arena. Uniform-dimension blocks (the norm) store the
  // dimension once and no offsets; ragged blocks carry cumulative code end
  // offsets per row.
  std::uint32_t emb_dim = 0;
  std::vector<std::int8_t> emb_codes;
  std::vector<std::uint32_t> emb_ends;  // empty ⇔ uniform emb_dim layout
  std::vector<float> emb_scales;
  std::vector<float> emb_offsets;
  std::vector<std::int32_t> emb_code_sums;
  std::vector<std::int32_t> emb_abs_code_sums;

  /// Encodes `n` rows given as parallel column arrays. Row i's embedding
  /// floats live at arena[(i == 0 ? 0 : emb_ends_in[i-1]) .. emb_ends_in[i]).
  static CompressedBlock encode(const std::uint64_t* id_col,
                                const std::uint64_t* camera_col,
                                const std::uint64_t* object_col,
                                const std::int64_t* time_col,
                                const double* x_col, const double* y_col,
                                const double* conf_col, const float* arena,
                                const std::uint64_t* emb_ends_in,
                                std::uint32_t n) {
    CompressedBlock b;
    b.rows = n;
    b.uid = next_compressed_block_uid();
    b.times = PackedI64Column::encode(time_col, n);
    b.ids = PackedU64Column::encode(id_col, n);
    b.cameras = DictU64Column::encode(camera_col, n);
    b.objects = DictU64Column::encode(object_col, n);
    b.xs = QuantizedDoubleColumn::encode(x_col, n, kPositionPrecisionBits);
    b.ys = QuantizedDoubleColumn::encode(y_col, n, kPositionPrecisionBits);
    b.confidences =
        QuantizedDoubleColumn::encode(conf_col, n, kConfidencePrecisionBits);

    bool uniform = n > 0;
    std::uint64_t dim0 = n > 0 ? emb_ends_in[0] : 0;
    for (std::uint32_t i = 1; i < n && uniform; ++i) {
      uniform = emb_ends_in[i] - emb_ends_in[i - 1] == dim0;
    }
    std::uint64_t total = n > 0 ? emb_ends_in[n - 1] : 0;
    b.emb_codes.resize(total);
    b.emb_scales.resize(n);
    b.emb_offsets.resize(n);
    b.emb_code_sums.resize(n);
    b.emb_abs_code_sums.resize(n);
    if (uniform) {
      b.emb_dim = static_cast<std::uint32_t>(dim0);
    } else {
      b.emb_ends.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        b.emb_ends[i] = static_cast<std::uint32_t>(emb_ends_in[i]);
      }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t begin = i == 0 ? 0 : emb_ends_in[i - 1];
      std::uint64_t dim = emb_ends_in[i] - begin;
      EmbeddingQuantParams p =
          quantize_embedding(arena + begin, dim, b.emb_codes.data() + begin);
      b.emb_scales[i] = p.scale;
      b.emb_offsets[i] = p.offset;
      b.emb_code_sums[i] = p.code_sum;
      b.emb_abs_code_sums[i] = p.abs_code_sum;
    }
    return b;
  }

  // ------------------------------------------------------ per-row access

  [[nodiscard]] std::uint64_t id_at(std::uint32_t i) const {
    return ids.at(i);
  }
  [[nodiscard]] std::uint64_t camera_at(std::uint32_t i) const {
    return cameras.at(i);
  }
  [[nodiscard]] std::uint64_t object_at(std::uint32_t i) const {
    return objects.at(i);
  }
  [[nodiscard]] std::int64_t time_at(std::uint32_t i) const {
    return times.at(i);
  }
  [[nodiscard]] double x_at(std::uint32_t i) const { return xs.at(i); }
  [[nodiscard]] double y_at(std::uint32_t i) const { return ys.at(i); }
  [[nodiscard]] double confidence_at(std::uint32_t i) const {
    return confidences.at(i);
  }

  [[nodiscard]] std::uint64_t emb_begin(std::uint32_t i) const {
    if (emb_ends.empty()) return static_cast<std::uint64_t>(i) * emb_dim;
    return i == 0 ? 0 : emb_ends[i - 1];
  }
  [[nodiscard]] std::uint32_t emb_dim_of(std::uint32_t i) const {
    if (emb_ends.empty()) return emb_dim;
    return emb_ends[i] - (i == 0 ? 0 : emb_ends[i - 1]);
  }
  [[nodiscard]] EmbeddingQuantParams quant_params(std::uint32_t i) const {
    return {emb_scales[i], emb_offsets[i], emb_code_sums[i],
            emb_abs_code_sums[i]};
  }
  /// Decodes row i's embedding into `out` (emb_dim_of(i) floats).
  void decode_embedding(std::uint32_t i, float* out) const {
    std::uint64_t begin = emb_begin(i);
    std::uint32_t dim = emb_dim_of(i);
    float s = emb_scales[i];
    float o = emb_offsets[i];
    const std::int8_t* q = emb_codes.data() + begin;
    for (std::uint32_t k = 0; k < dim; ++k) {
      out[k] = o + s * static_cast<float>(q[k]);
    }
  }

  // ------------------------------------------------- whole-column decode

  void decode_times(std::int64_t* out) const { times.decode_into(out); }
  void decode_ids(std::uint64_t* out) const { ids.decode_into(out); }
  void decode_cameras(std::uint64_t* out) const { cameras.decode_into(out); }
  void decode_objects(std::uint64_t* out) const { objects.decode_into(out); }
  void decode_xs(double* out) const { xs.decode_into(out); }
  void decode_ys(double* out) const { ys.decode_into(out); }
  void decode_confidences(double* out) const { confidences.decode_into(out); }

  // -------------------------------------------------- decode-fused scans
  //
  // All selection vectors are block-local ([0, rows)); the store offsets
  // them to global ids once per morsel. filter_time / filter_rect /
  // filter_circle also write the decoded column(s) into the caller's
  // scratch, so a follow-up aggregation pass reads plain arrays.

  std::uint32_t filter_time(std::int64_t t0, std::int64_t t1,
                            std::int64_t* times_out,
                            std::uint32_t* sel) const {
    if (times.codes.width == 0) {
      std::int64_t t =
          times.base + static_cast<std::int64_t>(times.codes.base);
      for (std::uint32_t i = 0; i < rows; ++i) times_out[i] = t;
      return t >= t0 && t < t1 ? fill_identity(0, rows, sel) : 0;
    }
    std::int64_t base =
        times.base + static_cast<std::int64_t>(times.codes.base);
    return times.codes.dispatch_width([&](auto w) {
      return filter_time_decode<decltype(w)::value>(
          times.codes.data.data(), base, rows, t0, t1, times_out, sel);
    });
  }

  std::uint32_t refine_time(std::int64_t t0, std::int64_t t1,
                            std::uint32_t* sel, std::uint32_t n) const {
    if (times.codes.width == 0) {
      std::int64_t t =
          times.base + static_cast<std::int64_t>(times.codes.base);
      return t >= t0 && t < t1 ? n : 0;
    }
    std::int64_t base =
        times.base + static_cast<std::int64_t>(times.codes.base);
    return times.codes.dispatch_width([&](auto w) {
      return refine_time_decode<decltype(w)::value>(times.codes.data.data(),
                                                    base, t0, t1, sel, n);
    });
  }

  std::uint32_t filter_rect(const Rect& region, double* xs_out,
                            double* ys_out, std::uint32_t* sel) const {
    if (xs.codes.width == 0 || ys.codes.width == 0) {
      // Degenerate (constant) axis: decode both columns, then the plain
      // kernel — correctness path, vanishingly rare on real blocks.
      xs.decode_into(xs_out);
      ys.decode_into(ys_out);
      return stcn::filter_rect(xs_out, ys_out, 0, rows, region, sel);
    }
    double xb = xs.base + xs.quantum * static_cast<double>(xs.codes.base);
    double yb = ys.base + ys.quantum * static_cast<double>(ys.codes.base);
    return xs.codes.dispatch_width([&](auto wx) {
      return ys.codes.dispatch_width([&](auto wy) {
        return filter_rect_decode<decltype(wx)::value, decltype(wy)::value>(
            xs.codes.data.data(), xb, xs.quantum, ys.codes.data.data(), yb,
            ys.quantum, rows, region, xs_out, ys_out, sel);
      });
    });
  }

  std::uint32_t refine_rect(const Rect& region, std::uint32_t* sel,
                            std::uint32_t n) const {
    if (xs.codes.width == 0 || ys.codes.width == 0) {
      std::uint32_t m = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t row = sel[i];
        double x = xs.at(row), y = ys.at(row);
        sel[m] = row;
        m += static_cast<std::uint32_t>(x >= region.min.x) &
             static_cast<std::uint32_t>(x < region.max.x) &
             static_cast<std::uint32_t>(y >= region.min.y) &
             static_cast<std::uint32_t>(y < region.max.y);
      }
      return m;
    }
    double xb = xs.base + xs.quantum * static_cast<double>(xs.codes.base);
    double yb = ys.base + ys.quantum * static_cast<double>(ys.codes.base);
    return xs.codes.dispatch_width([&](auto wx) {
      return ys.codes.dispatch_width([&](auto wy) {
        return refine_rect_decode<decltype(wx)::value, decltype(wy)::value>(
            xs.codes.data.data(), xb, xs.quantum, ys.codes.data.data(), yb,
            ys.quantum, region, sel, n);
      });
    });
  }

  std::uint32_t filter_circle(Point center, double radius, double* xs_out,
                              double* ys_out, std::uint32_t* sel) const {
    if (xs.codes.width == 0 || ys.codes.width == 0) {
      xs.decode_into(xs_out);
      ys.decode_into(ys_out);
      return stcn::filter_circle(xs_out, ys_out, 0, rows, center, radius,
                                 sel);
    }
    double xb = xs.base + xs.quantum * static_cast<double>(xs.codes.base);
    double yb = ys.base + ys.quantum * static_cast<double>(ys.codes.base);
    return xs.codes.dispatch_width([&](auto wx) {
      return ys.codes.dispatch_width([&](auto wy) {
        return filter_circle_decode<decltype(wx)::value, decltype(wy)::value>(
            xs.codes.data.data(), xb, xs.quantum, ys.codes.data.data(), yb,
            ys.quantum, rows, center, radius, xs_out, ys_out, sel);
      });
    });
  }

  std::uint32_t refine_circle(Point center, double radius, std::uint32_t* sel,
                              std::uint32_t n) const {
    if (xs.codes.width == 0 || ys.codes.width == 0) {
      double r2 = radius * radius;
      std::uint32_t m = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t row = sel[i];
        double dx = xs.at(row) - center.x;
        double dy = ys.at(row) - center.y;
        sel[m] = row;
        m += static_cast<std::uint32_t>(dx * dx + dy * dy <= r2);
      }
      return m;
    }
    double xb = xs.base + xs.quantum * static_cast<double>(xs.codes.base);
    double yb = ys.base + ys.quantum * static_cast<double>(ys.codes.base);
    return xs.codes.dispatch_width([&](auto wx) {
      return ys.codes.dispatch_width([&](auto wy) {
        return refine_circle_decode<decltype(wx)::value, decltype(wy)::value>(
            xs.codes.data.data(), xb, xs.quantum, ys.codes.data.data(), yb,
            ys.quantum, center, radius, sel, n);
      });
    });
  }

  std::uint32_t filter_camera(std::uint64_t camera, std::uint32_t* sel) const {
    std::int64_t idx = cameras.code_of(camera);
    if (idx < 0) return 0;
    auto target = static_cast<std::uint64_t>(idx);
    if (cameras.codes.width == 0) {
      return cameras.codes.base == target ? fill_identity(0, rows, sel) : 0;
    }
    if (target < cameras.codes.base) return 0;
    std::uint64_t raw = target - cameras.codes.base;
    return cameras.codes.dispatch_width([&](auto w) {
      return filter_code_eq<decltype(w)::value>(cameras.codes.data.data(),
                                                raw, rows, sel);
    });
  }

  std::uint32_t refine_camera(std::uint64_t camera, std::uint32_t* sel,
                              std::uint32_t n) const {
    std::int64_t idx = cameras.code_of(camera);
    if (idx < 0) return 0;
    auto target = static_cast<std::uint64_t>(idx);
    if (cameras.codes.width == 0) {
      return cameras.codes.base == target ? n : 0;
    }
    if (target < cameras.codes.base) return 0;
    std::uint64_t raw = target - cameras.codes.base;
    return cameras.codes.dispatch_width([&](auto w) {
      return refine_code_eq<decltype(w)::value>(cameras.codes.data.data(),
                                                raw, sel, n);
    });
  }

  // ------------------------------------------------------------- memory

  [[nodiscard]] std::size_t compressed_bytes() const {
    return times.resident_bytes() + ids.resident_bytes() +
           cameras.resident_bytes() + objects.resident_bytes() +
           xs.resident_bytes() + ys.resident_bytes() +
           confidences.resident_bytes() + emb_codes.capacity() +
           emb_ends.capacity() * sizeof(std::uint32_t) +
           (emb_scales.capacity() + emb_offsets.capacity()) * sizeof(float) +
           (emb_code_sums.capacity() + emb_abs_code_sums.capacity()) *
               sizeof(std::int32_t);
  }

  // ---------------------------------------------------------- snapshots

  void serialize_to(BinaryWriter& w) const {
    w.write_u32(rows);
    times.serialize_to(w);
    ids.serialize_to(w);
    cameras.serialize_to(w);
    objects.serialize_to(w);
    xs.serialize_to(w);
    ys.serialize_to(w);
    confidences.serialize_to(w);
    w.write_u8(emb_ends.empty() ? 0 : 1);
    if (emb_ends.empty()) {
      w.write_u32(emb_dim);
    } else {
      w.write_u32(static_cast<std::uint32_t>(emb_ends.size()));
      for (std::uint32_t e : emb_ends) w.write_u32(e);
    }
    w.write_u32(static_cast<std::uint32_t>(emb_codes.size()));
    for (std::int8_t c : emb_codes) {
      w.write_u8(static_cast<std::uint8_t>(c));
    }
    for (std::uint32_t i = 0; i < rows; ++i) {
      w.write_u32(std::bit_cast<std::uint32_t>(emb_scales[i]));
      w.write_u32(std::bit_cast<std::uint32_t>(emb_offsets[i]));
      w.write_u32(static_cast<std::uint32_t>(emb_code_sums[i]));
      w.write_u32(static_cast<std::uint32_t>(emb_abs_code_sums[i]));
    }
  }

  /// Returns false (reader poisoned) on any inconsistency; a malformed
  /// snapshot can never produce a block whose decode reads out of bounds.
  [[nodiscard]] static bool deserialize_from(BinaryReader& r,
                                             CompressedBlock& out) {
    CompressedBlock b;
    b.rows = r.read_u32();
    if (r.failed() || !b.times.deserialize_from(r) ||
        !b.ids.deserialize_from(r) || !b.cameras.deserialize_from(r) ||
        !b.objects.deserialize_from(r) || !b.xs.deserialize_from(r) ||
        !b.ys.deserialize_from(r) || !b.confidences.deserialize_from(r)) {
      return false;
    }
    auto poison = [&r] {
      (void)r.read_bytes(r.remaining() + 1);
      return false;
    };
    if (b.times.codes.rows != b.rows || b.ids.rows != b.rows ||
        b.cameras.codes.rows != b.rows || b.objects.codes.rows != b.rows ||
        b.xs.codes.rows != b.rows || b.ys.codes.rows != b.rows ||
        b.confidences.codes.rows != b.rows) {
      return poison();
    }
    std::uint8_t ragged = r.read_u8();
    std::uint64_t expected_codes = 0;
    if (ragged == 0) {
      b.emb_dim = r.read_u32();
      expected_codes = static_cast<std::uint64_t>(b.emb_dim) * b.rows;
    } else {
      std::uint32_t n = r.read_u32();
      if (r.failed() || n != b.rows ||
          static_cast<std::uint64_t>(n) * 4 > r.remaining()) {
        return poison();
      }
      b.emb_ends.reserve(n);
      std::uint32_t prev = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t e = r.read_u32();
        if (e < prev) return poison();
        b.emb_ends.push_back(e);
        prev = e;
      }
      expected_codes = prev;
    }
    std::uint32_t code_count = r.read_u32();
    if (r.failed() || code_count != expected_codes ||
        code_count > r.remaining()) {
      return poison();
    }
    b.emb_codes.reserve(code_count);
    for (std::uint32_t i = 0; i < code_count; ++i) {
      b.emb_codes.push_back(static_cast<std::int8_t>(r.read_u8()));
    }
    if (static_cast<std::uint64_t>(b.rows) * 16 > r.remaining()) {
      return poison();
    }
    b.emb_scales.reserve(b.rows);
    b.emb_offsets.reserve(b.rows);
    b.emb_code_sums.reserve(b.rows);
    b.emb_abs_code_sums.reserve(b.rows);
    for (std::uint32_t i = 0; i < b.rows; ++i) {
      float scale = std::bit_cast<float>(r.read_u32());
      float offset = std::bit_cast<float>(r.read_u32());
      if (!std::isfinite(scale) || !std::isfinite(offset)) return poison();
      b.emb_scales.push_back(scale);
      b.emb_offsets.push_back(offset);
      b.emb_code_sums.push_back(static_cast<std::int32_t>(r.read_u32()));
      b.emb_abs_code_sums.push_back(static_cast<std::int32_t>(r.read_u32()));
    }
    if (r.failed()) return false;
    b.uid = next_compressed_block_uid();
    out = std::move(b);
    return true;
  }
};

}  // namespace stcn
