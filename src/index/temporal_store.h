// Time-ordered detection log with per-camera sub-logs.
//
// Supports "all detections at camera c during [t1, t2)" — the primitive the
// re-identification engine issues after transition-graph pruning has chosen
// candidate cameras — plus whole-log time slicing for replication catch-up.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "index/detection_store.h"

namespace stcn {

class TemporalStore {
 public:
  void insert(const DetectionStore& store, DetectionRef ref) {
    TimePoint time = store.time_of(ref);
    insert_sorted(log_, time, ref);
    insert_sorted(by_camera_[store.camera_of(ref)], time, ref);
  }

  /// All detections during `interval`, time-ordered.
  [[nodiscard]] std::vector<DetectionRef> query(
      const TimeInterval& interval) const {
    return slice(log_, interval);
  }

  /// Detections of one camera during `interval`, time-ordered.
  [[nodiscard]] std::vector<DetectionRef> query_camera(
      CameraId camera, const TimeInterval& interval) const {
    auto it = by_camera_.find(camera);
    if (it == by_camera_.end()) return {};
    return slice(it->second, interval);
  }

  [[nodiscard]] std::size_t size() const { return log_.size(); }
  [[nodiscard]] std::size_t camera_count() const { return by_camera_.size(); }

 private:
  struct Entry {
    TimePoint time;
    DetectionRef ref;
  };

  static void insert_sorted(std::vector<Entry>& log, TimePoint time,
                            DetectionRef ref) {
    Entry entry{time, ref};
    if (log.empty() || log.back().time <= time) {
      log.push_back(entry);
    } else {
      auto it = std::upper_bound(
          log.begin(), log.end(), time,
          [](TimePoint t, const Entry& e) { return t < e.time; });
      log.insert(it, entry);
    }
  }

  static std::vector<DetectionRef> slice(const std::vector<Entry>& log,
                                         const TimeInterval& interval) {
    std::vector<DetectionRef> out;
    auto lo = std::lower_bound(
        log.begin(), log.end(), interval.begin,
        [](const Entry& e, TimePoint t) { return e.time < t; });
    for (auto e = lo; e != log.end() && e->time < interval.end; ++e) {
      out.push_back(e->ref);
    }
    return out;
  }

  std::vector<Entry> log_;
  std::unordered_map<CameraId, std::vector<Entry>> by_camera_;
};

}  // namespace stcn
