#include "index/grid_index.h"

#include <algorithm>
#include <cmath>

namespace stcn {

GridIndex::GridIndex(const GridIndexConfig& config) : config_(config) {
  STCN_CHECK(!config.bounds.is_empty());
  STCN_CHECK(config.cell_size > 0.0);
  cols_ = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(
             std::ceil(config.bounds.width() / config.cell_size)));
  rows_ = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(
             std::ceil(config.bounds.height() / config.cell_size)));
  cells_.resize(static_cast<std::size_t>(cols_) * rows_);
}

std::int32_t GridIndex::clamp_cx(double x) const {
  auto c = static_cast<std::int32_t>(
      std::floor((x - config_.bounds.min.x) / config_.cell_size));
  return std::clamp(c, 0, cols_ - 1);
}

std::int32_t GridIndex::clamp_cy(double y) const {
  auto c = static_cast<std::int32_t>(
      std::floor((y - config_.bounds.min.y) / config_.cell_size));
  return std::clamp(c, 0, rows_ - 1);
}

void GridIndex::insert(const DetectionStore& store, DetectionRef ref) {
  Point p = store.position_of(ref);
  TimePoint time = store.time_of(ref);
  Cell& cell = cells_[cell_index(clamp_cx(p.x), clamp_cy(p.y))];
  cell.x_min = std::min(cell.x_min, p.x);
  cell.x_max = std::max(cell.x_max, p.x);
  cell.y_min = std::min(cell.y_min, p.y);
  cell.y_max = std::max(cell.y_max, p.y);
  Entry entry{time, ref};
  // Near-time-ordered arrival: usually appended at the back.
  if (cell.entries.empty() || cell.entries.back().time <= time) {
    cell.entries.push_back(entry);
  } else {
    auto it = std::upper_bound(
        cell.entries.begin(), cell.entries.end(), time,
        [](TimePoint t, const Entry& e) { return t < e.time; });
    cell.entries.insert(it, entry);
  }
  ++size_;
}

template <typename Pred>
void GridIndex::scan_cell(const DetectionStore& store, const Cell& cell,
                          const TimeInterval& interval,
                          bool skip_position_checks, Pred&& keep,
                          std::vector<DetectionRef>& out) const {
  ++cells_probed_;
  auto lo = std::lower_bound(
      cell.entries.begin(), cell.entries.end(), interval.begin,
      [](const Entry& e, TimePoint t) { return e.time < t; });
  for (auto it = lo; it != cell.entries.end() && it->time < interval.end;
       ++it) {
    if (skip_position_checks || keep(store.position_of(it->ref))) {
      out.push_back(it->ref);
    }
  }
}

std::vector<DetectionRef> GridIndex::query_range(
    const DetectionStore& store, const Rect& region,
    const TimeInterval& interval, MorselStats* stats) const {
  std::vector<DetectionRef> out;
  if (region.is_empty() || interval.empty()) return out;
  // Full-area query: every cell would be probed anyway, and border cells
  // hold clamped out-of-bounds rows that still need exact filtering — the
  // store's block-skipping columnar scan does the same work with
  // sequential column reads and zone-map skipping.
  if (region.min.x <= config_.bounds.min.x &&
      region.min.y <= config_.bounds.min.y &&
      region.max.x >= config_.bounds.max.x &&
      region.max.y >= config_.bounds.max.y) {
    return store.scan_range(region, interval, stats);
  }
  Rect clipped = region.intersection(config_.bounds);
  if (clipped.is_empty() && !config_.bounds.overlaps(region)) return out;

  std::int32_t cx0 = clamp_cx(region.min.x);
  std::int32_t cx1 = clamp_cx(region.max.x);
  std::int32_t cy0 = clamp_cy(region.min.y);
  std::int32_t cy1 = clamp_cy(region.max.y);
  for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
      const Cell& cell = cells_[cell_index(cx, cy)];
      scan_cell(store, cell, interval, cell.within(region),
                [&region](Point p) { return region.contains(p); }, out);
    }
  }
  return out;
}

std::vector<DetectionRef> GridIndex::query_circle(
    const DetectionStore& store, const Circle& circle,
    const TimeInterval& interval, MorselStats* stats) const {
  std::vector<DetectionRef> out;
  if (interval.empty() || circle.radius < 0.0) return out;
  Rect box = circle.bounding_box();
  // Bounding box swallowing the whole index area: the grid walk would
  // probe every cell with per-row distance checks anyway; the store's
  // vectorized circle scan gets zone-map skipping plus the fully-inside
  // corner-containment fast path.
  if (box.min.x <= config_.bounds.min.x && box.min.y <= config_.bounds.min.y &&
      box.max.x >= config_.bounds.max.x && box.max.y >= config_.bounds.max.y) {
    return store.scan_circle(circle, interval, stats);
  }
  std::int32_t cx0 = clamp_cx(box.min.x);
  std::int32_t cx1 = clamp_cx(box.max.x);
  std::int32_t cy0 = clamp_cy(box.min.y);
  std::int32_t cy1 = clamp_cy(box.max.y);
  for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
      const Cell& cell = cells_[cell_index(cx, cy)];
      scan_cell(store, cell, interval, cell.within(circle),
                [&circle](Point p) { return circle.contains(p); }, out);
    }
  }
  return out;
}

std::vector<std::pair<DetectionRef, double>> GridIndex::query_knn(
    const DetectionStore& store, Point center, std::size_t k,
    const TimeInterval& interval) const {
  std::vector<std::pair<DetectionRef, double>> best;  // max-heap by distance
  if (k == 0 || interval.empty() || size_ == 0) return best;
  auto cmp = [](const auto& a, const auto& b) { return a.second < b.second; };

  std::int32_t ccx = clamp_cx(center.x);
  std::int32_t ccy = clamp_cy(center.y);
  std::int32_t max_ring = std::max(cols_, rows_);

  for (std::int32_t ring = 0; ring <= max_ring; ++ring) {
    // Once we hold k candidates, stop when even the nearest point of this
    // ring's cells cannot beat the current k-th distance.
    if (best.size() == k) {
      double ring_min_dist =
          (static_cast<double>(ring) - 1.0) * config_.cell_size;
      if (ring_min_dist > best.front().second) break;
    }
    // Visit the cells forming the square ring at L∞ distance `ring`.
    std::int32_t cx0 = ccx - ring;
    std::int32_t cx1 = ccx + ring;
    std::int32_t cy0 = ccy - ring;
    std::int32_t cy1 = ccy + ring;
    bool any_cell = false;
    for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
      if (cy < 0 || cy >= rows_) continue;
      for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
        if (cx < 0 || cx >= cols_) continue;
        bool on_ring = (cy == cy0 || cy == cy1 || cx == cx0 || cx == cx1);
        if (!on_ring) continue;
        any_cell = true;
        const Cell& cell = cells_[cell_index(cx, cy)];
        ++cells_probed_;
        auto lo = std::lower_bound(
            cell.entries.begin(), cell.entries.end(), interval.begin,
            [](const Entry& e, TimePoint t) { return e.time < t; });
        for (auto it = lo;
             it != cell.entries.end() && it->time < interval.end; ++it) {
          double dist = distance(store.position_of(it->ref), center);
          if (best.size() < k) {
            best.emplace_back(it->ref, dist);
            std::push_heap(best.begin(), best.end(), cmp);
          } else if (dist < best.front().second) {
            std::pop_heap(best.begin(), best.end(), cmp);
            best.back() = {it->ref, dist};
            std::push_heap(best.begin(), best.end(), cmp);
          }
        }
      }
    }
    if (!any_cell && ring > 0 && (ccx - ring < 0 && ccx + ring >= cols_ &&
                                  ccy - ring < 0 && ccy + ring >= rows_)) {
      break;  // the whole grid has been exhausted
    }
  }
  std::sort_heap(best.begin(), best.end(), cmp);
  return best;
}

}  // namespace stcn
