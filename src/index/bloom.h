// Bloom filter over 64-bit keys.
//
// Used for object-presence summaries: each worker periodically publishes,
// per partition, a Bloom filter of the object ids it has seen. The
// coordinator uses them to prune trajectory-query fan-out. Bloom filters
// admit false positives (harmless: an extra partition is queried) but
// never false negatives (required: pruning must be sound).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace stcn {

class BloomFilter {
 public:
  /// `bits` is rounded up to a multiple of 64; `hashes` in [1, 16].
  explicit BloomFilter(std::size_t bits = 1024, int hashes = 4)
      : words_((bits + 63) / 64, 0), hashes_(hashes) {
    STCN_CHECK(bits > 0);
    STCN_CHECK(hashes >= 1 && hashes <= 16);
  }

  void insert(std::uint64_t key) {
    auto [h1, h2] = hash_pair(key);
    for (int i = 0; i < hashes_; ++i) {
      set_bit((h1 + static_cast<std::uint64_t>(i) * h2) % bit_count());
    }
    ++inserted_;
  }

  [[nodiscard]] bool may_contain(std::uint64_t key) const {
    auto [h1, h2] = hash_pair(key);
    for (int i = 0; i < hashes_; ++i) {
      if (!get_bit((h1 + static_cast<std::uint64_t>(i) * h2) % bit_count())) {
        return false;
      }
    }
    return true;
  }

  void clear() {
    std::fill(words_.begin(), words_.end(), 0);
    inserted_ = 0;
  }

  /// Unions `other` into this filter (must have identical geometry).
  void merge(const BloomFilter& other) {
    STCN_CHECK(words_.size() == other.words_.size());
    STCN_CHECK(hashes_ == other.hashes_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
    inserted_ += other.inserted_;
  }

  [[nodiscard]] std::size_t bit_count() const { return words_.size() * 64; }
  [[nodiscard]] std::uint64_t inserted() const { return inserted_; }
  [[nodiscard]] double fill_ratio() const {
    std::size_t set = 0;
    for (std::uint64_t w : words_) set += static_cast<std::size_t>(__builtin_popcountll(w));
    return static_cast<double>(set) / static_cast<double>(bit_count());
  }
  [[nodiscard]] std::size_t wire_bytes() const {
    return words_.size() * sizeof(std::uint64_t) + 8;
  }

  void serialize_to(BinaryWriter& w) const {
    w.write_u32(static_cast<std::uint32_t>(words_.size()));
    w.write_u8(static_cast<std::uint8_t>(hashes_));
    w.write_u64(inserted_);
    for (std::uint64_t word : words_) w.write_u64(word);
  }

  static BloomFilter deserialize_from(BinaryReader& r) {
    std::uint32_t word_count = r.read_u32();
    auto hashes = static_cast<int>(r.read_u8());
    std::uint64_t inserted = r.read_u64();
    if (r.failed() || word_count == 0 || word_count > (1u << 20) ||
        hashes < 1 || hashes > 16) {
      return BloomFilter(64, 1);  // reader already flagged failure
    }
    BloomFilter f(static_cast<std::size_t>(word_count) * 64, hashes);
    f.inserted_ = inserted;
    for (std::uint32_t i = 0; i < word_count && !r.failed(); ++i) {
      f.words_[i] = r.read_u64();
    }
    return f;
  }

  friend bool operator==(const BloomFilter& a, const BloomFilter& b) {
    return a.words_ == b.words_ && a.hashes_ == b.hashes_;
  }

 private:
  static std::pair<std::uint64_t, std::uint64_t> hash_pair(
      std::uint64_t key) {
    // Two independent mixes (splitmix-style) drive double hashing.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    std::uint64_t h1 = z ^ (z >> 31);
    std::uint64_t y = key * 0xc2b2ae3d27d4eb4fULL + 0x165667b19e3779f9ULL;
    y = (y ^ (y >> 29)) * 0xbf58476d1ce4e5b9ULL;
    std::uint64_t h2 = (y ^ (y >> 32)) | 1;  // odd: full cycle mod 2^k
    return {h1, h2};
  }

  void set_bit(std::size_t bit) {
    words_[bit / 64] |= (1ULL << (bit % 64));
  }
  [[nodiscard]] bool get_bit(std::size_t bit) const {
    return (words_[bit / 64] >> (bit % 64)) & 1;
  }

  std::vector<std::uint64_t> words_;
  int hashes_;
  std::uint64_t inserted_ = 0;
};

}  // namespace stcn
