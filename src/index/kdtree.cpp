#include "index/kdtree.h"

#include <algorithm>

namespace stcn {

KdTree::KdTree(std::vector<Item> items) : items_(std::move(items)) {
  if (!items_.empty()) build(0, items_.size(), 0);
}

void KdTree::build(std::size_t lo, std::size_t hi, int axis) {
  if (hi - lo <= 1) return;
  std::size_t mid = lo + (hi - lo) / 2;
  auto cmp = [axis](const Item& a, const Item& b) {
    return axis == 0 ? a.position.x < b.position.x
                     : a.position.y < b.position.y;
  };
  std::nth_element(items_.begin() + static_cast<std::ptrdiff_t>(lo),
                   items_.begin() + static_cast<std::ptrdiff_t>(mid),
                   items_.begin() + static_cast<std::ptrdiff_t>(hi), cmp);
  build(lo, mid, 1 - axis);
  build(mid + 1, hi, 1 - axis);
}

std::vector<std::pair<KdTree::Item, double>> KdTree::knn(
    Point center, std::size_t k) const {
  nodes_visited_ = 0;
  std::vector<std::pair<Item, double>> heap;  // max-heap by distance
  if (k == 0 || items_.empty()) return heap;
  knn_recurse(0, items_.size(), 0, center, k, heap);
  auto cmp = [](const auto& a, const auto& b) { return a.second < b.second; };
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

void KdTree::knn_recurse(std::size_t lo, std::size_t hi, int axis,
                         Point center, std::size_t k,
                         std::vector<std::pair<Item, double>>& heap) const {
  if (lo >= hi) return;
  ++nodes_visited_;
  std::size_t mid = lo + (hi - lo) / 2;
  const Item& item = items_[mid];
  double dist = distance(item.position, center);
  auto cmp = [](const auto& a, const auto& b) { return a.second < b.second; };
  if (heap.size() < k) {
    heap.emplace_back(item, dist);
    std::push_heap(heap.begin(), heap.end(), cmp);
  } else if (dist < heap.front().second) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    heap.back() = {item, dist};
    std::push_heap(heap.begin(), heap.end(), cmp);
  }

  double center_coord = axis == 0 ? center.x : center.y;
  double split_coord = axis == 0 ? item.position.x : item.position.y;
  double plane_dist = center_coord - split_coord;
  // Descend the near side first, then the far side only if the splitting
  // plane is closer than the current k-th best.
  if (plane_dist < 0) {
    knn_recurse(lo, mid, 1 - axis, center, k, heap);
    if (heap.size() < k || -plane_dist < heap.front().second) {
      knn_recurse(mid + 1, hi, 1 - axis, center, k, heap);
    }
  } else {
    knn_recurse(mid + 1, hi, 1 - axis, center, k, heap);
    if (heap.size() < k || plane_dist < heap.front().second) {
      knn_recurse(lo, mid, 1 - axis, center, k, heap);
    }
  }
}

std::vector<KdTree::Item> KdTree::range(const Rect& region) const {
  nodes_visited_ = 0;
  std::vector<Item> out;
  if (!items_.empty()) range_recurse(0, items_.size(), 0, region, out);
  return out;
}

void KdTree::range_recurse(std::size_t lo, std::size_t hi, int axis,
                           const Rect& region, std::vector<Item>& out) const {
  if (lo >= hi) return;
  ++nodes_visited_;
  std::size_t mid = lo + (hi - lo) / 2;
  const Item& item = items_[mid];
  if (region.contains(item.position)) out.push_back(item);

  double split_coord = axis == 0 ? item.position.x : item.position.y;
  double region_lo = axis == 0 ? region.min.x : region.min.y;
  double region_hi = axis == 0 ? region.max.x : region.max.y;
  if (region_lo < split_coord) range_recurse(lo, mid, 1 - axis, region, out);
  if (region_hi > split_coord) {
    range_recurse(mid + 1, hi, 1 - axis, region, out);
  }
}

}  // namespace stcn
