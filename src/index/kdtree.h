// Static 2-d tree over points with 64-bit payloads.
//
// Used where a point set is built once and queried many times: the
// centralized baseline's k-NN path and the index micro-benchmarks (E8/E10).
// Median-split bulk build, O(n log n); k-NN and range queries with standard
// bounding-box pruning.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace stcn {

class KdTree {
 public:
  struct Item {
    Point position;
    std::uint64_t payload = 0;
  };

  KdTree() = default;
  /// Bulk-builds from `items` (copied; order not preserved).
  explicit KdTree(std::vector<Item> items);

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  /// The k items nearest to `center`, nearest first.
  [[nodiscard]] std::vector<std::pair<Item, double>> knn(Point center,
                                                         std::size_t k) const;

  /// All items inside `region`.
  [[nodiscard]] std::vector<Item> range(const Rect& region) const;

  /// Nodes visited by the last query (pruning metric for E10).
  [[nodiscard]] std::uint64_t last_nodes_visited() const {
    return nodes_visited_;
  }

 private:
  void build(std::size_t lo, std::size_t hi, int axis);
  void knn_recurse(std::size_t lo, std::size_t hi, int axis, Point center,
                   std::size_t k,
                   std::vector<std::pair<Item, double>>& heap) const;
  void range_recurse(std::size_t lo, std::size_t hi, int axis,
                     const Rect& region, std::vector<Item>& out) const;

  // Implicit tree: the median of [lo, hi) is the root of that span.
  std::vector<Item> items_;
  mutable std::uint64_t nodes_visited_ = 0;
};

}  // namespace stcn
