// Camera transition graph.
//
// Nodes are cameras; a directed edge a→b records that objects have been
// observed leaving camera a's view and next appearing at camera b, with the
// empirical travel-time distribution. The graph is learned online from the
// detection stream itself (no map needed) and is the framework's pruning
// structure for re-identification: a probe at camera a at time t can only
// reappear at cameras reachable within the elapsed time, i.e. inside a
// spatio-temporal *cone* rooted at (a, t).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "common/time.h"
#include "trace/detection.h"

namespace stcn {

/// Travel-time statistics of one directed camera-to-camera transition.
struct TransitionEdge {
  CameraId to;
  std::uint64_t count = 0;
  double mean_s = 0.0;   // mean travel time, seconds
  double m2_s = 0.0;     // Welford accumulator
  double min_s = 0.0;
  double max_s = 0.0;

  [[nodiscard]] double stddev_s() const;
  /// Plausible travel-time window: [max(0, mean - k·σ) ∪ min, mean + k·σ ∪ max],
  /// widened by `slack_s` to tolerate unseen-but-plausible speeds.
  [[nodiscard]] std::pair<double, double> plausible_window_s(
      double k_sigma, double slack_s) const;
  /// Log-likelihood of observing travel time `dt_s` on this edge (normal
  /// model with a variance floor).
  [[nodiscard]] double log_likelihood(double dt_s) const;
};

struct ConeEntry {
  CameraId camera;
  TimeInterval window;  // when the object could appear there
  std::uint32_t hops = 0;
  double log_prior = 0.0;  // accumulated transition log-frequency
};

class TransitionGraph {
 public:
  /// Records one observed transition (object seen at `from`, next at `to`,
  /// travel time `dt`).
  void observe(CameraId from, CameraId to, Duration dt);

  /// Learns from a full ground-truth-ordered detection list: consecutive
  /// detections of the same object at different cameras within `max_gap`
  /// become transition observations.
  void learn(const std::vector<Detection>& detections_time_ordered,
             Duration max_gap = Duration::minutes(3));

  [[nodiscard]] const std::vector<TransitionEdge>* edges_from(
      CameraId from) const {
    auto it = edges_.find(from);
    return it == edges_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t camera_count() const { return edges_.size(); }
  [[nodiscard]] std::size_t edge_count() const;

  struct ConeParams {
    std::uint32_t max_hops = 3;
    double k_sigma = 3.0;
    double slack_s = 5.0;
    /// Edges seen fewer than this many times are ignored (noise).
    std::uint64_t min_edge_count = 2;
  };

  /// Expands the spatio-temporal cone rooted at (`from`, `t0`), bounded by
  /// `horizon`: every camera the object could plausibly reach, with the
  /// time window of plausible arrival. Windows of the same camera reached
  /// via different hop counts are merged (union; min hops, max prior kept).
  [[nodiscard]] std::vector<ConeEntry> cone(CameraId from, TimePoint t0,
                                            const TimeInterval& horizon,
                                            const ConeParams& params) const;

 private:
  std::unordered_map<CameraId, std::vector<TransitionEdge>> edges_;
};

}  // namespace stcn
