#include "reid/transition_graph.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <queue>

namespace stcn {

double TransitionEdge::stddev_s() const {
  if (count < 2) return 0.0;
  return std::sqrt(m2_s / static_cast<double>(count - 1));
}

std::pair<double, double> TransitionEdge::plausible_window_s(
    double k_sigma, double slack_s) const {
  double sigma = stddev_s();
  double lo = std::min(min_s, mean_s - k_sigma * sigma) - slack_s;
  double hi = std::max(max_s, mean_s + k_sigma * sigma) + slack_s;
  return {std::max(0.0, lo), hi};
}

double TransitionEdge::log_likelihood(double dt_s) const {
  // Variance floor keeps single-observation edges usable.
  double sigma = std::max(stddev_s(), 2.0);
  double z = (dt_s - mean_s) / sigma;
  return -0.5 * z * z - std::log(sigma * std::sqrt(2.0 * std::numbers::pi));
}

void TransitionGraph::observe(CameraId from, CameraId to, Duration dt) {
  auto& out_edges = edges_[from];
  auto it = std::find_if(out_edges.begin(), out_edges.end(),
                         [to](const TransitionEdge& e) { return e.to == to; });
  double dt_s = dt.to_seconds();
  if (it == out_edges.end()) {
    out_edges.push_back(
        {to, 1, dt_s, 0.0, dt_s, dt_s});
    return;
  }
  ++it->count;
  double delta = dt_s - it->mean_s;
  it->mean_s += delta / static_cast<double>(it->count);
  it->m2_s += delta * (dt_s - it->mean_s);
  it->min_s = std::min(it->min_s, dt_s);
  it->max_s = std::max(it->max_s, dt_s);
}

void TransitionGraph::learn(
    const std::vector<Detection>& detections_time_ordered, Duration max_gap) {
  // Last sighting per object.
  std::unordered_map<ObjectId, const Detection*> last;
  for (const Detection& d : detections_time_ordered) {
    auto it = last.find(d.object);
    if (it != last.end()) {
      const Detection& prev = *it->second;
      Duration gap = d.time - prev.time;
      if (prev.camera != d.camera && gap <= max_gap &&
          gap >= Duration::zero()) {
        observe(prev.camera, d.camera, gap);
      }
    }
    last[d.object] = &d;
  }
}

std::size_t TransitionGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& [from, out_edges] : edges_) n += out_edges.size();
  return n;
}

std::vector<ConeEntry> TransitionGraph::cone(CameraId from, TimePoint t0,
                                             const TimeInterval& horizon,
                                             const ConeParams& params) const {
  // BFS over edges, accumulating arrival windows. Per camera we keep the
  // union of windows (earliest begin, latest end) with the fewest hops.
  std::unordered_map<CameraId, ConeEntry> best;

  struct Frontier {
    CameraId camera;
    TimeInterval window;  // plausible presence window at this camera
    std::uint32_t hops;
    double log_prior;
  };
  std::queue<Frontier> frontier;
  frontier.push({from, {t0, t0}, 0, 0.0});

  while (!frontier.empty()) {
    Frontier cur = frontier.front();
    frontier.pop();
    if (cur.hops >= params.max_hops) continue;
    const auto* out_edges = edges_from(cur.camera);
    if (out_edges == nullptr) continue;

    double total_out = 0.0;
    for (const TransitionEdge& e : *out_edges) {
      if (e.count >= params.min_edge_count) {
        total_out += static_cast<double>(e.count);
      }
    }
    if (total_out <= 0.0) continue;

    for (const TransitionEdge& e : *out_edges) {
      if (e.count < params.min_edge_count) continue;
      auto [lo_s, hi_s] = e.plausible_window_s(params.k_sigma, params.slack_s);
      TimeInterval window{
          cur.window.begin + Duration::micros(static_cast<std::int64_t>(lo_s * 1e6)),
          cur.window.end + Duration::micros(static_cast<std::int64_t>(hi_s * 1e6))};
      window = window.intersection(horizon);
      if (window.empty()) continue;
      double log_prior =
          cur.log_prior + std::log(static_cast<double>(e.count) / total_out);

      auto it = best.find(e.to);
      bool expand = false;
      if (it == best.end()) {
        best.emplace(e.to, ConeEntry{e.to, window, cur.hops + 1, log_prior});
        expand = true;
      } else {
        ConeEntry& have = it->second;
        TimeInterval merged{std::min(have.window.begin, window.begin),
                            std::max(have.window.end, window.end)};
        // Re-expand only if the window genuinely grew; prevents exponential
        // re-traversal of dense graphs.
        if (merged.begin < have.window.begin || merged.end > have.window.end) {
          expand = true;
        }
        have.window = merged;
        have.hops = std::min(have.hops, cur.hops + 1);
        have.log_prior = std::max(have.log_prior, log_prior);
      }
      if (expand) {
        frontier.push({e.to, window, cur.hops + 1, log_prior});
      }
    }
  }

  std::vector<ConeEntry> out;
  out.reserve(best.size());
  for (auto& [cam, entry] : best) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const ConeEntry& a, const ConeEntry& b) {
    return a.camera < b.camera;
  });
  return out;
}

}  // namespace stcn
