// Multi-hop path reconstruction across non-overlapping cameras.
//
// Extends single-hop re-identification into a full path: starting from a
// probe detection, a beam search repeatedly applies the cone-pruned matcher
// to the current path head, chaining the most likely reappearances into a
// trajectory hypothesis. The beam keeps the B best partial paths by
// accumulated score; the final answer is the highest-scoring maximal path.
//
// Experiment E6 measures hop-level accuracy of the reconstructed path
// against the trace's ground truth as appearance noise and path length vary.
#pragma once

#include <vector>

#include "reid/reid_engine.h"

namespace stcn {

struct PathParams {
  std::size_t beam_width = 4;
  std::size_t max_path_length = 12;
  /// Per-hop search horizon: how far past the path head to look.
  Duration hop_horizon = Duration::minutes(3);
  /// A hop must score at least this to extend a path (filters garbage
  /// extensions when the true object left the camera network).
  double min_hop_score = 0.0;
};

struct ReconstructedPath {
  std::vector<Detection> hops;  // starts with the probe detection
  double score = 0.0;
  std::uint64_t candidates_examined = 0;
};

class PathReconstructor {
 public:
  PathReconstructor(const ReidEngine& engine, PathParams params)
      : engine_(engine), params_(params) {}

  /// With an active `profiler`, each beam depth records a `path.hop` stage
  /// (candidates examined vs extensions kept), with the matcher's cone/scan
  /// stages nested under it.
  [[nodiscard]] ReconstructedPath reconstruct(
      const Detection& probe, const CandidateSource& source,
      QueryProfiler* profiler = nullptr) const;

  /// Fraction of reconstructed hops whose ground-truth object matches the
  /// probe's (the probe itself is excluded from the denominator). Empty
  /// reconstruction (no hops beyond the probe) scores 0 when the truth has
  /// a continuation, 1 otherwise.
  [[nodiscard]] static double hop_accuracy(const ReconstructedPath& path,
                                           ObjectId truth,
                                           bool truth_has_continuation);

 private:
  const ReidEngine& engine_;
  PathParams params_;
};

}  // namespace stcn
