// Online cross-camera track stitching.
//
// The streaming counterpart of offline re-identification: as detections
// arrive (time-ordered), the tracker associates each with an active track
// or opens a new one, maintaining city-wide object tracks in real time.
//
// Association gate for detection d against track T (head detection h):
//   * same camera: |d.time - h.time| within the redetect window, or
//   * different camera: the transition graph has an edge h.camera→d.camera
//     whose plausible travel-time window contains (d.time - h.time);
// score = appearance_weight × cosine(track centroid, d) + transition
// log-likelihood (0 for same-camera). The best-scoring gated track above
// `min_score` wins; otherwise a new track opens. Tracks silent longer than
// `max_silence` retire.
//
// The tracker never sees ground-truth object ids; `TrackingMetrics`
// evaluates its output against them (purity, fragmentation, ID switches).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "reid/transition_graph.h"
#include "trace/detection.h"

namespace stcn {

struct TrackerConfig {
  double min_similarity = 0.5;      // appearance gate
  double appearance_weight = 4.0;
  // Association threshold. Note the transition log-likelihood term is
  // ≈ -1.6 even at the travel-time mean (normal pdf with the σ floor), so
  // a cross-camera hop at peak plausibility needs cosine ≥
  // (min_score + 1.6) / appearance_weight ≈ 0.65.
  double min_score = 1.0;
  Duration same_camera_window = Duration::seconds(10);
  Duration max_silence = Duration::minutes(2);
  TransitionGraph::ConeParams transition;  // k_sigma / slack reused
  /// Ablation switch: when false, cross-camera association is gated by
  /// appearance alone (no transition-graph plausibility check).
  bool use_transition_gate = true;
};

struct Track {
  TrackId id;
  std::vector<Detection> detections;  // time-ordered
  AppearanceFeature centroid;         // running normalized mean
  bool retired = false;

  [[nodiscard]] const Detection& head() const { return detections.back(); }
};

class OnlineTracker {
 public:
  OnlineTracker(const TransitionGraph& graph, TrackerConfig config)
      : graph_(graph), config_(config) {}

  /// Processes one detection (must be fed in non-decreasing time order).
  /// Returns the track it was associated with (possibly newly opened).
  TrackId observe(const Detection& d);

  /// Retires tracks whose head is older than now - max_silence.
  void advance_to(TimePoint now);

  [[nodiscard]] std::size_t active_count() const { return active_.size(); }
  [[nodiscard]] const std::vector<Track>& all_tracks() const {
    return tracks_;
  }
  [[nodiscard]] const Track& track(TrackId id) const {
    STCN_CHECK(id.value() >= 1 && id.value() <= tracks_.size());
    return tracks_[id.value() - 1];
  }

 private:
  /// Association score of d against track t given the precomputed
  /// centroid–appearance cosine `sim` (batched over all active tracks by
  /// observe()); returns false if gated out.
  [[nodiscard]] bool score(const Track& t, const Detection& d, double sim,
                           double& out_score) const;
  void fold_into_centroid(Track& t, const AppearanceFeature& f);

  const TransitionGraph& graph_;
  TrackerConfig config_;
  std::vector<Track> tracks_;        // all tracks ever opened (1-based ids)
  std::vector<std::size_t> active_;  // indexes into tracks_
};

/// Quality of a tracker run against ground truth.
struct TrackingMetrics {
  std::size_t tracks = 0;
  std::size_t true_objects = 0;
  /// Mean fraction of each track's detections belonging to its majority
  /// ground-truth object (1.0 = every track is pure).
  double purity = 0.0;
  /// Mean number of tracks each true object was split across
  /// (1.0 = no fragmentation).
  double fragmentation = 0.0;
  /// Detections whose predecessor (same true object) sits in a different
  /// track — the classic identity-switch count.
  std::size_t id_switches = 0;

  static TrackingMetrics evaluate(const std::vector<Track>& tracks);
};

}  // namespace stcn
