#include "reid/path_reconstruction.h"

#include <algorithm>
#include <string>

namespace stcn {

ReconstructedPath PathReconstructor::reconstruct(
    const Detection& probe, const CandidateSource& source,
    QueryProfiler* profiler) const {
  struct Hypothesis {
    std::vector<Detection> hops;
    double score = 0.0;
    bool extendable = true;
  };

  bool profiling = profiler != nullptr && profiler->active();
  std::vector<Hypothesis> beam{{{probe}, 0.0, true}};
  std::uint64_t candidates_examined = 0;

  for (std::size_t depth = 1; depth < params_.max_path_length; ++depth) {
    std::size_t hop_stage = QueryProfiler::kNoStage;
    std::uint64_t hop_candidates = 0;
    std::uint64_t hop_extensions = 0;
    if (profiling) {
      hop_stage = profiler->open_stage("path.hop");
      profiler->stage(hop_stage).note("depth", std::to_string(depth));
      profiler->push_depth();
    }
    std::vector<Hypothesis> next;
    bool any_extended = false;
    for (const Hypothesis& h : beam) {
      if (!h.extendable) {
        next.push_back(h);
        continue;
      }
      const Detection& head = h.hops.back();
      TimeInterval horizon{head.time, head.time + params_.hop_horizon};
      ReidOutcome out = engine_.find_matches(head, horizon, source, profiler);
      candidates_examined += out.candidates_examined;
      hop_candidates += out.candidates_examined;

      bool extended = false;
      for (const ReidMatch& m : out.matches) {
        if (m.score < params_.min_hop_score) continue;
        // No revisiting the exact same detection within one path.
        bool cycle = std::any_of(h.hops.begin(), h.hops.end(),
                                 [&m](const Detection& d) {
                                   return d.id == m.detection.id;
                                 });
        if (cycle) continue;
        Hypothesis ext = h;
        ext.hops.push_back(m.detection);
        ext.score += m.score;
        next.push_back(std::move(ext));
        extended = true;
        any_extended = true;
        ++hop_extensions;
        if (next.size() > params_.beam_width * 4) break;
      }
      if (!extended) {
        Hypothesis dead = h;
        dead.extendable = false;
        next.push_back(std::move(dead));
      }
    }
    // Keep the top beam_width by score-per-hop-count-adjusted total. Longer
    // correct paths accumulate more score, so plain total favors them.
    std::sort(next.begin(), next.end(),
              [](const Hypothesis& a, const Hypothesis& b) {
                return a.score > b.score;
              });
    if (next.size() > params_.beam_width) next.resize(params_.beam_width);
    beam = std::move(next);
    if (hop_stage != QueryProfiler::kNoStage) {
      profiler->pop_depth();
      ExplainStage& s = profiler->stage(hop_stage);
      s.considered = hop_candidates;
      s.actual = static_cast<std::int64_t>(hop_extensions);
      s.pruned = hop_candidates >= hop_extensions
                     ? hop_candidates - hop_extensions
                     : 0;
      profiler->close_stage(hop_stage);
    }
    if (!any_extended) break;
  }

  const Hypothesis* best = nullptr;
  for (const Hypothesis& h : beam) {
    if (best == nullptr || h.score > best->score ||
        (h.score == best->score && h.hops.size() > best->hops.size())) {
      best = &h;
    }
  }
  ReconstructedPath path;
  if (best != nullptr) {
    path.hops = best->hops;
    path.score = best->score;
  }
  path.candidates_examined = candidates_examined;
  return path;
}

double PathReconstructor::hop_accuracy(const ReconstructedPath& path,
                                       ObjectId truth,
                                       bool truth_has_continuation) {
  if (path.hops.size() <= 1) {
    return truth_has_continuation ? 0.0 : 1.0;
  }
  std::size_t correct = 0;
  for (std::size_t i = 1; i < path.hops.size(); ++i) {
    if (path.hops[i].object == truth) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(path.hops.size() - 1);
}

}  // namespace stcn
