#include "reid/tracker.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/appearance_kernel.h"

namespace stcn {

bool OnlineTracker::score(const Track& t, const Detection& d, double sim,
                          double& out_score) const {
  const Detection& head = t.head();
  Duration gap = d.time - head.time;
  if (gap < Duration::zero()) return false;

  if (sim < config_.min_similarity) return false;

  double transition_term = 0.0;
  if (head.camera == d.camera) {
    if (gap > config_.same_camera_window) return false;
  } else if (!config_.use_transition_gate) {
    if (gap > config_.max_silence) return false;
  } else {
    const auto* edges = graph_.edges_from(head.camera);
    if (edges == nullptr) return false;
    auto it = std::find_if(edges->begin(), edges->end(),
                           [&d](const TransitionEdge& e) {
                             return e.to == d.camera;
                           });
    if (it == edges->end()) return false;
    if (it->count < config_.transition.min_edge_count) return false;
    auto [lo_s, hi_s] = it->plausible_window_s(config_.transition.k_sigma,
                                               config_.transition.slack_s);
    double gap_s = gap.to_seconds();
    if (gap_s < lo_s || gap_s > hi_s) return false;
    transition_term = it->log_likelihood(gap_s);
  }
  out_score = config_.appearance_weight * sim + transition_term;
  return out_score >= config_.min_score;
}

void OnlineTracker::fold_into_centroid(Track& t, const AppearanceFeature& f) {
  // Running mean, re-normalized: stable identity even as per-detection
  // noise varies.
  auto n = static_cast<float>(t.detections.size());
  if (t.centroid.values.size() != f.values.size()) {
    t.centroid = f;
    return;
  }
  for (std::size_t i = 0; i < f.values.size(); ++i) {
    t.centroid.values[i] =
        (t.centroid.values[i] * (n - 1) + f.values[i]) / n;
  }
  t.centroid.normalize();
}

TrackId OnlineTracker::observe(const Detection& d) {
  // Centroid matching runs through the batched appearance kernel: gather
  // every dimension-matched active centroid, score in one pass, then gate.
  const std::size_t dim = d.appearance.values.size();
  std::vector<double> sims(active_.size());
  std::vector<const float*> batch;
  batch.reserve(active_.size());
  bool uniform = dim > 0;
  for (std::size_t idx : active_) {
    if (tracks_[idx].centroid.values.size() != dim) {
      uniform = false;
      break;
    }
    batch.push_back(tracks_[idx].centroid.values.data());
  }
  if (uniform) {
    appearance_score_batch(d.appearance.values.data(), dim, batch.data(),
                           batch.size(), sims.data());
  } else {
    for (std::size_t a = 0; a < active_.size(); ++a) {
      sims[a] = tracks_[active_[a]].centroid.similarity(d.appearance);
    }
  }
  std::size_t best_index = 0;
  double best_score = 0.0;
  bool found = false;
  for (std::size_t a = 0; a < active_.size(); ++a) {
    std::size_t idx = active_[a];
    double s = 0.0;
    if (score(tracks_[idx], d, sims[a], s) && (!found || s > best_score)) {
      best_score = s;
      best_index = idx;
      found = true;
    }
  }
  if (found) {
    Track& t = tracks_[best_index];
    t.detections.push_back(d);
    fold_into_centroid(t, d.appearance);
    return t.id;
  }
  Track fresh;
  fresh.id = TrackId(tracks_.size() + 1);
  fresh.detections = {d};
  fresh.centroid = d.appearance;
  tracks_.push_back(std::move(fresh));
  active_.push_back(tracks_.size() - 1);
  return tracks_.back().id;
}

void OnlineTracker::advance_to(TimePoint now) {
  TimePoint horizon = now - config_.max_silence;
  std::erase_if(active_, [this, horizon](std::size_t idx) {
    if (tracks_[idx].head().time < horizon) {
      tracks_[idx].retired = true;
      return true;
    }
    return false;
  });
}

TrackingMetrics TrackingMetrics::evaluate(const std::vector<Track>& tracks) {
  TrackingMetrics m;
  m.tracks = tracks.size();
  if (tracks.empty()) return m;

  // Purity: per track, majority-object share.
  double purity_sum = 0.0;
  std::set<std::uint64_t> objects;
  std::map<std::uint64_t, std::set<std::uint64_t>> object_tracks;
  for (const Track& t : tracks) {
    std::map<std::uint64_t, std::size_t> votes;
    for (const Detection& d : t.detections) {
      ++votes[d.object.value()];
      objects.insert(d.object.value());
      object_tracks[d.object.value()].insert(t.id.value());
    }
    std::size_t majority = 0;
    for (const auto& [obj, n] : votes) majority = std::max(majority, n);
    purity_sum += static_cast<double>(majority) /
                  static_cast<double>(t.detections.size());
  }
  m.purity = purity_sum / static_cast<double>(tracks.size());
  m.true_objects = objects.size();

  double frag_sum = 0.0;
  for (const auto& [obj, track_set] : object_tracks) {
    frag_sum += static_cast<double>(track_set.size());
  }
  m.fragmentation =
      objects.empty() ? 0.0 : frag_sum / static_cast<double>(objects.size());

  // ID switches: order each object's detections by time; count where the
  // assigned track changes.
  struct Assigned {
    TimePoint time;
    std::uint64_t track;
  };
  std::map<std::uint64_t, std::vector<Assigned>> per_object;
  for (const Track& t : tracks) {
    for (const Detection& d : t.detections) {
      per_object[d.object.value()].push_back({d.time, t.id.value()});
    }
  }
  for (auto& [obj, seq] : per_object) {
    std::sort(seq.begin(), seq.end(), [](const Assigned& a, const Assigned& b) {
      return a.time < b.time;
    });
    for (std::size_t i = 1; i < seq.size(); ++i) {
      if (seq[i].track != seq[i - 1].track) ++m.id_switches;
    }
  }
  return m;
}

}  // namespace stcn
