#include "reid/reid_engine.h"

#include <algorithm>

namespace stcn {

void ReidEngine::score_candidates(const Detection& probe, TimePoint probe_time,
                                  const std::vector<Detection>& candidates,
                                  std::uint32_t hops, double hop_log_prior,
                                  ReidOutcome& outcome) const {
  for (const Detection& d : candidates) {
    ++outcome.candidates_examined;
    if (d.id == probe.id) continue;
    if (d.time <= probe_time) continue;
    double sim = probe.appearance.similarity(d.appearance);
    if (sim < params_.min_similarity) continue;
    double score = params_.appearance_weight * sim + hop_log_prior;
    outcome.matches.push_back({d, score, hops});
  }
}

namespace {
void finalize(ReidOutcome& outcome, std::size_t max_matches) {
  std::sort(outcome.matches.begin(), outcome.matches.end(),
            [](const ReidMatch& a, const ReidMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.detection.id < b.detection.id;
            });
  // One match per detection: a camera reachable via several hop counts can
  // contribute duplicates.
  std::vector<ReidMatch> unique;
  unique.reserve(outcome.matches.size());
  for (const ReidMatch& m : outcome.matches) {
    bool seen = std::any_of(unique.begin(), unique.end(),
                            [&m](const ReidMatch& u) {
                              return u.detection.id == m.detection.id;
                            });
    if (!seen) unique.push_back(m);
    if (unique.size() >= max_matches) break;
  }
  outcome.matches = std::move(unique);
}
}  // namespace

ReidOutcome ReidEngine::find_matches(const Detection& probe,
                                     const TimeInterval& horizon,
                                     const CandidateSource& source) const {
  ReidOutcome outcome;
  auto cone = graph_.cone(probe.camera, probe.time, horizon, params_.cone);
  for (const ConeEntry& entry : cone) {
    ++outcome.cameras_queried;
    auto candidates = source.detections_at(entry.camera, entry.window);
    score_candidates(probe, probe.time, candidates, entry.hops,
                     entry.log_prior, outcome);
  }
  finalize(outcome, params_.max_matches);
  return outcome;
}

ReidOutcome ReidEngine::find_matches_full_scan(
    const Detection& probe, const TimeInterval& horizon,
    const CandidateSource& source) const {
  ReidOutcome outcome;
  for (CameraId camera : source.all_cameras()) {
    ++outcome.cameras_queried;
    auto candidates = source.detections_at(camera, horizon);
    score_candidates(probe, probe.time, candidates, 0, 0.0, outcome);
  }
  finalize(outcome, params_.max_matches);
  return outcome;
}

}  // namespace stcn
