#include "reid/reid_engine.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/appearance_kernel.h"

namespace stcn {

void ReidEngine::score_candidates(const Detection& probe, TimePoint probe_time,
                                  const std::vector<Detection>& candidates,
                                  std::uint32_t hops, double hop_log_prior,
                                  ReidOutcome& outcome) const {
  outcome.candidates_examined += candidates.size();
  // Batched scoring: gather the embedding pointers of every candidate that
  // survives the cheap gates and shares the probe's dimension, dot them
  // through the SIMD-friendly kernel in one pass, then apply the
  // similarity gate. Dimension-mismatched candidates (rare: mixed feature
  // extractors) fall back to the scalar min-prefix dot.
  const std::size_t dim = probe.appearance.values.size();
  std::vector<const float*> batch;
  std::vector<std::uint32_t> batch_rows;
  batch.reserve(candidates.size());
  batch_rows.reserve(candidates.size());
  auto admit = [&](const Detection& d) {
    return d.id != probe.id && d.time > probe_time;
  };
  for (std::uint32_t i = 0; i < candidates.size(); ++i) {
    const Detection& d = candidates[i];
    if (!admit(d)) continue;
    if (dim > 0 && d.appearance.values.size() == dim) {
      batch.push_back(d.appearance.values.data());
      batch_rows.push_back(i);
    } else {
      double sim = probe.appearance.similarity(d.appearance);
      if (sim < params_.min_similarity) continue;
      outcome.matches.push_back(
          {d, params_.appearance_weight * sim + hop_log_prior, hops});
    }
  }
  std::vector<double> sims(batch.size());
  if (params_.quantized_prefilter && dim > 0 &&
      batch.size() >= params_.quantized_min_batch) {
    // Quantize the probe once, then score every candidate on int8 codes.
    // A candidate whose quantized similarity plus the sound error bound
    // still misses min_similarity cannot pass the gate below, so it keeps
    // its quantized score (provably under the gate: bound >= 0) and never
    // touches the float kernel. Survivors are rescored exactly in float,
    // which makes the match set and scores identical to the float-only
    // path.
    std::vector<std::int8_t> probe_codes(dim);
    EmbeddingQuantParams probe_q = quantize_embedding(
        probe.appearance.values.data(), dim, probe_codes.data());
    std::vector<std::int8_t> cand_codes(dim);
    std::uint64_t float_dots = 0;
    for (std::size_t b = 0; b < batch.size(); ++b) {
      EmbeddingQuantParams cand_q =
          quantize_embedding(batch[b], dim, cand_codes.data());
      double simq = quantized_dot(probe_codes.data(), probe_q,
                                  cand_codes.data(), cand_q, dim);
      double bound = quantized_dot_error_bound(probe_q, cand_q, dim);
      if (simq + bound < params_.min_similarity) {
        sims[b] = simq;
        continue;
      }
      sims[b] =
          appearance_dot(probe.appearance.values.data(), batch[b], dim);
      ++float_dots;
    }
    outcome.quantized_scores += batch.size();
    outcome.quantized_pruned += batch.size() - float_dots;
    if (quantized_pruned_ != nullptr) {
      quantized_pruned_->add(batch.size() - float_dots);
    }
    outcome.batched_scores += float_dots;
    if (batched_scores_ != nullptr) batched_scores_->add(float_dots);
  } else {
    appearance_score_batch(probe.appearance.values.data(), dim, batch.data(),
                           batch.size(), sims.data());
    outcome.batched_scores += batch.size();
    if (batched_scores_ != nullptr) batched_scores_->add(batch.size());
  }
  for (std::size_t b = 0; b < batch.size(); ++b) {
    if (sims[b] < params_.min_similarity) continue;
    outcome.matches.push_back(
        {candidates[batch_rows[b]],
         params_.appearance_weight * sims[b] + hop_log_prior, hops});
  }
}

namespace {
void finalize(ReidOutcome& outcome, std::size_t max_matches) {
  std::sort(outcome.matches.begin(), outcome.matches.end(),
            [](const ReidMatch& a, const ReidMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.detection.id < b.detection.id;
            });
  // One match per detection: a camera reachable via several hop counts can
  // contribute duplicates.
  std::vector<ReidMatch> unique;
  unique.reserve(outcome.matches.size());
  for (const ReidMatch& m : outcome.matches) {
    bool seen = std::any_of(unique.begin(), unique.end(),
                            [&m](const ReidMatch& u) {
                              return u.detection.id == m.detection.id;
                            });
    if (!seen) unique.push_back(m);
    if (unique.size() >= max_matches) break;
  }
  outcome.matches = std::move(unique);
}
}  // namespace

ReidOutcome ReidEngine::find_matches(const Detection& probe,
                                     const TimeInterval& horizon,
                                     const CandidateSource& source,
                                     QueryProfiler* profiler) const {
  ReidOutcome outcome;
  auto cone = graph_.cone(probe.camera, probe.time, horizon, params_.cone);
  bool profiling = profiler != nullptr && profiler->active();
  std::size_t scan_stage = QueryProfiler::kNoStage;
  if (profiling) {
    // Transition-graph window pruning: of every camera in the network, how
    // many (camera, window) pairs did the cone keep?
    std::size_t all_cameras = source.all_cameras().size();
    std::unordered_set<std::uint64_t> cone_cameras;
    for (const ConeEntry& entry : cone) {
      cone_cameras.insert(entry.camera.value());
    }
    std::size_t cone_stage = profiler->open_stage("reid.cone");
    ExplainStage& s = profiler->stage(cone_stage);
    s.considered = all_cameras;
    s.actual = static_cast<std::int64_t>(cone.size());
    s.pruned = all_cameras >= cone_cameras.size()
                   ? all_cameras - cone_cameras.size()
                   : 0;
    s.note("probe_camera", std::to_string(probe.camera.value()));
    profiler->close_stage(cone_stage);
    scan_stage = profiler->open_stage("reid.scan");
    profiler->push_depth();
  }
  for (const ConeEntry& entry : cone) {
    ++outcome.cameras_queried;
    auto candidates = source.detections_at(entry.camera, entry.window);
    score_candidates(probe, probe.time, candidates, entry.hops,
                     entry.log_prior, outcome);
  }
  finalize(outcome, params_.max_matches);
  if (scan_stage != QueryProfiler::kNoStage) {
    profiler->pop_depth();
    ExplainStage& s = profiler->stage(scan_stage);
    s.considered = outcome.candidates_examined;
    s.actual = static_cast<std::int64_t>(outcome.matches.size());
    s.pruned = outcome.candidates_examined >= outcome.matches.size()
                   ? outcome.candidates_examined - outcome.matches.size()
                   : 0;
    profiler->close_stage(scan_stage);
  }
  return outcome;
}

ReidOutcome ReidEngine::find_matches_full_scan(
    const Detection& probe, const TimeInterval& horizon,
    const CandidateSource& source) const {
  ReidOutcome outcome;
  for (CameraId camera : source.all_cameras()) {
    ++outcome.cameras_queried;
    auto candidates = source.detections_at(camera, horizon);
    score_candidates(probe, probe.time, candidates, 0, 0.0, outcome);
  }
  finalize(outcome, params_.max_matches);
  return outcome;
}

}  // namespace stcn
