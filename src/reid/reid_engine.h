// Re-identification engine.
//
// Given a probe detection ("this object was seen at camera a at time t"),
// find where it reappears. The engine expands the transition-graph cone of
// plausible (camera, time-window) pairs, fetches only those detections from
// a CandidateSource (in the distributed framework this becomes a set of
// camera-targeted remote queries), and ranks candidates by a combined
// appearance + travel-time log-score.
//
// A full-scan mode (scan every camera over the whole horizon) serves as the
// baseline for experiment E5; the contract is that cone mode examines far
// fewer candidates at (near-)equal recall.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "reid/transition_graph.h"
#include "trace/detection.h"

namespace stcn {

/// Abstract access to stored detections, keyed by camera and time. The
/// distributed core implements this with scatter-gather queries; tests and
/// the centralized baseline implement it over a local TemporalStore.
class CandidateSource {
 public:
  virtual ~CandidateSource() = default;
  [[nodiscard]] virtual std::vector<Detection> detections_at(
      CameraId camera, const TimeInterval& window) const = 0;
  /// All camera ids known to the source (for full-scan mode).
  [[nodiscard]] virtual std::vector<CameraId> all_cameras() const = 0;
};

struct ReidParams {
  TransitionGraph::ConeParams cone;
  /// Minimum appearance cosine similarity for a candidate to be scored.
  double min_similarity = 0.5;
  /// Weight of appearance similarity vs. travel-time likelihood.
  double appearance_weight = 4.0;
  std::size_t max_matches = 10;
  /// Prefilter candidate batches with the int8 quantized dot before the
  /// float kernel: a candidate whose quantized similarity plus its sound
  /// error bound (common/appearance_kernel.h) still misses min_similarity
  /// is rejected on int8 arithmetic alone; survivors are rescored in float,
  /// so match sets and scores are bit-identical to the float-only path.
  bool quantized_prefilter = true;
  /// Batches smaller than this skip the prefilter (quantizing the probe
  /// and candidates costs more than it saves on a handful of dots).
  std::size_t quantized_min_batch = 8;
};

struct ReidMatch {
  Detection detection;
  double score = 0.0;
  std::uint32_t hops = 0;
};

struct ReidOutcome {
  std::vector<ReidMatch> matches;        // best first
  std::uint64_t candidates_examined = 0;  // pruning metric (E5)
  std::uint64_t cameras_queried = 0;
  /// Similarities computed through the batched appearance kernel (the
  /// remainder fell back to scalar dots on dimension mismatch).
  std::uint64_t batched_scores = 0;
  /// Candidates scored by the int8 quantized prefilter.
  std::uint64_t quantized_scores = 0;
  /// Candidates the prefilter rejected on the error bound alone (these
  /// never reached the float kernel).
  std::uint64_t quantized_pruned = 0;
};

class ReidEngine {
 public:
  ReidEngine(const TransitionGraph& graph, ReidParams params)
      : graph_(graph), params_(params) {}

  /// Cone-pruned search for reappearances of `probe` within `horizon`.
  /// With an active `profiler`, records `reid.cone` (window pruning:
  /// cameras considered vs cone entries kept) and `reid.scan` (candidates
  /// examined vs matches) stages; candidate fetches nest one level deeper.
  [[nodiscard]] ReidOutcome find_matches(
      const Detection& probe, const TimeInterval& horizon,
      const CandidateSource& source,
      QueryProfiler* profiler = nullptr) const;

  /// Baseline: scan every camera over the entire horizon.
  [[nodiscard]] ReidOutcome find_matches_full_scan(
      const Detection& probe, const TimeInterval& horizon,
      const CandidateSource& source) const;

  [[nodiscard]] const ReidParams& params() const { return params_; }

  /// Binds the engine's `reid_batched_scores` counter into `registry`
  /// (cumulative batched-kernel similarity count across all searches).
  void register_metrics(MetricsRegistry& registry) {
    batched_scores_ = &registry.counter(
        "reid_batched_scores",
        "Appearance similarities computed by the batched kernel");
    quantized_pruned_ = &registry.counter(
        "reid_quantized_pruned",
        "Candidates rejected by the int8 prefilter's error bound");
  }

 private:
  void score_candidates(const Detection& probe, TimePoint probe_time,
                        const std::vector<Detection>& candidates,
                        std::uint32_t hops, double hop_log_prior,
                        ReidOutcome& outcome) const;

  const TransitionGraph& graph_;
  ReidParams params_;
  Counter* batched_scores_ = nullptr;    // optional registry hookup
  Counter* quantized_pruned_ = nullptr;  // optional registry hookup
};

}  // namespace stcn
