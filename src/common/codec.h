// Block compression codecs for the cold storage tier.
//
// A sealed 4096-row block compresses column-by-column with codecs picked
// per column family (see index/compressed_block.h for the assembly):
//
//   - PackedU64Column / PackedI64Column — frame-of-reference: store the
//     block minimum once, then each value as `value - min` at a fixed
//     per-block byte width (0/1/2/4/8, little-endian). Near-sorted or
//     low-range columns (time, sequential detection ids) shrink 2–8x, and
//     the fixed width keeps decode a straight load+widen+add loop the
//     compiler can vectorize — unlike varint, whose per-byte continuation
//     branches serialize the scan path.
//   - QuantizedDoubleColumn — FOR quantization for doubles: values map to
//     integer codes on a power-of-two grid `base + code * quantum`, with
//     `quantum` chosen so the block's range needs `precision_bits` bits.
//     Maximum error is quantum/2 (~range * 2^-(bits+1)). Power-of-two
//     quanta make re-encoding already-quantized values lossless: a
//     decoded value lies on the old grid, and any tighter grid chosen on
//     re-encode has a quantum dividing the old one.
//   - DictU64Column — dictionary encoding for low-cardinality id columns
//     (camera, object): sorted unique values once, then per-row indexes
//     FOR-packed. Equality predicates compare in code space without
//     decoding.
//
// All decode paths are bounds-checked at deserialization time (code
// ranges validated against dictionary sizes), so a corrupt snapshot can
// poison its reader but never index out of bounds.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace stcn {

/// Loads one little-endian code of `W` bytes. memcpy of 1/2/4/8 bytes
/// compiles to a single (possibly unaligned) load, keeping the byte-packed
/// code arrays free of alignment UB.
template <std::size_t W>
[[nodiscard]] inline std::uint64_t load_code(const std::uint8_t* p) {
  if constexpr (W == 1) {
    return *p;
  } else if constexpr (W == 2) {
    std::uint16_t v;
    std::memcpy(&v, p, 2);
    return v;
  } else if constexpr (W == 4) {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
  } else {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
  }
}

/// Frame-of-reference packed unsigned column: `value[i] = base + code[i]`
/// with codes stored at a fixed byte width chosen from the block's range.
struct PackedU64Column {
  std::uint64_t base = 0;
  std::uint8_t width = 0;  // bytes per code: 0 (constant column), 1, 2, 4, 8
  std::uint32_t rows = 0;
  std::vector<std::uint8_t> data;  // rows * width bytes, little-endian

  static PackedU64Column encode(const std::uint64_t* v, std::uint32_t n) {
    PackedU64Column c;
    c.rows = n;
    if (n == 0) return c;
    std::uint64_t lo = v[0], hi = v[0];
    for (std::uint32_t i = 1; i < n; ++i) {
      lo = std::min(lo, v[i]);
      hi = std::max(hi, v[i]);
    }
    c.base = lo;
    std::uint64_t range = hi - lo;
    c.width = range == 0             ? 0
              : range <= 0xFF       ? 1
              : range <= 0xFFFF     ? 2
              : range <= 0xFFFFFFFF ? 4
                                    : 8;
    if (c.width == 0) return c;  // constant column: base alone suffices
    c.data.resize(static_cast<std::size_t>(n) * c.width);
    std::uint8_t* out = c.data.data();
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t code = v[i] - lo;
      std::memcpy(out + static_cast<std::size_t>(i) * c.width, &code, c.width);
    }
    return c;
  }

  /// Invokes `fn` with an integral-constant byte width (1/2/4/8). The
  /// caller handles width 0 (constant column) before dispatching.
  template <typename Fn>
  auto dispatch_width(Fn&& fn) const {
    switch (width) {
      case 1:
        return fn(std::integral_constant<std::size_t, 1>{});
      case 2:
        return fn(std::integral_constant<std::size_t, 2>{});
      case 4:
        return fn(std::integral_constant<std::size_t, 4>{});
      default:
        return fn(std::integral_constant<std::size_t, 8>{});
    }
  }

  [[nodiscard]] std::uint64_t at(std::uint32_t i) const {
    if (width == 0) return base;
    return dispatch_width([&](auto w) {
      return base + load_code<decltype(w)::value>(
                        data.data() + static_cast<std::size_t>(i) * w);
    });
  }

  void decode_into(std::uint64_t* out) const {
    if (width == 0) {
      std::fill(out, out + rows, base);
      return;
    }
    dispatch_width([&](auto w) {
      constexpr std::size_t kW = decltype(w)::value;
      const std::uint8_t* p = data.data();
      for (std::uint32_t i = 0; i < rows; ++i) {
        out[i] = base + load_code<kW>(p + static_cast<std::size_t>(i) * kW);
      }
      return 0;
    });
  }

  /// Largest stored code (0 for constant columns). Used to validate
  /// dictionary indexes after deserialization.
  [[nodiscard]] std::uint64_t max_code() const {
    if (width == 0 || rows == 0) return 0;
    return dispatch_width([&](auto w) {
      constexpr std::size_t kW = decltype(w)::value;
      std::uint64_t m = 0;
      const std::uint8_t* p = data.data();
      for (std::uint32_t i = 0; i < rows; ++i) {
        m = std::max(m, load_code<kW>(p + static_cast<std::size_t>(i) * kW));
      }
      return m;
    });
  }

  [[nodiscard]] std::size_t resident_bytes() const { return data.capacity(); }

  void serialize_to(BinaryWriter& w) const {
    w.write_u64(base);
    w.write_u8(width);
    w.write_u32(rows);
    w.write_u32(static_cast<std::uint32_t>(data.size()));
    for (std::uint8_t b : data) w.write_u8(b);
  }

  /// Returns false (leaving the reader failed) on truncated or
  /// inconsistent input; the column is untouched on failure.
  [[nodiscard]] bool deserialize_from(BinaryReader& r) {
    std::uint64_t b = r.read_u64();
    std::uint8_t wd = r.read_u8();
    std::uint32_t n = r.read_u32();
    std::uint32_t len = r.read_u32();
    if (r.failed() || (wd != 0 && wd != 1 && wd != 2 && wd != 4 && wd != 8) ||
        len != static_cast<std::uint64_t>(n) * wd || len > r.remaining()) {
      (void)r.read_bytes(r.remaining() + 1);
      return false;
    }
    base = b;
    width = wd;
    rows = n;
    std::vector<std::uint8_t> bytes = r.read_bytes(len);
    data = std::move(bytes);
    return !r.failed();
  }
};

/// Signed frame-of-reference column (time): `value[i] = base + code[i]`
/// with an int64 base; the code range `max - min` always fits a uint64.
struct PackedI64Column {
  std::int64_t base = 0;
  PackedU64Column codes;  // codes.base is always 0; base lives here

  static PackedI64Column encode(const std::int64_t* v, std::uint32_t n) {
    PackedI64Column c;
    c.codes.rows = n;
    if (n == 0) return c;
    std::int64_t lo = v[0], hi = v[0];
    for (std::uint32_t i = 1; i < n; ++i) {
      lo = std::min(lo, v[i]);
      hi = std::max(hi, v[i]);
    }
    c.base = lo;
    std::vector<std::uint64_t> rel(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      rel[i] = static_cast<std::uint64_t>(v[i]) - static_cast<std::uint64_t>(lo);
    }
    c.codes = PackedU64Column::encode(rel.data(), n);
    return c;
  }

  [[nodiscard]] std::int64_t at(std::uint32_t i) const {
    return base + static_cast<std::int64_t>(codes.at(i) - codes.base);
  }

  void decode_into(std::int64_t* out) const {
    // codes.base is folded into base so the loop is a pure widen+add.
    std::int64_t b = base + static_cast<std::int64_t>(codes.base);
    if (codes.width == 0) {
      std::fill(out, out + codes.rows, b);
      return;
    }
    codes.dispatch_width([&](auto w) {
      constexpr std::size_t kW = decltype(w)::value;
      const std::uint8_t* p = codes.data.data();
      for (std::uint32_t i = 0; i < codes.rows; ++i) {
        out[i] = b + static_cast<std::int64_t>(
                         load_code<kW>(p + static_cast<std::size_t>(i) * kW));
      }
      return 0;
    });
  }

  [[nodiscard]] std::size_t resident_bytes() const {
    return codes.resident_bytes();
  }
  void serialize_to(BinaryWriter& w) const {
    w.write_i64(base);
    codes.serialize_to(w);
  }
  [[nodiscard]] bool deserialize_from(BinaryReader& r) {
    std::int64_t b = r.read_i64();
    if (!codes.deserialize_from(r)) return false;
    base = b;
    return true;
  }
};

/// FOR-quantized double column: `value[i] = base + quantum * code[i]` with
/// a power-of-two quantum sized so the block's range fits `precision_bits`
/// bits. Max round-trip error is quantum/2; quantum 0 means the column is
/// constant. Power-of-two quanta nest, so re-encoding decoded values (e.g.
/// retention compaction rewriting a cold block) is lossless.
struct QuantizedDoubleColumn {
  double base = 0.0;
  double quantum = 0.0;
  PackedU64Column codes;

  static QuantizedDoubleColumn encode(const double* v, std::uint32_t n,
                                      int precision_bits) {
    QuantizedDoubleColumn c;
    c.codes.rows = n;
    if (n == 0) return c;
    double lo = v[0], hi = v[0];
    for (std::uint32_t i = 1; i < n; ++i) {
      lo = std::min(lo, v[i]);
      hi = std::max(hi, v[i]);
    }
    c.base = lo;
    double range = hi - lo;
    if (!(range > 0.0)) return c;  // constant column: quantum 0, width 0
    // Smallest power-of-two quantum whose code range fits precision_bits.
    double max_codes = std::ldexp(1.0, precision_bits) - 1.0;
    int e = static_cast<int>(std::ceil(std::log2(range / max_codes)));
    c.quantum = std::ldexp(1.0, e);
    std::vector<std::uint64_t> q(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      double rel = (v[i] - lo) / c.quantum;
      auto code = static_cast<std::uint64_t>(std::llround(rel));
      q[i] = code;
    }
    c.codes = PackedU64Column::encode(q.data(), n);
    return c;
  }

  [[nodiscard]] double at(std::uint32_t i) const {
    return base + quantum * static_cast<double>(codes.at(i));
  }

  void decode_into(double* out) const {
    if (codes.width == 0) {
      std::fill(out, out + codes.rows,
                base + quantum * static_cast<double>(codes.base));
      return;
    }
    double b = base + quantum * static_cast<double>(codes.base);
    codes.dispatch_width([&](auto w) {
      constexpr std::size_t kW = decltype(w)::value;
      const std::uint8_t* p = codes.data.data();
      for (std::uint32_t i = 0; i < codes.rows; ++i) {
        out[i] = b + quantum *
                         static_cast<double>(load_code<kW>(
                             p + static_cast<std::size_t>(i) * kW));
      }
      return 0;
    });
  }

  [[nodiscard]] std::size_t resident_bytes() const {
    return codes.resident_bytes();
  }
  void serialize_to(BinaryWriter& w) const {
    w.write_double(base);
    w.write_double(quantum);
    codes.serialize_to(w);
  }
  [[nodiscard]] bool deserialize_from(BinaryReader& r) {
    double b = r.read_double();
    double q = r.read_double();
    // NaN/Inf parameters would poison every zone map computed from decoded
    // values; reject them as corrupt rather than propagate.
    if (!std::isfinite(b) || !std::isfinite(q) || q < 0.0) {
      (void)r.read_bytes(r.remaining() + 1);
      return false;
    }
    if (!codes.deserialize_from(r)) return false;
    base = b;
    quantum = q;
    return true;
  }
};

/// Dictionary-encoded id column: sorted unique values stored once, per-row
/// dictionary indexes FOR-packed. Lossless; equality predicates resolve the
/// probe to a code once and compare codes without decoding.
struct DictU64Column {
  std::vector<std::uint64_t> dict;  // sorted, unique
  PackedU64Column codes;            // indexes into dict

  static DictU64Column encode(const std::uint64_t* v, std::uint32_t n) {
    DictU64Column c;
    c.codes.rows = n;
    if (n == 0) return c;
    c.dict.assign(v, v + n);
    std::sort(c.dict.begin(), c.dict.end());
    c.dict.erase(std::unique(c.dict.begin(), c.dict.end()), c.dict.end());
    c.dict.shrink_to_fit();  // erase() keeps the n-entry staging capacity
    std::vector<std::uint64_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      idx[i] = static_cast<std::uint64_t>(
          std::lower_bound(c.dict.begin(), c.dict.end(), v[i]) -
          c.dict.begin());
    }
    c.codes = PackedU64Column::encode(idx.data(), n);
    return c;
  }

  /// Dictionary index of `value`, or -1 if the block never saw it.
  [[nodiscard]] std::int64_t code_of(std::uint64_t value) const {
    auto it = std::lower_bound(dict.begin(), dict.end(), value);
    if (it == dict.end() || *it != value) return -1;
    return it - dict.begin();
  }

  [[nodiscard]] std::uint64_t at(std::uint32_t i) const {
    return dict[codes.at(i)];
  }

  void decode_into(std::uint64_t* out) const {
    if (codes.width == 0) {
      std::fill(out, out + codes.rows,
                dict.empty() ? 0 : dict[codes.base]);
      return;
    }
    const std::uint64_t* d = dict.data();
    std::uint64_t b = codes.base;
    codes.dispatch_width([&](auto w) {
      constexpr std::size_t kW = decltype(w)::value;
      const std::uint8_t* p = codes.data.data();
      for (std::uint32_t i = 0; i < codes.rows; ++i) {
        out[i] = d[b + load_code<kW>(p + static_cast<std::size_t>(i) * kW)];
      }
      return 0;
    });
  }

  [[nodiscard]] std::size_t resident_bytes() const {
    return dict.capacity() * sizeof(std::uint64_t) + codes.resident_bytes();
  }

  void serialize_to(BinaryWriter& w) const {
    w.write_u32(static_cast<std::uint32_t>(dict.size()));
    for (std::uint64_t v : dict) w.write_u64(v);
    codes.serialize_to(w);
  }

  [[nodiscard]] bool deserialize_from(BinaryReader& r) {
    std::uint32_t n = r.read_u32();
    if (r.failed() || static_cast<std::uint64_t>(n) * 8 > r.remaining()) {
      (void)r.read_bytes(r.remaining() + 1);
      return false;
    }
    std::vector<std::uint64_t> d;
    d.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) d.push_back(r.read_u64());
    PackedU64Column c;
    if (!c.deserialize_from(r)) return false;
    // Every code must index the dictionary, or decode would read OOB.
    if (c.rows > 0 && (n == 0 || c.base + c.max_code() >= n)) {
      (void)r.read_bytes(r.remaining() + 1);
      return false;
    }
    dict = std::move(d);
    codes = std::move(c);
    return true;
  }
};

}  // namespace stcn
