#include "common/rng.h"

#include <algorithm>

namespace stcn {

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n == 0) return 0;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[k] = acc;
    }
    for (auto& v : zipf_cdf_) v /= acc;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  double u = uniform();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::uint64_t>(it - zipf_cdf_.begin());
}

}  // namespace stcn
