// 2-D geometry primitives for the camera-network plane.
//
// The world is a flat 2-D plane measured in meters. Cameras sit at points,
// observe wedge-shaped fields of view, and detections carry point positions.
// Spatial queries use axis-aligned rectangles and circles.
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>
#include <ostream>
#include <vector>

namespace stcn {

/// A point (or displacement vector) in the 2-D world plane, meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;

  friend constexpr Point operator+(Point a, Point b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(Point p, double k) {
    return {p.x * k, p.y * k};
  }
  friend constexpr Point operator*(double k, Point p) { return p * k; }

  friend std::ostream& operator<<(std::ostream& os, const Point& p) {
    return os << "(" << p.x << ", " << p.y << ")";
  }
};

[[nodiscard]] inline double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }
[[nodiscard]] inline double cross(Point a, Point b) {
  return a.x * b.y - a.y * b.x;
}
[[nodiscard]] inline double norm(Point p) { return std::hypot(p.x, p.y); }
[[nodiscard]] inline double squared_norm(Point p) {
  return p.x * p.x + p.y * p.y;
}
[[nodiscard]] inline double distance(Point a, Point b) { return norm(a - b); }
[[nodiscard]] inline double squared_distance(Point a, Point b) {
  return squared_norm(a - b);
}

/// Normalizes an angle to [-pi, pi).
[[nodiscard]] inline double normalize_angle(double radians) {
  constexpr double two_pi = 2.0 * std::numbers::pi;
  double a = std::fmod(radians + std::numbers::pi, two_pi);
  if (a < 0) a += two_pi;
  return a - std::numbers::pi;
}

/// Axis-aligned rectangle, half-open on the max edges: [min.x, max.x) etc.
struct Rect {
  Point min;
  Point max;

  /// An empty rectangle (contains nothing, overlaps nothing).
  static constexpr Rect empty() { return {{0, 0}, {0, 0}}; }

  /// Rectangle spanning the given corners regardless of their order.
  static Rect spanning(Point a, Point b) {
    return {{std::min(a.x, b.x), std::min(a.y, b.y)},
            {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }

  /// Axis-aligned bounding square centered on `c` with half-extent `r`.
  static Rect centered(Point c, double r) {
    return {{c.x - r, c.y - r}, {c.x + r, c.y + r}};
  }

  [[nodiscard]] constexpr bool is_empty() const {
    return min.x >= max.x || min.y >= max.y;
  }
  [[nodiscard]] constexpr double width() const { return max.x - min.x; }
  [[nodiscard]] constexpr double height() const { return max.y - min.y; }
  [[nodiscard]] constexpr double area() const {
    return is_empty() ? 0.0 : width() * height();
  }
  [[nodiscard]] constexpr Point center() const {
    return {(min.x + max.x) / 2, (min.y + max.y) / 2};
  }

  [[nodiscard]] constexpr bool contains(Point p) const {
    return p.x >= min.x && p.x < max.x && p.y >= min.y && p.y < max.y;
  }
  [[nodiscard]] constexpr bool contains(const Rect& r) const {
    return r.min.x >= min.x && r.max.x <= max.x && r.min.y >= min.y &&
           r.max.y <= max.y;
  }
  [[nodiscard]] constexpr bool overlaps(const Rect& r) const {
    return min.x < r.max.x && r.min.x < max.x && min.y < r.max.y &&
           r.min.y < max.y;
  }
  [[nodiscard]] Rect intersection(const Rect& r) const {
    Rect out{{std::max(min.x, r.min.x), std::max(min.y, r.min.y)},
             {std::min(max.x, r.max.x), std::min(max.y, r.max.y)}};
    return out.is_empty() ? empty() : out;
  }
  /// Smallest rectangle containing both this and `r`.
  [[nodiscard]] Rect union_with(const Rect& r) const {
    if (is_empty()) return r;
    if (r.is_empty()) return *this;
    return {{std::min(min.x, r.min.x), std::min(min.y, r.min.y)},
            {std::max(max.x, r.max.x), std::max(max.y, r.max.y)}};
  }

  /// Distance from `p` to the closest point of the rectangle (0 if inside).
  [[nodiscard]] double distance_to(Point p) const {
    double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
    double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
    return std::hypot(dx, dy);
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Rect& r) {
    return os << "[" << r.min << " .. " << r.max << "]";
  }
};

/// A circle, used for proximity queries.
struct Circle {
  Point center;
  double radius = 0.0;

  [[nodiscard]] bool contains(Point p) const {
    return squared_distance(center, p) <= radius * radius;
  }
  [[nodiscard]] bool overlaps(const Rect& r) const {
    return r.distance_to(center) <= radius;
  }
  [[nodiscard]] Rect bounding_box() const {
    return Rect::centered(center, radius);
  }
};

/// A camera's field of view: a circular wedge anchored at the camera.
///
/// `heading` is the central direction of view (radians, world frame);
/// `half_angle` the angular half-width; `range` the maximum viewing distance.
struct FieldOfView {
  Point apex;
  double heading = 0.0;
  double half_angle = std::numbers::pi / 4;
  double range = 50.0;

  [[nodiscard]] bool contains(Point p) const {
    Point d = p - apex;
    double dist2 = squared_norm(d);
    if (dist2 > range * range) return false;
    if (dist2 == 0.0) return true;
    double ang = std::atan2(d.y, d.x);
    return std::abs(normalize_angle(ang - heading)) <= half_angle;
  }

  /// Bounding box of the wedge (conservative: box of the bounding circle
  /// sector; exact for full circles, tight enough for index pruning).
  [[nodiscard]] Rect bounding_box() const;
};

/// A polyline in the plane, used for road segments and trajectories.
struct Polyline {
  std::vector<Point> points;

  [[nodiscard]] double length() const;
  /// Point at arc-length `s` from the start (clamped to the ends).
  [[nodiscard]] Point at_arc_length(double s) const;
};

}  // namespace stcn
