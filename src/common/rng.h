// Deterministic random number generation.
//
// Everything stochastic in the framework — trace generation, appearance
// noise, simulated network jitter, failure injection — draws from a seeded
// xoshiro256** generator so that every test and benchmark run is exactly
// reproducible. Child generators can be split off deterministically so that
// independent subsystems do not perturb each other's streams.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace stcn {

/// SplitMix64: used to expand a single seed into xoshiro state and to
/// derive independent child seeds.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, 256-bit-state PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child generator; deterministic in (this state,
  /// stream). Advances this generator once.
  [[nodiscard]] Rng split(std::uint64_t stream) {
    return Rng(next_u64() ^ (stream * 0x9e3779b97f4a7c15ULL));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (one value per call; simple and exact).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Log-normal parameterized by the underlying normal's (mu, sigma).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 → uniform).
  /// Uses a cached CDF per (n, s); intended for modest n (≤ ~1e6).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  // Cache for zipf sampling: CDF for the most recent (n, s) pair.
  std::vector<double> zipf_cdf_;
  std::uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
};

}  // namespace stcn
