// Measurement utilities: running moments, quantile histograms, counters.
//
// Benchmarks and the framework's self-instrumentation (bytes on the wire,
// per-worker load, query latency) all report through these types.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace stcn {

/// Welford running mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  /// Coefficient of variation — the load-imbalance metric used in E3.
  [[nodiscard]] double cv() const {
    return mean() != 0.0 ? stddev() / mean() : 0.0;
  }

  void merge(const RunningStat& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    double total = static_cast<double>(n_ + other.n_);
    double delta = other.mean_ - mean_;
    double new_mean =
        mean_ + delta * static_cast<double>(other.n_) / total;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ = new_mean;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile sample recorder. Exact up to `max_samples`, then switches to
/// uniform reservoir sampling (deterministic, seeded) so memory stays
/// bounded for arbitrarily long runs.
///
/// Interleaved add/query is cheap: the sorted prefix is maintained
/// incrementally (sort the appended tail, merge), so a quantile() after a
/// few add()s costs O(tail log tail + n) instead of a full re-sort — and a
/// batch of quantiles costs one sort total via quantiles().
class QuantileRecorder {
 public:
  static constexpr std::size_t kDefaultMaxSamples = 1 << 16;

  explicit QuantileRecorder(std::size_t max_samples = kDefaultMaxSamples,
                            std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : max_samples_(max_samples == 0 ? 1 : max_samples), rng_state_(seed) {}

  void add(double x) {
    ++n_;
    sum_ += x;
    if (samples_.size() < max_samples_) {
      samples_.push_back(x);
      return;
    }
    // Reservoir: the new value displaces a uniformly random slot with
    // probability max_samples / n, keeping a uniform sample of the stream.
    std::uint64_t j = next_random() % n_;
    if (j < max_samples_) {
      samples_[j] = x;
      sorted_prefix_ = 0;  // in-place overwrite invalidates the sort
    }
  }

  /// Total values added (not the retained sample count).
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] std::size_t retained() const { return samples_.size(); }

  /// Quantile q in [0, 1]; nearest-rank over the retained sample. Returns 0
  /// when empty.
  [[nodiscard]] double quantile(double q) {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    return sorted_quantile(q);
  }

  /// All requested quantiles from a single sort.
  [[nodiscard]] std::vector<double> quantiles(
      std::initializer_list<double> qs) {
    std::vector<double> out;
    out.reserve(qs.size());
    if (samples_.empty()) {
      out.assign(qs.size(), 0.0);
      return out;
    }
    ensure_sorted();
    for (double q : qs) out.push_back(sorted_quantile(q));
    return out;
  }

  [[nodiscard]] double median() { return quantile(0.5); }
  [[nodiscard]] double p99() { return quantile(0.99); }

  [[nodiscard]] double mean() const {
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
  }

 private:
  void ensure_sorted() {
    if (sorted_prefix_ == samples_.size()) return;
    auto mid = samples_.begin() + static_cast<std::ptrdiff_t>(sorted_prefix_);
    std::sort(mid, samples_.end());
    std::inplace_merge(samples_.begin(), mid, samples_.end());
    sorted_prefix_ = samples_.size();
  }

  [[nodiscard]] double sorted_quantile(double q) const {
    // Nearest-rank: the smallest element with cumulative frequency ≥ q,
    // i.e. index ⌈q·n⌉ - 1. The previous formula (round(q·(n-1))) sat one
    // rank too high whenever q·n landed on an integer below the rounding
    // midpoint — the median of n=2 returned the larger sample and the
    // median of 1..100 returned 51 — an off-by-one most visible at small
    // sample counts.
    std::size_t n = samples_.size();
    if (q <= 0.0) return samples_.front();
    auto idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n))) - 1;
    idx = std::min(idx, n - 1);
    return samples_[idx];
  }

  /// SplitMix64 step (inlined to keep this header dependency-free).
  std::uint64_t next_random() {
    std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::size_t max_samples_;
  std::uint64_t rng_state_;
  std::vector<double> samples_;
  std::size_t sorted_prefix_ = 0;  // samples_[0, prefix) are sorted
  std::size_t n_ = 0;
  double sum_ = 0.0;
};

/// Named monotonic counters, used for transport accounting and pruning
/// statistics ("candidates examined", "messages sent", "bytes moved").
class CounterSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }

  /// Overwrites a counter (used by the metrics-registry bridge, which
  /// mirrors handle-backed counters into CounterSet views at read time).
  void set(const std::string& name, std::uint64_t value) {
    counters_[name] = value;
  }

  [[nodiscard]] std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void reset() { counters_.clear(); }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const {
    return counters_;
  }

  friend std::ostream& operator<<(std::ostream& os, const CounterSet& c) {
    for (const auto& [name, value] : c.counters_) {
      os << "  " << name << " = " << value << "\n";
    }
    return os;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace stcn
