// Measurement utilities: running moments, quantile histograms, counters.
//
// Benchmarks and the framework's self-instrumentation (bytes on the wire,
// per-worker load, query latency) all report through these types.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace stcn {

/// Welford running mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  /// Coefficient of variation — the load-imbalance metric used in E3.
  [[nodiscard]] double cv() const {
    return mean() != 0.0 ? stddev() / mean() : 0.0;
  }

  void merge(const RunningStat& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    double total = static_cast<double>(n_ + other.n_);
    double delta = other.mean_ - mean_;
    double new_mean =
        mean_ + delta * static_cast<double>(other.n_) / total;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ = new_mean;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-quantile sample recorder. Stores every sample; fine for the sample
/// counts benchmarks produce (≤ millions).
class QuantileRecorder {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// Quantile q in [0, 1]; nearest-rank. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    double rank = q * static_cast<double>(samples_.size() - 1);
    auto idx = static_cast<std::size_t>(rank + 0.5);
    idx = std::min(idx, samples_.size() - 1);
    return samples_[idx];
  }

  [[nodiscard]] double median() { return quantile(0.5); }
  [[nodiscard]] double p99() { return quantile(0.99); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Named monotonic counters, used for transport accounting and pruning
/// statistics ("candidates examined", "messages sent", "bytes moved").
class CounterSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }

  [[nodiscard]] std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void reset() { counters_.clear(); }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const {
    return counters_;
  }

  friend std::ostream& operator<<(std::ostream& os, const CounterSet& c) {
    for (const auto& [name, value] : c.counters_) {
      os << "  " << name << " = " << value << "\n";
    }
    return os;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace stcn
