// Strong identifier types used across the framework.
//
// Every entity in the system (camera, tracked object, worker node, query,
// spatial partition) is referred to by a typed 64-bit id. The strong-typedef
// wrapper prevents accidentally passing a CameraId where a WorkerId is
// expected — a classic source of bugs in distributed routing code.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace stcn {

/// CRTP-free strong id: each Tag instantiation is a distinct type.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint64_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type value) : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << Tag::prefix() << id.value_;
  }

 private:
  underlying_type value_ = 0;
};

struct CameraIdTag {
  static constexpr const char* prefix() { return "cam/"; }
};
struct ObjectIdTag {
  static constexpr const char* prefix() { return "obj/"; }
};
struct WorkerIdTag {
  static constexpr const char* prefix() { return "wrk/"; }
};
struct NodeIdTag {
  static constexpr const char* prefix() { return "node/"; }
};
struct QueryIdTag {
  static constexpr const char* prefix() { return "qry/"; }
};
struct PartitionIdTag {
  static constexpr const char* prefix() { return "part/"; }
};
struct DetectionIdTag {
  static constexpr const char* prefix() { return "det/"; }
};
struct TrackIdTag {
  static constexpr const char* prefix() { return "trk/"; }
};

/// Identifies a physical camera in the network.
using CameraId = StrongId<CameraIdTag>;
/// Identifies a tracked real-world object (vehicle, pedestrian).
using ObjectId = StrongId<ObjectIdTag>;
/// Identifies a worker process in the cluster.
using WorkerId = StrongId<WorkerIdTag>;
/// Identifies any node (worker or coordinator) on the simulated network.
using NodeId = StrongId<NodeIdTag>;
/// Identifies a registered (possibly continuous) query.
using QueryId = StrongId<QueryIdTag>;
/// Identifies a spatio-temporal partition owned by some worker.
using PartitionId = StrongId<PartitionIdTag>;
/// Identifies a single detection event, unique network-wide.
using DetectionId = StrongId<DetectionIdTag>;
/// Identifies a stitched cross-camera track (OnlineTracker output).
using TrackId = StrongId<TrackIdTag>;

}  // namespace stcn

namespace std {
template <typename Tag>
struct hash<stcn::StrongId<Tag>> {
  size_t operator()(stcn::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
