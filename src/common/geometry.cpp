#include "common/geometry.h"

#include <cmath>

namespace stcn {

Rect FieldOfView::bounding_box() const {
  // Start with the apex and the two wedge-edge endpoints, then extend to
  // the extreme compass points of the arc that fall inside the wedge.
  Rect box = Rect::spanning(apex, apex);
  auto extend = [&box](Point p) {
    box.min.x = std::min(box.min.x, p.x);
    box.min.y = std::min(box.min.y, p.y);
    box.max.x = std::max(box.max.x, p.x);
    box.max.y = std::max(box.max.y, p.y);
  };
  auto on_arc = [this](double ang) {
    return apex + Point{std::cos(ang), std::sin(ang)} * range;
  };
  extend(on_arc(heading - half_angle));
  extend(on_arc(heading + half_angle));
  // Compass extremes of the full circle that lie within the wedge's span.
  constexpr double kCompass[] = {0.0, std::numbers::pi / 2, std::numbers::pi,
                                 -std::numbers::pi / 2};
  for (double c : kCompass) {
    if (std::abs(normalize_angle(c - heading)) <= half_angle) {
      extend(on_arc(c));
    }
  }
  // Nudge the max edges so the half-open box still contains arc extremes.
  box.max.x = std::nextafter(box.max.x, box.max.x + 1.0);
  box.max.y = std::nextafter(box.max.y, box.max.y + 1.0);
  return box;
}

double Polyline::length() const {
  double total = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    total += distance(points[i - 1], points[i]);
  }
  return total;
}

Point Polyline::at_arc_length(double s) const {
  if (points.empty()) return {};
  if (s <= 0.0) return points.front();
  for (std::size_t i = 1; i < points.size(); ++i) {
    double seg = distance(points[i - 1], points[i]);
    if (s <= seg) {
      if (seg == 0.0) return points[i];
      double t = s / seg;
      return points[i - 1] + (points[i] - points[i - 1]) * t;
    }
    s -= seg;
  }
  return points.back();
}

}  // namespace stcn
