// Branch-free filter kernels over columnar data.
//
// The vectorized scan path evaluates predicates over whole 4096-row blocks
// ("morsels") instead of row-at-a-time callbacks. Each kernel walks one
// contiguous column and emits the surviving row ids into a `uint32_t`
// selection vector using the standard data-parallel compaction idiom
//
//   out[n] = i;  n += predicate(i);
//
// — an unconditional store plus a predicated increment, no branches in the
// loop body, so the compiler can vectorize the comparisons and the hot loop
// never mispredicts on selectivity transitions. `filter_*` kernels scan a
// full row range; `refine_*` kernels compact an existing selection vector
// in place, so multi-predicate evaluation runs the most selective predicate
// over the full morsel once and every later predicate only over survivors
// (selectivity-ordered evaluation, see DetectionBlockZone selectivity
// estimates).
//
// Aggregation kernels consume selection vectors directly: heatmap cells
// accumulate into a dense per-cell array (one multiply-free index
// computation + increment per row) instead of a per-row ordered-map insert.
// Decode-fused variants (suffix `_decode`) run the same compaction idiom
// directly over cold-tier FOR/quantized code arrays (common/codec.h): one
// pass decodes a morsel's column into caller-provided scratch *and* tests
// the predicate, so a cold block is never materialized wholesale before
// filtering. Their `refine_*_decode` counterparts gather-decode only the
// survivors of an earlier predicate. All fused kernels work in block-local
// row ids [0, n); callers translate to global ids with offset_sel once at
// the end.
#pragma once

#include <cstdint>

#include "common/codec.h"
#include "common/geometry.h"

namespace stcn {

/// Emits every row id in [first, last) — the fully-inside zone-map fast
/// path, where predicate evaluation is skipped entirely.
inline std::uint32_t fill_identity(std::uint32_t first, std::uint32_t last,
                                   std::uint32_t* out) {
  std::uint32_t n = 0;
  for (std::uint32_t i = first; i < last; ++i) out[n++] = i;
  return n;
}

/// Rows in [first, last) with times[i] in [t0, t1).
inline std::uint32_t filter_time(const std::int64_t* times,
                                 std::uint32_t first, std::uint32_t last,
                                 std::int64_t t0, std::int64_t t1,
                                 std::uint32_t* out) {
  std::uint32_t n = 0;
  for (std::uint32_t i = first; i < last; ++i) {
    out[n] = i;
    n += static_cast<std::uint32_t>(times[i] >= t0) &
         static_cast<std::uint32_t>(times[i] < t1);
  }
  return n;
}

/// In-place compaction of `sel` to rows with times in [t0, t1).
inline std::uint32_t refine_time(const std::int64_t* times, std::int64_t t0,
                                 std::int64_t t1, std::uint32_t* sel,
                                 std::uint32_t n) {
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t row = sel[i];
    sel[m] = row;
    m += static_cast<std::uint32_t>(times[row] >= t0) &
         static_cast<std::uint32_t>(times[row] < t1);
  }
  return m;
}

/// Rows in [first, last) with (xs[i], ys[i]) inside `region` (half-open max
/// edges, matching Rect::contains).
inline std::uint32_t filter_rect(const double* xs, const double* ys,
                                 std::uint32_t first, std::uint32_t last,
                                 const Rect& region, std::uint32_t* out) {
  std::uint32_t n = 0;
  for (std::uint32_t i = first; i < last; ++i) {
    out[n] = i;
    n += static_cast<std::uint32_t>(xs[i] >= region.min.x) &
         static_cast<std::uint32_t>(xs[i] < region.max.x) &
         static_cast<std::uint32_t>(ys[i] >= region.min.y) &
         static_cast<std::uint32_t>(ys[i] < region.max.y);
  }
  return n;
}

/// In-place compaction of `sel` to rows inside `region`.
inline std::uint32_t refine_rect(const double* xs, const double* ys,
                                 const Rect& region, std::uint32_t* sel,
                                 std::uint32_t n) {
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t row = sel[i];
    sel[m] = row;
    m += static_cast<std::uint32_t>(xs[row] >= region.min.x) &
         static_cast<std::uint32_t>(xs[row] < region.max.x) &
         static_cast<std::uint32_t>(ys[row] >= region.min.y) &
         static_cast<std::uint32_t>(ys[row] < region.max.y);
  }
  return m;
}

/// Rows in [first, last) within distance `radius` of `center` (inclusive,
/// matching Circle::contains).
inline std::uint32_t filter_circle(const double* xs, const double* ys,
                                   std::uint32_t first, std::uint32_t last,
                                   Point center, double radius,
                                   std::uint32_t* out) {
  double r2 = radius * radius;
  std::uint32_t n = 0;
  for (std::uint32_t i = first; i < last; ++i) {
    double dx = xs[i] - center.x;
    double dy = ys[i] - center.y;
    out[n] = i;
    n += static_cast<std::uint32_t>(dx * dx + dy * dy <= r2);
  }
  return n;
}

/// In-place compaction of `sel` to rows within the circle.
inline std::uint32_t refine_circle(const double* xs, const double* ys,
                                   Point center, double radius,
                                   std::uint32_t* sel, std::uint32_t n) {
  double r2 = radius * radius;
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t row = sel[i];
    double dx = xs[row] - center.x;
    double dy = ys[row] - center.y;
    sel[m] = row;
    m += static_cast<std::uint32_t>(dx * dx + dy * dy <= r2);
  }
  return m;
}

/// Rows in [first, last) belonging to `camera`.
inline std::uint32_t filter_camera(const std::uint64_t* cameras,
                                   std::uint32_t first, std::uint32_t last,
                                   std::uint64_t camera, std::uint32_t* out) {
  std::uint32_t n = 0;
  for (std::uint32_t i = first; i < last; ++i) {
    out[n] = i;
    n += static_cast<std::uint32_t>(cameras[i] == camera);
  }
  return n;
}

/// In-place compaction of `sel` to rows of `camera`.
inline std::uint32_t refine_camera(const std::uint64_t* cameras,
                                   std::uint64_t camera, std::uint32_t* sel,
                                   std::uint32_t n) {
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t row = sel[i];
    sel[m] = row;
    m += static_cast<std::uint32_t>(cameras[row] == camera);
  }
  return m;
}

// ------------------------------------------------- decode-fused kernels

/// Adds `base` to the first `n` selection entries — translates block-local
/// row ids from the fused kernels into global row ids.
inline void offset_sel(std::uint32_t* sel, std::uint32_t n,
                       std::uint32_t base) {
  for (std::uint32_t i = 0; i < n; ++i) sel[i] += base;
}

/// Decode+filter fused over a FOR-packed time column: decodes all `n` rows
/// into `times` and emits local ids of rows in [t0, t1).
template <std::size_t W>
inline std::uint32_t filter_time_decode(const std::uint8_t* codes,
                                        std::int64_t base, std::uint32_t n,
                                        std::int64_t t0, std::int64_t t1,
                                        std::int64_t* times,
                                        std::uint32_t* sel) {
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::int64_t t =
        base + static_cast<std::int64_t>(
                   load_code<W>(codes + static_cast<std::size_t>(i) * W));
    times[i] = t;
    sel[m] = i;
    m += static_cast<std::uint32_t>(t >= t0) &
         static_cast<std::uint32_t>(t < t1);
  }
  return m;
}

/// Gather-decode refinement on a FOR-packed time column: compacts `sel`
/// (local ids) to rows whose decoded time lies in [t0, t1).
template <std::size_t W>
inline std::uint32_t refine_time_decode(const std::uint8_t* codes,
                                        std::int64_t base, std::int64_t t0,
                                        std::int64_t t1, std::uint32_t* sel,
                                        std::uint32_t n) {
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t row = sel[i];
    std::int64_t t =
        base + static_cast<std::int64_t>(
                   load_code<W>(codes + static_cast<std::size_t>(row) * W));
    sel[m] = row;
    m += static_cast<std::uint32_t>(t >= t0) &
         static_cast<std::uint32_t>(t < t1);
  }
  return m;
}

/// Decode+filter fused over a pair of FOR-quantized position columns:
/// decodes x/y for all rows and emits local ids inside `region`. The
/// predicate reads the *decoded* doubles, so results agree bit-for-bit
/// with any later pass over the same scratch.
template <std::size_t WX, std::size_t WY>
inline std::uint32_t filter_rect_decode(const std::uint8_t* xc, double xbase,
                                        double xq, const std::uint8_t* yc,
                                        double ybase, double yq,
                                        std::uint32_t n, const Rect& region,
                                        double* xs, double* ys,
                                        std::uint32_t* sel) {
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    double x = xbase + xq * static_cast<double>(load_code<WX>(
                                xc + static_cast<std::size_t>(i) * WX));
    double y = ybase + yq * static_cast<double>(load_code<WY>(
                                yc + static_cast<std::size_t>(i) * WY));
    xs[i] = x;
    ys[i] = y;
    sel[m] = i;
    m += static_cast<std::uint32_t>(x >= region.min.x) &
         static_cast<std::uint32_t>(x < region.max.x) &
         static_cast<std::uint32_t>(y >= region.min.y) &
         static_cast<std::uint32_t>(y < region.max.y);
  }
  return m;
}

template <std::size_t WX, std::size_t WY>
inline std::uint32_t refine_rect_decode(const std::uint8_t* xc, double xbase,
                                        double xq, const std::uint8_t* yc,
                                        double ybase, double yq,
                                        const Rect& region, std::uint32_t* sel,
                                        std::uint32_t n) {
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t row = sel[i];
    double x = xbase + xq * static_cast<double>(load_code<WX>(
                                xc + static_cast<std::size_t>(row) * WX));
    double y = ybase + yq * static_cast<double>(load_code<WY>(
                                yc + static_cast<std::size_t>(row) * WY));
    sel[m] = row;
    m += static_cast<std::uint32_t>(x >= region.min.x) &
         static_cast<std::uint32_t>(x < region.max.x) &
         static_cast<std::uint32_t>(y >= region.min.y) &
         static_cast<std::uint32_t>(y < region.max.y);
  }
  return m;
}

template <std::size_t WX, std::size_t WY>
inline std::uint32_t filter_circle_decode(const std::uint8_t* xc,
                                          double xbase, double xq,
                                          const std::uint8_t* yc,
                                          double ybase, double yq,
                                          std::uint32_t n, Point center,
                                          double radius, double* xs,
                                          double* ys, std::uint32_t* sel) {
  double r2 = radius * radius;
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    double x = xbase + xq * static_cast<double>(load_code<WX>(
                                xc + static_cast<std::size_t>(i) * WX));
    double y = ybase + yq * static_cast<double>(load_code<WY>(
                                yc + static_cast<std::size_t>(i) * WY));
    xs[i] = x;
    ys[i] = y;
    double dx = x - center.x;
    double dy = y - center.y;
    sel[m] = i;
    m += static_cast<std::uint32_t>(dx * dx + dy * dy <= r2);
  }
  return m;
}

template <std::size_t WX, std::size_t WY>
inline std::uint32_t refine_circle_decode(const std::uint8_t* xc,
                                          double xbase, double xq,
                                          const std::uint8_t* yc,
                                          double ybase, double yq,
                                          Point center, double radius,
                                          std::uint32_t* sel,
                                          std::uint32_t n) {
  double r2 = radius * radius;
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t row = sel[i];
    double x = xbase + xq * static_cast<double>(load_code<WX>(
                                xc + static_cast<std::size_t>(row) * WX));
    double y = ybase + yq * static_cast<double>(load_code<WY>(
                                yc + static_cast<std::size_t>(row) * WY));
    double dx = x - center.x;
    double dy = y - center.y;
    sel[m] = row;
    m += static_cast<std::uint32_t>(dx * dx + dy * dy <= r2);
  }
  return m;
}

/// Equality filter straight in dictionary-code space (no decode at all):
/// emits local ids of rows whose packed code equals `target`. Exact for
/// dictionary columns, since the value↔code mapping is a bijection.
template <std::size_t W>
inline std::uint32_t filter_code_eq(const std::uint8_t* codes,
                                    std::uint64_t target, std::uint32_t n,
                                    std::uint32_t* sel) {
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    sel[m] = i;
    m += static_cast<std::uint32_t>(
        load_code<W>(codes + static_cast<std::size_t>(i) * W) == target);
  }
  return m;
}

template <std::size_t W>
inline std::uint32_t refine_code_eq(const std::uint8_t* codes,
                                    std::uint64_t target, std::uint32_t* sel,
                                    std::uint32_t n) {
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t row = sel[i];
    sel[m] = row;
    m += static_cast<std::uint32_t>(
        load_code<W>(codes + static_cast<std::size_t>(row) * W) == target);
  }
  return m;
}

// ---------------------------------------------------------- aggregation

/// Accumulates heatmap cell counts for the selected rows into the dense
/// `cells` array (size cols × rows of the heatmap grid). `xs`/`ys` are
/// block-local column views whose element 0 is global row `base`; `sel`
/// holds global row ids. Positions are guaranteed inside the heatmap
/// region by the preceding filter, so the cell computation needs no
/// clamping. Divides by `cell` (rather than multiplying by a precomputed
/// reciprocal) so cell assignment is bit-identical to the scalar
/// Query::heatmap_cell.
inline void heatmap_accumulate(const double* xs, const double* ys,
                               std::uint32_t base, const std::uint32_t* sel,
                               std::uint32_t n, Point origin, double cell,
                               std::uint64_t cols, std::uint64_t* cells) {
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t row = sel[i] - base;
    auto cx = static_cast<std::uint64_t>((xs[row] - origin.x) / cell);
    auto cy = static_cast<std::uint64_t>((ys[row] - origin.y) / cell);
    ++cells[cy * cols + cx];
  }
}

}  // namespace stcn
