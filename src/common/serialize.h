// Binary serialization for messages crossing the simulated network.
//
// Sending a struct between nodes must cost bytes proportional to its real
// wire size — network-volume accounting is one of the quantities the
// evaluation measures — so everything that crosses a node boundary is
// explicitly serialized through BinaryWriter/BinaryReader rather than being
// passed by pointer.
//
// Format: little-endian fixed-width integers and doubles, u32 length
// prefixes for strings/containers. Readers are bounds-checked and report
// malformed input via Status rather than UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"

namespace stcn {

class BinaryWriter {
 public:
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

  /// Pre-sizes the buffer for `n` additional bytes. Encoders that know
  /// their payload size up front (detection batches are the big one) call
  /// this once instead of letting the vector double its way up.
  void reserve(std::size_t n) { buffer_.reserve(buffer_.size() + n); }

  void write_u8(std::uint8_t v) { buffer_.push_back(v); }
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
  void write_double(double v) { write_raw(&v, sizeof v); }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  void write_string(const std::string& s) {
    write_u32(static_cast<std::uint32_t>(s.size()));
    write_raw(s.data(), s.size());
  }

  template <typename Tag>
  void write_id(StrongId<Tag> id) {
    write_u64(id.value());
  }

  void write_time(TimePoint t) { write_i64(t.micros_since_origin()); }
  void write_duration(Duration d) { write_i64(d.count_micros()); }

  /// Appends raw bytes verbatim (e.g. a nested, already-encoded payload).
  void write_bytes(const std::vector<std::uint8_t>& bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  /// Writes a vector of elements via a per-element callback.
  template <typename T, typename Fn>
  void write_vector(const std::vector<T>& v, Fn&& write_element) {
    write_u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& e : v) write_element(*this, e);
  }

 private:
  void write_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + n);
  }

  std::vector<std::uint8_t> buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == size_ && !failed_; }

  std::uint8_t read_u8() {
    std::uint8_t v = 0;
    read_raw(&v, sizeof v);
    return v;
  }
  std::uint32_t read_u32() {
    std::uint32_t v = 0;
    read_raw(&v, sizeof v);
    return v;
  }
  std::uint64_t read_u64() {
    std::uint64_t v = 0;
    read_raw(&v, sizeof v);
    return v;
  }
  std::int64_t read_i64() {
    std::int64_t v = 0;
    read_raw(&v, sizeof v);
    return v;
  }
  double read_double() {
    double v = 0;
    read_raw(&v, sizeof v);
    return v;
  }
  bool read_bool() { return read_u8() != 0; }

  std::string read_string() {
    std::uint32_t n = read_u32();
    if (n > remaining()) {
      failed_ = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename Tag>
  StrongId<Tag> read_id() {
    return StrongId<Tag>(read_u64());
  }

  TimePoint read_time() { return TimePoint(read_i64()); }
  Duration read_duration() { return Duration(read_i64()); }

  /// Reads `n` raw bytes (e.g. a nested, already-encoded payload).
  std::vector<std::uint8_t> read_bytes(std::size_t n) {
    std::vector<std::uint8_t> out;
    if (n > remaining()) {
      failed_ = true;
      return out;
    }
    out.assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t remaining_bytes() const { return remaining(); }

  template <typename T, typename Fn>
  std::vector<T> read_vector(Fn&& read_element) {
    std::uint32_t n = read_u32();
    std::vector<T> v;
    // Guard against corrupt length prefixes claiming absurd sizes: each
    // element consumes at least one byte on the wire.
    if (n > remaining()) {
      failed_ = true;
      return v;
    }
    v.reserve(n);
    for (std::uint32_t i = 0; i < n && !failed_; ++i) {
      v.push_back(read_element(*this));
    }
    return v;
  }

  [[nodiscard]] Status status() const {
    return failed_ ? Status::internal("malformed message: truncated read")
                   : Status::ok();
  }

 private:
  void read_raw(void* out, std::size_t n) {
    if (failed_ || n > remaining()) {
      failed_ = true;
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace stcn
