// Simulation time.
//
// All timestamps in the framework are simulation time, not wall-clock time:
// a signed 64-bit count of microseconds since the start of the scenario.
// Keeping time as a plain arithmetic value (wrapped for type safety) makes
// the discrete-event network simulator and the temporal indexes trivial to
// reason about and fully deterministic.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace stcn {

/// A span of simulation time, in microseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t micros) : micros_(micros) {}

  static constexpr Duration micros(std::int64_t n) { return Duration(n); }
  static constexpr Duration millis(std::int64_t n) { return Duration(n * 1000); }
  static constexpr Duration seconds(std::int64_t n) {
    return Duration(n * 1'000'000);
  }
  static constexpr Duration minutes(std::int64_t n) { return seconds(n * 60); }
  static constexpr Duration hours(std::int64_t n) { return minutes(n * 60); }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return micros_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  friend constexpr auto operator<=>(Duration, Duration) = default;
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.micros_ + b.micros_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.micros_ - b.micros_);
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration(a.micros_ * k);
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration(a.micros_ / k);
  }

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.micros_ << "us";
  }

 private:
  std::int64_t micros_ = 0;
};

/// An instant of simulation time: microseconds since scenario start.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t micros) : micros_(micros) {}

  static constexpr TimePoint origin() { return TimePoint(0); }
  static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t micros_since_origin() const {
    return micros_;
  }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;
  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint(t.micros_ + d.count_micros());
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.micros_ - d.count_micros());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration(a.micros_ - b.micros_);
  }

  friend std::ostream& operator<<(std::ostream& os, TimePoint t) {
    return os << "t+" << t.micros_ << "us";
  }

 private:
  std::int64_t micros_ = 0;
};

/// A half-open time interval [begin, end).
struct TimeInterval {
  TimePoint begin;
  TimePoint end;

  /// The interval covering all representable time.
  static constexpr TimeInterval all() {
    return {TimePoint(std::numeric_limits<std::int64_t>::min()),
            TimePoint::max()};
  }

  [[nodiscard]] constexpr bool empty() const { return begin >= end; }
  [[nodiscard]] constexpr Duration length() const { return end - begin; }
  [[nodiscard]] constexpr bool contains(TimePoint t) const {
    return t >= begin && t < end;
  }
  [[nodiscard]] constexpr bool overlaps(const TimeInterval& other) const {
    return begin < other.end && other.begin < end;
  }
  [[nodiscard]] constexpr TimeInterval intersection(
      const TimeInterval& other) const {
    TimePoint b = begin > other.begin ? begin : other.begin;
    TimePoint e = end < other.end ? end : other.end;
    return {b, e};
  }

  friend constexpr bool operator==(const TimeInterval&,
                                   const TimeInterval&) = default;

  friend std::ostream& operator<<(std::ostream& os, const TimeInterval& iv) {
    return os << "[" << iv.begin << ", " << iv.end << ")";
  }
};

}  // namespace stcn
