// Batched appearance-similarity kernels.
//
// Re-id candidate scoring, tracker centroid matching, and appearance-heavy
// benches all reduce to "dot one L2-normalized query vector against many
// candidate vectors". The scalar AppearanceFeature::similarity loop carries
// a single serial accumulator chain, which caps the compiler at one FMA in
// flight; these kernels unroll into four independent accumulators — the
// manual reassociation that lets the compiler map them onto one SIMD
// register (4×f64 AVX / 2×f64 SSE) without -ffast-math — and walk
// contiguous memory so batches stream instead of pointer-chase.
//
// Accumulation is in double (like the scalar reference), so batched and
// scalar scores agree to rounding-order noise (~1e-15 for unit vectors),
// far inside the 1e-6 equivalence bound the tests assert.
// The int8 path quantizes each vector asymmetrically — per-vector scale s
// and offset o with codes q in [-127, 127], so v̂_i = o + s·q_i and the
// per-component error is at most s/2. The dot of two quantized vectors
// expands to
//
//   dot(â, b̂) = d·oa·ob + oa·sb·Σqb + ob·sa·Σqa + sa·sb·Σ(qa·qb)
//
// where Σq is precomputed at quantization time, leaving only the Σ(qa·qb)
// term as a loop — int8×int8 multiplies accumulated in int32 (exact), with
// one float rescale at the end. The error against the float dot is bounded
// by quantized_dot_error_bound below, which is what lets callers prefilter
// on the quantized score and float-rescore only candidates the bound
// cannot exclude (exact results, quantized speed on the rejected bulk).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace stcn {

/// dot(query, candidate) over `dim` floats with four independent
/// accumulator chains. The building block of every batch below.
[[nodiscard]] inline double appearance_dot(const float* query,
                                           const float* candidate,
                                           std::size_t dim) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += static_cast<double>(query[i]) * candidate[i];
    acc1 += static_cast<double>(query[i + 1]) * candidate[i + 1];
    acc2 += static_cast<double>(query[i + 2]) * candidate[i + 2];
    acc3 += static_cast<double>(query[i + 3]) * candidate[i + 3];
  }
  for (; i < dim; ++i) {
    acc0 += static_cast<double>(query[i]) * candidate[i];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// scores[i] = dot(query, candidates[i]); candidates are `n` pointers to
/// `dim`-float vectors (the gather form, for candidates materialized as
/// individual records).
inline void appearance_score_batch(const float* query, std::size_t dim,
                                   const float* const* candidates,
                                   std::size_t n, double* scores) {
  for (std::size_t c = 0; c < n; ++c) {
    scores[c] = appearance_dot(query, candidates[c], dim);
  }
}

/// scores[i] = dot(query, base + i*dim); candidates are rows of a dense
/// row-major n×dim matrix (the DetectionStore embedding-arena form — one
/// linear stream over the whole batch).
inline void appearance_score_batch_contiguous(const float* query,
                                              std::size_t dim,
                                              const float* base,
                                              std::size_t n, double* scores) {
  for (std::size_t c = 0; c < n; ++c) {
    scores[c] = appearance_dot(query, base + c * dim, dim);
  }
}

/// Convenience span form of the gather batch.
inline void appearance_score_batch(std::span<const float> query,
                                   std::span<const float* const> candidates,
                                   std::span<double> scores) {
  appearance_score_batch(query.data(), query.size(), candidates.data(),
                         candidates.size(), scores.data());
}

// ------------------------------------------------- int8 quantized path

/// Per-vector parameters of an int8 asymmetric quantization. The code
/// array itself lives wherever the caller stores it (cold-block arenas
/// keep one contiguous int8 arena per block).
struct EmbeddingQuantParams {
  float scale = 0.0f;            // v̂_i = offset + scale * code_i
  float offset = 0.0f;
  std::int32_t code_sum = 0;     // Σ code_i (for the dot expansion)
  std::int32_t abs_code_sum = 0; // Σ |code_i| (for the error bound)
};

/// Quantizes `dim` floats into int8 codes in [-127, 127]. scale == 0 means
/// every component equals `offset` exactly (codes are all zero).
inline EmbeddingQuantParams quantize_embedding(const float* v,
                                               std::size_t dim,
                                               std::int8_t* codes) {
  EmbeddingQuantParams p;
  if (dim == 0) return p;
  float lo = v[0], hi = v[0];
  for (std::size_t i = 1; i < dim; ++i) {
    lo = std::min(lo, v[i]);
    hi = std::max(hi, v[i]);
  }
  p.offset = 0.5f * (hi + lo);
  float range = hi - lo;
  if (!(range > 0.0f)) {
    for (std::size_t i = 0; i < dim; ++i) codes[i] = 0;
    return p;
  }
  p.scale = range / 254.0f;
  for (std::size_t i = 0; i < dim; ++i) {
    // (v - offset)/scale lies in [-127, 127] by construction; rounding
    // cannot escape the int8 range.
    auto q = static_cast<std::int32_t>(
        std::lround((v[i] - p.offset) / p.scale));
    codes[i] = static_cast<std::int8_t>(q);
    p.code_sum += q;
    p.abs_code_sum += q < 0 ? -q : q;
  }
  return p;
}

/// Σ a_i·b_i over int8 codes, accumulated exactly in int32 with four
/// independent chains (dim ≤ 2^23 stays far from overflow: |a·b| ≤ 127²).
[[nodiscard]] inline std::int32_t appearance_dot_i8(const std::int8_t* a,
                                                    const std::int8_t* b,
                                                    std::size_t dim) {
  std::int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += static_cast<std::int32_t>(a[i]) * b[i];
    acc1 += static_cast<std::int32_t>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<std::int32_t>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<std::int32_t>(a[i + 3]) * b[i + 3];
  }
  for (; i < dim; ++i) {
    acc0 += static_cast<std::int32_t>(a[i]) * b[i];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// dot(â, b̂) of two quantized vectors: the int8×int8 kernel plus the
/// closed-form cross terms, rescaled once in double.
[[nodiscard]] inline double quantized_dot(const std::int8_t* a,
                                          const EmbeddingQuantParams& pa,
                                          const std::int8_t* b,
                                          const EmbeddingQuantParams& pb,
                                          std::size_t dim) {
  double d = static_cast<double>(dim);
  return d * static_cast<double>(pa.offset) * pb.offset +
         static_cast<double>(pa.offset) * pb.scale * pb.code_sum +
         static_cast<double>(pb.offset) * pa.scale * pa.code_sum +
         static_cast<double>(pa.scale) * pb.scale *
             appearance_dot_i8(a, b, dim);
}

/// Sound bound on |quantized_dot(â, b̂) − dot(a, b)|. With per-component
/// errors |δa_i| ≤ sa/2 and |δb_i| ≤ sb/2,
///
///   |Σ â·b̂ − Σ a·b| ≤ (sb/2)·Σ|â_i| + (sa/2)·Σ|b̂_i| + d·(sa/2)(sb/2)
///
/// and Σ|v̂_i| ≤ d·|offset| + scale·Σ|code_i|, all of which are stored
/// per-vector — the bound costs O(1) per candidate pair.
[[nodiscard]] inline double quantized_dot_error_bound(
    const EmbeddingQuantParams& pa, const EmbeddingQuantParams& pb,
    std::size_t dim) {
  double d = static_cast<double>(dim);
  double abs_a = d * std::abs(static_cast<double>(pa.offset)) +
                 static_cast<double>(pa.scale) * pa.abs_code_sum;
  double abs_b = d * std::abs(static_cast<double>(pb.offset)) +
                 static_cast<double>(pb.scale) * pb.abs_code_sum;
  return 0.5 * pb.scale * abs_a + 0.5 * pa.scale * abs_b +
         0.25 * d * static_cast<double>(pa.scale) * pb.scale;
}

}  // namespace stcn
