// Batched appearance-similarity kernels.
//
// Re-id candidate scoring, tracker centroid matching, and appearance-heavy
// benches all reduce to "dot one L2-normalized query vector against many
// candidate vectors". The scalar AppearanceFeature::similarity loop carries
// a single serial accumulator chain, which caps the compiler at one FMA in
// flight; these kernels unroll into four independent accumulators — the
// manual reassociation that lets the compiler map them onto one SIMD
// register (4×f64 AVX / 2×f64 SSE) without -ffast-math — and walk
// contiguous memory so batches stream instead of pointer-chase.
//
// Accumulation is in double (like the scalar reference), so batched and
// scalar scores agree to rounding-order noise (~1e-15 for unit vectors),
// far inside the 1e-6 equivalence bound the tests assert.
#pragma once

#include <cstddef>
#include <span>

namespace stcn {

/// dot(query, candidate) over `dim` floats with four independent
/// accumulator chains. The building block of every batch below.
[[nodiscard]] inline double appearance_dot(const float* query,
                                           const float* candidate,
                                           std::size_t dim) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += static_cast<double>(query[i]) * candidate[i];
    acc1 += static_cast<double>(query[i + 1]) * candidate[i + 1];
    acc2 += static_cast<double>(query[i + 2]) * candidate[i + 2];
    acc3 += static_cast<double>(query[i + 3]) * candidate[i + 3];
  }
  for (; i < dim; ++i) {
    acc0 += static_cast<double>(query[i]) * candidate[i];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// scores[i] = dot(query, candidates[i]); candidates are `n` pointers to
/// `dim`-float vectors (the gather form, for candidates materialized as
/// individual records).
inline void appearance_score_batch(const float* query, std::size_t dim,
                                   const float* const* candidates,
                                   std::size_t n, double* scores) {
  for (std::size_t c = 0; c < n; ++c) {
    scores[c] = appearance_dot(query, candidates[c], dim);
  }
}

/// scores[i] = dot(query, base + i*dim); candidates are rows of a dense
/// row-major n×dim matrix (the DetectionStore embedding-arena form — one
/// linear stream over the whole batch).
inline void appearance_score_batch_contiguous(const float* query,
                                              std::size_t dim,
                                              const float* base,
                                              std::size_t n, double* scores) {
  for (std::size_t c = 0; c < n; ++c) {
    scores[c] = appearance_dot(query, base + c * dim, dim);
  }
}

/// Convenience span form of the gather batch.
inline void appearance_score_batch(std::span<const float> query,
                                   std::span<const float* const> candidates,
                                   std::span<double> scores) {
  appearance_score_batch(query.data(), query.size(), candidates.data(),
                         candidates.size(), scores.data());
}

}  // namespace stcn
