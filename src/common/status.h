// Lightweight status / expected-value types for recoverable errors.
//
// The framework uses Status/Result for errors that a distributed system must
// treat as data — unreachable node, unknown partition, timed-out query —
// and assertions (CHECK) for programming errors that indicate a broken
// invariant. Exceptions are reserved for construction-time configuration
// errors.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace stcn {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kUnavailable,    // node down / link down
  kDeadlineExceeded,
  kFailedPrecondition,
  kInternal,
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }
  static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status deadline_exceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    os << to_string(s.code_);
    if (!s.message_.empty()) os << ": " << s.message_;
    return os;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or an error Status. `value()` on an error aborts — callers
/// must check `ok()` (or use `value_or`) on fallible paths.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).is_ok()) {
      std::fputs("Result constructed from OK status without a value\n",
                 stderr);
      std::abort();
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  [[nodiscard]] const T& value() const& {
    check_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    check_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    check_ok();
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  [[nodiscard]] Status status() const {
    return ok() ? Status::ok() : std::get<Status>(data_);
  }

 private:
  void check_ok() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s %s\n",
                   to_string(std::get<Status>(data_).code()),
                   std::get<Status>(data_).message().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

namespace internal {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace internal

/// Invariant assertion, active in all build types: distributed-systems bugs
/// that only fire in release builds are the worst kind.
#define STCN_CHECK(expr)                                         \
  do {                                                           \
    if (!(expr)) {                                               \
      ::stcn::internal::check_failed(#expr, __FILE__, __LINE__); \
    }                                                            \
  } while (false)

}  // namespace stcn
