// Continuous (standing) queries with incremental +/- updates.
//
// A continuous range query monitors a region over a sliding time window.
// Instead of re-evaluating on every tick, the monitor emits *deltas*: a
// positive update when a matching detection arrives, a negative update when
// a previously-reported detection ages out of the window. The coordinator
// (or client) can replay the delta stream to maintain the live answer set.
//
// Workers host a ContinuousQueryManager: detections are tested against all
// installed monitors (grid-bucketed so the common case tests only nearby
// monitors), and `advance_to` retires expired detections.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"
#include "trace/detection.h"

namespace stcn {

struct ContinuousQuerySpec {
  QueryId id;
  Rect region;
  Duration window = Duration::minutes(1);
};

/// One incremental answer-set change.
struct DeltaUpdate {
  QueryId query;
  bool positive = true;  // true: enters the answer set; false: leaves it
  Detection detection;
};

class ContinuousQueryManager {
 public:
  /// `world` bounds the bucketing grid used to route detections to
  /// monitors; `bucket_size` trades routing precision for memory.
  ContinuousQueryManager(Rect world, double bucket_size = 250.0)
      : world_(world), bucket_size_(bucket_size) {
    STCN_CHECK(!world.is_empty());
    STCN_CHECK(bucket_size > 0.0);
    cols_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(world.width() / bucket_size)));
    rows_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(world.height() / bucket_size)));
    buckets_.resize(cols_ * rows_);
  }

  void install(const ContinuousQuerySpec& spec) {
    STCN_CHECK(!monitors_.contains(spec.id));
    monitors_.emplace(spec.id, Monitor{spec, {}});
    for (std::size_t b : buckets_overlapping(spec.region)) {
      buckets_[b].push_back(spec.id);
    }
  }

  void remove(QueryId id) {
    monitors_.erase(id);
    for (auto& bucket : buckets_) {
      std::erase(bucket, id);
    }
  }

  [[nodiscard]] std::size_t monitor_count() const { return monitors_.size(); }

  /// Routes a new detection to matching monitors; appends the positive
  /// deltas it generates to `out`. Returns the number of monitors *tested*
  /// (the routing-efficiency metric for E7).
  std::size_t on_detection(const Detection& d, std::vector<DeltaUpdate>& out) {
    std::size_t tested = 0;
    std::size_t bucket = bucket_of(d.position);
    for (QueryId id : buckets_[bucket]) {
      auto it = monitors_.find(id);
      if (it == monitors_.end()) continue;
      ++tested;
      Monitor& m = it->second;
      if (!m.spec.region.contains(d.position)) continue;
      // Sorted insert: batched multi-partition delivery interleaves
      // arrival order, and expiry pops from the front — an out-of-order
      // entry behind a newer front would otherwise outlive its window.
      if (m.window.empty() || m.window.back().time <= d.time) {
        m.window.push_back(d);
      } else {
        auto pos = std::upper_bound(
            m.window.begin(), m.window.end(), d.time,
            [](TimePoint t, const Detection& e) { return t < e.time; });
        m.window.insert(pos, d);
      }
      out.push_back({id, true, d});
    }
    return tested;
  }

  /// Retires detections older than each monitor's window at time `now`,
  /// emitting negative deltas.
  void advance_to(TimePoint now, std::vector<DeltaUpdate>& out) {
    for (auto& [id, m] : monitors_) {
      TimePoint horizon = now - m.spec.window;
      while (!m.window.empty() && m.window.front().time < horizon) {
        out.push_back({id, false, m.window.front()});
        m.window.pop_front();
      }
    }
  }

  /// Current answer set of one monitor (for verification against
  /// snapshot evaluation).
  [[nodiscard]] std::vector<Detection> answer_set(QueryId id) const {
    auto it = monitors_.find(id);
    if (it == monitors_.end()) return {};
    return {it->second.window.begin(), it->second.window.end()};
  }

 private:
  struct Monitor {
    ContinuousQuerySpec spec;
    std::deque<Detection> window;  // time-ordered matching detections
  };

  [[nodiscard]] std::size_t bucket_of(Point p) const {
    auto cx = static_cast<std::ptrdiff_t>(
        (p.x - world_.min.x) / bucket_size_);
    auto cy = static_cast<std::ptrdiff_t>(
        (p.y - world_.min.y) / bucket_size_);
    cx = std::clamp<std::ptrdiff_t>(cx, 0, static_cast<std::ptrdiff_t>(cols_) - 1);
    cy = std::clamp<std::ptrdiff_t>(cy, 0, static_cast<std::ptrdiff_t>(rows_) - 1);
    return static_cast<std::size_t>(cy) * cols_ + static_cast<std::size_t>(cx);
  }

  [[nodiscard]] std::vector<std::size_t> buckets_overlapping(
      const Rect& region) const {
    std::vector<std::size_t> out;
    std::size_t b0 = bucket_of(region.min);
    std::size_t b1 = bucket_of({region.max.x, region.max.y});
    std::size_t x0 = b0 % cols_, y0 = b0 / cols_;
    std::size_t x1 = b1 % cols_, y1 = b1 / cols_;
    for (std::size_t y = y0; y <= y1; ++y) {
      for (std::size_t x = x0; x <= x1; ++x) {
        out.push_back(y * cols_ + x);
      }
    }
    return out;
  }

  Rect world_;
  double bucket_size_;
  std::size_t cols_ = 1;
  std::size_t rows_ = 1;
  std::vector<std::vector<QueryId>> buckets_;  // bucket → monitor ids
  std::unordered_map<QueryId, Monitor> monitors_;
};

}  // namespace stcn
