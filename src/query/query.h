// Query model.
//
// A Query is a small, serializable description of what the caller wants;
// the coordinator computes its partition footprint, ships it to the
// relevant workers, and merges their partial results.
//
// Kinds:
//   kRange      — detections with position ∈ region, time ∈ interval
//   kCircle     — detections within a circle during interval
//   kKnn        — k detections nearest `center` during interval
//   kTrajectory — detections of one object during interval, time-ordered
//   kCount      — count of detections in region/interval, optionally
//                 grouped by camera
//   kCameraWindow — detections of one camera during interval (the primitive
//                 the re-identification engine issues after cone pruning)
//   kHeatmap    — per-cell detection counts over a region (one query
//                 replaces a grid of kCount queries for dashboards)
#pragma once

#include <cmath>
#include <cstdint>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/serialize.h"
#include "common/time.h"

namespace stcn {

enum class QueryKind : std::uint8_t {
  kRange = 0,
  kCircle = 1,
  kKnn = 2,
  kTrajectory = 3,
  kCount = 4,
  kCameraWindow = 5,
  kHeatmap = 6,
};

[[nodiscard]] inline const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRange: return "range";
    case QueryKind::kCount: return "count";
    case QueryKind::kHeatmap: return "heatmap";
    case QueryKind::kCircle: return "circle";
    case QueryKind::kCameraWindow: return "camera_window";
    case QueryKind::kTrajectory: return "trajectory";
    case QueryKind::kKnn: return "knn";
  }
  return "unknown";
}

enum class GroupBy : std::uint8_t {
  kNone = 0,
  kCamera = 1,
};

struct Query {
  QueryId id;
  QueryKind kind = QueryKind::kRange;
  TimeInterval interval = TimeInterval::all();

  // kRange / kCount footprint.
  Rect region;
  // kCircle footprint.
  Circle circle;
  // kKnn parameters.
  Point center;
  std::uint32_t k = 0;
  // kTrajectory parameter.
  ObjectId object;
  // kCameraWindow parameter.
  CameraId camera;
  // kCount grouping.
  GroupBy group_by = GroupBy::kNone;
  // kHeatmap cell edge length (meters).
  double cell_size = 0.0;
  // Maximum detections returned (0 = unlimited). Applies to detection-
  // producing kinds except kKnn (which is bounded by k already); the limit
  // keeps the earliest `limit` detections in canonical time order, and is
  // enforced both per-worker (bounding fragment size on the wire) and at
  // the final merge.
  std::uint32_t limit = 0;
  // Originating tenant (gateway id, client class, ...). 0 = local/untagged.
  // Pure attribution metadata: never affects the answer, only how the
  // coordinator's resource ledger buckets the query's cost.
  std::uint32_t tenant = 0;

  /// Returns a copy with a result limit applied.
  [[nodiscard]] Query with_limit(std::uint32_t n) const {
    Query q = *this;
    q.limit = n;
    return q;
  }

  /// Returns a copy attributed to `tenant` for cost accounting.
  [[nodiscard]] Query with_tenant(std::uint32_t t) const {
    Query q = *this;
    q.tenant = t;
    return q;
  }

  // -------- constructors for each kind --------
  static Query range(QueryId id, Rect region, TimeInterval interval) {
    Query q;
    q.id = id;
    q.kind = QueryKind::kRange;
    q.region = region;
    q.interval = interval;
    return q;
  }
  static Query circle_query(QueryId id, Circle c, TimeInterval interval) {
    Query q;
    q.id = id;
    q.kind = QueryKind::kCircle;
    q.circle = c;
    q.interval = interval;
    return q;
  }
  static Query knn(QueryId id, Point center, std::uint32_t k,
                   TimeInterval interval) {
    Query q;
    q.id = id;
    q.kind = QueryKind::kKnn;
    q.center = center;
    q.k = k;
    q.interval = interval;
    return q;
  }
  static Query trajectory(QueryId id, ObjectId object, TimeInterval interval) {
    Query q;
    q.id = id;
    q.kind = QueryKind::kTrajectory;
    q.object = object;
    q.interval = interval;
    return q;
  }
  static Query count(QueryId id, Rect region, TimeInterval interval,
                     GroupBy group_by = GroupBy::kNone) {
    Query q;
    q.id = id;
    q.kind = QueryKind::kCount;
    q.region = region;
    q.interval = interval;
    q.group_by = group_by;
    return q;
  }
  static Query camera_window(QueryId id, CameraId camera,
                             TimeInterval interval) {
    Query q;
    q.id = id;
    q.kind = QueryKind::kCameraWindow;
    q.camera = camera;
    q.interval = interval;
    return q;
  }
  static Query heatmap(QueryId id, Rect region, double cell_size,
                       TimeInterval interval) {
    Query q;
    q.id = id;
    q.kind = QueryKind::kHeatmap;
    q.region = region;
    q.cell_size = cell_size;
    q.interval = interval;
    return q;
  }

  /// Heatmap grid shape: columns/rows covering `region` at `cell_size`.
  [[nodiscard]] std::size_t heatmap_cols() const {
    if (cell_size <= 0.0) return 0;
    return static_cast<std::size_t>(std::ceil(region.width() / cell_size));
  }
  [[nodiscard]] std::size_t heatmap_rows() const {
    if (cell_size <= 0.0) return 0;
    return static_cast<std::size_t>(std::ceil(region.height() / cell_size));
  }
  /// Flat heatmap cell index of a position inside `region`.
  [[nodiscard]] std::uint64_t heatmap_cell(Point p) const {
    auto cx = static_cast<std::uint64_t>((p.x - region.min.x) / cell_size);
    auto cy = static_cast<std::uint64_t>((p.y - region.min.y) / cell_size);
    return cy * heatmap_cols() + cx;
  }

  /// Conservative spatial footprint, or an empty rect when the query has no
  /// spatial constraint (trajectory queries).
  [[nodiscard]] Rect spatial_footprint() const {
    switch (kind) {
      case QueryKind::kRange:
      case QueryKind::kCount:
      case QueryKind::kHeatmap:
        return region;
      case QueryKind::kCircle:
        return circle.bounding_box();
      case QueryKind::kKnn:
        return Rect::empty();  // unbounded: nearest may be anywhere
      case QueryKind::kTrajectory:
      case QueryKind::kCameraWindow:
        return Rect::empty();
    }
    return Rect::empty();
  }

  [[nodiscard]] bool has_spatial_footprint() const {
    return kind == QueryKind::kRange || kind == QueryKind::kCount ||
           kind == QueryKind::kCircle || kind == QueryKind::kHeatmap;
  }
};

inline void serialize(BinaryWriter& w, const Query& q) {
  w.write_id(q.id);
  w.write_u8(static_cast<std::uint8_t>(q.kind));
  w.write_time(q.interval.begin);
  w.write_time(q.interval.end);
  w.write_double(q.region.min.x);
  w.write_double(q.region.min.y);
  w.write_double(q.region.max.x);
  w.write_double(q.region.max.y);
  w.write_double(q.circle.center.x);
  w.write_double(q.circle.center.y);
  w.write_double(q.circle.radius);
  w.write_double(q.center.x);
  w.write_double(q.center.y);
  w.write_u32(q.k);
  w.write_id(q.object);
  w.write_id(q.camera);
  w.write_u8(static_cast<std::uint8_t>(q.group_by));
  w.write_double(q.cell_size);
  w.write_u32(q.limit);
  w.write_u32(q.tenant);
}

inline Query deserialize_query(BinaryReader& r) {
  Query q;
  q.id = r.read_id<QueryIdTag>();
  q.kind = static_cast<QueryKind>(r.read_u8());
  q.interval.begin = r.read_time();
  q.interval.end = r.read_time();
  q.region.min.x = r.read_double();
  q.region.min.y = r.read_double();
  q.region.max.x = r.read_double();
  q.region.max.y = r.read_double();
  q.circle.center.x = r.read_double();
  q.circle.center.y = r.read_double();
  q.circle.radius = r.read_double();
  q.center.x = r.read_double();
  q.center.y = r.read_double();
  q.k = r.read_u32();
  q.object = r.read_id<ObjectIdTag>();
  q.camera = r.read_id<CameraIdTag>();
  q.group_by = static_cast<GroupBy>(r.read_u8());
  q.cell_size = r.read_double();
  q.limit = r.read_u32();
  q.tenant = r.read_u32();
  return q;
}

}  // namespace stcn
