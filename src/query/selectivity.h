// Feedback-driven spatio-temporal selectivity estimation.
//
// The coordinator keeps a coarse grid × time-bucket histogram of detection
// density, refined from the actual result sizes of executed queries (no
// scanning of the raw stream). Estimates drive the cost-based choice
// between distributed scatter-gather and single-worker execution, and are
// evaluated in the ablation benchmark.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/time.h"

namespace stcn {

/// Fraction of `bounds` covered by `region` (0 when disjoint, 1 when the
/// region swallows the bounds). A geometric, feedback-free selectivity
/// signal: aggregate queries covering most of a worker's area are better
/// served by the store's vectorized block scan than by probing nearly every
/// grid cell.
[[nodiscard]] inline double spatial_coverage(const Rect& region,
                                             const Rect& bounds) {
  if (region.is_empty() || bounds.is_empty()) return 0.0;
  double bounds_area = bounds.area();
  if (bounds_area <= 0.0) return 0.0;
  return region.intersection(bounds).area() / bounds_area;
}

struct SelectivityConfig {
  Rect world;
  std::size_t grid_cols = 16;
  std::size_t grid_rows = 16;
  Duration time_bucket = Duration::minutes(1);
  std::size_t time_buckets = 32;  // ring buffer over recent buckets
};

class SelectivityEstimator {
 public:
  explicit SelectivityEstimator(const SelectivityConfig& config)
      : config_(config),
        density_(config.grid_cols * config.grid_rows * config.time_buckets,
                 0.0),
        lit_(config.grid_cols * config.grid_rows * config.time_buckets,
             false) {
    STCN_CHECK(!config.world.is_empty());
    STCN_CHECK(config.grid_cols > 0 && config.grid_rows > 0);
    STCN_CHECK(config.time_buckets > 0);
  }

  /// Feedback from an executed range query: `region`/`interval` returned
  /// `result_count` detections. Distributes the observed density uniformly
  /// over the covered buckets and blends it into the running estimate.
  void observe(const Rect& region, const TimeInterval& interval,
               std::uint64_t result_count) {
    auto buckets = covered_buckets(region, interval);
    if (buckets.empty()) return;
    // Uniformity assumption within the query footprint: the observed count
    // spreads over the covered bucket *fractions*, so the implied density
    // of a fully-covered bucket is count / Σ fractions.
    double total_fraction = 0.0;
    for (auto [idx, fraction] : buckets) total_fraction += fraction;
    if (total_fraction <= 0.0) return;
    double per_full_bucket =
        static_cast<double>(result_count) / total_fraction;
    for (auto [idx, fraction] : buckets) {
      // Exponential blend: full trust on first light, then smoothing.
      if (!lit_[idx]) {
        density_[idx] = per_full_bucket;
        lit_[idx] = true;
      } else {
        density_[idx] = 0.7 * density_[idx] + 0.3 * per_full_bucket;
      }
    }
  }

  /// Estimated number of detections a range query would return. Unlit
  /// buckets contribute the mean density of lit buckets (uniformity prior).
  [[nodiscard]] double estimate(const Rect& region,
                                const TimeInterval& interval) const {
    auto buckets = covered_buckets(region, interval);
    if (buckets.empty()) return 0.0;
    double lit_sum = 0.0;
    std::size_t lit_count = 0;
    for (std::size_t i = 0; i < density_.size(); ++i) {
      if (lit_[i]) {
        lit_sum += density_[i];
        ++lit_count;
      }
    }
    double prior = lit_count ? lit_sum / static_cast<double>(lit_count) : 0.0;
    double total = 0.0;
    for (auto [idx, fraction] : buckets) {
      total += (lit_[idx] ? density_[idx] : prior) * fraction;
    }
    return total;
  }

  /// Fraction of buckets with at least one observation.
  [[nodiscard]] double coverage() const {
    std::size_t lit_count = 0;
    for (bool b : lit_) lit_count += b ? 1 : 0;
    return static_cast<double>(lit_count) / static_cast<double>(lit_.size());
  }

 private:
  /// (bucket index, fraction of the bucket covered by the query footprint).
  [[nodiscard]] std::vector<std::pair<std::size_t, double>> covered_buckets(
      const Rect& region, const TimeInterval& interval) const {
    std::vector<std::pair<std::size_t, double>> out;
    Rect clipped = region.intersection(config_.world);
    if (clipped.is_empty() || interval.empty()) return out;
    double cell_w = config_.world.width() / static_cast<double>(config_.grid_cols);
    double cell_h =
        config_.world.height() / static_cast<double>(config_.grid_rows);
    auto cx0 = static_cast<std::size_t>((clipped.min.x - config_.world.min.x) / cell_w);
    auto cx1 = static_cast<std::size_t>(
        std::min((clipped.max.x - config_.world.min.x) / cell_w,
                 static_cast<double>(config_.grid_cols) - 1.0));
    auto cy0 = static_cast<std::size_t>((clipped.min.y - config_.world.min.y) / cell_h);
    auto cy1 = static_cast<std::size_t>(
        std::min((clipped.max.y - config_.world.min.y) / cell_h,
                 static_cast<double>(config_.grid_rows) - 1.0));

    std::int64_t tb0 = bucket_of(interval.begin);
    std::int64_t tb1 = bucket_of(interval.end - Duration::micros(1));
    // The ring holds `time_buckets` slots; wider intervals revisit slots,
    // so visiting each slot once suffices (and keeps unbounded intervals —
    // TimeInterval::all() — O(ring size)).
    if (tb1 - tb0 >= static_cast<std::int64_t>(config_.time_buckets)) {
      tb1 = tb0 + static_cast<std::int64_t>(config_.time_buckets) - 1;
    }
    for (std::int64_t tb = tb0; tb <= tb1; ++tb) {
      std::size_t ring =
          static_cast<std::size_t>(tb % static_cast<std::int64_t>(
                                            config_.time_buckets));
      for (std::size_t cy = cy0; cy <= cy1; ++cy) {
        for (std::size_t cx = cx0; cx <= cx1; ++cx) {
          Rect cell{{config_.world.min.x + static_cast<double>(cx) * cell_w,
                     config_.world.min.y + static_cast<double>(cy) * cell_h},
                    {config_.world.min.x + static_cast<double>(cx + 1) * cell_w,
                     config_.world.min.y + static_cast<double>(cy + 1) * cell_h}};
          double fraction =
              cell.intersection(clipped).area() / std::max(cell.area(), 1e-9);
          if (fraction <= 1e-12) continue;  // boundary-touching cells
          std::size_t idx =
              (ring * config_.grid_rows + cy) * config_.grid_cols + cx;
          out.emplace_back(idx, fraction);
        }
      }
    }
    return out;
  }

  [[nodiscard]] std::int64_t bucket_of(TimePoint t) const {
    std::int64_t m = std::max<std::int64_t>(t.micros_since_origin(), 0);
    return m / config_.time_bucket.count_micros();
  }

  SelectivityConfig config_;
  std::vector<double> density_;
  std::vector<bool> lit_;
};

}  // namespace stcn
