// Adaptive query planning.
//
// k-NN has no a-priori spatial footprint, so the naive plan broadcasts to
// every partition. The planner uses the feedback-built selectivity
// histogram to bound the search: pick the smallest radius whose estimated
// detection count comfortably exceeds k, run a *circle* query (which the
// partition strategy can prune), and expand the radius only if the guess
// under-shot.
//
// Correctness does not depend on the estimate: if a circle of radius R
// returns ≥ k detections, the true k nearest all lie within R (anything
// outside is farther than everything inside), so the answer equals the
// broadcast k-NN. The estimate only controls how often we expand.
#pragma once

#include <cstdint>
#include <string>

#include "common/geometry.h"
#include "common/time.h"
#include "obs/explain.h"
#include "query/selectivity.h"

namespace stcn {

/// Access-path choice for aggregate queries (count, group-by, heatmap):
/// true when the query region covers enough of the worker's area that the
/// store's vectorized morsel scan beats the grid walk. The grid wins on
/// small regions (it prunes cells spatially); a broad region visits most
/// cells anyway, and the columnar scan adds zone-map block skipping,
/// branch-free predicate kernels, and selection-vector aggregation. The
/// threshold is deliberately coarse — both paths return identical results
/// (the differential tests pin this), so it only tunes performance.
[[nodiscard]] inline bool prefer_columnar_scan(const Rect& region,
                                               const Rect& worker_bounds) {
  return spatial_coverage(region, worker_bounds) >= 0.5;
}

struct KnnPlan {
  double initial_radius = 0.0;
  /// Estimated detections within the initial radius.
  double estimated_count = 0.0;
  /// True when the planner fell back to a whole-world radius (estimator
  /// dark or k larger than the estimated population).
  bool degenerate = false;
};

struct KnnPlannerParams {
  /// Target estimate = k × this factor (headroom for estimator error).
  double overshoot_factor = 3.0;
  /// Smallest radius ever planned (below this, fixed costs dominate).
  double min_radius = 50.0;
  /// Radius growth per expansion round.
  double growth = 2.0;
};

class KnnPlanner {
 public:
  KnnPlanner(const SelectivityEstimator& estimator, Rect world,
             KnnPlannerParams params = {})
      : estimator_(estimator), world_(world), params_(params) {}

  /// Plans the initial radius for a k-NN at `center` over `interval`. When
  /// `profiler` is profiling, the radius ladder is recorded as a
  /// `knn.plan` EXPLAIN stage (one note per guess) so the query profile
  /// shows why this radius was chosen.
  [[nodiscard]] KnnPlan plan(Point center, std::uint32_t k,
                             const TimeInterval& interval,
                             QueryProfiler* profiler = nullptr) const {
    KnnPlan plan;
    std::size_t stage = QueryProfiler::kNoStage;
    if (profiler != nullptr && profiler->active()) {
      stage = profiler->open_stage("knn.plan");
      profiler->stage(stage).note("k", std::to_string(k));
    }
    double world_radius =
        std::max(world_.width(), world_.height());
    double target = static_cast<double>(k) * params_.overshoot_factor;
    double radius = params_.min_radius;
    int guesses = 0;
    while (radius < world_radius) {
      plan.estimated_count =
          estimator_.estimate(Rect::centered(center, radius), interval);
      ++guesses;
      if (stage != QueryProfiler::kNoStage) {
        profiler->stage(stage).note(
            "guess_" + std::to_string(guesses),
            "r=" + std::to_string(radius) +
                " est=" + std::to_string(plan.estimated_count));
      }
      if (plan.estimated_count >= target) break;
      radius *= params_.growth;
    }
    if (radius >= world_radius) {
      plan.degenerate = true;
      radius = world_radius;
    }
    plan.initial_radius = radius;
    if (stage != QueryProfiler::kNoStage) {
      ExplainStage& s = profiler->stage(stage);
      s.estimated = plan.estimated_count;
      s.considered = static_cast<std::uint64_t>(guesses);
      s.note("target", std::to_string(target));
      s.note("radius", std::to_string(radius));
      if (plan.degenerate) s.note("degenerate", "true");
      profiler->close_stage(stage);
    }
    return plan;
  }

  [[nodiscard]] double grow(double radius) const {
    return radius * params_.growth;
  }
  [[nodiscard]] double world_radius() const {
    return std::max(world_.width(), world_.height());
  }

 private:
  const SelectivityEstimator& estimator_;
  Rect world_;
  KnnPlannerParams params_;
};

}  // namespace stcn
