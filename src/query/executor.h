// Per-worker local query execution.
//
// A LocalExecutor answers a Query against one worker's indexes. It is pure
// with respect to the framework: given the store and indexes, it computes a
// QueryResult fragment; the coordinator merges fragments across workers.
#pragma once

#include "index/detection_store.h"
#include "index/grid_index.h"
#include "index/temporal_store.h"
#include "index/trajectory_store.h"
#include "query/query.h"
#include "query/result.h"

namespace stcn {

/// The bundle of per-worker storage a query executes against.
struct WorkerIndexes {
  GridIndexConfig grid_config;
  DetectionStore store;
  GridIndex grid;
  TrajectoryStore trajectories;
  TemporalStore temporal;

  explicit WorkerIndexes(const GridIndexConfig& config)
      : grid_config(config), grid(config) {}

  /// Ingest one detection into every index.
  DetectionRef ingest(Detection d) {
    DetectionRef ref = store.append(std::move(d));
    grid.insert(store, ref);
    trajectories.insert(store, ref);
    temporal.insert(store, ref);
    return ref;
  }

  /// Retention compaction: rebuilds the store and every index keeping only
  /// detections with time >= `horizon`. Returns the number evicted.
  /// DetectionRefs issued before a compaction are invalidated.
  ///
  /// Block-wise: a block whose zone map proves every row older than the
  /// horizon is evicted wholesale; a block proven entirely fresh skips the
  /// per-row time test. Surviving rows are copied column-to-column
  /// (append_copy), never materialized into Detection records.
  std::size_t compact(TimePoint horizon) {
    DetectionStore new_store;
    GridIndex new_grid(grid_config);
    TrajectoryStore new_trajectories;
    TemporalStore new_temporal;
    std::size_t evicted = 0;
    for (std::size_t b = 0; b < store.block_count(); ++b) {
      const DetectionBlockZone& z = store.zone(b);
      auto [first, last] = store.block_rows(b);
      if (TimePoint(z.t_max) < horizon) {  // whole block expired
        evicted += last - first;
        continue;
      }
      bool all_fresh = TimePoint(z.t_min) >= horizon;
      for (std::uint32_t i = first; i < last; ++i) {
        auto old_ref = static_cast<DetectionRef>(i);
        if (!all_fresh && store.time_of(old_ref) < horizon) {
          ++evicted;
          continue;
        }
        DetectionRef ref = new_store.append_copy(store, old_ref);
        new_grid.insert(new_store, ref);
        new_trajectories.insert(new_store, ref);
        new_temporal.insert(new_store, ref);
      }
    }
    store = std::move(new_store);
    grid = std::move(new_grid);
    trajectories = std::move(new_trajectories);
    temporal = std::move(new_temporal);
    return evicted;
  }

  [[nodiscard]] std::size_t size() const { return store.size(); }
};

/// EXPLAIN/ANALYZE accounting for one local execution: how many rows the
/// indexes yielded (for counts/heatmaps this exceeds the result rows) and
/// how the store's zone maps fared when a columnar block scan ran.
struct ScanStats {
  std::uint64_t rows_scanned = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_skipped = 0;
};

class LocalExecutor {
 public:
  /// Executes `query` against `indexes`, producing a partial result. When
  /// `stats` is given, scan accounting accumulates into it.
  [[nodiscard]] static QueryResult execute(const WorkerIndexes& indexes,
                                           const Query& query,
                                           ScanStats* stats = nullptr) {
    QueryResult result;
    result.query = query.id;
    std::uint64_t scanned = 0;
    std::uint64_t blocks_scanned0 = indexes.store.blocks_scanned();
    std::uint64_t blocks_skipped0 = indexes.store.blocks_skipped();
    switch (query.kind) {
      case QueryKind::kRange: {
        for (DetectionRef ref :
             indexes.grid.query_range(indexes.store, query.region,
                                      query.interval)) {
          ++scanned;
          result.detections.push_back(indexes.store.get(ref));
        }
        break;
      }
      case QueryKind::kCircle: {
        for (DetectionRef ref :
             indexes.grid.query_circle(indexes.store, query.circle,
                                       query.interval)) {
          ++scanned;
          result.detections.push_back(indexes.store.get(ref));
        }
        break;
      }
      case QueryKind::kKnn: {
        for (const auto& [ref, dist] :
             indexes.grid.query_knn(indexes.store, query.center, query.k,
                                    query.interval)) {
          ++scanned;
          result.detections.push_back(indexes.store.get(ref));
        }
        break;
      }
      case QueryKind::kTrajectory: {
        for (DetectionRef ref :
             indexes.trajectories.query(query.object, query.interval)) {
          ++scanned;
          result.detections.push_back(indexes.store.get(ref));
        }
        break;
      }
      case QueryKind::kCameraWindow: {
        for (DetectionRef ref :
             indexes.temporal.query_camera(query.camera, query.interval)) {
          ++scanned;
          result.detections.push_back(indexes.store.get(ref));
        }
        break;
      }
      case QueryKind::kCount: {
        auto refs = indexes.grid.query_range(indexes.store, query.region,
                                             query.interval);
        scanned += refs.size();
        if (query.group_by == GroupBy::kCamera) {
          for (DetectionRef ref : refs) {
            ++result.counts[indexes.store.camera_of(ref).value()];
          }
        } else {
          result.counts[0] = refs.size();
        }
        break;
      }
      case QueryKind::kHeatmap: {
        if (query.cell_size <= 0.0) break;
        for (DetectionRef ref :
             indexes.grid.query_range(indexes.store, query.region,
                                      query.interval)) {
          ++scanned;
          ++result.counts[query.heatmap_cell(indexes.store.position_of(ref))];
        }
        break;
      }
    }
    if (stats != nullptr) {
      stats->rows_scanned += scanned;
      stats->blocks_scanned +=
          indexes.store.blocks_scanned() - blocks_scanned0;
      stats->blocks_skipped +=
          indexes.store.blocks_skipped() - blocks_skipped0;
    }
    return result;
  }
};

}  // namespace stcn
