// Per-worker local query execution.
//
// A LocalExecutor answers a Query against one worker's indexes. It is pure
// with respect to the framework: given the store and indexes, it computes a
// QueryResult fragment; the coordinator merges fragments across workers.
#pragma once

#include <vector>

#include "common/filter_kernel.h"
#include "index/detection_store.h"
#include "index/grid_index.h"
#include "index/temporal_store.h"
#include "index/trajectory_store.h"
#include "query/planner.h"
#include "query/query.h"
#include "query/result.h"

namespace stcn {

/// The bundle of per-worker storage a query executes against.
struct WorkerIndexes {
  GridIndexConfig grid_config;
  DetectionStore store;
  GridIndex grid;
  TrajectoryStore trajectories;
  TemporalStore temporal;

  explicit WorkerIndexes(const GridIndexConfig& config)
      : grid_config(config), grid(config) {}

  /// Ingest one detection into every index.
  DetectionRef ingest(Detection d) {
    DetectionRef ref = store.append(std::move(d));
    grid.insert(store, ref);
    trajectories.insert(store, ref);
    temporal.insert(store, ref);
    return ref;
  }

  /// Retention compaction: rebuilds the store and every index keeping only
  /// detections with time >= `horizon`. Returns the number evicted.
  /// DetectionRefs issued before a compaction are invalidated.
  ///
  /// Block-wise: a block whose zone map proves every row older than the
  /// horizon is evicted wholesale; a block proven entirely fresh is copied
  /// column-to-column in one bulk append_rows (which recomputes the
  /// destination zone maps tightly from the surviving rows — merged blocks
  /// must not inherit stale-wide source bounds, or block skipping degrades
  /// after every compaction). Mixed blocks fall back to per-row
  /// append_copy; no path materializes Detection records.
  std::size_t compact(TimePoint horizon) {
    DetectionStore new_store;
    // Propagate tiering before any rows land: surviving whole cold blocks
    // then adopt verbatim (no decode/re-quantization) and surviving hot
    // rows re-demote at the same watermark.
    new_store.set_tier_config(store.tier_config());
    GridIndex new_grid(grid_config);
    TrajectoryStore new_trajectories;
    TemporalStore new_temporal;
    auto index_from = [&](std::uint32_t first_new) {
      for (std::uint32_t i = first_new;
           i < static_cast<std::uint32_t>(new_store.size()); ++i) {
        auto ref = static_cast<DetectionRef>(i);
        new_grid.insert(new_store, ref);
        new_trajectories.insert(new_store, ref);
        new_temporal.insert(new_store, ref);
      }
    };
    std::size_t evicted = 0;
    for (std::size_t b = 0; b < store.block_count(); ++b) {
      const DetectionBlockZone& z = store.zone(b);
      auto [first, last] = store.block_rows(b);
      if (TimePoint(z.t_max) < horizon) {  // whole block expired
        evicted += last - first;
        continue;
      }
      auto first_new = static_cast<std::uint32_t>(new_store.size());
      if (TimePoint(z.t_min) >= horizon) {  // whole block fresh: bulk copy
        (void)new_store.append_rows(store, first, last);
      } else {
        for (std::uint32_t i = first; i < last; ++i) {
          auto old_ref = static_cast<DetectionRef>(i);
          if (store.time_of(old_ref) < horizon) {
            ++evicted;
            continue;
          }
          (void)new_store.append_copy(store, old_ref);
        }
      }
      index_from(first_new);
    }
    store = std::move(new_store);
    grid = std::move(new_grid);
    trajectories = std::move(new_trajectories);
    temporal = std::move(new_temporal);
    return evicted;
  }

  [[nodiscard]] std::size_t size() const { return store.size(); }
};

/// EXPLAIN/ANALYZE accounting for one local execution: how many rows the
/// indexes yielded (for counts/heatmaps this exceeds the result rows), how
/// the store's zone maps fared when a columnar block scan ran, and — when
/// the vectorized morsel path executed — how many rows the filter kernels
/// actually evaluated vs selected (the gap is the work the zone-map fast
/// paths and selectivity-ordered evaluation avoided).
struct ScanStats {
  std::uint64_t rows_scanned = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_skipped = 0;
  std::uint64_t rows_evaluated = 0;
  std::uint64_t rows_selected = 0;
  std::uint64_t vectorized_morsels = 0;
  // Cold-tier slices: blocks scanned/skipped that were compressed, and
  // cold morsels that ran decode-fused kernels (hot = total − cold).
  std::uint64_t cold_blocks_scanned = 0;
  std::uint64_t cold_blocks_skipped = 0;
  std::uint64_t decode_morsels = 0;
};

class LocalExecutor {
 public:
  /// Executes `query` against `indexes`, producing a partial result. When
  /// `stats` is given, scan accounting accumulates into it.
  ///
  /// Aggregate kinds (count, group-by, heatmap) choose their access path:
  /// regions covering most of the worker's area run the store's vectorized
  /// morsel scan and aggregate straight off the selection vectors; small
  /// regions keep the spatially-pruning grid walk. Both paths return
  /// identical results (pinned by the differential tests).
  [[nodiscard]] static QueryResult execute(const WorkerIndexes& indexes,
                                           const Query& query,
                                           ScanStats* stats = nullptr) {
    QueryResult result;
    result.query = query.id;
    std::uint64_t scanned = 0;
    MorselStats ms;  // vectorized-path accounting for this execution
    std::uint64_t blocks_scanned0 = indexes.store.blocks_scanned();
    std::uint64_t blocks_skipped0 = indexes.store.blocks_skipped();
    std::uint64_t cold_scanned0 = indexes.store.cold_blocks_scanned();
    std::uint64_t cold_skipped0 = indexes.store.cold_blocks_skipped();
    std::uint64_t decode_morsels0 = indexes.store.decode_morsels();
    switch (query.kind) {
      case QueryKind::kRange: {
        for (DetectionRef ref :
             indexes.grid.query_range(indexes.store, query.region,
                                      query.interval, &ms)) {
          ++scanned;
          result.detections.push_back(indexes.store.get(ref));
        }
        break;
      }
      case QueryKind::kCircle: {
        for (DetectionRef ref :
             indexes.grid.query_circle(indexes.store, query.circle,
                                       query.interval, &ms)) {
          ++scanned;
          result.detections.push_back(indexes.store.get(ref));
        }
        break;
      }
      case QueryKind::kKnn: {
        for (const auto& [ref, dist] :
             indexes.grid.query_knn(indexes.store, query.center, query.k,
                                    query.interval)) {
          ++scanned;
          result.detections.push_back(indexes.store.get(ref));
        }
        break;
      }
      case QueryKind::kTrajectory: {
        for (DetectionRef ref :
             indexes.trajectories.query(query.object, query.interval)) {
          ++scanned;
          result.detections.push_back(indexes.store.get(ref));
        }
        break;
      }
      case QueryKind::kCameraWindow: {
        for (DetectionRef ref :
             indexes.temporal.query_camera(query.camera, query.interval)) {
          ++scanned;
          result.detections.push_back(indexes.store.get(ref));
        }
        break;
      }
      case QueryKind::kCount: {
        if (prefer_columnar_scan(query.region, indexes.grid.bounds())) {
          scanned += count_from_store(indexes.store, query, result, ms);
        } else {
          auto refs = indexes.grid.query_range(indexes.store, query.region,
                                               query.interval, &ms);
          scanned += refs.size();
          if (query.group_by == GroupBy::kCamera) {
            for (DetectionRef ref : refs) {
              ++result.counts[indexes.store.camera_of(ref).value()];
            }
          } else {
            result.counts[0] = refs.size();
          }
        }
        break;
      }
      case QueryKind::kHeatmap: {
        if (query.cell_size <= 0.0) break;
        if (prefer_columnar_scan(query.region, indexes.grid.bounds())) {
          scanned += heatmap_from_store(indexes.store, query, result, ms);
        } else {
          for (DetectionRef ref :
               indexes.grid.query_range(indexes.store, query.region,
                                        query.interval, &ms)) {
            ++scanned;
            ++result.counts[query.heatmap_cell(
                indexes.store.position_of(ref))];
          }
        }
        break;
      }
    }
    if (stats != nullptr) {
      stats->rows_scanned += scanned;
      stats->blocks_scanned +=
          indexes.store.blocks_scanned() - blocks_scanned0;
      stats->blocks_skipped +=
          indexes.store.blocks_skipped() - blocks_skipped0;
      stats->rows_evaluated += ms.rows_evaluated;
      stats->rows_selected += ms.rows_selected;
      stats->vectorized_morsels += ms.morsels;
      stats->cold_blocks_scanned +=
          indexes.store.cold_blocks_scanned() - cold_scanned0;
      stats->cold_blocks_skipped +=
          indexes.store.cold_blocks_skipped() - cold_skipped0;
      stats->decode_morsels += indexes.store.decode_morsels() - decode_morsels0;
    }
    return result;
  }

 private:
  /// Count / group-by-camera straight off the vectorized block scan: no
  /// DetectionRef vector is materialized; each morsel's selection vector
  /// is consumed in place (per-camera counts read the camera column by
  /// selected row id).
  static std::uint64_t count_from_store(const DetectionStore& store,
                                        const Query& query,
                                        QueryResult& result, MorselStats& ms) {
    if (query.region.is_empty() || query.interval.empty()) {
      if (query.group_by != GroupBy::kCamera) result.counts[0] = 0;
      return 0;
    }
    MorselStats local;
    std::vector<std::uint32_t> sel(kDetectionBlockRows);
    bool by_camera = query.group_by == GroupBy::kCamera;
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < store.block_count(); ++b) {
      std::uint32_t n = store.scan_range_block(b, query.region, query.interval,
                                               sel.data(), local);
      total += n;
      if (by_camera && n > 0) {
        // Per-block view: hot blocks read the store columns, cold blocks
        // this thread's decode scratch (still valid — scan_range_block on
        // a cold block just decoded it).
        DetectionStore::BlockColumnsView v = store.block_columns(b);
        for (std::uint32_t i = 0; i < n; ++i) {
          ++result.counts[v.cameras[sel[i] - v.base]];
        }
      }
    }
    if (!by_camera) result.counts[0] = total;
    store.note_scan(local);
    ms.merge(local);
    return total;
  }

  /// Heatmap aggregation from selection vectors into a dense cell array
  /// (one index computation + increment per selected row), folded into the
  /// sparse result map at the end. Grids too large to hold densely fall
  /// back to per-row map inserts — same results, no memory blowup.
  static std::uint64_t heatmap_from_store(const DetectionStore& store,
                                          const Query& query,
                                          QueryResult& result,
                                          MorselStats& ms) {
    if (query.region.is_empty() || query.interval.empty()) return 0;
    MorselStats local;
    std::vector<std::uint32_t> sel(kDetectionBlockRows);
    std::size_t cols = query.heatmap_cols();
    std::size_t rows = query.heatmap_rows();
    constexpr std::size_t kMaxDenseCells = std::size_t{1} << 22;  // 32 MiB
    std::uint64_t total = 0;
    if (cols > 0 && rows > 0 && cols <= kMaxDenseCells / rows) {
      std::vector<std::uint64_t> cells(cols * rows, 0);
      for (std::size_t b = 0; b < store.block_count(); ++b) {
        std::uint32_t n = store.scan_range_block(
            b, query.region, query.interval, sel.data(), local);
        total += n;
        if (n == 0) continue;
        DetectionStore::BlockColumnsView v = store.block_columns(b);
        heatmap_accumulate(v.xs, v.ys, v.base, sel.data(), n,
                           query.region.min, query.cell_size, cols,
                           cells.data());
      }
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (cells[c] != 0) result.counts[c] += cells[c];
      }
    } else {
      for (std::size_t b = 0; b < store.block_count(); ++b) {
        std::uint32_t n = store.scan_range_block(
            b, query.region, query.interval, sel.data(), local);
        total += n;
        if (n == 0) continue;
        DetectionStore::BlockColumnsView v = store.block_columns(b);
        for (std::uint32_t i = 0; i < n; ++i) {
          std::uint32_t row = sel[i] - v.base;
          ++result.counts[query.heatmap_cell(Point{v.xs[row], v.ys[row]})];
        }
      }
    }
    store.note_scan(local);
    ms.merge(local);
    return total;
  }
};

}  // namespace stcn
