// Aggregate analytics over the distributed store.
//
// Higher-level analysis helpers composed from the framework's primitive
// queries — the "spatio-temporal analysis" layer applications build on:
//
//   * activity_series     — detections per time bucket over a region
//                           (one count query per bucket, footprint-pruned)
//   * camera_profiles     — per-camera totals + peak bucket over a window
//   * busiest_regions     — top-k heatmap cells of a region
//
// These run against any QueryExecutor: the distributed Cluster or the
// centralized baseline (both satisfy the implicit interface via a thin
// adapter), so tests can verify the distributed analytics against the
// oracle.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/time.h"
#include "query/query.h"
#include "query/result.h"

namespace stcn {

/// Type-erased query execution: wraps Cluster::execute or
/// CentralizedIndex::execute. The id generator keeps query ids unique.
class QueryExecutorRef {
 public:
  template <typename Executor>
  explicit QueryExecutorRef(Executor& executor)
      : execute_([&executor](const Query& q) { return executor.execute(q); }) {}

  QueryResult execute(const Query& q) const { return execute_(q); }

 private:
  std::function<QueryResult(const Query&)> execute_;
};

struct SeriesPoint {
  TimeInterval bucket;
  std::uint64_t count = 0;
};

/// Detection counts over `region` in consecutive `bucket` spans covering
/// `window`.
inline std::vector<SeriesPoint> activity_series(const QueryExecutorRef& exec,
                                                const Rect& region,
                                                const TimeInterval& window,
                                                Duration bucket) {
  std::vector<SeriesPoint> series;
  if (window.empty() || bucket <= Duration::zero()) return series;
  std::uint64_t next_id = 0x5e11e500;  // analytics-reserved id space
  for (TimePoint t = window.begin; t < window.end; t = t + bucket) {
    TimeInterval span{t, std::min(t + bucket, window.end)};
    QueryResult r =
        exec.execute(Query::count(QueryId(next_id++), region, span));
    series.push_back({span, r.total_count()});
  }
  return series;
}

struct PeriodEstimate {
  Duration period;
  /// Autocorrelation coefficient at the detected lag, in (0, 1].
  double confidence = 0.0;
};

/// Detects a periodic activity pattern in a count series (rush hours,
/// day/night cycles) via autocorrelation. Returns nullopt when no lag in
/// [2, n/2] correlates above `min_confidence`. Harmonic lags are reduced
/// to the fundamental (a 2-period lag correlating as well as the 1-period
/// lag reports the 1-period one).
inline std::optional<PeriodEstimate> estimate_period(
    const std::vector<SeriesPoint>& series, double min_confidence = 0.3) {
  std::size_t n = series.size();
  if (n < 6) return std::nullopt;

  std::vector<double> x(n);
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(series[i].count);
    mean += x[i];
  }
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double& v : x) {
    v -= mean;
    var += v * v;
  }
  if (var <= 0.0) return std::nullopt;  // flat series: no period

  auto autocorr = [&](std::size_t lag) {
    double s = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) s += x[i] * x[i + lag];
    return s / var;
  };

  // Any smooth series correlates strongly at tiny lags (the "shoulder");
  // a genuine period shows up as a correlation *re-peak* after the
  // autocorrelation has first dipped. Search for the maximum only from the
  // first dip onward; if the series never dips there is no cycle to find.
  std::size_t first_dip = 0;
  for (std::size_t lag = 1; lag <= n / 2; ++lag) {
    if (autocorr(lag) < min_confidence / 2.0) {
      first_dip = lag;
      break;
    }
  }
  if (first_dip == 0) return std::nullopt;

  std::size_t best_lag = 0;
  double best_r = min_confidence;
  for (std::size_t lag = std::max<std::size_t>(first_dip + 1, 2);
       lag <= n / 2; ++lag) {
    double r = autocorr(lag);
    if (r > best_r) {
      best_r = r;
      best_lag = lag;
    }
  }
  if (best_lag == 0) return std::nullopt;

  // Harmonic reduction: if half the lag explains (nearly) as much, it is
  // the fundamental.
  while (best_lag % 2 == 0 && best_lag / 2 >= 2) {
    double half_r = autocorr(best_lag / 2);
    if (half_r < 0.9 * best_r) break;
    best_lag /= 2;
    best_r = std::max(best_r, half_r);
  }

  Duration bucket = series.front().bucket.length();
  return PeriodEstimate{bucket * static_cast<std::int64_t>(best_lag),
                        best_r};
}

struct CameraProfile {
  CameraId camera;
  std::uint64_t total = 0;
  TimeInterval peak_bucket;
  std::uint64_t peak_count = 0;
};

/// Per-camera activity over `region`/`window`, bucketed by `bucket`;
/// sorted by total, busiest first.
inline std::vector<CameraProfile> camera_profiles(
    const QueryExecutorRef& exec, const Rect& region,
    const TimeInterval& window, Duration bucket) {
  std::map<std::uint64_t, CameraProfile> profiles;
  std::uint64_t next_id = 0x5e11e900;
  for (TimePoint t = window.begin; t < window.end; t = t + bucket) {
    TimeInterval span{t, std::min(t + bucket, window.end)};
    QueryResult r = exec.execute(
        Query::count(QueryId(next_id++), region, span, GroupBy::kCamera));
    for (const auto& [camera, n] : r.counts) {
      CameraProfile& p = profiles[camera];
      p.camera = CameraId(camera);
      p.total += n;
      if (n > p.peak_count) {
        p.peak_count = n;
        p.peak_bucket = span;
      }
    }
  }
  std::vector<CameraProfile> out;
  out.reserve(profiles.size());
  for (auto& [camera, p] : profiles) out.push_back(p);
  std::sort(out.begin(), out.end(),
            [](const CameraProfile& a, const CameraProfile& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.camera < b.camera;
            });
  return out;
}

struct HotCell {
  Rect bounds;
  std::uint64_t count = 0;
};

/// Top-k heatmap cells of `region` during `window` at `cell_size`.
inline std::vector<HotCell> busiest_regions(const QueryExecutorRef& exec,
                                            const Rect& region,
                                            const TimeInterval& window,
                                            double cell_size, std::size_t k) {
  Query q = Query::heatmap(QueryId(0x5e11ed00), region, cell_size, window);
  QueryResult r = exec.execute(q);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cells(
      r.counts.begin(), r.counts.end());
  std::sort(cells.begin(), cells.end(), [](auto a, auto b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<HotCell> out;
  std::size_t cols = q.heatmap_cols();
  for (std::size_t i = 0; i < cells.size() && i < k; ++i) {
    std::uint64_t cell = cells[i].first;
    auto cx = static_cast<double>(cell % cols);
    auto cy = static_cast<double>(cell / cols);
    Rect bounds{{region.min.x + cx * cell_size, region.min.y + cy * cell_size},
                {region.min.x + (cx + 1) * cell_size,
                 region.min.y + (cy + 1) * cell_size}};
    out.push_back({bounds, cells[i].second});
  }
  return out;
}

}  // namespace stcn
