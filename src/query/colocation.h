// Co-location ("meeting") detection.
//
// Finds pairs of objects repeatedly seen close together: detections of two
// different objects within `max_distance` meters and `max_gap` of each
// other count as one co-location event; pairs with at least `min_events`
// events (at `min_distinct_cameras`+ distinct cameras, to filter out two
// strangers caught once by the same camera) are reported as meetings.
//
// The computation runs coordinator-side over a spatio-temporal range query
// (the distributed store supplies the detections; the join is local). The
// join itself is grid-hashed: each detection is bucketed by (cell, time
// slab) and only neighbouring buckets are compared — O(n · local density)
// instead of O(n²).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"
#include "common/time.h"
#include "trace/detection.h"

namespace stcn {

struct CoLocationParams {
  double max_distance = 20.0;
  Duration max_gap = Duration::seconds(5);
  std::size_t min_events = 3;
  std::size_t min_distinct_cameras = 1;
};

struct Meeting {
  ObjectId a;  // a < b
  ObjectId b;
  std::size_t events = 0;
  std::size_t distinct_cameras = 0;
  TimePoint first_seen;
  TimePoint last_seen;
};

/// Detects meetings among `detections` (any order). Returns meetings
/// sorted by event count, most significant first.
std::vector<Meeting> find_meetings(const std::vector<Detection>& detections,
                                   const CoLocationParams& params);

}  // namespace stcn
