// Query results and partial-result merging.
//
// Workers return QueryResult fragments; the coordinator merges them. Merging
// must be idempotent with respect to duplicated detections (a failover can
// cause a primary and a promoted backup to both report the same event), so
// detection merging dedups on DetectionId.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/serialize.h"
#include "query/query.h"
#include "trace/detection.h"

namespace stcn {

struct QueryResult {
  QueryId query;
  std::vector<Detection> detections;
  /// For kCount: group key → count. Key 0 is the ungrouped total;
  /// otherwise keys are camera ids.
  std::map<std::uint64_t, std::uint64_t> counts;

  [[nodiscard]] std::uint64_t total_count() const {
    std::uint64_t t = 0;
    for (const auto& [key, n] : counts) t += n;
    return t;
  }
};

inline void serialize(BinaryWriter& w, const QueryResult& r) {
  std::size_t payload = 8 + 4 + 4 + 16 * r.counts.size();
  for (const Detection& d : r.detections) payload += wire_size(d);
  w.reserve(payload);
  w.write_id(r.query);
  w.write_vector(r.detections, [](BinaryWriter& bw, const Detection& d) {
    serialize(bw, d);
  });
  w.write_u32(static_cast<std::uint32_t>(r.counts.size()));
  for (const auto& [key, n] : r.counts) {
    w.write_u64(key);
    w.write_u64(n);
  }
}

inline QueryResult deserialize_query_result(BinaryReader& r) {
  QueryResult out;
  out.query = r.read_id<QueryIdTag>();
  out.detections = r.read_vector<Detection>(
      [](BinaryReader& br) { return deserialize_detection(br); });
  std::uint32_t n = r.read_u32();
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
    std::uint64_t key = r.read_u64();
    out.counts[key] += r.read_u64();
  }
  return out;
}

/// Merges worker fragments into the final result for `query`.
class ResultMerger {
 public:
  explicit ResultMerger(const Query& query) : query_(query) {
    merged_.query = query.id;
  }

  void add(const QueryResult& fragment) {
    for (const Detection& d : fragment.detections) {
      if (seen_.insert(d.id.value()).second) {
        merged_.detections.push_back(d);
      }
    }
    for (const auto& [key, n] : fragment.counts) {
      merged_.counts[key] += n;
    }
  }

  /// Finalizes ordering / truncation by query kind:
  ///  * kKnn      — nearest-first, truncated to k
  ///  * others    — time-ordered (ties by detection id), truncated to the
  ///                query's `limit` when one is set.
  ///
  /// Limit semantics compose across merge levels: the earliest `limit`
  /// detections of a union are always among the union of each fragment's
  /// earliest `limit`, so per-worker truncation plus final truncation
  /// yields exactly the global earliest `limit`.
  [[nodiscard]] QueryResult take() {
    auto& ds = merged_.detections;
    if (query_.kind == QueryKind::kKnn) {
      std::sort(ds.begin(), ds.end(),
                [this](const Detection& a, const Detection& b) {
                  double da = squared_distance(a.position, query_.center);
                  double db = squared_distance(b.position, query_.center);
                  if (da != db) return da < db;
                  return a.id < b.id;
                });
      if (ds.size() > query_.k) ds.resize(query_.k);
    } else {
      std::sort(ds.begin(), ds.end(), [](const Detection& a, const Detection& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.id < b.id;
      });
      if (query_.limit > 0 && ds.size() > query_.limit) {
        ds.resize(query_.limit);
      }
    }
    return std::move(merged_);
  }

 private:
  Query query_;
  QueryResult merged_;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace stcn
