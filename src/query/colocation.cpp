#include "query/colocation.h"

#include <limits>
#include <map>
#include <set>
#include <tuple>

namespace stcn {
namespace {

struct BucketKey {
  std::int64_t cx;
  std::int64_t cy;
  std::int64_t slab;
  friend bool operator==(const BucketKey&, const BucketKey&) = default;
};

struct BucketKeyHash {
  std::size_t operator()(const BucketKey& k) const {
    std::uint64_t h = static_cast<std::uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(k.cy) * 0xc2b2ae3d27d4eb4fULL;
    h ^= static_cast<std::uint64_t>(k.slab) * 0x165667b19e3779f9ULL;
    return h;
  }
};

struct PairKey {
  std::uint64_t a;
  std::uint64_t b;
  friend auto operator<=>(const PairKey&, const PairKey&) = default;
};

}  // namespace

std::vector<Meeting> find_meetings(const std::vector<Detection>& detections,
                                   const CoLocationParams& params) {
  // Bucket by (cell = max_distance, slab = max_gap); candidates for a
  // detection live in its bucket and the 26 spatio-temporal neighbours.
  const double cell = std::max(params.max_distance, 1e-6);
  const std::int64_t slab_us = std::max<std::int64_t>(
      params.max_gap.count_micros(), 1);

  auto key_of = [&](const Detection& d) {
    return BucketKey{
        static_cast<std::int64_t>(std::floor(d.position.x / cell)),
        static_cast<std::int64_t>(std::floor(d.position.y / cell)),
        d.time.micros_since_origin() / slab_us};
  };

  std::unordered_map<BucketKey, std::vector<const Detection*>, BucketKeyHash>
      buckets;
  for (const Detection& d : detections) {
    buckets[key_of(d)].push_back(&d);
  }

  struct PairStats {
    std::size_t events = 0;
    std::set<std::uint64_t> cameras;
    TimePoint first = TimePoint::max();
    TimePoint last = TimePoint(std::numeric_limits<std::int64_t>::min());
    // Dedup: one event per (detection, detection) pair is natural, but a
    // pair loitering together produces many; we count all qualifying
    // detection pairs once each via ordered detection ids.
    std::set<std::pair<std::uint64_t, std::uint64_t>> counted;
  };
  std::map<PairKey, PairStats> pairs;

  auto consider = [&](const Detection& x, const Detection& y) {
    if (x.object == y.object) return;
    Duration gap = x.time >= y.time ? x.time - y.time : y.time - x.time;
    if (gap > params.max_gap) return;
    if (distance(x.position, y.position) > params.max_distance) return;
    PairKey key{std::min(x.object.value(), y.object.value()),
                std::max(x.object.value(), y.object.value())};
    PairStats& stats = pairs[key];
    auto det_pair = std::make_pair(std::min(x.id.value(), y.id.value()),
                                   std::max(x.id.value(), y.id.value()));
    if (!stats.counted.insert(det_pair).second) return;
    ++stats.events;
    stats.cameras.insert(x.camera.value());
    stats.cameras.insert(y.camera.value());
    TimePoint t = std::min(x.time, y.time);
    stats.first = std::min(stats.first, t);
    stats.last = std::max(stats.last, std::max(x.time, y.time));
  };

  for (const auto& [key, members] : buckets) {
    // Within the bucket.
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        consider(*members[i], *members[j]);
      }
    }
    // Against forward neighbours only (each unordered bucket pair visited
    // once).
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t ds = -1; ds <= 1; ++ds) {
          if (std::make_tuple(dx, dy, ds) <= std::make_tuple(0, 0, 0)) {
            continue;
          }
          auto it = buckets.find({key.cx + dx, key.cy + dy, key.slab + ds});
          if (it == buckets.end()) continue;
          for (const Detection* x : members) {
            for (const Detection* y : it->second) {
              consider(*x, *y);
            }
          }
        }
      }
    }
  }

  std::vector<Meeting> meetings;
  for (const auto& [key, stats] : pairs) {
    if (stats.events < params.min_events) continue;
    if (stats.cameras.size() < params.min_distinct_cameras) continue;
    meetings.push_back({ObjectId(key.a), ObjectId(key.b), stats.events,
                        stats.cameras.size(), stats.first, stats.last});
  }
  std::sort(meetings.begin(), meetings.end(),
            [](const Meeting& a, const Meeting& b) {
              if (a.events != b.events) return a.events > b.events;
              if (a.a != b.a) return a.a < b.a;
              return a.b < b.b;
            });
  return meetings;
}

}  // namespace stcn
