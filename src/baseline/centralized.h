// Centralized single-node baseline.
//
// Everything in one process: one index bundle, no partitioning, no network.
// This is the comparator for E4 (distributed vs centralized crossover) and
// the oracle for integration tests (distributed answers must equal
// centralized answers on the same trace).
#pragma once

#include <span>

#include "query/executor.h"
#include "reid/reid_engine.h"
#include "trace/camera.h"

namespace stcn {

class CentralizedIndex {
 public:
  CentralizedIndex(Rect world, double cell_size = 50.0)
      : indexes_(GridIndexConfig{world, cell_size}) {}

  void ingest(const Detection& d) { indexes_.ingest(d); }
  void ingest_all(std::span<const Detection> detections) {
    for (const Detection& d : detections) indexes_.ingest(d);
  }

  [[nodiscard]] QueryResult execute(const Query& query) const {
    ResultMerger merger(query);
    merger.add(LocalExecutor::execute(indexes_, query));
    return merger.take();
  }

  [[nodiscard]] std::size_t size() const { return indexes_.size(); }
  [[nodiscard]] const WorkerIndexes& indexes() const { return indexes_; }

 private:
  WorkerIndexes indexes_;
};

/// CandidateSource over a centralized index (re-id baseline and tests).
class LocalCandidateSource final : public CandidateSource {
 public:
  LocalCandidateSource(const CentralizedIndex& index,
                       const CameraNetwork& cameras)
      : index_(index), cameras_(cameras) {}

  [[nodiscard]] std::vector<Detection> detections_at(
      CameraId camera, const TimeInterval& window) const override {
    std::vector<Detection> out;
    const WorkerIndexes& idx = index_.indexes();
    for (DetectionRef ref : idx.temporal.query_camera(camera, window)) {
      out.push_back(idx.store.get(ref));
    }
    return out;
  }

  [[nodiscard]] std::vector<CameraId> all_cameras() const override {
    std::vector<CameraId> out;
    out.reserve(cameras_.size());
    for (const Camera& cam : cameras_.cameras()) out.push_back(cam.id);
    return out;
  }

 private:
  const CentralizedIndex& index_;
  const CameraNetwork& cameras_;
};

}  // namespace stcn
