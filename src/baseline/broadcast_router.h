// Broadcast-routing baseline: partition-pruning ablation.
//
// Wraps any PartitionStrategy and keeps its ingest placement, but answers
// every footprint question with "all partitions" — i.e., the coordinator
// broadcasts every query to every worker. Comparing a cluster built with
// BroadcastStrategy(inner) against one built with `inner` isolates exactly
// what footprint pruning buys (E2).
#pragma once

#include <memory>

#include "partition/partition_map.h"

namespace stcn {

class BroadcastStrategy final : public PartitionStrategy {
 public:
  explicit BroadcastStrategy(std::unique_ptr<PartitionStrategy> inner)
      : inner_(std::move(inner)) {
    STCN_CHECK(inner_ != nullptr);
  }

  [[nodiscard]] std::string name() const override {
    return "broadcast(" + inner_->name() + ")";
  }
  [[nodiscard]] std::size_t partition_count() const override {
    return inner_->partition_count();
  }
  [[nodiscard]] PartitionId partition_of(CameraId camera, Point position,
                                         TimePoint time) const override {
    return inner_->partition_of(camera, position, time);
  }
  [[nodiscard]] std::vector<PartitionId> partitions_for_region(
      const Rect&, const TimeInterval&) const override {
    return all_partitions();
  }
  [[nodiscard]] std::vector<PartitionId> partitions_for_camera(
      CameraId, const TimeInterval&) const override {
    return all_partitions();
  }

 private:
  std::unique_ptr<PartitionStrategy> inner_;
};

}  // namespace stcn
