// E4 — Distributed vs centralized across query selectivity (figure
// "query selectivity").
//
// Query region size sweeps from a street corner to the whole city. Compared:
// the 8-worker distributed cluster (per-query local execution wall time +
// modeled network round-trip from the virtual clock) against the
// centralized index (pure local wall time). Also validates the feedback
// selectivity estimator's predictions against actual result sizes.
// Expected shape: centralized wins tiny result sets (no network), the
// distributed side wins large scans (work divided across workers and only
// matching rows cross the wire); the estimator's relative error shrinks as
// feedback accumulates.
#include <cinttypes>
#include <cmath>
#include <memory>

#include "baseline/centralized.h"
#include "bench_util.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "query/selectivity.h"

namespace stcn {
namespace {

void run() {
  TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 4.0,
                                   bench::quick() ? Duration::minutes(1)
                                                  : Duration::minutes(8));
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  ClusterConfig config;
  config.worker_count = 8;
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
      config);
  cluster.ingest_all(trace.detections);

  CentralizedIndex central(world);
  central.ingest_all(trace.detections);

  SelectivityConfig sc;
  sc.world = world;
  SelectivityEstimator estimator(sc);

  bench::print_header(
      "E4 query selectivity",
      "distributed (8 workers) vs centralized, " +
          std::to_string(trace.detections.size()) + " detections");
  // Modeled distributed latency: virtual network time for the scatter-
  // gather round trip plus the per-query compute divided across the
  // workers actually asked (the simulator executes workers serially on one
  // CPU, so parallel compute is credited analytically; the network part is
  // simulated exactly).
  std::printf("%12s %10s %14s %12s %12s %12s\n", "region_m", "results",
              "dist_model_ms", "(net+cpu/W)", "central_ms", "est_err");

  bench::BenchReport report("selectivity");
  report.set("detections", static_cast<double>(trace.detections.size()));
  Rng rng(31);
  std::vector<double> extents =
      bench::quick() ? std::vector<double>{75.0, 1200.0}
                     : std::vector<double>{25.0, 75.0, 200.0, 500.0, 1200.0,
                                           4000.0};
  for (double half_extent : extents) {
    const int kQueries = bench::quick() ? 8 : 30;
    double dist_cpu_ms = 0.0;
    double dist_virtual_ms = 0.0;
    double central_ms = 0.0;
    double results = 0.0;
    double est_err = 0.0;
    double fanout_sum = 0.0;
    int est_n = 0;
    for (int i = 0; i < kQueries; ++i) {
      Rect region = Rect::centered(
          {rng.uniform(world.min.x, world.max.x),
           rng.uniform(world.min.y, world.max.y)},
          half_extent);
      TimeInterval interval{TimePoint(0), TimePoint(240'000'000)};
      Query q = Query::range(cluster.next_query_id(), region, interval);

      double predicted = estimator.estimate(region, interval);

      auto fanout0 =
          cluster.coordinator().counters().get("query_fanout_total");
      bench::WallTimer dist_timer;
      TimePoint v0 = cluster.now();
      QueryResult dr = cluster.execute(q);
      dist_virtual_ms += (cluster.now() - v0).to_seconds() * 1000.0;
      dist_cpu_ms += dist_timer.elapsed_ms();
      fanout_sum += static_cast<double>(
          cluster.coordinator().counters().get("query_fanout_total") -
          fanout0);

      bench::WallTimer central_timer;
      QueryResult cr = central.execute(q);
      central_ms += central_timer.elapsed_ms();

      results += static_cast<double>(cr.detections.size());
      estimator.observe(region, interval, dr.detections.size());
      if (predicted > 0.0 && cr.detections.size() > 0) {
        est_err += std::abs(predicted -
                            static_cast<double>(cr.detections.size())) /
                   static_cast<double>(cr.detections.size());
        ++est_n;
      }
    }
    double mean_fanout = std::max(1.0, fanout_sum / kQueries);
    double net_ms = dist_virtual_ms / kQueries;
    double cpu_ms = dist_cpu_ms / kQueries / mean_fanout;
    std::printf("%12.0f %10.0f %14.3f %5.2f+%5.3f %12.3f %11.0f%%\n",
                half_extent * 2, results / kQueries, net_ms + cpu_ms, net_ms,
                cpu_ms, central_ms / kQueries,
                est_n ? 100.0 * est_err / est_n : 0.0);
    std::string suffix =
        "_region" + std::to_string(static_cast<int>(half_extent * 2));
    report.set("dist_model_ms" + suffix, net_ms + cpu_ms);
    report.set("central_ms" + suffix, central_ms / kQueries);
    report.set("est_err_pct" + suffix,
               est_n ? 100.0 * est_err / est_n : 0.0);
  }
  report.add_histogram("query_latency_us",
                       *cluster.coordinator().metrics().histograms().at(
                           "query_latency_us"));
  report.add_registry(cluster.metrics_snapshot());
  report.write();
  std::printf(
      "\nexpected shape: centralized wins small regions (the network round\n"
      "trip dominates); distributed wins large scans (compute divides across\n"
      "workers); estimator error drops as feedback lights the histogram.\n");
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
