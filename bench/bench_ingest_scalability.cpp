// E1 — Ingestion throughput vs worker count (figure "ingest scalability").
//
// Fixed camera network and detection stream; the cluster is rebuilt with
// 1..32 workers and the full stream is ingested (routing, wire transfer,
// replication, indexing).
//
// Because the cluster is simulated on one CPU thread, cluster throughput is
// *modeled*, not wall-clocked: per-event indexing cost is measured once on
// real hardware, and a cluster's sustainable throughput is
//     total_events / (events_at_busiest_worker × per_event_cost)
// i.e. the pipeline rate the bottleneck worker admits. Expected shape:
// near-linear growth while partitions spread evenly, flattening as load
// skew makes one worker the bottleneck.
#include <algorithm>
#include <cinttypes>
#include <memory>

#include "bench_util.h"
#include "core/framework.h"
#include "partition/strategies.h"

namespace stcn {
namespace {

void run() {
  using bench::WallTimer;
  double scale = bench::quick() ? 0.5 : 4.0;
  auto minutes = bench::quick() ? Duration::minutes(1) : Duration::minutes(8);
  TraceConfig tc = bench::scenario(scale, minutes);
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  bench::print_header(
      "E1 ingest scalability",
      "modeled throughput vs #workers, " +
          std::to_string(trace.detections.size()) + " detections from " +
          std::to_string(trace.cameras.size()) + " cameras");

  // Calibrate per-event indexing cost on a single worker.
  double unit_cost_us;
  {
    WorkerIndexes solo(GridIndexConfig{world, 50.0});
    WallTimer timer;
    for (const Detection& d : trace.detections) solo.ingest(d);
    unit_cost_us =
        timer.elapsed_ms() * 1000.0 / static_cast<double>(trace.detections.size());
  }
  std::printf("calibrated per-event index cost: %.2f us\n\n", unit_cost_us);
  std::printf("%8s %18s %20s %14s %10s\n", "workers", "busiest_worker_ev",
              "modeled_events_per_s", "net_bytes/ev", "speedup");

  bench::BenchReport report("ingest_scalability");
  report.set("detections", static_cast<double>(trace.detections.size()));
  report.set("unit_cost_us", unit_cost_us);

  double baseline_throughput = 0.0;
  std::vector<std::size_t> worker_sweep =
      bench::quick() ? std::vector<std::size_t>{1, 4}
                     : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};
  for (std::size_t workers : worker_sweep) {
    HybridStrategy::Config hc;
    hc.tiles_x = 8;
    hc.tiles_y = 8;
    hc.hot_camera_threshold = 4;
    hc.hot_split_factor = 4;
    ClusterConfig config;
    config.worker_count = workers;
    Cluster cluster(world,
                    std::make_unique<HybridStrategy>(world, trace.cameras, hc),
                    config);
    cluster.ingest_all(trace.detections);

    std::uint64_t busiest = 0;
    for (WorkerId w : cluster.worker_ids()) {
      // Primary + replica ingest both cost indexing work at the worker.
      std::uint64_t load =
          cluster.worker(w).counters().get("ingested_primary") +
          cluster.worker(w).counters().get("ingested_replica");
      busiest = std::max(busiest, load);
    }
    double modeled_time_s =
        static_cast<double>(busiest) * unit_cost_us / 1e6;
    double throughput =
        static_cast<double>(trace.detections.size()) / modeled_time_s;
    if (workers == 1) baseline_throughput = throughput;
    double bytes_per_event =
        static_cast<double>(cluster.network().counters().get("bytes_sent")) /
        static_cast<double>(trace.detections.size());
    std::printf("%8zu %18" PRIu64 " %20.0f %14.1f %9.2fx\n", workers, busiest,
                throughput, bytes_per_event,
                throughput / baseline_throughput);
    std::string suffix = "_w" + std::to_string(workers);
    report.set("modeled_events_per_s" + suffix, throughput);
    report.set("bytes_per_event" + suffix, bytes_per_event);
    report.set("speedup" + suffix, throughput / baseline_throughput);
    if (workers == worker_sweep.back()) {
      report.add_registry(cluster.metrics_snapshot());
    }
  }
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
