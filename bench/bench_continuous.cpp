// E7 — Continuous query throughput (figure "continuous queries").
//
// A worker-side ContinuousQueryManager hosts 10..10k standing range
// monitors; the detection stream is replayed through it. Compared against
// the naive baseline that re-tests every monitor on every detection.
// Reported: detections/sec sustained, monitors tested per detection, and
// delta volume. Expected shape: bucketed routing keeps per-detection work
// ~flat as monitor count grows; naive degrades linearly.
#include <cinttypes>
#include <deque>

#include "bench_util.h"
#include "query/continuous.h"

namespace stcn {
namespace {

void run() {
  TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 2.0,
                                   bench::quick() ? Duration::minutes(1)
                                                  : Duration::minutes(4));
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  bench::print_header(
      "E7 continuous queries",
      "incremental monitors vs naive re-test, " +
          std::to_string(trace.detections.size()) + " detections");
  std::printf("%10s |  %14s %14s %10s |  %14s %14s\n", "monitors",
              "routed_ev/s", "tested/detect", "deltas", "naive_ev/s",
              "tested/detect");

  bench::BenchReport report("continuous");
  report.set("detections", static_cast<double>(trace.detections.size()));
  Rng rng(77);
  std::vector<std::size_t> monitor_sweep =
      bench::quick() ? std::vector<std::size_t>{10, 1000}
                     : std::vector<std::size_t>{10, 100, 1000, 10000};
  for (std::size_t monitors : monitor_sweep) {
    // Install monitors at random city locations.
    std::vector<ContinuousQuerySpec> specs;
    specs.reserve(monitors);
    for (std::size_t i = 0; i < monitors; ++i) {
      Point center{rng.uniform(world.min.x, world.max.x),
                   rng.uniform(world.min.y, world.max.y)};
      specs.push_back({QueryId(i + 1), Rect::centered(center, 60.0),
                       Duration::seconds(60)});
    }

    // Bucketed (framework) manager. Window expiry is advanced on the
    // worker's 1 s tick, exactly as WorkerNode does — not per detection.
    ContinuousQueryManager manager(world, /*bucket_size=*/100.0);
    for (const auto& spec : specs) manager.install(spec);
    std::vector<DeltaUpdate> deltas;
    std::uint64_t tested = 0;
    TimePoint next_tick = TimePoint::origin() + Duration::seconds(1);
    bench::WallTimer timer;
    for (const Detection& d : trace.detections) {
      tested += manager.on_detection(d, deltas);
      if (d.time >= next_tick) {
        manager.advance_to(d.time, deltas);
        next_tick = d.time + Duration::seconds(1);
      }
    }
    manager.advance_to(TimePoint::origin() + tc.duration, deltas);
    double routed_ms = timer.elapsed_ms();
    std::size_t delta_count = deltas.size();

    // Naive baseline: test every monitor on every detection; same 1 s
    // expiry cadence so delta volumes are comparable.
    std::vector<std::deque<Detection>> windows(monitors);
    std::uint64_t naive_tested = 0;
    std::size_t naive_deltas = 0;
    next_tick = TimePoint::origin() + Duration::seconds(1);
    timer.reset();
    for (const Detection& d : trace.detections) {
      for (std::size_t m = 0; m < monitors; ++m) {
        ++naive_tested;
        if (specs[m].region.contains(d.position)) {
          windows[m].push_back(d);
          ++naive_deltas;
        }
      }
      if (d.time >= next_tick) {
        for (std::size_t m = 0; m < monitors; ++m) {
          TimePoint horizon = d.time - specs[m].window;
          while (!windows[m].empty() && windows[m].front().time < horizon) {
            windows[m].pop_front();
            ++naive_deltas;
          }
        }
        next_tick = d.time + Duration::seconds(1);
      }
    }
    for (std::size_t m = 0; m < monitors; ++m) {
      TimePoint horizon =
          TimePoint::origin() + tc.duration - specs[m].window;
      while (!windows[m].empty() && windows[m].front().time < horizon) {
        windows[m].pop_front();
        ++naive_deltas;
      }
    }
    double naive_ms = timer.elapsed_ms();

    auto n = static_cast<double>(trace.detections.size());
    std::printf("%10zu |  %14.0f %14.2f %10zu |  %14.0f %14.2f\n", monitors,
                n / (routed_ms / 1000.0), static_cast<double>(tested) / n,
                delta_count, n / (naive_ms / 1000.0),
                static_cast<double>(naive_tested) / n);
    // The two implementations must agree on the delta volume.
    if (naive_deltas != delta_count) {
      std::printf("  WARNING: delta mismatch (%zu vs %zu)\n", delta_count,
                  naive_deltas);
    }
    std::string suffix = "_m" + std::to_string(monitors);
    report.set("routed_eps" + suffix, n / (routed_ms / 1000.0));
    report.set("routed_tested_per_detection" + suffix,
               static_cast<double>(tested) / n);
    report.set("naive_eps" + suffix, n / (naive_ms / 1000.0));
  }
  std::printf(
      "\nexpected shape: routed tests only monitors co-located with the\n"
      "detection (grows with local monitor density), naive tests all of\n"
      "them; the routed throughput advantage holds at every scale.\n");
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
