// Ablation A3 — grid-index cell size.
//
// The per-worker grid index has one tuning knob: cell edge length. Small
// cells prune range queries tightly but cost memory and per-ring overhead
// for k-NN; large cells degenerate toward a full scan. This ablation sweeps
// the cell size over a fixed dataset and reports insert cost, range-query
// cost at two selectivities, k-NN cost, and cells probed per query.
#include <cinttypes>

#include "bench_util.h"
#include "index/grid_index.h"

namespace stcn {
namespace {

void run() {
  TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 3.0,
                                   bench::quick() ? Duration::minutes(1)
                                                  : Duration::minutes(6));
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  bench::print_header(
      "A3 grid cell size",
      std::to_string(trace.detections.size()) + " detections, world " +
          std::to_string(static_cast<int>(world.width())) + "m");
  std::printf("%10s %10s %12s %14s %14s %12s %14s\n", "cell_m", "cells",
              "insert_us", "range100_us", "range800_us", "knn10_us",
              "probes/range");

  Rng rng(3);
  std::vector<Point> centers;
  int center_count = bench::quick() ? 40 : 200;
  for (int i = 0; i < center_count; ++i) {
    centers.push_back({rng.uniform(world.min.x, world.max.x),
                       rng.uniform(world.min.y, world.max.y)});
  }

  bench::BenchReport report("cell_size");
  report.set("detections", static_cast<double>(trace.detections.size()));
  std::vector<double> cells =
      bench::quick() ? std::vector<double>{25.0, 100.0}
                     : std::vector<double>{12.5, 25.0, 50.0, 100.0, 200.0,
                                           400.0};
  for (double cell : cells) {
    DetectionStore store;
    GridIndex index(GridIndexConfig{world, cell});

    bench::WallTimer insert_timer;
    for (const Detection& d : trace.detections) {
      index.insert(store, store.append(d));
    }
    double insert_us = insert_timer.elapsed_ms() * 1000.0 /
                       static_cast<double>(trace.detections.size());

    auto time_range = [&](double half_extent) {
      bench::WallTimer timer;
      for (Point c : centers) {
        (void)index.query_range(store, Rect::centered(c, half_extent),
                                TimeInterval::all());
      }
      return timer.elapsed_ms() * 1000.0 / static_cast<double>(centers.size());
    };
    std::uint64_t probes0 = index.cells_probed();
    double range100 = time_range(50.0);
    double probes_per_query =
        static_cast<double>(index.cells_probed() - probes0) /
        static_cast<double>(centers.size());
    double range800 = time_range(400.0);

    bench::WallTimer knn_timer;
    for (Point c : centers) {
      (void)index.query_knn(store, c, 10, TimeInterval::all());
    }
    double knn_us =
        knn_timer.elapsed_ms() * 1000.0 / static_cast<double>(centers.size());

    std::printf("%10.1f %10zu %12.2f %14.1f %14.1f %12.1f %14.1f\n", cell,
                index.cell_count(), insert_us, range100, range800, knn_us,
                probes_per_query);
    std::string suffix = "_cell" + std::to_string(static_cast<int>(cell));
    report.set("insert_us" + suffix, insert_us);
    report.set("range100_us" + suffix, range100);
    report.set("knn10_us" + suffix, knn_us);
  }
  std::printf(
      "\nexpected shape: a U-curve — tiny cells pay per-cell overhead,\n"
      "huge cells pay scan cost; the default (50 m) sits near the bottom.\n");
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
