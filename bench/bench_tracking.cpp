// E11 (extension) — online cross-camera tracking quality and throughput.
//
// The streaming tracker stitches per-camera detections into city-wide
// tracks in real time. Swept over appearance noise; the transition-gate
// ablation (appearance-only association, no travel-time gating) shows what
// the spatio-temporal model contributes. Reported: track purity,
// fragmentation, ID switches, and events/s through the tracker.
#include <cinttypes>

#include "bench_util.h"
#include "reid/tracker.h"

namespace stcn {
namespace {

struct Row {
  TrackingMetrics metrics;
  double events_per_sec = 0.0;
};

Row run_tracker(const Trace& trace, const TransitionGraph& graph,
                bool transition_gate) {
  TrackerConfig config;
  config.transition.min_edge_count = 2;
  config.use_transition_gate = transition_gate;
  OnlineTracker tracker(graph, config);
  bench::WallTimer timer;
  for (const Detection& d : trace.detections) {
    tracker.observe(d);
    tracker.advance_to(d.time);
  }
  Row row;
  row.events_per_sec = static_cast<double>(trace.detections.size()) /
                       (timer.elapsed_ms() / 1000.0);
  row.metrics = TrackingMetrics::evaluate(tracker.all_tracks());
  return row;
}

void run() {
  bench::print_header("E11 online tracking",
                      "track stitching quality vs appearance noise");
  std::printf("%8s %6s | %8s %8s %10s %10s %12s | %8s %10s\n", "noise",
              "gate", "tracks", "purity", "fragment", "switches", "events/s",
              "tracksA", "purityA");

  bench::BenchReport report("tracking");
  std::vector<double> noises = bench::quick()
                                   ? std::vector<double>{0.15}
                                   : std::vector<double>{0.05, 0.15, 0.30};
  for (double noise : noises) {
    TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 1.5,
                                     bench::quick() ? Duration::minutes(2)
                                                    : Duration::minutes(8));
    tc.detection.appearance_noise = noise;
    Trace trace = TraceGenerator::generate(tc);

    TransitionGraph graph;
    graph.learn(trace.detections);

    Row gated = run_tracker(trace, graph, /*transition_gate=*/true);
    Row ungated = run_tracker(trace, graph, /*transition_gate=*/false);

    std::printf(
        "%8.2f %6s | %8zu %7.0f%% %10.1f %10zu %12.0f | %8zu %9.0f%%\n",
        noise, "s-t", gated.metrics.tracks, 100.0 * gated.metrics.purity,
        gated.metrics.fragmentation, gated.metrics.id_switches,
        gated.events_per_sec, ungated.metrics.tracks,
        100.0 * ungated.metrics.purity);
    std::string suffix =
        "_noise" + std::to_string(static_cast<int>(noise * 100));
    report.set("purity_gated_pct" + suffix, 100.0 * gated.metrics.purity);
    report.set("purity_ungated_pct" + suffix,
               100.0 * ungated.metrics.purity);
    report.set("events_per_sec" + suffix, gated.events_per_sec);
  }
  std::printf(
      "\nexpected shape: spatio-temporal gating keeps purity high as noise\n"
      "grows; the appearance-only ablation (columns A) merges lookalikes\n"
      "across the city, collapsing purity — the transition model is what\n"
      "makes city-scale stitching viable.\n");
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
