// E3 — Partitioning-strategy comparison (table "partitioning strategies").
//
// One skewed trace (hotspot traffic), four strategies. Reported per
// strategy: worker-load CV and max/mean (ingest balance), mean query
// fan-out and bytes per query (routing efficiency). Expected shape:
//   spatial   — best pruning, worst balance under skew
//   hash      — perfect balance, no pruning
//   temporal  — balanced over time, no spatial pruning
//   hybrid    — near-spatial pruning with bounded imbalance (the default)
#include <cinttypes>
#include <cmath>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "bench_util.h"
#include "core/framework.h"
#include "obs/heat.h"
#include "partition/load_stats.h"
#include "partition/strategies.h"

namespace stcn {
namespace {

void evaluate(const std::string& label,
              std::unique_ptr<PartitionStrategy> strategy, const Trace& trace,
              const Rect& world, bench::BenchReport& report) {
  std::size_t partitions = strategy->partition_count();
  const PartitionStrategy& strategy_ref = *strategy;
  ClusterConfig config;
  config.worker_count = 8;
  Cluster cluster(world, std::move(strategy), config);

  // Ingest-side balance, measured on the strategy's own placement.
  LoadStats load(partitions);
  for (const Detection& d : trace.detections) {
    PartitionId p = strategy_ref.partition_of(d.camera, d.position, d.time);
    load.record(p, cluster.coordinator().partition_map().primary(p));
  }
  cluster.ingest_all(trace.detections);

  // Query-side routing efficiency.
  Rng rng(5);
  auto bytes0 = cluster.network().counters().get("bytes_sent");
  const int kQueries = bench::quick() ? 15 : 80;
  for (int i = 0; i < kQueries; ++i) {
    Rect region = Rect::centered(
        {rng.uniform(world.min.x, world.max.x),
         rng.uniform(world.min.y, world.max.y)},
        180.0);
    TimeInterval interval{TimePoint(rng.uniform_int(0, 120'000'000)),
                          TimePoint(rng.uniform_int(120'000'000, 240'000'000))};
    (void)cluster.execute(
        Query::range(cluster.next_query_id(), region, interval));
  }
  double bytes_per_query =
      static_cast<double>(cluster.network().counters().get("bytes_sent") -
                          bytes0) /
      kQueries;

  std::printf("%-10s %11zu %10.3f %10.2f %10.2f %14.0f\n", label.c_str(),
              partitions, load.worker_load_cv(cluster.worker_ids()),
              load.worker_max_over_mean(cluster.worker_ids()),
              cluster.coordinator().mean_fanout(), bytes_per_query);
  report.set("load_cv_" + label, load.worker_load_cv(cluster.worker_ids()));
  report.set("fanout_" + label, cluster.coordinator().mean_fanout());
  report.set("bytes_per_query_" + label, bytes_per_query);
}

// ------------------------- E3b: camera-skew heat sweep (zipf vs uniform)
//
// The heat observatory's acceptance workload: the same detection volume
// lands on a fixed set of representative cameras either uniformly (every
// camera the same share) or zipf(1.1)-skewed (camera of rank k drawn with
// weight 1/(k+1)^1.1). Each representative camera hashes to a distinct
// partition, so the uniform run is balanced per partition AND per worker by
// construction — the placement advisor must stay silent there, and must
// find a strong move under zipf.

struct HeatRun {
  double load_relative_stddev = 0.0;
  double hot_cold_ratio = 0.0;
  double scan_gini = 0.0;
  double hottest_match = 0.0;  // 1.0 when skew() found the true argmax
  double advisor_recs = 0.0;
  double advisor_improvement = 0.0;  // top recommendation, 0 when empty
};

/// One camera per hash partition: scans camera ids upward until every
/// partition has a representative.
std::vector<CameraId> representative_cameras(const HashStrategy& strategy,
                                             std::size_t partitions) {
  std::vector<CameraId> reps(partitions, CameraId(0));
  std::vector<bool> covered(partitions, false);
  std::size_t remaining = partitions;
  for (std::uint64_t id = 1; remaining > 0; ++id) {
    PartitionId p = strategy.partition_of(CameraId(id), Point{0, 0},
                                          TimePoint::origin());
    if (!covered[p.value()]) {
      covered[p.value()] = true;
      reps[p.value()] = CameraId(id);
      --remaining;
    }
  }
  return reps;
}

HeatRun heat_run(const std::string& label, double zipf_s,
                 bench::BenchReport& report) {
  const std::size_t kPartitions = 16;
  const std::size_t kWorkers = 8;
  const std::size_t kRows =
      kPartitions * (bench::quick() ? 150 : 800);
  HashStrategy probe(kPartitions);
  std::vector<CameraId> reps = representative_cameras(probe, kPartitions);

  // Zipf CDF over camera ranks; s = 0 degenerates to uniform.
  std::vector<double> cdf(kPartitions);
  double total = 0.0;
  for (std::size_t k = 0; k < kPartitions; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), zipf_s);
    cdf[k] = total;
  }

  std::vector<Detection> detections(kRows);
  Rng rng(42);
  std::vector<std::uint64_t> rows_per_partition(kPartitions, 0);
  for (std::size_t i = 0; i < kRows; ++i) {
    std::size_t rank;
    if (zipf_s == 0.0) {
      rank = i % kPartitions;  // exact uniform, not just in expectation
    } else {
      double u = rng.uniform() * total;
      rank = 0;
      while (rank + 1 < kPartitions && cdf[rank] < u) ++rank;
    }
    Detection& d = detections[i];
    d.id = DetectionId(i + 1);
    d.camera = reps[rank];
    d.object = ObjectId(i % 50 + 1);
    d.time = TimePoint(static_cast<std::int64_t>(i) * 1'000);
    d.position = Point{10.0 * static_cast<double>(rank), 10.0};
    rows_per_partition[probe
                           .partition_of(d.camera, d.position, d.time)
                           .value()] += 1;
  }

  Rect world{{-100.0, -100.0}, {300.0, 300.0}};
  ClusterConfig config;
  config.worker_count = kWorkers;
  Cluster cluster(world, std::make_unique<HashStrategy>(kPartitions),
                  config);

  // Interleave ingest with virtual time so the coordinator's windowed heat
  // rings see the totals rising between heartbeats.
  const std::size_t kChunks = 4;
  for (std::size_t c = 0; c < kChunks; ++c) {
    std::size_t begin = c * kRows / kChunks;
    std::size_t end = (c + 1) * kRows / kChunks;
    cluster.ingest_all(std::span<const Detection>(detections.data() + begin,
                                                  end - begin));
    cluster.advance_time(Duration::seconds(1));
  }
  cluster.advance_time(Duration::seconds(1));

  const HeatMapSnapshot& heat = cluster.coordinator().heat();
  HeatMapSnapshot::Skew skew =
      heat.skew(cluster.now(), &cluster.coordinator().partition_map());
  auto recs = cluster.coordinator().placement_advice(cluster.now());

  PartitionId true_hottest;
  std::uint64_t max_rows = 0;
  for (std::size_t p = 0; p < kPartitions; ++p) {
    if (rows_per_partition[p] > max_rows) {
      max_rows = rows_per_partition[p];
      true_hottest = PartitionId(p);
    }
  }

  HeatRun out;
  out.load_relative_stddev = skew.load_relative_stddev;
  out.hot_cold_ratio = skew.hot_cold_ratio;
  out.scan_gini = skew.scan_gini;
  out.hottest_match =
      (zipf_s > 0.0 && skew.hottest == true_hottest) ? 1.0 : 0.0;
  out.advisor_recs = static_cast<double>(recs.size());
  out.advisor_improvement = recs.empty() ? 0.0 : recs[0].improvement();

  std::printf("%-10s %12.3f %10.2f %8.3f %8.0f %12.1f%%\n", label.c_str(),
              out.load_relative_stddev, out.hot_cold_ratio, out.scan_gini,
              out.advisor_recs, out.advisor_improvement * 100.0);
  report.set("heat_load_stddev_" + label, out.load_relative_stddev);
  report.set("heat_hot_cold_ratio_" + label, out.hot_cold_ratio);
  report.set("heat_gini_" + label, out.scan_gini);
  report.set("heat_advisor_recs_" + label, out.advisor_recs);
  report.set("heat_advisor_improvement_" + label, out.advisor_improvement);
  if (zipf_s > 0.0) {
    report.set("heat_hottest_match_" + label, out.hottest_match);
  }
  return out;
}

void run_heat_sweep(bench::BenchReport& report) {
  bench::print_header("E3b heat observatory",
                      "zipf(1.1) vs uniform camera skew, 16 hash "
                      "partitions, 8 workers");
  std::printf("%-10s %12s %10s %8s %8s %13s\n", "workload", "load_stddev",
              "hot/cold", "gini", "recs", "top_improve");
  HeatRun skewed = heat_run("zipf", 1.1, report);
  HeatRun uniform = heat_run("uniform", 0.0, report);
  std::printf(
      "\nexpected shape: zipf concentrates load (stddev >= 3x uniform, "
      "advisor\nfinds a strong move); uniform is balanced by construction "
      "(no advice).\n");
  (void)skewed;
  (void)uniform;
}

void run() {
  TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 2.0,
                                   bench::quick() ? Duration::minutes(1)
                                                  : Duration::minutes(4));
  tc.mobility.hotspot_fraction = 0.6;  // strong downtown skew
  tc.mobility.hotspot_count = 2;
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  bench::print_header(
      "E3 partitioning strategies",
      "skewed workload (" + std::to_string(trace.detections.size()) +
          " detections), 8 workers, 80 range queries");
  std::printf("%-10s %11s %10s %10s %10s %14s\n", "strategy", "partitions",
              "load_cv", "max/mean", "fanout", "bytes/query");

  bench::BenchReport report("partitioning");
  report.set("detections", static_cast<double>(trace.detections.size()));
  evaluate("spatial",
           std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
           trace, world, report);
  evaluate("hash", std::make_unique<HashStrategy>(16), trace, world, report);
  evaluate("temporal",
           std::make_unique<TemporalStrategy>(16, Duration::minutes(1)),
           trace, world, report);
  HybridStrategy::Config hc;
  hc.tiles_x = 4;
  hc.tiles_y = 4;
  hc.hot_camera_threshold = 8;
  hc.hot_split_factor = 4;
  evaluate("hybrid",
           std::make_unique<HybridStrategy>(world, trace.cameras, hc), trace,
           world, report);

  std::printf(
      "\nexpected shape: spatial prunes best but skews worst; hash balances\n"
      "but broadcasts; hybrid keeps fan-out near spatial with load_cv near "
      "hash.\n");
  run_heat_sweep(report);
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
