// E3 — Partitioning-strategy comparison (table "partitioning strategies").
//
// One skewed trace (hotspot traffic), four strategies. Reported per
// strategy: worker-load CV and max/mean (ingest balance), mean query
// fan-out and bytes per query (routing efficiency). Expected shape:
//   spatial   — best pruning, worst balance under skew
//   hash      — perfect balance, no pruning
//   temporal  — balanced over time, no spatial pruning
//   hybrid    — near-spatial pruning with bounded imbalance (the default)
#include <cinttypes>
#include <memory>

#include "bench_util.h"
#include "core/framework.h"
#include "partition/load_stats.h"
#include "partition/strategies.h"

namespace stcn {
namespace {

void evaluate(const std::string& label,
              std::unique_ptr<PartitionStrategy> strategy, const Trace& trace,
              const Rect& world, bench::BenchReport& report) {
  std::size_t partitions = strategy->partition_count();
  const PartitionStrategy& strategy_ref = *strategy;
  ClusterConfig config;
  config.worker_count = 8;
  Cluster cluster(world, std::move(strategy), config);

  // Ingest-side balance, measured on the strategy's own placement.
  LoadStats load(partitions);
  for (const Detection& d : trace.detections) {
    PartitionId p = strategy_ref.partition_of(d.camera, d.position, d.time);
    load.record(p, cluster.coordinator().partition_map().primary(p));
  }
  cluster.ingest_all(trace.detections);

  // Query-side routing efficiency.
  Rng rng(5);
  auto bytes0 = cluster.network().counters().get("bytes_sent");
  const int kQueries = bench::quick() ? 15 : 80;
  for (int i = 0; i < kQueries; ++i) {
    Rect region = Rect::centered(
        {rng.uniform(world.min.x, world.max.x),
         rng.uniform(world.min.y, world.max.y)},
        180.0);
    TimeInterval interval{TimePoint(rng.uniform_int(0, 120'000'000)),
                          TimePoint(rng.uniform_int(120'000'000, 240'000'000))};
    (void)cluster.execute(
        Query::range(cluster.next_query_id(), region, interval));
  }
  double bytes_per_query =
      static_cast<double>(cluster.network().counters().get("bytes_sent") -
                          bytes0) /
      kQueries;

  std::printf("%-10s %11zu %10.3f %10.2f %10.2f %14.0f\n", label.c_str(),
              partitions, load.worker_load_cv(cluster.worker_ids()),
              load.worker_max_over_mean(cluster.worker_ids()),
              cluster.coordinator().mean_fanout(), bytes_per_query);
  report.set("load_cv_" + label, load.worker_load_cv(cluster.worker_ids()));
  report.set("fanout_" + label, cluster.coordinator().mean_fanout());
  report.set("bytes_per_query_" + label, bytes_per_query);
}

void run() {
  TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 2.0,
                                   bench::quick() ? Duration::minutes(1)
                                                  : Duration::minutes(4));
  tc.mobility.hotspot_fraction = 0.6;  // strong downtown skew
  tc.mobility.hotspot_count = 2;
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  bench::print_header(
      "E3 partitioning strategies",
      "skewed workload (" + std::to_string(trace.detections.size()) +
          " detections), 8 workers, 80 range queries");
  std::printf("%-10s %11s %10s %10s %10s %14s\n", "strategy", "partitions",
              "load_cv", "max/mean", "fanout", "bytes/query");

  bench::BenchReport report("partitioning");
  report.set("detections", static_cast<double>(trace.detections.size()));
  evaluate("spatial",
           std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
           trace, world, report);
  evaluate("hash", std::make_unique<HashStrategy>(16), trace, world, report);
  evaluate("temporal",
           std::make_unique<TemporalStrategy>(16, Duration::minutes(1)),
           trace, world, report);
  HybridStrategy::Config hc;
  hc.tiles_x = 4;
  hc.tiles_y = 4;
  hc.hot_camera_threshold = 8;
  hc.hot_split_factor = 4;
  evaluate("hybrid",
           std::make_unique<HybridStrategy>(world, trace.cameras, hc), trace,
           world, report);

  std::printf(
      "\nexpected shape: spatial prunes best but skews worst; hash balances\n"
      "but broadcasts; hybrid keeps fan-out near spatial with load_cv near "
      "hash.\n");
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
