// Ablation A2 — edge gateway routing vs coordinator relay.
//
// The same detection stream enters the cluster two ways: (a) edge gateways
// route batches straight to the owning workers using a cached partition
// map; (b) gateways relay everything through the coordinator, which
// re-routes (the naive hub-and-spoke architecture). Reported: total wire
// bytes, messages, per-event bytes, and the coordinator's share of traffic.
// Expected shape: relay roughly doubles wire volume and concentrates it on
// one node; direct routing removes the coordinator from the ingest path.
#include <cinttypes>
#include <memory>

#include "bench_util.h"
#include "common/rng.h"
#include "core/framework.h"
#include "obs/cost.h"
#include "partition/strategies.h"

namespace stcn {
namespace {

void run() {
  TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 2.0,
                                   bench::quick() ? Duration::minutes(1)
                                                  : Duration::minutes(4));
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  bench::print_header(
      "A2 gateway routing",
      std::to_string(trace.detections.size()) +
          " detections, 8 gateways, 8 workers");
  std::printf("%-22s %14s %12s %14s %18s\n", "architecture", "bytes_total",
              "messages", "bytes/event", "coord_forwards");

  bench::BenchReport report("gateway");
  report.set("detections", static_cast<double>(trace.detections.size()));
  for (bool relay : {false, true}) {
    ClusterConfig config;
    config.worker_count = 8;
    Cluster cluster(
        world,
        std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
        config);
    GatewayConfig gw;
    gw.relay_through_coordinator = relay;
    GatewayFleet fleet = cluster.make_gateway_fleet(8, gw);

    for (const Detection& d : trace.detections) {
      cluster.network().advance_clock_to(d.time);
      fleet.ingest(d, cluster.network());
    }
    fleet.flush(cluster.network());
    cluster.pump();

    auto bytes = cluster.network().counters().get("bytes_sent");
    auto msgs = cluster.network().counters().get("messages_sent");
    auto forwards = cluster.coordinator().counters().get("ingest_forwards");
    std::printf("%-22s %14" PRIu64 " %12" PRIu64 " %14.1f %18" PRIu64 "\n",
                relay ? "relay-via-coordinator" : "gateway-direct", bytes,
                msgs,
                static_cast<double>(bytes) /
                    static_cast<double>(trace.detections.size()),
                forwards);
    std::string suffix = relay ? "_relay" : "_direct";
    report.set("bytes_total" + suffix, static_cast<double>(bytes));
    report.set("bytes_per_event" + suffix,
               static_cast<double>(bytes) /
                   static_cast<double>(trace.detections.size()));
    report.set("coord_forwards" + suffix, static_cast<double>(forwards));

    if (!relay) {
      // Tenant-attributed query phase on the direct-routing cluster: each
      // gateway stands in for one tenant issuing range scans. The resource
      // ledger attributes every finished query, and ci.sh asserts the
      // conservation invariant on the emitted scalars: per-tenant
      // rows_evaluated must sum exactly to the cluster total.
      const int kTenants = 8;
      const int kQueriesPerTenant = bench::quick() ? 3 : 10;
      Rng rng(0xC057);
      const std::int64_t span_us = tc.duration.count_micros();
      for (int t = 1; t <= kTenants; ++t) {
        for (int q = 0; q < kQueriesPerTenant; ++q) {
          // Full-region scans with a random bounded time slice: the time
          // predicate forces the per-row filter kernels to run (a fully
          // covering region with an unbounded window takes the zone fast
          // path and would report zero rows evaluated).
          std::int64_t start_us =
              static_cast<std::int64_t>(rng.uniform(0.0, 0.5) * span_us);
          std::int64_t len_us =
              static_cast<std::int64_t>(rng.uniform(0.3, 0.5) * span_us);
          TimeInterval slice{TimePoint::origin() + Duration::micros(start_us),
                             TimePoint::origin() +
                                 Duration::micros(start_us + len_us)};
          (void)cluster.execute(Query::range(cluster.next_query_id(), world,
                                             slice)
                                    .with_tenant(static_cast<std::uint32_t>(t)));
        }
      }
      const ResourceLedger& ledger = cluster.cost_ledger();
      std::printf(
          "\ncost ledger: %" PRIu64 " queries, %" PRIu64
          " rows evaluated, %" PRIu64 " wire bytes in\n",
          ledger.queries(), ledger.totals().rows_evaluated,
          ledger.totals().bytes_in);
      report.set("cost_queries", static_cast<double>(ledger.queries()));
      report.set("cost_rows_evaluated_total",
                 static_cast<double>(ledger.totals().rows_evaluated));
      report.set("cost_bytes_in_total",
                 static_cast<double>(ledger.totals().bytes_in));
      double tenant_rows = 0.0;
      for (const auto& row : ledger.by_tenant().top()) {
        report.set("cost_rows_evaluated_" + row.key,
                   static_cast<double>(row.cost.rows_evaluated));
        tenant_rows += static_cast<double>(row.cost.rows_evaluated);
      }
      report.set("cost_rows_evaluated_tenant_sum", tenant_rows);
      const auto& hists = cluster.coordinator().metrics().histograms();
      auto lat = hists.find("query_latency_us");
      report.set("exemplar_buckets",
                 lat == hists.end()
                     ? 0.0
                     : static_cast<double>(lat->second->exemplar_count()));
      report.add_section("cost", ledger.to_json());
    }

    if (relay) report.add_registry(cluster.metrics_snapshot());
  }
  std::printf(
      "\nexpected shape: relay ≈ 2× the wire bytes of direct routing and\n"
      "funnels every event through the coordinator.\n");
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
