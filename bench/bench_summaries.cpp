// Ablation A4 — object-presence summaries for trajectory queries.
//
// Trajectory queries have no spatial footprint, so without extra state
// they broadcast to every worker. Workers periodically publish per-
// partition Bloom filters of the object ids they hold; the coordinator
// prunes trajectory fan-out to partitions whose summary may contain the
// object (watermark-gated for soundness). Reported: fan-out, messages,
// and bytes per trajectory query with and without summaries, plus the
// standing summary traffic that buys the pruning.
#include <cinttypes>
#include <memory>

#include "bench_util.h"
#include "core/framework.h"
#include "partition/strategies.h"

namespace stcn {
namespace {

struct Cost {
  double fanout;
  double msgs;
  double bytes;
};

void run() {
  TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 2.0,
                                   bench::quick() ? Duration::minutes(1)
                                                  : Duration::minutes(4));
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);
  TimeInterval covered{TimePoint::origin(),
                       TimePoint::origin() + Duration::minutes(4)};

  bench::print_header(
      "A4 object-presence summaries",
      "trajectory fan-out: Bloom-pruned vs broadcast, 12 workers, " +
          std::to_string(trace.detections.size()) + " detections");
  std::printf("%-16s %10s %10s %12s %18s\n", "mode", "fanout", "msgs/q",
              "bytes/q", "summary_bytes");

  bench::BenchReport report("summaries");
  report.set("detections", static_cast<double>(trace.detections.size()));
  for (bool summaries : {true, false}) {
    ClusterConfig config;
    config.worker_count = 12;
    config.summary_every_ticks = summaries ? 5 : 0;
    Cluster cluster(
        world,
        std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
        config);
    cluster.ingest_all(trace.detections);
    cluster.advance_time(Duration::seconds(12));  // summary rounds

    // Standing summary traffic so far (rough: all bytes beyond ingest are
    // dominated by summaries + heartbeats in this phase).
    std::uint64_t summary_bytes = 0;
    if (summaries) {
      std::uint64_t published = 0;
      for (WorkerId w : cluster.worker_ids()) {
        published += cluster.worker(w).counters().get("summaries_published");
      }
      summary_bytes = published * (2048 / 8 + 8 + 16 + 42);
    }

    auto q0 = cluster.coordinator().counters().get("queries_submitted");
    auto f0 = cluster.coordinator().counters().get("query_fanout_total");
    auto m0 = cluster.network().counters().get("messages_sent");
    auto b0 = cluster.network().counters().get("bytes_sent");
    const int kQueries = bench::quick() ? 12 : 50;
    for (int i = 0; i < kQueries; ++i) {
      ObjectId object(1 + static_cast<std::uint64_t>(i) %
                              tc.mobility.object_count);
      (void)cluster.execute(
          Query::trajectory(cluster.next_query_id(), object, covered));
    }
    auto queries =
        cluster.coordinator().counters().get("queries_submitted") - q0;
    Cost c{static_cast<double>(cluster.coordinator().counters().get(
                                   "query_fanout_total") -
                               f0) /
               static_cast<double>(queries),
           static_cast<double>(
               cluster.network().counters().get("messages_sent") - m0) /
               kQueries,
           static_cast<double>(
               cluster.network().counters().get("bytes_sent") - b0) /
               kQueries};
    std::printf("%-16s %10.2f %10.1f %12.0f %18" PRIu64 "\n",
                summaries ? "bloom-pruned" : "broadcast", c.fanout, c.msgs,
                c.bytes, summary_bytes);
    std::string suffix = summaries ? "_pruned" : "_broadcast";
    report.set("fanout" + suffix, c.fanout);
    report.set("bytes_per_query" + suffix, c.bytes);
    report.set("summary_bytes" + suffix, static_cast<double>(summary_bytes));
  }
  std::printf(
      "\nexpected shape: pruned fan-out tracks the partitions an object\n"
      "actually visited (well below the fleet); summaries cost a small,\n"
      "constant background stream.\n");
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
