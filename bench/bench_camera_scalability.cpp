// E2 — Range-query cost vs network size (figure "camera scalability").
//
// Camera count grows from ~250 to ~4000 (world area grows with it); a fixed
// fleet of 16 workers serves fixed-size range queries. Compared: footprint
// pruning (hybrid strategy) vs the broadcast baseline. Reported: mean
// worker fan-out per query, messages and bytes per query, and wall time of
// local execution. Expected shape: with pruning, per-query fan-out stays
// flat as the network grows; broadcast fan-out grows with the worker fleet
// and its bytes/query grows with total data.
#include <cinttypes>
#include <memory>

#include "baseline/broadcast_router.h"
#include "bench_util.h"
#include "core/framework.h"
#include "partition/strategies.h"

namespace stcn {
namespace {

struct RunResult {
  double fanout = 0.0;
  double msgs_per_query = 0.0;
  double bytes_per_query = 0.0;
  double wall_ms_per_query = 0.0;
};

RunResult run_queries(Cluster& cluster, const Rect& world, std::size_t n) {
  Rng rng(9);
  auto msgs0 = cluster.network().counters().get("messages_sent");
  auto bytes0 = cluster.network().counters().get("bytes_sent");
  bench::WallTimer timer;
  for (std::size_t i = 0; i < n; ++i) {
    Rect region = Rect::centered(
        {rng.uniform(world.min.x, world.max.x),
         rng.uniform(world.min.y, world.max.y)},
        200.0);
    TimeInterval interval{TimePoint(0), TimePoint(120'000'000)};
    (void)cluster.execute(
        Query::range(cluster.next_query_id(), region, interval));
  }
  RunResult r;
  r.wall_ms_per_query = timer.elapsed_ms() / static_cast<double>(n);
  r.fanout = cluster.coordinator().mean_fanout();
  r.msgs_per_query =
      static_cast<double>(cluster.network().counters().get("messages_sent") -
                          msgs0) /
      static_cast<double>(n);
  r.bytes_per_query =
      static_cast<double>(cluster.network().counters().get("bytes_sent") -
                          bytes0) /
      static_cast<double>(n);
  return r;
}

void run() {
  bench::print_header("E2 camera scalability",
                      "range-query cost vs #cameras: pruned vs broadcast, "
                      "16 workers, 60 queries per point");
  std::printf("%9s %11s |  %8s %10s %12s  |  %8s %10s %12s\n", "cameras",
              "detections", "fanoutP", "msg/qP", "bytes/qP", "fanoutB",
              "msg/qB", "bytes/qB");

  bench::BenchReport report("camera_scalability");
  std::vector<double> scales = bench::quick()
                                   ? std::vector<double>{0.5}
                                   : std::vector<double>{0.5, 1.0, 2.0, 4.0, 8.0};
  std::size_t query_count = bench::quick() ? 10 : 60;
  for (double scale : scales) {
    TraceConfig tc = bench::scenario(scale, Duration::minutes(2));
    Trace trace = TraceGenerator::generate(tc);
    Rect world = trace.roads.bounds(150.0);

    auto make_inner = [&] {
      HybridStrategy::Config hc;
      hc.tiles_x = 8;
      hc.tiles_y = 8;
      hc.hot_camera_threshold = 6;
      hc.hot_split_factor = 2;
      return std::make_unique<HybridStrategy>(world, trace.cameras, hc);
    };

    ClusterConfig config;
    config.worker_count = 16;

    Cluster pruned(world, make_inner(), config);
    pruned.ingest_all(trace.detections);
    RunResult p = run_queries(pruned, world, query_count);

    Cluster broadcast(world,
                      std::make_unique<BroadcastStrategy>(make_inner()),
                      config);
    broadcast.ingest_all(trace.detections);
    RunResult b = run_queries(broadcast, world, query_count);

    std::printf("%9zu %11zu |  %8.2f %10.1f %12.0f  |  %8.2f %10.1f %12.0f\n",
                trace.cameras.size(), trace.detections.size(), p.fanout,
                p.msgs_per_query, p.bytes_per_query, b.fanout,
                b.msgs_per_query, b.bytes_per_query);
    std::string suffix = "_cams" + std::to_string(trace.cameras.size());
    report.set("fanout_pruned" + suffix, p.fanout);
    report.set("bytes_per_query_pruned" + suffix, p.bytes_per_query);
    report.set("fanout_broadcast" + suffix, b.fanout);
    report.set("bytes_per_query_broadcast" + suffix, b.bytes_per_query);
    if (scale == scales.back()) {
      report.add_histogram("query_latency_us",
                           *pruned.coordinator().metrics().histograms().at(
                               "query_latency_us"));
      report.add_registry(pruned.metrics_snapshot());
    }
  }
  std::printf(
      "\nexpected shape: pruned fan-out stays ~flat with network size;\n"
      "broadcast fans out to the whole fleet and moves more bytes/query.\n");
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
