// E6 — Path reconstruction accuracy (figure "path reconstruction").
//
// Beam-search path reconstruction over the camera network, swept over
// appearance noise (detector quality). Reported: mean hop accuracy against
// ground truth, mean reconstructed path length, and candidates examined.
// Expected shape: graceful degradation — accuracy falls with noise while
// the search cost stays bounded by the cone.
#include <cinttypes>
#include <set>

#include "baseline/centralized.h"
#include "bench_util.h"
#include "reid/path_reconstruction.h"

namespace stcn {
namespace {

std::vector<const Detection*> multi_hop_probes(const Trace& trace,
                                               std::size_t max_probes) {
  std::vector<const Detection*> out;
  std::unordered_map<ObjectId, std::vector<const Detection*>> by_object;
  for (const Detection& d : trace.detections) {
    by_object[d.object].push_back(&d);
  }
  for (const auto& [obj, dets] : by_object) {
    if (dets.size() < 4) continue;
    std::set<std::uint64_t> cameras;
    for (const Detection* d : dets) cameras.insert(d->camera.value());
    if (cameras.size() >= 3 && out.size() < max_probes) {
      out.push_back(dets.front());
    }
  }
  return out;
}

void run() {
  bench::print_header("E6 path reconstruction",
                      "hop accuracy vs appearance noise, beam width 4");
  std::printf("%8s %8s %12s %12s %14s %10s\n", "noise", "probes",
              "hop_accuracy", "path_len", "candidates", "ms/probe");

  bench::BenchReport report("path_reconstruction");
  std::vector<double> noises = bench::quick()
                                   ? std::vector<double>{0.15}
                                   : std::vector<double>{0.05, 0.15, 0.30, 0.50};
  for (double noise : noises) {
    TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 1.5,
                                     bench::quick() ? Duration::minutes(2)
                                                    : Duration::minutes(8));
    tc.detection.appearance_noise = noise;
    Trace trace = TraceGenerator::generate(tc);
    Rect world = trace.roads.bounds(150.0);

    CentralizedIndex index(world);
    index.ingest_all(trace.detections);
    LocalCandidateSource source(index, trace.cameras);

    TransitionGraph graph;
    graph.learn(trace.detections);

    ReidParams rp;
    rp.cone.max_hops = 2;
    rp.cone.min_edge_count = 2;
    rp.min_similarity = 0.55;
    rp.max_matches = 5;
    ReidEngine engine(graph, rp);

    PathParams pp;
    pp.beam_width = 4;
    pp.max_path_length = 8;
    pp.hop_horizon = Duration::minutes(2);
    PathReconstructor reconstructor(engine, pp);

    auto probes = multi_hop_probes(trace, 40);
    double accuracy = 0.0;
    double length = 0.0;
    double candidates = 0.0;
    double ms = 0.0;
    std::size_t n = 0;
    for (const Detection* probe : probes) {
      bench::WallTimer timer;
      ReconstructedPath path = reconstructor.reconstruct(*probe, source);
      ms += timer.elapsed_ms();
      accuracy += PathReconstructor::hop_accuracy(path, probe->object, true);
      length += static_cast<double>(path.hops.size());
      candidates += static_cast<double>(path.candidates_examined);
      ++n;
    }
    if (n == 0) continue;
    auto dn = static_cast<double>(n);
    std::printf("%8.2f %8zu %11.0f%% %12.1f %14.0f %10.2f\n", noise, n,
                100.0 * accuracy / dn, length / dn, candidates / dn, ms / dn);
    std::string suffix =
        "_noise" + std::to_string(static_cast<int>(noise * 100));
    report.set("hop_accuracy_pct" + suffix, 100.0 * accuracy / dn);
    report.set("path_len" + suffix, length / dn);
    report.set("candidates" + suffix, candidates / dn);
  }
  std::printf(
      "\nexpected shape: accuracy high at low noise, degrading gracefully\n"
      "as the detector worsens; candidates stay bounded (cone, not full "
      "scan).\n");
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
