// E12 (extension) — periodic activity-pattern detection.
//
// City traffic is periodic (rush hours, quiet nights); the analytics layer
// recovers the cycle length from query-derived activity series via
// autocorrelation. Swept over true cycle length and quiet-phase depth.
// Reported: detected period vs truth and detection confidence. Expected
// shape: exact recovery (±1 bucket) once the quiet phase is pronounced;
// shallow cycles fall below the confidence threshold and are (correctly)
// not reported.
#include <cinttypes>
#include <cmath>

#include "baseline/centralized.h"
#include "bench_util.h"
#include "query/analytics.h"

namespace stcn {
namespace {

void run() {
  bench::print_header("E12 periodic patterns",
                      "activity-cycle recovery from query feedback");
  std::printf("%12s %12s %14s %14s %12s\n", "true_period", "quiet_factor",
              "detections", "detected", "confidence");

  bench::BenchReport report("periodicity");
  std::vector<std::int64_t> periods = bench::quick()
                                          ? std::vector<std::int64_t>{3}
                                          : std::vector<std::int64_t>{2, 3, 4};
  for (std::int64_t period_min : periods) {
    for (double quiet_factor : {1.0, 4.0, 30.0}) {
      TraceConfig tc = bench::scenario(1.0, Duration::minutes(4 * period_min));
      tc.mobility.activity_period = Duration::minutes(period_min);
      tc.mobility.quiet_dwell_factor = quiet_factor;
      Trace trace = TraceGenerator::generate(tc);
      Rect world = trace.roads.bounds(150.0);
      CentralizedIndex index(world);
      index.ingest_all(trace.detections);

      QueryExecutorRef exec(index);
      auto series = activity_series(
          exec, world,
          {TimePoint::origin(), TimePoint::origin() + tc.duration},
          Duration::seconds(15));
      auto est = estimate_period(series);
      std::string suffix = "_p" + std::to_string(period_min) + "_q" +
                           std::to_string(static_cast<int>(quiet_factor));
      if (est.has_value()) {
        std::printf("%10" PRId64 "min %12.0f %14zu %12.0fs %12.2f\n",
                    period_min, quiet_factor, trace.detections.size(),
                    est->period.to_seconds(), est->confidence);
        report.set("detected_period_s" + suffix, est->period.to_seconds());
        report.set("confidence" + suffix, est->confidence);
      } else {
        std::printf("%10" PRId64 "min %12.0f %14zu %14s %12s\n", period_min,
                    quiet_factor, trace.detections.size(), "none", "-");
        report.set("detected_period_s" + suffix, 0.0);
      }
    }
  }
  std::printf(
      "\nexpected shape: no cycle reported at quiet_factor 1 (flat\n"
      "traffic); pronounced cycles recovered at their true length (±1\n"
      "bucket). Cycles comparable to the trip-duration timescale (the\n"
      "2-minute row: 60 s quiet halves vs 10–60 s trips) blur into the\n"
      "mobility shoulder and are correctly not reported rather than\n"
      "reported wrong.\n");
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
