// Ablation A1 — adaptive k-NN planning vs broadcast.
//
// DESIGN.md calls out footprint pruning as the load-bearing design choice;
// k-NN is the query type with *no* static footprint. This ablation measures
// what the selectivity-estimator-driven planner recovers: worker fan-out,
// messages, and bytes per k-NN, planned vs broadcast, as the estimator
// warms up. Expected shape: once warm, planned k-NN touches a small corner
// of the fleet; cold (dark estimator) it degenerates to broadcast cost but
// never loses exactness.
#include <cinttypes>
#include <memory>

#include "bench_util.h"
#include "core/framework.h"
#include "partition/strategies.h"

namespace stcn {
namespace {

struct Cost {
  double fanout;
  double msgs;
  double bytes;
};

template <typename RunQuery>
Cost measure(Cluster& cluster, std::size_t n, RunQuery&& run) {
  auto q0 = cluster.coordinator().counters().get("queries_submitted");
  auto f0 = cluster.coordinator().counters().get("query_fanout_total");
  auto m0 = cluster.network().counters().get("messages_sent");
  auto b0 = cluster.network().counters().get("bytes_sent");
  run();
  auto queries =
      cluster.coordinator().counters().get("queries_submitted") - q0;
  return {static_cast<double>(
              cluster.coordinator().counters().get("query_fanout_total") -
              f0) /
              static_cast<double>(queries),
          static_cast<double>(cluster.network().counters().get(
                                  "messages_sent") -
                              m0) /
              static_cast<double>(n),
          static_cast<double>(cluster.network().counters().get("bytes_sent") -
                              b0) /
              static_cast<double>(n)};
}

void run() {
  TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 2.0,
                                   bench::quick() ? Duration::minutes(1)
                                                  : Duration::minutes(4));
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  ClusterConfig config;
  config.worker_count = 16;
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
      config);
  cluster.ingest_all(trace.detections);

  bench::print_header(
      "A1 adaptive k-NN planner",
      "16 workers, " + std::to_string(trace.detections.size()) +
          " detections, 40 k-NN queries per row");

  Rng rng(5);
  std::vector<Point> centers;
  int center_count = bench::quick() ? 10 : 40;
  for (int i = 0; i < center_count; ++i) {
    centers.push_back({rng.uniform(world.min.x, world.max.x),
                       rng.uniform(world.min.y, world.max.y)});
  }

  std::printf("%-22s %10s %10s %12s\n", "plan", "fanout", "msgs/q",
              "bytes/q");

  // Cold planner: estimator dark, every plan degenerates.
  Cost cold = measure(cluster, centers.size(), [&] {
    for (Point c : centers) {
      (void)cluster.execute_knn_adaptive(c, 5, TimeInterval::all());
    }
  });
  std::printf("%-22s %10.2f %10.1f %12.0f\n", "adaptive (cold)", cold.fanout,
              cold.msgs, cold.bytes);

  // Warm the estimator with range-query feedback.
  for (int i = 0; i < 60; ++i) {
    Rect region = Rect::centered(
        {rng.uniform(world.min.x, world.max.x),
         rng.uniform(world.min.y, world.max.y)},
        300.0);
    (void)cluster.execute(
        Query::range(cluster.next_query_id(), region, TimeInterval::all()));
  }

  Cost warm = measure(cluster, centers.size(), [&] {
    for (Point c : centers) {
      (void)cluster.execute_knn_adaptive(c, 5, TimeInterval::all());
    }
  });
  std::printf("%-22s %10.2f %10.1f %12.0f\n", "adaptive (warm)", warm.fanout,
              warm.msgs, warm.bytes);

  Cost broadcast = measure(cluster, centers.size(), [&] {
    for (Point c : centers) {
      (void)cluster.execute(Query::knn(cluster.next_query_id(), c, 5,
                                       TimeInterval::all()));
    }
  });
  std::printf("%-22s %10.2f %10.1f %12.0f\n", "broadcast k-NN",
              broadcast.fanout, broadcast.msgs, broadcast.bytes);

  bench::BenchReport report("planner");
  report.set("detections", static_cast<double>(trace.detections.size()));
  report.set("fanout_cold", cold.fanout);
  report.set("fanout_warm", warm.fanout);
  report.set("fanout_broadcast", broadcast.fanout);
  report.set("bytes_per_query_cold", cold.bytes);
  report.set("bytes_per_query_warm", warm.bytes);
  report.set("bytes_per_query_broadcast", broadcast.bytes);
  report.add_histogram("query_latency_us",
                       *cluster.coordinator().metrics().histograms().at(
                           "query_latency_us"));
  report.add_registry(cluster.metrics_snapshot());
  report.write();

  std::printf(
      "\nexpected shape: warm adaptive fan-out and bytes well below\n"
      "broadcast. The cold planner's FIRST query degenerates to a\n"
      "world-sized circle (broadcast cost), but that circle's own feedback\n"
      "lights the estimator, so even the cold row self-warms after one\n"
      "query — correctness never depends on the estimate either way.\n");
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
