// E9 — Failure recovery (figure "failure recovery").
//
// Workers crash (losing in-memory state) and restart; restart triggers
// resync of their partitions from surviving replicas. Reported per failure
// count: virtual recovery time, resynced detections, resync bytes on the
// wire, and whether whole-world queries stayed complete throughout (via
// failover to backups). Expected shape: recovery time scales with the data
// a worker holds; answers stay complete as long as one replica survives.
#include <cinttypes>
#include <memory>
#include <set>

#include "baseline/centralized.h"
#include "bench_util.h"
#include "core/framework.h"
#include "partition/strategies.h"

namespace stcn {
namespace {

void run() {
  TraceConfig tc = bench::scenario(1.5, Duration::minutes(4));
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  CentralizedIndex oracle(world);
  oracle.ingest_all(trace.detections);
  std::set<std::uint64_t> expected;
  for (const Detection& d : trace.detections) expected.insert(d.id.value());

  bench::print_header(
      "E9 failure recovery",
      "8 workers, replication factor 2, sequential crash/restart cycles");
  std::printf("%10s %16s %16s %16s %12s\n", "failures", "recovery_virt_ms",
              "resynced_events", "resync_bytes", "complete?");

  for (std::size_t failures : {1, 2, 4}) {
    ClusterConfig config;
    config.worker_count = 8;
    config.coordinator.query_timeout = Duration::millis(20);
    Cluster cluster(
        world,
        std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
        config);
    cluster.ingest_all(trace.detections);

    double recovery_ms = 0.0;
    std::uint64_t resynced = 0;
    std::uint64_t bytes0 = cluster.network().counters().get("bytes_sent");
    bool all_complete = true;

    for (std::size_t f = 0; f < failures; ++f) {
      WorkerId victim(1 + f);
      cluster.crash_worker(victim);

      // Query during downtime: failover must keep the answer complete.
      QueryResult during = cluster.execute(Query::range(
          cluster.next_query_id(), world, TimeInterval::all()));
      std::set<std::uint64_t> got;
      for (const Detection& d : during.detections) got.insert(d.id.value());
      all_complete = all_complete && (got == expected);

      Duration recovery = cluster.restart_worker(victim);
      recovery_ms += recovery.to_seconds() * 1000.0;
      resynced += cluster.worker(victim).counters().get("ingested_resync");

      // Query after recovery.
      QueryResult after = cluster.execute(Query::range(
          cluster.next_query_id(), world, TimeInterval::all()));
      got.clear();
      for (const Detection& d : after.detections) got.insert(d.id.value());
      all_complete = all_complete && (got == expected);
    }
    std::uint64_t resync_bytes =
        cluster.network().counters().get("bytes_sent") - bytes0;
    std::printf("%10zu %16.2f %16" PRIu64 " %16" PRIu64 " %12s\n", failures,
                recovery_ms / static_cast<double>(failures),
                resynced / failures, resync_bytes / failures,
                all_complete ? "yes" : "NO");
  }
  std::printf(
      "\nexpected shape: bounded recovery (proportional to per-worker\n"
      "data), complete answers throughout thanks to failover + resync.\n");
}

}  // namespace
}  // namespace stcn

int main() {
  stcn::run();
  return 0;
}
