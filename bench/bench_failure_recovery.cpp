// E9 — Failure recovery (figure "failure recovery").
//
// Part 1: workers crash (losing in-memory state) and restart; restart
// triggers resync of their partitions from surviving replicas. Reported per
// failure count: virtual recovery time, resynced detections, resync bytes
// on the wire, and whether whole-world queries stayed complete throughout
// (via failover to backups). Expected shape: recovery time scales with the
// data a worker holds; answers stay complete as long as one replica
// survives.
//
// Part 2: lossy-fabric sweep. The fabric drops 0–10% of messages (and
// duplicates ~1%); the reliable channel retransmits until every ingest
// batch and query frame is acked. Reported per drop rate: ingest goodput
// (unique detections stored per virtual second), query completeness vs a
// centralized oracle, and the transport/hedging counters. Expected shape:
// 100% completeness at every drop rate — drops cost retransmissions and
// virtual time, never data.
#include <cinttypes>
#include <memory>
#include <set>

#include "baseline/centralized.h"
#include "bench_util.h"
#include "core/framework.h"
#include "partition/strategies.h"

namespace stcn {
namespace {

/// Pumps the network until every node's reliable channel has no frames in
/// flight (acked or abandoned), so "stored" below means "acked".
void quiesce(Cluster& cluster) {
  auto settled = [&] {
    if (cluster.coordinator().unacked_frames() != 0) return false;
    for (WorkerId w : cluster.worker_ids()) {
      if (cluster.worker(w).unacked_frames() != 0) return false;
    }
    return true;
  };
  while (!settled()) {
    if (!cluster.network().step()) break;
  }
}

/// Sums one counter across the coordinator and all workers.
std::uint64_t cluster_counter(Cluster& cluster, const char* name) {
  std::uint64_t total = cluster.coordinator().counters().get(name);
  for (WorkerId w : cluster.worker_ids()) {
    total += cluster.worker(w).counters().get(name);
  }
  return total;
}

void run_drop_sweep(const Trace& trace, const Rect& world,
                    const std::set<std::uint64_t>& expected,
                    bench::BenchReport& report) {
  bench::print_header(
      "E9b lossy fabric sweep",
      "8 workers, 1% duplication, reliable transport + hedged queries");
  std::printf("%8s %12s %14s %12s %10s %8s %8s\n", "drop", "goodput_eps",
              "completeness", "retransmits", "dup_supp", "hedged", "won");

  std::vector<double> drops = bench::quick()
                                  ? std::vector<double>{0.0, 0.05}
                                  : std::vector<double>{0.0, 0.02, 0.05, 0.10};
  for (double drop : drops) {
    ClusterConfig config;
    config.worker_count = 8;
    config.network.drop_probability = drop;
    config.network.duplicate_probability = 0.01;
    config.network.seed = 42;
    // Generous relative to the 10ms retransmit RTO: transient drops heal
    // inside the channel instead of escalating into failover.
    config.coordinator.query_timeout = Duration::millis(200);
    // Ingest advances virtual time to detection timestamps, so frames must
    // survive a long retransmission ladder.
    config.reliable.max_attempts = 200;
    Cluster cluster(
        world,
        std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
        config);

    TimePoint t0 = cluster.now();
    cluster.ingest_all(trace.detections);
    quiesce(cluster);
    double elapsed_s = (cluster.now() - t0).to_seconds();

    QueryResult result = cluster.execute(
        Query::range(cluster.next_query_id(), world, TimeInterval::all()));
    std::set<std::uint64_t> got;
    for (const Detection& d : result.detections) got.insert(d.id.value());
    std::size_t present = 0;
    for (std::uint64_t id : expected) present += got.count(id);
    double completeness =
        expected.empty()
            ? 100.0
            : 100.0 * static_cast<double>(present) /
                  static_cast<double>(expected.size());
    double goodput =
        elapsed_s > 0.0 ? static_cast<double>(present) / elapsed_s : 0.0;

    std::printf("%7.0f%% %12.1f %13.2f%% %12" PRIu64 " %10" PRIu64
                " %8" PRIu64 " %8" PRIu64 "\n",
                drop * 100.0, goodput, completeness,
                cluster_counter(cluster, "retransmits"),
                cluster_counter(cluster, "dup_suppressed"),
                cluster_counter(cluster, "hedges_issued"),
                cluster_counter(cluster, "hedges_won"));
    std::string suffix =
        "_drop" + std::to_string(static_cast<int>(drop * 100.0));
    report.set("completeness_pct" + suffix, completeness);
    report.set("goodput_eps" + suffix, goodput);
    report.set("retransmits" + suffix,
               static_cast<double>(cluster_counter(cluster, "retransmits")));
    if (drop == drops.back()) {
      report.add_registry(cluster.metrics_snapshot());
    }
  }
  std::printf(
      "\nexpected shape: completeness pinned at 100%% across the sweep;\n"
      "drops surface as retransmissions (latency), never as lost data.\n");
}

/// Gray-failure health monitoring: a worker turns slow (not dead — it still
/// answers, late), the continuous health monitor must flag it `suspect`
/// from the coordinator's per-peer signals, and healing must resolve the
/// alert. The full monitor snapshot lands in the report ("health" section).
void run_gray_health(const Trace& trace, const Rect& world,
                     bench::BenchReport& report) {
  bench::print_header(
      "E9c gray-failure health monitoring",
      "one worker 40x slow; rule-based alerting on the sim clock");

  ClusterConfig config;
  config.worker_count = 8;
  config.health.enabled = true;
  config.health.sample_period = Duration::millis(250);
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
      config);
  cluster.ingest_all(trace.detections);

  WorkerId victim = cluster.worker_ids()[1];
  std::string subject = "worker." + std::to_string(victim.value());
  HealthMonitor& monitor = cluster.health_monitor();

  auto victim_flagged = [&] {
    return monitor.is_firing("hedge_win_spike", subject) ||
           monitor.is_firing("latency_burn", subject);
  };
  auto run_queries = [&](int n) {
    Rng rng(19);
    for (int i = 0; i < n; ++i) {
      Rect region = Rect::centered(
          {rng.uniform(world.min.x, world.max.x),
           rng.uniform(world.min.y, world.max.y)},
          rng.uniform(200.0, 800.0));
      (void)cluster.execute(Query::range(cluster.next_query_id(), region,
                                         TimeInterval::all()));
      cluster.advance_time(Duration::millis(100));
    }
  };

  cluster.network().set_slow(NodeId(victim.value()), 40.0);
  std::uint64_t fire_budget = monitor.samples_taken() + 200;
  std::uint64_t fired_at = 0;
  while (!victim_flagged() && monitor.samples_taken() < fire_budget) {
    run_queries(5);
  }
  bool fired = victim_flagged();
  fired_at = monitor.samples_taken();
  bool suspect =
      cluster.health().status(subject) == HealthStatus::kSuspect;

  cluster.network().clear_slow(NodeId(victim.value()));
  std::uint64_t resolve_budget = monitor.samples_taken() + 200;
  while (victim_flagged() && monitor.samples_taken() < resolve_budget) {
    run_queries(5);
  }
  bool resolved = !victim_flagged() &&
                  cluster.health().status(subject) == HealthStatus::kHealthy;

  std::printf("victim=%s  alert fired: %s (sample %" PRIu64
              ", suspect: %s)  resolved after heal: %s\n",
              subject.c_str(), fired ? "yes" : "NO", fired_at,
              suspect ? "yes" : "NO", resolved ? "yes" : "NO");
  std::printf("%s", monitor.events().render().c_str());
  std::printf(
      "expected shape: a suspect alert fires within a bounded number of\n"
      "samples of the slowdown and resolves shortly after healing.\n");

  report.set("health_gray_alert_fired", fired ? 1.0 : 0.0);
  report.set("health_gray_victim_suspect", suspect ? 1.0 : 0.0);
  report.set("health_gray_alert_resolved", resolved ? 1.0 : 0.0);
  report.set("health_samples", static_cast<double>(monitor.samples_taken()));
  report.set("health_events",
             static_cast<double>(monitor.events().total()));
  report.add_section("health", monitor.to_json());
}

/// E9d — recovery cost vs snapshot age. A restarted worker installs its
/// last snapshot and delta-resyncs only the post-watermark tail from the
/// surviving holder's replay log; the fresher the snapshot, the less data
/// is replayed. The no-snapshot column is the full-resync baseline every
/// snapshot age must beat (bytes and replayed rows).
void run_snapshot_age(bench::BenchReport& report) {
  // Denser than the shared scenario: the tiered row only differs from the
  // raw one if hot partitions seal (and demote) full 4096-row blocks, so
  // the snapshot vault actually carries compressed cold blocks.
  TraceConfig tc = bench::scenario(
      1.0, bench::quick() ? Duration::minutes(2) : Duration::minutes(4));
  tc.mobility.object_count = 900;
  tc.mobility.hotspot_fraction = 0.5;
  tc.detection.redetect_interval = Duration::millis(500);
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);
  std::set<std::uint64_t> expected;
  for (const Detection& d : trace.detections) expected.insert(d.id.value());

  bench::print_header(
      "E9d recovery vs snapshot age",
      "snapshot install + replay-log delta resync vs full re-copy");
  std::printf("%zu detections, hotspot mobility (denser than E9a-c)\n",
              trace.detections.size());
  std::printf("%10s %16s %14s %14s %14s %12s\n", "snap_age",
              "recovery_virt_ms", "replayed", "resync_bytes", "snap_bytes",
              "complete?");

  // The tiered row repeats the freshest-snapshot case with compressed cold
  // blocks: snapshots of demoted partitions carry encoded blocks, so the
  // vault shrinks while recovery stays complete.
  struct Case {
    double age;        // seconds before crash; < 0 means no snapshot
    bool tiered;
    const char* label;
    const char* suffix;
  };
  constexpr double kNoSnapshot = -1.0;
  std::vector<Case> cases =
      bench::quick()
          ? std::vector<Case>{{0.0, false, "0s", "_age0"},
                              {0.0, true, "0s+tier", "_age0_tiered"},
                              {5.0, false, "5s", "_age5"},
                              {kNoSnapshot, false, "none", "_nosnap"}}
          : std::vector<Case>{{0.0, false, "0s", "_age0"},
                              {0.0, true, "0s+tier", "_age0_tiered"},
                              {5.0, false, "5s", "_age5"},
                              {30.0, false, "30s", "_age30"},
                              {kNoSnapshot, false, "none", "_nosnap"}};
  TimePoint end_time = trace.detections.back().time;

  // Crash the worker that holds the most rows: partition placement is
  // deterministic, so probing once picks the same worker every case, and a
  // loaded victim is the one whose partitions seal blocks under tiering.
  WorkerId victim(1);
  {
    ClusterConfig probe_config;
    probe_config.worker_count = 8;
    Cluster probe(
        world,
        std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
        probe_config);
    probe.ingest_all(trace.detections);
    std::size_t best = 0;
    for (std::uint32_t w = 1; w <= probe_config.worker_count; ++w) {
      std::size_t rows = probe.worker(WorkerId(w)).stored_detections();
      if (rows > best) {
        best = rows;
        victim = WorkerId(w);
      }
    }
  }

  for (const Case& c : cases) {
    double age = c.age;
    ClusterConfig config;
    config.worker_count = 8;
    config.coordinator.query_timeout = Duration::millis(20);
    // Snapshots are taken manually so the age at crash time is exact, and
    // the replay log is sized to retain the whole run (no pruning), so the
    // delta path is always serveable and the comparison isolates age.
    config.snapshot_every_ticks = 0;
    config.replay_log_max_bytes = 64 * 1024 * 1024;
    config.tiered_storage = c.tiered;
    config.hot_sealed_blocks = 0;
    Cluster cluster(
        world,
        std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
        config);

    std::uint64_t snap_bytes = 0;
    if (age >= 0.0) {
      TimePoint cut =
          end_time - Duration::seconds(static_cast<std::int64_t>(age));
      std::size_t split = 0;
      while (split < trace.detections.size() &&
             trace.detections[split].time <= cut) {
        ++split;
      }
      cluster.ingest_all(
          std::span<const Detection>(trace.detections.data(), split));
      quiesce(cluster);
      cluster.worker(victim).take_snapshots(cluster.now());
      snap_bytes = static_cast<std::uint64_t>(
          cluster.worker(victim).metrics().gauge("snapshot_bytes").value());
      cluster.ingest_all(std::span<const Detection>(
          trace.detections.data() + split, trace.detections.size() - split));
    } else {
      cluster.ingest_all(trace.detections);
    }
    quiesce(cluster);

    std::uint64_t bytes0 = cluster.network().counters().get("bytes_sent");
    cluster.crash_worker(victim);
    Cluster::RecoveryReport rep = cluster.restart_worker(victim);
    std::uint64_t bytes =
        cluster.network().counters().get("bytes_sent") - bytes0;
    std::uint64_t replayed =
        cluster.worker(victim).counters().get("replayed_detections") +
        cluster.worker(victim).counters().get("ingested_resync");

    QueryResult r = cluster.execute(
        Query::range(cluster.next_query_id(), world, TimeInterval::all()));
    std::set<std::uint64_t> got;
    for (const Detection& d : r.detections) got.insert(d.id.value());
    bool complete = rep.completed && got == expected;

    std::printf("%10s %16.2f %14" PRIu64 " %14" PRIu64 " %14" PRIu64
                " %12s\n",
                c.label, rep.duration.to_seconds() * 1000.0, replayed, bytes,
                snap_bytes, complete ? "yes" : "NO");
    std::string suffix(c.suffix);
    report.set("e9d_recovery_ms" + suffix,
               rep.duration.to_seconds() * 1000.0);
    report.set("e9d_bytes" + suffix, static_cast<double>(bytes));
    report.set("e9d_replayed" + suffix, static_cast<double>(replayed));
    report.set("e9d_snapshot_bytes" + suffix,
               static_cast<double>(snap_bytes));
    report.set("e9d_complete" + suffix, complete ? 1.0 : 0.0);
  }
  std::printf(
      "\nexpected shape: replayed rows and resync bytes grow with snapshot\n"
      "age; every snapshot age beats the no-snapshot (full resync) column,\n"
      "and the tiered row shrinks the snapshot vault (compressed cold\n"
      "blocks) without losing completeness.\n");
}

void run() {
  TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 1.5,
                                   bench::quick() ? Duration::minutes(1)
                                                  : Duration::minutes(4));
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  CentralizedIndex oracle(world);
  oracle.ingest_all(trace.detections);
  std::set<std::uint64_t> expected;
  for (const Detection& d : trace.detections) expected.insert(d.id.value());

  bench::print_header(
      "E9 failure recovery",
      "8 workers, replication factor 2, sequential crash/restart cycles");
  std::printf("%10s %16s %16s %16s %12s\n", "failures", "recovery_virt_ms",
              "resynced_events", "resync_bytes", "complete?");

  bench::BenchReport report("failure_recovery");
  report.set("detections", static_cast<double>(trace.detections.size()));
  std::vector<std::size_t> failure_counts =
      bench::quick() ? std::vector<std::size_t>{1}
                     : std::vector<std::size_t>{1, 2, 4};
  for (std::size_t failures : failure_counts) {
    ClusterConfig config;
    config.worker_count = 8;
    config.coordinator.query_timeout = Duration::millis(20);
    Cluster cluster(
        world,
        std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
        config);
    cluster.ingest_all(trace.detections);

    double recovery_ms = 0.0;
    std::uint64_t resynced = 0;
    std::uint64_t bytes0 = cluster.network().counters().get("bytes_sent");
    bool all_complete = true;

    for (std::size_t f = 0; f < failures; ++f) {
      WorkerId victim(1 + f);
      cluster.crash_worker(victim);

      // Query during downtime: failover must keep the answer complete.
      QueryResult during = cluster.execute(Query::range(
          cluster.next_query_id(), world, TimeInterval::all()));
      std::set<std::uint64_t> got;
      for (const Detection& d : during.detections) got.insert(d.id.value());
      all_complete = all_complete && (got == expected);

      Cluster::RecoveryReport recovery = cluster.restart_worker(victim);
      all_complete = all_complete && recovery.completed;
      recovery_ms += recovery.duration.to_seconds() * 1000.0;
      resynced += cluster.worker(victim).counters().get("ingested_resync");

      // Query after recovery.
      QueryResult after = cluster.execute(Query::range(
          cluster.next_query_id(), world, TimeInterval::all()));
      got.clear();
      for (const Detection& d : after.detections) got.insert(d.id.value());
      all_complete = all_complete && (got == expected);
    }
    std::uint64_t resync_bytes =
        cluster.network().counters().get("bytes_sent") - bytes0;
    std::printf("%10zu %16.2f %16" PRIu64 " %16" PRIu64 " %12s\n", failures,
                recovery_ms / static_cast<double>(failures),
                resynced / failures, resync_bytes / failures,
                all_complete ? "yes" : "NO");
    std::string suffix = "_f" + std::to_string(failures);
    report.set("recovery_virt_ms" + suffix,
               recovery_ms / static_cast<double>(failures));
    report.set("complete" + suffix, all_complete ? 1.0 : 0.0);
  }
  std::printf(
      "\nexpected shape: bounded recovery (proportional to per-worker\n"
      "data), complete answers throughout thanks to failover + resync.\n");

  run_drop_sweep(trace, world, expected, report);
  run_gray_health(trace, world, report);
  run_snapshot_age(report);
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
