// E5 — Re-identification pruning (table "re-id pruning").
//
// For probes with a known true reappearance, compare cone-pruned candidate
// search against the full-scan baseline across search horizons. Reported:
// cameras queried, candidates examined, recall@10, and wall time.
// Expected shape: orders-of-magnitude fewer candidates with the cone at
// (near-)equal recall; the gap widens with the horizon.
#include <cinttypes>
#include <cmath>

#include "baseline/centralized.h"
#include "bench_util.h"
#include "common/appearance_kernel.h"
#include "obs/json.h"
#include "reid/reid_engine.h"

namespace stcn {
namespace {

std::vector<std::pair<const Detection*, const Detection*>> probes_with_truth(
    const Trace& trace, Duration horizon, std::size_t max_probes) {
  std::vector<std::pair<const Detection*, const Detection*>> out;
  std::unordered_map<ObjectId, const Detection*> last;
  for (const Detection& d : trace.detections) {
    auto it = last.find(d.object);
    if (it != last.end() && it->second->camera != d.camera &&
        d.time - it->second->time <= horizon && out.size() < max_probes) {
      out.emplace_back(it->second, &d);
    }
    last[d.object] = &d;
  }
  return out;
}

void run() {
  TraceConfig tc = bench::scenario(bench::quick() ? 0.5 : 2.0,
                                   bench::quick() ? Duration::minutes(2)
                                                  : Duration::minutes(8));
  tc.detection.appearance_noise = 0.12;
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  CentralizedIndex index(world);
  index.ingest_all(trace.detections);
  LocalCandidateSource source(index, trace.cameras);

  TransitionGraph graph;
  graph.learn(trace.detections);

  ReidParams params;
  params.cone.max_hops = 3;
  params.cone.min_edge_count = 2;
  params.min_similarity = 0.5;
  params.max_matches = 10;
  ReidEngine engine(graph, params);
  MetricsRegistry reid_metrics;
  engine.register_metrics(reid_metrics);

  bench::print_header(
      "E5 re-id pruning",
      std::to_string(trace.cameras.size()) + " cameras, " +
          std::to_string(trace.detections.size()) +
          " detections, transition graph with " +
          std::to_string(graph.edge_count()) + " edges");
  std::printf("%10s %8s |  %8s %12s %9s %9s |  %8s %12s %9s %9s\n",
              "horizon_s", "probes", "camsC", "candC", "recallC", "msC",
              "camsF", "candF", "recallF", "msF");

  bench::BenchReport report("reid");
  report.set("detections", static_cast<double>(trace.detections.size()));
  std::vector<std::int64_t> horizons =
      bench::quick() ? std::vector<std::int64_t>{60}
                     : std::vector<std::int64_t>{30, 60, 120, 300};
  for (std::int64_t horizon_s : horizons) {
    auto probes =
        probes_with_truth(trace, Duration::seconds(horizon_s), 60);
    if (probes.empty()) continue;

    struct Tally {
      std::uint64_t cameras = 0;
      std::uint64_t candidates = 0;
      std::size_t hits = 0;
      double ms = 0.0;
    } cone, full;

    for (const auto& [probe, truth] : probes) {
      TimeInterval horizon{probe->time,
                           probe->time + Duration::seconds(horizon_s)};
      auto tally = [&](Tally& t, auto&& search) {
        bench::WallTimer timer;
        ReidOutcome outcome = search();
        t.ms += timer.elapsed_ms();
        t.cameras += outcome.cameras_queried;
        t.candidates += outcome.candidates_examined;
        for (const ReidMatch& m : outcome.matches) {
          if (m.detection.object == probe->object) {
            ++t.hits;
            break;
          }
        }
      };
      tally(cone,
            [&] { return engine.find_matches(*probe, horizon, source); });
      tally(full, [&] {
        return engine.find_matches_full_scan(*probe, horizon, source);
      });
    }

    auto n = static_cast<double>(probes.size());
    std::printf(
        "%10" PRId64 " %8zu |  %8.1f %12.1f %8.0f%% %9.3f |  %8.1f %12.1f "
        "%8.0f%% %9.3f\n",
        horizon_s, probes.size(), static_cast<double>(cone.cameras) / n,
        static_cast<double>(cone.candidates) / n,
        100.0 * static_cast<double>(cone.hits) / n, cone.ms / n,
        static_cast<double>(full.cameras) / n,
        static_cast<double>(full.candidates) / n,
        100.0 * static_cast<double>(full.hits) / n, full.ms / n);
    std::string suffix = "_h" + std::to_string(horizon_s);
    report.set("cone_candidates" + suffix,
               static_cast<double>(cone.candidates) / n);
    report.set("cone_recall_pct" + suffix,
               100.0 * static_cast<double>(cone.hits) / n);
    report.set("full_candidates" + suffix,
               static_cast<double>(full.candidates) / n);
    report.set("full_recall_pct" + suffix,
               100.0 * static_cast<double>(full.hits) / n);
  }
  std::printf(
      "\nexpected shape: cone examines a small fraction of full-scan\n"
      "candidates at comparable recall; the factor grows with horizon.\n");

  // Before/after: candidate scoring through the scalar per-pair similarity
  // (the old hot loop) vs the batched appearance kernel the engine now
  // uses. Same candidate sets, same double accumulation — the speedup is
  // pure kernel.
  {
    auto probes = probes_with_truth(trace, Duration::seconds(60), 20);
    std::vector<std::vector<Detection>> cand_sets;
    for (const auto& [probe, truth] : probes) {
      TimeInterval horizon{probe->time, probe->time + Duration::seconds(60)};
      std::vector<Detection> cands;
      for (CameraId cam : source.all_cameras()) {
        auto at = source.detections_at(cam, horizon);
        cands.insert(cands.end(), at.begin(), at.end());
      }
      cand_sets.push_back(std::move(cands));
    }
    const std::size_t rounds = bench::quick() ? 200 : 800;
    double scalar_sum = 0, batched_sum = 0;
    std::uint64_t scored = 0;
    bench::WallTimer scalar_timer;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t p = 0; p < probes.size(); ++p) {
        const Detection& probe = *probes[p].first;
        for (const Detection& d : cand_sets[p]) {
          scalar_sum += probe.appearance.similarity(d.appearance);
        }
      }
    }
    double scalar_ms = scalar_timer.elapsed_ms();
    // Pointer gathering is shared setup (the scalar loop dereferences the
    // same per-record vectors); time only the scoring itself.
    std::vector<std::vector<const float*>> ptr_sets(probes.size());
    std::size_t max_cands = 0;
    for (std::size_t p = 0; p < probes.size(); ++p) {
      ptr_sets[p].reserve(cand_sets[p].size());
      for (const Detection& d : cand_sets[p]) {
        ptr_sets[p].push_back(d.appearance.values.data());
      }
      max_cands = std::max(max_cands, ptr_sets[p].size());
    }
    std::vector<double> sims(max_cands);
    bench::WallTimer batched_timer;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t p = 0; p < probes.size(); ++p) {
        const Detection& probe = *probes[p].first;
        appearance_score_batch(probe.appearance.values.data(),
                               probe.appearance.values.size(),
                               ptr_sets[p].data(), ptr_sets[p].size(),
                               sims.data());
        for (std::size_t i = 0; i < ptr_sets[p].size(); ++i) {
          batched_sum += sims[i];
        }
        scored += ptr_sets[p].size();
      }
    }
    double batched_ms = batched_timer.elapsed_ms();
    double speedup = batched_ms > 0 ? scalar_ms / batched_ms : 0;
    std::printf(
        "\nbatched appearance kernel: %" PRIu64
        " scores, scalar %.2f ms vs batched %.2f ms (%.2fx, drift %.2e)\n",
        scored, scalar_ms, batched_ms, speedup,
        std::abs(scalar_sum - batched_sum));
    obs::JsonWriter w;
    w.begin_object();
    w.key("scores");
    w.value(static_cast<double>(scored));
    w.key("scalar_ms");
    w.value(scalar_ms);
    w.key("batched_ms");
    w.value(batched_ms);
    w.key("speedup");
    w.value(speedup);
    w.end_object();
    report.add_section("batched_kernel", w.take());
    report.set("kernel_speedup", speedup);
  }
  report.set("reid_batched_scores",
             static_cast<double>(
                 reid_metrics.counter("reid_batched_scores").value()));
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
