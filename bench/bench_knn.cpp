// E8 — k-NN query latency (table "k-NN latency").
//
// k-nearest-detection queries through the full distributed stack, swept
// over k and worker count, plus a local index-level comparison of the grid
// ring search against a bulk kd-tree. Expected shape: latency grows gently
// with k; worker count adds fan-in cost for k-NN (no spatial pruning is
// possible), so fewer workers are better for this query type.
#include <cinttypes>
#include <memory>

#include "baseline/centralized.h"
#include "bench_util.h"
#include "core/framework.h"
#include "index/kdtree.h"
#include "partition/strategies.h"

namespace stcn {
namespace {

void run() {
  TraceConfig tc = bench::scenario(2.0, Duration::minutes(4));
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  bench::print_header(
      "E8 k-NN latency",
      std::to_string(trace.detections.size()) + " detections");

  std::printf("-- distributed stack: wall ms per query (40 queries/cell)\n");
  std::printf("%10s %8s %8s %8s\n", "k \\ workers", "1", "4", "16");
  Rng rng(3);
  std::vector<Point> centers;
  for (int i = 0; i < 40; ++i) {
    centers.push_back({rng.uniform(world.min.x, world.max.x),
                       rng.uniform(world.min.y, world.max.y)});
  }
  for (std::uint32_t k : {1u, 10u, 100u}) {
    std::printf("%10u ", k);
    for (std::size_t workers : {1, 4, 16}) {
      ClusterConfig config;
      config.worker_count = workers;
      Cluster cluster(
          world,
          std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
          config);
      cluster.ingest_all(trace.detections);
      bench::WallTimer timer;
      for (Point c : centers) {
        (void)cluster.execute(
            Query::knn(cluster.next_query_id(), c, k, TimeInterval::all()));
      }
      std::printf("%8.3f ", timer.elapsed_ms() / centers.size());
    }
    std::printf("\n");
  }

  std::printf("\n-- index-level: grid ring search vs kd-tree (us per query)\n");
  CentralizedIndex central(world);
  central.ingest_all(trace.detections);
  std::vector<KdTree::Item> items;
  items.reserve(trace.detections.size());
  for (const Detection& d : trace.detections) {
    items.push_back({d.position, d.id.value()});
  }
  KdTree tree(items);
  std::printf("%10s %12s %12s\n", "k", "grid_us", "kdtree_us");
  for (std::size_t k : {1, 10, 100}) {
    bench::WallTimer grid_timer;
    for (Point c : centers) {
      (void)central.indexes().grid.query_knn(central.indexes().store, c, k,
                                             TimeInterval::all());
    }
    double grid_us = grid_timer.elapsed_ms() * 1000.0 / centers.size();
    bench::WallTimer kd_timer;
    for (Point c : centers) {
      (void)tree.knn(c, k);
    }
    double kd_us = kd_timer.elapsed_ms() * 1000.0 / centers.size();
    std::printf("%10zu %12.1f %12.1f\n", k, grid_us, kd_us);
  }
  std::printf(
      "\nexpected shape: latency grows mildly with k; k-NN cannot prune\n"
      "partitions, so more workers add fan-in cost rather than speedup.\n");
}

}  // namespace
}  // namespace stcn

int main() {
  stcn::run();
  return 0;
}
